# The vet target is the one CI runs (.github/workflows/ci.yml); keep the
# two command lines identical so contributors reproduce CI findings exactly.

.PHONY: build test race vet bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go run ./cmd/sfvet ./...

# Runs the cluster tick benchmark family and refreshes BENCH_cluster.json.
# FULL=1 make bench includes the 1M-node round.
bench:
	scripts/bench.sh
