# The vet target is the one CI runs (.github/workflows/ci.yml); keep the
# two command lines identical so contributors reproduce CI findings exactly.
# CI's sfvet step only adds -github, which changes the diagnostic *format*
# (::error workflow annotations), never the verdict.
#
# sfvet exit contract: 0 = clean, 1 = one or more diagnostics, 2 = usage or
# load error (bad flag, unparseable package). -unusedallow prints stale
# //lint:allow directives as warnings on stderr and never changes the exit
# code — a stale escape hatch is advice, not a failure. CI additionally
# gates on BenchmarkSfvetRepo staying under its ns/op budget so the suite
# stays fast enough to run on every push.

.PHONY: build test race vet bench e2e

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go run ./cmd/sfvet -unusedallow ./...

# Boots a 3-node localhost UDP cluster with the management API enabled and
# drives it over HTTP: health, views, /metrics, a /join introduction, a live
# /config reload, a bare-/leave drain, and SIGTERM teardown.
e2e:
	scripts/e2e.sh

# Runs the cluster tick benchmark family and refreshes BENCH_cluster.json.
# FULL=1 make bench includes the 1M-node round.
bench:
	scripts/bench.sh
