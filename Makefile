# The vet target is the one CI runs (.github/workflows/ci.yml); keep the
# two command lines identical so contributors reproduce CI findings exactly.

.PHONY: build test race vet

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go run ./cmd/sfvet ./...
