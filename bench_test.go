// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact end to end via the experiments registry) plus micro-benchmarks
// of the hot paths. Run everything with
//
//	go test -bench=. -benchmem
//
// Heavy experiment benches execute once per iteration; the default
// -benchtime keeps b.N at 1 for them.
package sendforget_test

import (
	"testing"

	"sendforget/internal/degreemc"
	"sendforget/internal/engine"
	"sendforget/internal/experiments"
	"sendforget/internal/globalmc"
	"sendforget/internal/loss"
	"sendforget/internal/markov"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
	"sendforget/internal/view"
)

// benchExperiment regenerates one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Paper artifacts (see DESIGN.md per-experiment index).

func BenchmarkFig61(b *testing.B)  { benchExperiment(b, "fig6.1") }
func BenchmarkFig62(b *testing.B)  { benchExperiment(b, "fig6.2") }
func BenchmarkTab63(b *testing.B)  { benchExperiment(b, "tab6.3") }
func BenchmarkFig63(b *testing.B)  { benchExperiment(b, "fig6.3") }
func BenchmarkFig64(b *testing.B)  { benchExperiment(b, "fig6.4") }
func BenchmarkCor614(b *testing.B) { benchExperiment(b, "cor6.14") }
func BenchmarkLem66(b *testing.B)  { benchExperiment(b, "lem6.6") }
func BenchmarkLem76(b *testing.B)  { benchExperiment(b, "lem7.6") }
func BenchmarkLem78(b *testing.B)  { benchExperiment(b, "lem7.8") }
func BenchmarkLem79(b *testing.B)  { benchExperiment(b, "lem7.9") }
func BenchmarkTab74(b *testing.B)  { benchExperiment(b, "tab7.4") }
func BenchmarkLem715(b *testing.B) { benchExperiment(b, "lem7.15") }

// Exact global-chain verification (Lemmas 7.1/7.2/7.5/7.6 at n=3).

func BenchmarkLem75(b *testing.B) { benchExperiment(b, "lem7.5") }

// Baseline comparison, churn extension, and ablations.

func BenchmarkBaselines(b *testing.B)          { benchExperiment(b, "base1") }
func BenchmarkRandomWalk(b *testing.B)         { benchExperiment(b, "rw1") }
func BenchmarkChurnWorkload(b *testing.B)      { benchExperiment(b, "churn1") }
func BenchmarkAblationBurstLoss(b *testing.B)  { benchExperiment(b, "abl1") }
func BenchmarkAblationDL(b *testing.B)         { benchExperiment(b, "abl2") }
func BenchmarkAblationOpt(b *testing.B)        { benchExperiment(b, "abl3") }
func BenchmarkAblationNonuniform(b *testing.B) { benchExperiment(b, "abl4") }

// Micro-benchmarks of the hot paths.

// BenchmarkEngineStep measures raw protocol-action throughput in the
// sequential simulator (one S&F action per op, including loss decisions).
func BenchmarkEngineStep(b *testing.B) {
	proto, err := sendforget.New(sendforget.Config{N: 1000, S: 40, DL: 18})
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(proto, loss.MustUniform(0.01), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepTracked adds per-entry dependence tracking.
func BenchmarkEngineStepTracked(b *testing.B) {
	proto, err := sendforget.New(sendforget.Config{N: 1000, S: 40, DL: 18, TrackDependence: true})
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(proto, loss.MustUniform(0.01), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkInitiateStep measures the bare protocol initiate step.
func BenchmarkInitiateStep(b *testing.B) {
	lv := view.New(40)
	for i := 0; i < 28; i++ {
		lv.Set(i, peer.ID(i+1))
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send, _, ok := sendforget.InitiateStep(lv, 0, 18, r)
		if ok {
			// Put the ids back so the view's occupancy stays stationary.
			sendforget.ReceiveStep(lv, 40, send.IDs, r)
		}
	}
}

// BenchmarkDegreeMCSolveSmall solves a small degree MC to a fixed point.
// The cache is reset every iteration so the fixed-point computation itself
// is what gets timed.
func BenchmarkDegreeMCSolveSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		degreemc.ResetSolveCache()
		if _, err := degreemc.Solve(degreemc.Params{S: 16, DL: 6, Loss: 0.05}, degreemc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegreeMCSolveCached measures a cache hit: the steady-state lookup
// path the experiment runners take when they re-request a solved chain.
func BenchmarkDegreeMCSolveCached(b *testing.B) {
	par := degreemc.Params{S: 16, DL: 6, Loss: 0.05}
	if _, err := degreemc.Solve(par, degreemc.SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := degreemc.Solve(par, degreemc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationary measures power iteration on a mid-size sparse chain
// (the adjacency-list representation the builders produce).
func BenchmarkStationary(b *testing.B) {
	sp, err := degreemc.NewSpace(degreemc.Params{S: 40, DL: 18, Loss: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := sp.BuildChain(degreemc.Field{PFull: 0.01, Gap: 25, PDup: 0.06})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := markov.Stationary(chain, nil, 1e-9, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationaryCSR measures the same power iteration on the finalized
// CSR form the solver now iterates.
func BenchmarkStationaryCSR(b *testing.B) {
	sp, err := degreemc.NewSpace(degreemc.Params{S: 40, DL: 18, Loss: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := sp.BuildChain(degreemc.Field{PFull: 0.01, Gap: 25, PDup: 0.06})
	if err != nil {
		b.Fatal(err)
	}
	csr := chain.Finalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := markov.Stationary(csr, nil, 1e-9, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundtrip measures wire marshal+unmarshal of an S&F
// message.
func BenchmarkCodecRoundtrip(b *testing.B) {
	msg := protocol.Message{Kind: protocol.KindGossip, From: 7, IDs: []peer.ID{7, 42}, Dup: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := transport.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transport.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNGPair measures the uniform distinct-pair selection that every
// protocol action performs.
func BenchmarkRNGPair(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		r.Pair(40)
	}
}

// sfCoreFactory builds S&F step cores for the runtime benchmarks.
func sfCoreFactory(s, dl int) protocol.CoreFactory {
	return func() (protocol.StepCore, error) { return sendforget.NewCore(s, dl) }
}

// BenchmarkRuntimeTick measures one concurrent-node gossip action over the
// in-memory lossy network (lock acquisition + step + transport).
func BenchmarkRuntimeTick(b *testing.B) {
	cluster, err := runtime.NewCluster(runtime.ClusterConfig{
		N: 64, NewCore: sfCoreFactory(16, 6), Loss: 0.02, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	nodes := cluster.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].Tick()
	}
}

// BenchmarkClusterTick measures one full synchronous round (n initiate
// steps plus all triggered receive steps and loss decisions) on both
// cluster substrates, reporting ns/node-tick so runs at different n compare
// directly:
//
//   - pernode: the legacy per-node path (per-node locks, handler dispatch,
//     per-message allocations) at its practical sizes.
//   - sharded: the sharded tick engine at 10k, 100k, and (full mode only;
//     skipped under -short) 1M nodes.
//
// scripts/bench.sh runs this family and records BENCH_cluster.json.
func BenchmarkClusterTick(b *testing.B) {
	pernode := func(n int) func(*testing.B) {
		return func(b *testing.B) {
			cluster, err := runtime.NewCluster(runtime.ClusterConfig{
				N: n, NewCore: sfCoreFactory(16, 6), Loss: 0.02, Seed: 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cluster.TickRound()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-tick")
		}
	}
	sharded := func(n int) func(*testing.B) {
		return func(b *testing.B) {
			e, err := runtime.NewSharded(runtime.ShardedConfig{
				N: n, NewCore: sfCoreFactory(16, 6), Loss: 0.02, Seed: 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// Warm up the arenas so the timed region measures the
			// zero-allocation steady state, not one-time buffer growth.
			for i := 0; i < 8; i++ {
				e.TickRound()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.TickRound()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-tick")
		}
	}
	b.Run("pernode/n=500", pernode(500))
	b.Run("pernode/n=10k", pernode(10_000))
	b.Run("sharded/n=10k", sharded(10_000))
	b.Run("sharded/n=100k", sharded(100_000))
	b.Run("sharded/n=1M", func(b *testing.B) {
		if testing.Short() {
			b.Skip("1M-node round skipped under -short")
		}
		sharded(1_000_000)(b)
	})
}

// BenchmarkGlobalChainBuild measures exact state-space enumeration of the
// n=3 lossy global chain.
func BenchmarkGlobalChainBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := globalmc.Build(globalmc.Params{N: 3, S: 6, DL: 2, Loss: 0.1}, globalmc.Circulant(3, 2)); err != nil {
			b.Fatal(err)
		}
	}
}
