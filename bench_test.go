// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact end to end via the experiments registry) plus micro-benchmarks
// of the hot paths. Run everything with
//
//	go test -bench=. -benchmem
//
// Heavy experiment benches execute once per iteration; the default
// -benchtime keeps b.N at 1 for them.
package sendforget_test

import (
	"testing"

	"sendforget/internal/degreemc"
	"sendforget/internal/engine"
	"sendforget/internal/experiments"
	"sendforget/internal/globalmc"
	"sendforget/internal/loss"
	"sendforget/internal/markov"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
	"sendforget/internal/view"
)

// benchExperiment regenerates one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Paper artifacts (see DESIGN.md per-experiment index).

func BenchmarkFig61(b *testing.B)  { benchExperiment(b, "fig6.1") }
func BenchmarkFig62(b *testing.B)  { benchExperiment(b, "fig6.2") }
func BenchmarkTab63(b *testing.B)  { benchExperiment(b, "tab6.3") }
func BenchmarkFig63(b *testing.B)  { benchExperiment(b, "fig6.3") }
func BenchmarkFig64(b *testing.B)  { benchExperiment(b, "fig6.4") }
func BenchmarkCor614(b *testing.B) { benchExperiment(b, "cor6.14") }
func BenchmarkLem66(b *testing.B)  { benchExperiment(b, "lem6.6") }
func BenchmarkLem76(b *testing.B)  { benchExperiment(b, "lem7.6") }
func BenchmarkLem78(b *testing.B)  { benchExperiment(b, "lem7.8") }
func BenchmarkLem79(b *testing.B)  { benchExperiment(b, "lem7.9") }
func BenchmarkTab74(b *testing.B)  { benchExperiment(b, "tab7.4") }
func BenchmarkLem715(b *testing.B) { benchExperiment(b, "lem7.15") }

// Exact global-chain verification (Lemmas 7.1/7.2/7.5/7.6 at n=3).

func BenchmarkLem75(b *testing.B) { benchExperiment(b, "lem7.5") }

// Baseline comparison, churn extension, and ablations.

func BenchmarkBaselines(b *testing.B)          { benchExperiment(b, "base1") }
func BenchmarkRandomWalk(b *testing.B)         { benchExperiment(b, "rw1") }
func BenchmarkChurnWorkload(b *testing.B)      { benchExperiment(b, "churn1") }
func BenchmarkAblationBurstLoss(b *testing.B)  { benchExperiment(b, "abl1") }
func BenchmarkAblationDL(b *testing.B)         { benchExperiment(b, "abl2") }
func BenchmarkAblationOpt(b *testing.B)        { benchExperiment(b, "abl3") }
func BenchmarkAblationNonuniform(b *testing.B) { benchExperiment(b, "abl4") }

// Micro-benchmarks of the hot paths.

// BenchmarkEngineStep measures raw protocol-action throughput in the
// sequential simulator (one S&F action per op, including loss decisions).
func BenchmarkEngineStep(b *testing.B) {
	proto, err := sendforget.New(sendforget.Config{N: 1000, S: 40, DL: 18})
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(proto, loss.MustUniform(0.01), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepTracked adds per-entry dependence tracking.
func BenchmarkEngineStepTracked(b *testing.B) {
	proto, err := sendforget.New(sendforget.Config{N: 1000, S: 40, DL: 18, TrackDependence: true})
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(proto, loss.MustUniform(0.01), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkInitiateStep measures the bare protocol initiate step.
func BenchmarkInitiateStep(b *testing.B) {
	lv := view.New(40)
	for i := 0; i < 28; i++ {
		lv.Set(i, peer.ID(i+1))
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send, _, ok := sendforget.InitiateStep(lv, 0, 18, r)
		if ok {
			// Put the ids back so the view's occupancy stays stationary.
			sendforget.ReceiveStep(lv, 40, send.IDs, r)
		}
	}
}

// BenchmarkDegreeMCSolveSmall solves a small degree MC to a fixed point.
// The cache is reset every iteration so the fixed-point computation itself
// is what gets timed.
func BenchmarkDegreeMCSolveSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		degreemc.ResetSolveCache()
		if _, err := degreemc.Solve(degreemc.Params{S: 16, DL: 6, Loss: 0.05}, degreemc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegreeMCSolveCached measures a cache hit: the steady-state lookup
// path the experiment runners take when they re-request a solved chain.
func BenchmarkDegreeMCSolveCached(b *testing.B) {
	par := degreemc.Params{S: 16, DL: 6, Loss: 0.05}
	if _, err := degreemc.Solve(par, degreemc.SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := degreemc.Solve(par, degreemc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationary measures power iteration on a mid-size sparse chain
// (the adjacency-list representation the builders produce).
func BenchmarkStationary(b *testing.B) {
	sp, err := degreemc.NewSpace(degreemc.Params{S: 40, DL: 18, Loss: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := sp.BuildChain(degreemc.Field{PFull: 0.01, Gap: 25, PDup: 0.06})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := markov.Stationary(chain, nil, 1e-9, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStationaryCSR measures the same power iteration on the finalized
// CSR form the solver now iterates.
func BenchmarkStationaryCSR(b *testing.B) {
	sp, err := degreemc.NewSpace(degreemc.Params{S: 40, DL: 18, Loss: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := sp.BuildChain(degreemc.Field{PFull: 0.01, Gap: 25, PDup: 0.06})
	if err != nil {
		b.Fatal(err)
	}
	csr := chain.Finalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := markov.Stationary(csr, nil, 1e-9, 1000000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundtrip measures wire marshal+unmarshal of an S&F
// message.
func BenchmarkCodecRoundtrip(b *testing.B) {
	msg := protocol.Message{Kind: protocol.KindGossip, From: 7, IDs: []peer.ID{7, 42}, Dup: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := transport.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transport.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNGPair measures the uniform distinct-pair selection that every
// protocol action performs.
func BenchmarkRNGPair(b *testing.B) {
	r := rng.New(3)
	for i := 0; i < b.N; i++ {
		r.Pair(40)
	}
}

// sfCoreFactory builds S&F step cores for the runtime benchmarks.
func sfCoreFactory(s, dl int) protocol.CoreFactory {
	return func() (protocol.StepCore, error) { return sendforget.NewCore(s, dl) }
}

// benchProtocols lists the five batch-core protocols the sharded engine runs
// allocation-free, at view size 16 (matching the sendforget baseline rows).
func benchProtocols() []struct {
	name    string
	factory protocol.CoreFactory
} {
	return []struct {
		name    string
		factory protocol.CoreFactory
	}{
		{"sf", sfCoreFactory(16, 6)},
		{"sfopt", func() (protocol.StepCore, error) {
			return sfopt.NewCore(sfopt.Options{S: 16, DL: 6, ReplaceWhenFull: true, Undelete: true})
		}},
		{"shuffle", func() (protocol.StepCore, error) { return shuffle.NewCore(16) }},
		{"flipper", func() (protocol.StepCore, error) { return flipper.NewCore(16) }},
		{"pushpull", func() (protocol.StepCore, error) { return pushpull.NewCore(16) }},
	}
}

// BenchmarkRuntimeTick measures one concurrent-node gossip action over the
// in-memory lossy network (lock acquisition + step + transport). The
// per-node Tick is specific to the goroutine-per-node backend, so this is
// the one benchmark that needs the concrete type back from the factory.
func BenchmarkRuntimeTick(b *testing.B) {
	sub, err := runtime.New(runtime.Config{
		Engine: runtime.EngineCluster, N: 64, NewCore: sfCoreFactory(16, 6), Loss: 0.02, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	nodes := sub.(*runtime.Cluster).Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%len(nodes)].Tick()
	}
}

// BenchmarkClusterTick measures one full synchronous round (n initiate
// steps plus all triggered receive steps and loss decisions), reporting
// ns/node-tick so runs at different n compare directly. Every variant is
// built by runtime.New and driven through the Substrate interface — the
// backend appears only in the construction config:
//
//   - pernode: the goroutine-per-node path (per-node locks, handler
//     dispatch, per-message allocations) at its practical sizes.
//   - sharded: the sharded tick engine at 10k, 100k, and (full mode only;
//     skipped under -short) 1M nodes — the S&F baseline rows.
//   - sharded/<proto>: the same engine under each of the other batch-core
//     protocols at 10k and 100k, the per-protocol rows of
//     BENCH_cluster.json schema 2.
//
// scripts/bench.sh runs this family and records BENCH_cluster.json.
func BenchmarkClusterTick(b *testing.B) {
	tickRound := func(engine runtime.EngineKind, factory protocol.CoreFactory, n, warm int) func(*testing.B) {
		return func(b *testing.B) {
			sub, err := runtime.New(runtime.Config{
				Engine: engine, N: n, NewCore: factory, Loss: 0.02, Seed: 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Close()
			// Warm up the arenas so the timed region measures the
			// zero-allocation steady state, not one-time buffer growth.
			for i := 0; i < warm; i++ {
				sub.TickRound()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub.TickRound()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-tick")
		}
	}
	pernode := func(n int) func(*testing.B) {
		return tickRound(runtime.EngineCluster, sfCoreFactory(16, 6), n, 0)
	}
	sharded := func(factory protocol.CoreFactory, n int) func(*testing.B) {
		// Arena capacity creeps up for hundreds of rounds at n>=100k (the
		// in-flight message high-water mark drifts under loss), so the
		// larger sizes need a longer warm-up before allocs/op reads 0.
		warm := 150
		if n > 10_000 {
			warm = 500
		}
		return tickRound(runtime.EngineSharded, factory, n, warm)
	}
	b.Run("pernode/n=500", pernode(500))
	b.Run("pernode/n=10k", pernode(10_000))
	b.Run("sharded/n=10k", sharded(sfCoreFactory(16, 6), 10_000))
	b.Run("sharded/n=100k", sharded(sfCoreFactory(16, 6), 100_000))
	b.Run("sharded/n=1M", func(b *testing.B) {
		if testing.Short() {
			b.Skip("1M-node round skipped under -short")
		}
		sharded(sfCoreFactory(16, 6), 1_000_000)(b)
	})
	for _, p := range benchProtocols() {
		b.Run("sharded/"+p.name+"/n=10k", sharded(p.factory, 10_000))
		b.Run("sharded/"+p.name+"/n=100k", sharded(p.factory, 100_000))
	}
}

// BenchmarkGlobalChainBuild measures exact state-space enumeration of the
// n=3 lossy global chain.
func BenchmarkGlobalChainBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := globalmc.Build(globalmc.Params{N: 3, S: 6, DL: 2, Loss: 0.1}, globalmc.Circulant(3, 2)); err != nil {
			b.Fatal(err)
		}
	}
}
