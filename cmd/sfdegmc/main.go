// Command sfdegmc solves the degree Markov chain of Section 6.2 for given
// parameters and prints the stationary degree distributions and moments.
//
// Example:
//
//	sfdegmc -s 40 -dl 18 -loss 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"sendforget/internal/degreemc"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sfdegmc", flag.ContinueOnError)
	s := fs.Int("s", 40, "view size (even >= 6)")
	dl := fs.Int("dl", 18, "duplication threshold (even, <= s-6)")
	lossRate := fs.Float64("loss", 0, "uniform message loss rate")
	sumCap := fs.Int("sumcap", 0, "sum degree cap (0 = paper's 3s)")
	full := fs.Bool("full", false, "print full distributions, not just the bulk")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	res, err := degreemc.Solve(degreemc.Params{S: *s, DL: *dl, Loss: *lossRate, SumCap: *sumCap}, degreemc.SolveOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("states           %d\n", res.Space.Len())
	fmt.Printf("outer iterations %d\n", res.OuterIterations)
	fmt.Printf("outdegree        %.2f ± %.2f\n", res.MeanOut(), res.StdOut())
	fmt.Printf("indegree         %.2f ± %.2f\n", res.MeanIn(), res.StdIn())
	fmt.Printf("dup prob         %.4f (Lemma 6.7 bracket: [%.4f, l+delta])\n", res.DupProb, *lossRate)
	fmt.Printf("del prob         %.4f (Lemma 6.6: dup = l + del = %.4f)\n", res.DelProb, *lossRate+res.DelProb)
	fmt.Println("\noutdegree distribution:")
	printDist(res.OutDist, 2, *full)
	fmt.Println("\nindegree distribution:")
	printDist(res.InDist, 1, *full)
	return 0
}

// printDist prints a pmf, skipping negligible entries unless full is set.
func printDist(dist []float64, stride int, full bool) {
	for deg := 0; deg < len(dist); deg += stride {
		if !full && dist[deg] < 1e-4 {
			continue
		}
		bar := ""
		for i := 0; i < int(dist[deg]*200); i++ {
			bar += "#"
		}
		fmt.Printf("%4d  %.4f  %s\n", deg, dist[deg], bar)
	}
}
