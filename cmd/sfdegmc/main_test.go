package main

import "testing"

func TestRunSmall(t *testing.T) {
	if code := run([]string{"-s", "12", "-dl", "4", "-loss", "0.05"}); code != 0 {
		t.Errorf("small solve exit = %d", code)
	}
}

func TestRunFull(t *testing.T) {
	if code := run([]string{"-s", "12", "-dl", "4", "-full"}); code != 0 {
		t.Errorf("full print exit = %d", code)
	}
}

func TestRunBadParams(t *testing.T) {
	if code := run([]string{"-s", "7"}); code != 1 {
		t.Errorf("odd s exit = %d, want 1", code)
	}
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
