// Command sfexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sfexperiments -list
//	sfexperiments -run fig6.3
//	sfexperiments -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sendforget/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sfexperiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	all := fs.Bool("all", false, "run every experiment")
	ids := fs.String("run", "", "comma-separated experiment ids to run")
	csvDir := fs.String("csv", "", "also write each result table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return 0
	}
	var toRun []string
	switch {
	case *all:
		toRun = experiments.IDs()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			if id = strings.TrimSpace(id); id != "" {
				toRun = append(toRun, id)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -list, -all, or -run id[,id...]")
		return 2
	}
	failed := 0
	for _, id := range toRun {
		start := time.Now()
		report, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(report)
		if *csvDir != "" {
			if err := report.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				failed++
				continue
			}
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed > 0 {
		return 1
	}
	return 0
}
