// Command sfexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sfexperiments -list
//	sfexperiments -run fig6.3
//	sfexperiments -all
//	sfexperiments -all -parallel 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sendforget/internal/experiments"
	sfruntime "sendforget/internal/runtime"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// outcome is one experiment's finished result, carried from its worker to
// the ordered printer.
type outcome struct {
	report  *experiments.Report
	err     error
	elapsed time.Duration
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfexperiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiment ids and exit")
	all := fs.Bool("all", false, "run every experiment")
	ids := fs.String("run", "", "comma-separated experiment ids to run")
	csvDir := fs.String("csv", "", "also write each result table as CSV into this directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "number of experiments to run concurrently")
	engine := fs.String("engine", string(sfruntime.EngineCluster),
		"execution backend for substrate-driven experiments: seq, cluster, or sharded")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	kind, err := sfruntime.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	experiments.SetEngine(kind)
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	var toRun []string
	switch {
	case *all:
		toRun = experiments.IDs()
	case *ids != "":
		for _, id := range strings.Split(*ids, ",") {
			if id = strings.TrimSpace(id); id != "" {
				toRun = append(toRun, id)
			}
		}
	default:
		fmt.Fprintln(stderr, "nothing to do: pass -list, -all, or -run id[,id...]")
		return 2
	}
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(toRun) {
		workers = len(toRun)
	}

	// Experiments run on a bounded worker pool; the printer drains the
	// channels in input order, so stdout is identical for every worker
	// count. Each experiment is internally deterministic (fixed seeds), so
	// the concurrency changes only the wall clock. Timing lines go to
	// stderr: they are scheduler-dependent by nature.
	done := make([]chan outcome, len(toRun))
	for i := range done {
		done[i] = make(chan outcome, 1)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range toRun {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now() //lint:allow detrand wall-clock progress timing, reported to stderr only
			report, err := experiments.Run(id)
			//lint:allow detrand elapsed wall time never feeds protocol state
			done[i] <- outcome{report: report, err: err, elapsed: time.Since(start)}
		}(i, id)
	}

	failed := 0
	for i, id := range toRun {
		oc := <-done[i]
		if oc.err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", id, oc.err)
			failed++
			continue
		}
		fmt.Fprintln(stdout, oc.report)
		if *csvDir != "" {
			if err := oc.report.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", id, err)
				failed++
				continue
			}
		}
		fmt.Fprintf(stderr, "(%s completed in %.1fs)\n", id, oc.elapsed.Seconds())
	}
	wg.Wait()
	if failed > 0 {
		return 1
	}
	return 0
}
