package main

import "testing"

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunSingle(t *testing.T) {
	if code := run([]string{"-run", "tab7.4"}); code != 0 {
		t.Errorf("-run tab7.4 exit = %d", code)
	}
}

func TestRunMultiple(t *testing.T) {
	if code := run([]string{"-run", "tab7.4, fig6.2"}); code != 0 {
		t.Errorf("multi-run exit = %d", code)
	}
}

func TestRunUnknown(t *testing.T) {
	if code := run([]string{"-run", "no-such"}); code != 1 {
		t.Errorf("unknown id exit = %d, want 1", code)
	}
}

func TestRunNothing(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}
