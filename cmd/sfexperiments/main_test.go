package main

import (
	"bytes"
	"io"
	"testing"
)

// runQuiet invokes run with throwaway writers; these tests assert exit codes.
func runQuiet(args []string) int {
	return run(args, io.Discard, io.Discard)
}

func TestRunList(t *testing.T) {
	if code := runQuiet([]string{"-list"}); code != 0 {
		t.Errorf("-list exit = %d", code)
	}
}

func TestRunSingle(t *testing.T) {
	if code := runQuiet([]string{"-run", "tab7.4"}); code != 0 {
		t.Errorf("-run tab7.4 exit = %d", code)
	}
}

func TestRunMultiple(t *testing.T) {
	if code := runQuiet([]string{"-run", "tab7.4, fig6.2"}); code != 0 {
		t.Errorf("multi-run exit = %d", code)
	}
}

func TestRunUnknown(t *testing.T) {
	if code := runQuiet([]string{"-run", "no-such"}); code != 1 {
		t.Errorf("unknown id exit = %d, want 1", code)
	}
}

func TestRunNothing(t *testing.T) {
	if code := runQuiet(nil); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := runQuiet([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

// TestRunParallelDeterministicStdout runs the same experiment set with one
// worker and with several and requires byte-identical stdout: reports stream
// in input order regardless of which goroutine finishes first (timing lines
// go to stderr, which is excluded).
func TestRunParallelDeterministicStdout(t *testing.T) {
	args := []string{"-run", "fig6.2,tab7.4,lem6.6"}
	capture := func(parallel string) string {
		var out bytes.Buffer
		if code := run(append(args, "-parallel", parallel), &out, io.Discard); code != 0 {
			t.Fatalf("-parallel %s exit = %d", parallel, code)
		}
		return out.String()
	}
	seq := capture("1")
	par := capture("3")
	if seq != par {
		t.Errorf("stdout differs between -parallel 1 and -parallel 3:\n--- parallel=1 ---\n%s\n--- parallel=3 ---\n%s", seq, par)
	}
	if seq == "" {
		t.Error("no stdout produced")
	}
}
