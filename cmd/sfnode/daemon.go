package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"sendforget/internal/mgmt"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
)

// localConfig parameterizes the in-process -local mode.
type localConfig struct {
	n             int
	engine, proto string
	s, dl         int
	loss          float64
	seed          int64
	period        time.Duration
	report        time.Duration
	duration      time.Duration
	mgmt          string
}

// runLocal drives an in-process cluster through the Substrate interface: the
// backend choice is construction-only (runtime.New); everything after it —
// ticking rounds, snapshots, traffic — is substrate-neutral. All substrate
// access goes through the mgmt.Local backend, whose lock serializes the tick
// loop against management-API churn and config reloads on every engine.
//
// Every exit path funnels through one shutdown routine: drain in-flight
// messages, report final overlay health, check the view invariants. The
// signal path gets the same treatment as the -duration deadline — a Ctrl-C'd
// run must leave the same audited ledger behind as a timed one.
func runLocal(ctx context.Context, cfg localConfig, log *slog.Logger, stderr io.Writer) int {
	kind, err := runtime.ParseEngine(cfg.engine)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	seed := cfg.seed
	if seed == 0 {
		//lint:allow detrand demo runs want fresh entropy; the seed is logged for replay
		if seed, err = rng.AutoSeed(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	sub, err := runtime.New(runtime.Config{
		Engine: kind,
		N:      cfg.n,
		NewCore: func() (protocol.StepCore, error) {
			return newCore(cfg.proto, cfg.s, cfg.dl)
		},
		Loss:   cfg.loss,
		Seed:   seed,
		Period: cfg.period,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer sub.Close()

	// periodCh carries live -period reloads from POST /config into the tick
	// loop; latest-wins so a burst of reloads never blocks a handler.
	periodCh := make(chan time.Duration, 1)
	backend, err := mgmt.NewLocal(mgmt.LocalOptions{
		Sub: sub, Protocol: cfg.proto, Engine: string(kind),
		N: cfg.n, S: cfg.s, DL: cfg.dl,
		Seed: seed, Period: cfg.period, Loss: cfg.loss,
		OnPeriod: func(d time.Duration) {
			for {
				select {
				case periodCh <- d:
					return
				default:
					select {
					case <-periodCh:
					default:
					}
				}
			}
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	log.Info("sfnode: local cluster",
		"engine", string(kind), "protocol", cfg.proto, "n", cfg.n,
		"s", cfg.s, "dl", cfg.dl, "loss", cfg.loss, "period", cfg.period, "seed", seed)

	var shutdownReq <-chan struct{} = neverClosed
	if cfg.mgmt != "" {
		srv, err := mgmt.New(mgmt.Options{Addr: cfg.mgmt, Backend: backend, Log: log})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := srv.Start(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer stopMgmt(srv, log)
		shutdownReq = srv.ShutdownRequested()
		mgmtStarted(srv.Addr())
	}

	tick := time.NewTicker(cfg.period)
	defer tick.Stop()
	rep := time.NewTicker(cfg.report)
	defer rep.Stop()
	var deadline <-chan time.Time
	if cfg.duration > 0 {
		deadline = time.After(cfg.duration)
	}
	status := func() {
		g := backend.Snapshot()
		tr := backend.Traffic()
		edges := 0.0
		if g.N() > 0 {
			edges = float64(g.NumEdges()) / float64(g.N())
		}
		log.Info("sfnode: overlay status",
			"round", backend.Rounds(), "components", g.ComponentCount(),
			"edges_per_node", fmt.Sprintf("%.2f", edges),
			"sends", tr.Sends, "losses", tr.Losses, "delivered", tr.Deliveries,
			"pending", backend.Pending())
	}
	// shutdown is the single exit routine shared by every way out of the
	// loop (signal, deadline, management-API drain): settle in-flight
	// messages, report the final ledger, audit the invariants.
	shutdown := func(why string) int {
		log.Info("sfnode: shutting down", "reason", why)
		if err := backend.Drain(); err != nil {
			status()
			fmt.Fprintln(stderr, err)
			return 1
		}
		status()
		return 0
	}
	for {
		select {
		case <-tick.C:
			backend.Tick()
		case d := <-periodCh:
			tick.Reset(d)
		case <-rep.C:
			status()
		case <-ctx.Done():
			return shutdown("signal (leaving needs no protocol action)")
		case <-shutdownReq:
			// The /leave handler already drained and audited; running the
			// shared routine again is idempotent and keeps one exit path.
			return shutdown("management API leave")
		case <-deadline:
			return shutdown("duration elapsed")
		}
	}
}
