// Command sfnode runs a gossip membership daemon. In its primary mode it is
// a single real node over UDP — the protocols need nothing but
// fire-and-forget datagrams (plus, for the request/reply baselines,
// fire-and-forget replies), the paper's practicality claim. The -protocol
// flag selects the same protocol set the sfsim simulator offers; all of them
// run on the same runtime node.
//
// Start a small S&F cluster on localhost:
//
//	sfnode -id 0 -listen 127.0.0.1:7000 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002 -seeds 1,2
//	sfnode -id 1 -listen 127.0.0.1:7001 -peers 0=127.0.0.1:7000,2=127.0.0.1:7002 -seeds 0,2
//	sfnode -id 2 -listen 127.0.0.1:7002 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001 -seeds 0,1
//
// Each node logs its view once per report interval. Stop with Ctrl-C
// (SIGINT/SIGTERM trigger a graceful teardown); leaving needs no protocol
// action (Section 5).
//
// -mgmt addr serves a management API and Prometheus /metrics next to the
// gossip loop: GET /health, /view, /config, /metrics; POST /join, /leave,
// /config (live reload). A bare POST /leave drains the daemon and shuts it
// down. See README.md ("Management API").
//
// Alternatively, -local n runs an in-process n-node cluster on the selected
// execution backend (-engine seq|cluster|sharded), ticking one synchronous
// round per -period and reporting overlay health — a one-command demo of any
// protocol on any substrate, no sockets involved. The same management API
// attaches to it, managing the whole cluster instead of one node:
//
//	sfnode -local 1000 -engine sharded -protocol shuffle -loss 0.02 -mgmt 127.0.0.1:8700
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sendforget/internal/mgmt"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// mgmtStarted is notified with the bound management address once the server
// is listening. Tests hook it to discover a :0-assigned port.
var mgmtStarted = func(addr string) {}

// newCore builds the step core for the named protocol.
func newCore(name string, s, dl int) (protocol.StepCore, error) {
	switch name {
	case "sf":
		return sendforget.NewCore(s, dl)
	case "sfopt":
		return sfopt.NewCore(sfopt.Options{S: s, DL: dl, ReplaceWhenFull: true, Undelete: true})
	case "shuffle":
		return shuffle.NewCore(s)
	case "flipper":
		return flipper.NewCore(s)
	case "pushpull":
		return pushpull.NewCore(s)
	default:
		return nil, fmt.Errorf("sfnode: unknown protocol %q (want sf, sfopt, shuffle, flipper, or pushpull)", name)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.Int("id", 0, "this node's id")
	listen := fs.String("listen", "127.0.0.1:0", "UDP listen address")
	peersFlag := fs.String("peers", "", "peer directory: id=host:port,id=host:port,...")
	seedsFlag := fs.String("seeds", "", "comma-separated ids for the initial view (at least max(2, dl))")
	protoName := fs.String("protocol", "sf", "protocol: sf, sfopt, shuffle, flipper, or pushpull")
	s := fs.Int("s", 8, "view size (even >= 6 for sf/sfopt)")
	dl := fs.Int("dl", 2, "duplication threshold (even, <= s-6; sf/sfopt only)")
	period := fs.Duration("period", 250*time.Millisecond, "gossip period")
	report := fs.Duration("report", 2*time.Second, "view report interval")
	duration := fs.Duration("duration", 0, "stop after this long (0 = run until signal)")
	seedFlag := fs.Int64("seed", 0, "node RNG seed (0 draws one from OS entropy)")
	advertise := fs.String("advertise", "", "address peers should learn for this node (default: the bound listen address)")
	local := fs.Int("local", 0, "run an in-process cluster of this many nodes instead of a UDP node")
	engineFlag := fs.String("engine", string(runtime.EngineCluster), "execution backend for -local: seq, cluster, or sharded")
	lossFlag := fs.Float64("loss", 0, "simulated uniform loss rate for -local mode")
	mgmtAddr := fs.String("mgmt", "", "serve the management API + /metrics on this address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := slog.New(slog.NewTextHandler(stdout, nil))
	if *local > 0 {
		return runLocal(ctx, localConfig{
			n: *local, engine: *engineFlag, proto: *protoName, s: *s, dl: *dl,
			loss: *lossFlag, seed: *seedFlag,
			period: *period, report: *report, duration: *duration,
			mgmt: *mgmtAddr,
		}, log, stderr)
	}
	// Simulation-only knobs are a config error on a real node, not a
	// silent no-op: a UDP node's loss comes from the network, and there is
	// no engine to pick.
	if err := rejectLocalOnlyFlags(fs); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	seeds, err := parseSeeds(*seedsFlag, peer.ID(*id))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// The endpoint dispatches into the node. Peers may already list this
	// node in their seed views and gossip at it before construction
	// finishes, so the handoff is atomic; early datagrams are dropped
	// (S&F tolerates loss by design).
	var node atomic.Pointer[runtime.Node]
	ep, err := transport.NewEndpoint(*listen, func(m protocol.Message) {
		if n := node.Load(); n != nil {
			n.HandleMessage(m)
		}
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer ep.Close()
	adv := *advertise
	if adv == "" {
		adv = ep.Addr().String()
	}
	if err := ep.EnableAddressLearning(peer.ID(*id), adv); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := addPeers(ep, *peersFlag); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	core, err := newCore(*protoName, *s, *dl)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// A production node wants unpredictable partner choices per process;
	// a fixed -seed reproduces a run exactly (pair it with -period for a
	// deterministic single-node trace). Either way the seed is logged so
	// any run can be replayed.
	seed := *seedFlag
	if seed == 0 {
		//lint:allow detrand production nodes want fresh entropy; the seed is logged for replay
		if seed, err = rng.AutoSeed(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	n, err := runtime.NewNode(runtime.NodeConfig{
		ID: peer.ID(*id), Core: core, Period: *period, Seed: seed,
	}, seeds, ep)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	node.Store(n)
	log.Info("sfnode: listening",
		"id", *id, "protocol", core.Name(), "addr", ep.Addr().String(),
		"s", *s, "dl", *dl, "period", *period, "seed", seed)
	n.Start()
	defer n.Stop()

	var srv *mgmt.Server
	var shutdownReq <-chan struct{} = neverClosed
	if *mgmtAddr != "" {
		backend, err := mgmt.NewUDPNode(mgmt.UDPNodeOptions{
			Node: n, Endpoint: ep,
			Protocol: *protoName, S: *s, DL: *dl, Seed: seed,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		srv, err = mgmt.New(mgmt.Options{Addr: *mgmtAddr, Backend: backend, Log: log})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := srv.Start(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer stopMgmt(srv, log)
		shutdownReq = srv.ShutdownRequested()
		mgmtStarted(srv.Addr())
	}

	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	// All exits below share the deferred teardown: stop the gossip loop,
	// shut the management server down, close the endpoint.
	for {
		select {
		case <-ticker.C:
			c := n.Counters()
			log.Info("sfnode: view report",
				"view", n.ViewSnapshot().String(),
				"sends", c.Sends, "recvs", c.Receives, "replies", c.Replies,
				"dups", c.Duplications, "selfloops", c.SelfLoops,
				"peers", ep.KnownPeers(), "learned", ep.LearnedPeers())
		case <-ctx.Done():
			log.Info("sfnode: leaving on signal (no protocol action needed)")
			return 0
		case <-shutdownReq:
			log.Info("sfnode: leaving via management API (no protocol action needed)")
			return 0
		case <-deadline:
			log.Info("sfnode: duration elapsed, leaving")
			return 0
		}
	}
}

// neverClosed stands in for ShutdownRequested when -mgmt is disabled.
var neverClosed = make(chan struct{})

// stopMgmt gives in-flight management requests a short grace period.
func stopMgmt(srv *mgmt.Server, log *slog.Logger) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("sfnode: mgmt shutdown", "err", err)
	}
}

// rejectLocalOnlyFlags errors when a -local-only knob was set explicitly
// without -local.
func rejectLocalOnlyFlags(fs *flag.FlagSet) error {
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "engine", "loss":
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("sfnode: %s only apply to -local mode (a UDP node's loss and engine come from the real network)", strings.Join(bad, ", "))
	}
	return nil
}

// parseSeeds parses the -seeds list for node self. Duplicate ids and self
// itself are configuration errors: a seed view with duplicates skews partner
// choice toward one peer, and a self-seed starts the node with the self-loop
// degeneracy the protocols work to repair.
func parseSeeds(s string, self peer.ID) ([]peer.ID, error) {
	if s == "" {
		return nil, fmt.Errorf("sfnode: -seeds is required")
	}
	var out []peer.ID
	seen := make(map[peer.ID]bool)
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sfnode: bad seed %q: %w", part, err)
		}
		id := peer.ID(v)
		if id == self {
			return nil, fmt.Errorf("sfnode: seed %d is this node's own -id (a node cannot seed its view with itself)", v)
		}
		if seen[id] {
			return nil, fmt.Errorf("sfnode: duplicate seed %d (each seed id may appear once)", v)
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}

func addPeers(ep *transport.Endpoint, spec string) error {
	if spec == "" {
		return fmt.Errorf("sfnode: -peers is required")
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("sfnode: bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return fmt.Errorf("sfnode: bad peer id %q: %w", kv[0], err)
		}
		if err := ep.AddPeer(peer.ID(id), kv[1]); err != nil {
			return err
		}
	}
	return nil
}
