// Command sfnode runs a single real gossip membership node over UDP — the
// protocols need nothing but fire-and-forget datagrams (plus, for the
// request/reply baselines, fire-and-forget replies), the paper's
// practicality claim. The -protocol flag selects the same protocol set the
// sfsim simulator offers; all of them run on the same runtime node.
//
// Start a small S&F cluster on localhost:
//
//	sfnode -id 0 -listen 127.0.0.1:7000 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002 -seeds 1,2
//	sfnode -id 1 -listen 127.0.0.1:7001 -peers 0=127.0.0.1:7000,2=127.0.0.1:7002 -seeds 0,2
//	sfnode -id 2 -listen 127.0.0.1:7002 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001 -seeds 0,1
//
// Each node prints its view once per report interval. Stop with Ctrl-C;
// leaving needs no protocol action (Section 5).
//
// Alternatively, -local n runs an in-process n-node cluster on the selected
// execution backend (-engine seq|cluster|sharded), ticking one synchronous
// round per -period and reporting overlay health — a one-command demo of any
// protocol on any substrate, no sockets involved:
//
//	sfnode -local 1000 -engine sharded -protocol shuffle -loss 0.02 -duration 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// newCore builds the step core for the named protocol.
func newCore(name string, s, dl int) (protocol.StepCore, error) {
	switch name {
	case "sf":
		return sendforget.NewCore(s, dl)
	case "sfopt":
		return sfopt.NewCore(sfopt.Options{S: s, DL: dl, ReplaceWhenFull: true, Undelete: true})
	case "shuffle":
		return shuffle.NewCore(s)
	case "flipper":
		return flipper.NewCore(s)
	case "pushpull":
		return pushpull.NewCore(s)
	default:
		return nil, fmt.Errorf("sfnode: unknown protocol %q (want sf, sfopt, shuffle, flipper, or pushpull)", name)
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sfnode", flag.ContinueOnError)
	id := fs.Int("id", 0, "this node's id")
	listen := fs.String("listen", "127.0.0.1:0", "UDP listen address")
	peersFlag := fs.String("peers", "", "peer directory: id=host:port,id=host:port,...")
	seedsFlag := fs.String("seeds", "", "comma-separated ids for the initial view (at least max(2, dl))")
	protoName := fs.String("protocol", "sf", "protocol: sf, sfopt, shuffle, flipper, or pushpull")
	s := fs.Int("s", 8, "view size (even >= 6 for sf/sfopt)")
	dl := fs.Int("dl", 2, "duplication threshold (even, <= s-6; sf/sfopt only)")
	period := fs.Duration("period", 250*time.Millisecond, "gossip period")
	report := fs.Duration("report", 2*time.Second, "view report interval")
	duration := fs.Duration("duration", 0, "stop after this long (0 = run until signal)")
	seedFlag := fs.Int64("seed", 0, "node RNG seed (0 draws one from OS entropy)")
	advertise := fs.String("advertise", "", "address peers should learn for this node (default: the bound listen address)")
	local := fs.Int("local", 0, "run an in-process cluster of this many nodes instead of a UDP node")
	engineFlag := fs.String("engine", string(runtime.EngineCluster), "execution backend for -local: seq, cluster, or sharded")
	lossFlag := fs.Float64("loss", 0, "simulated uniform loss rate for -local mode")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *local > 0 {
		return runLocal(localConfig{
			n: *local, engine: *engineFlag, proto: *protoName, s: *s, dl: *dl,
			loss: *lossFlag, seed: *seedFlag,
			period: *period, report: *report, duration: *duration,
		})
	}

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// The endpoint dispatches into the node. Peers may already list this
	// node in their seed views and gossip at it before construction
	// finishes, so the handoff is atomic; early datagrams are dropped
	// (S&F tolerates loss by design).
	var node atomic.Pointer[runtime.Node]
	ep, err := transport.NewEndpoint(*listen, func(m protocol.Message) {
		if n := node.Load(); n != nil {
			n.HandleMessage(m)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer ep.Close()
	adv := *advertise
	if adv == "" {
		adv = ep.Addr().String()
	}
	if err := ep.EnableAddressLearning(peer.ID(*id), adv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := addPeers(ep, *peersFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	core, err := newCore(*protoName, *s, *dl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// A production node wants unpredictable partner choices per process;
	// a fixed -seed reproduces a run exactly (pair it with -period for a
	// deterministic single-node trace). Either way the seed is printed so
	// any run can be replayed.
	seed := *seedFlag
	if seed == 0 {
		//lint:allow detrand production nodes want fresh entropy; the seed is printed for replay
		if seed, err = rng.AutoSeed(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	n, err := runtime.NewNode(runtime.NodeConfig{
		ID: peer.ID(*id), Core: core, Period: *period, Seed: seed,
	}, seeds, ep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	node.Store(n)
	fmt.Printf("node n%d [%s] listening on %s (s=%d dL=%d period=%s seed=%d)\n", *id, core.Name(), ep.Addr(), *s, *dl, *period, seed)
	n.Start()
	defer n.Stop()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	for {
		select {
		case <-ticker.C:
			c := n.Counters()
			fmt.Printf("view=%s sends=%d recvs=%d replies=%d dups=%d selfloops=%d peers=%d(+%d learned)\n",
				n.ViewSnapshot(), c.Sends, c.Receives, c.Replies, c.Duplications, c.SelfLoops,
				ep.KnownPeers(), ep.LearnedPeers())
		case <-sig:
			fmt.Println("leaving (no protocol action needed)")
			return 0
		case <-deadline:
			return 0
		}
	}
}

// localConfig parameterizes the in-process -local mode.
type localConfig struct {
	n             int
	engine, proto string
	s, dl         int
	loss          float64
	seed          int64
	period        time.Duration
	report        time.Duration
	duration      time.Duration
}

// runLocal drives an in-process cluster through the Substrate interface: the
// backend choice is construction-only (runtime.New); everything after it —
// ticking rounds, snapshots, traffic — is substrate-neutral.
func runLocal(cfg localConfig) int {
	kind, err := runtime.ParseEngine(cfg.engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	seed := cfg.seed
	if seed == 0 {
		//lint:allow detrand demo runs want fresh entropy; the seed is printed for replay
		if seed, err = rng.AutoSeed(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	sub, err := runtime.New(runtime.Config{
		Engine: kind,
		N:      cfg.n,
		NewCore: func() (protocol.StepCore, error) {
			return newCore(cfg.proto, cfg.s, cfg.dl)
		},
		Loss:   cfg.loss,
		Seed:   seed,
		Period: cfg.period,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer sub.Close()
	fmt.Printf("local %s cluster [%s] n=%d (s=%d dL=%d loss=%g period=%s seed=%d)\n",
		kind, cfg.proto, cfg.n, cfg.s, cfg.dl, cfg.loss, cfg.period, seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(cfg.period)
	defer tick.Stop()
	rep := time.NewTicker(cfg.report)
	defer rep.Stop()
	var deadline <-chan time.Time
	if cfg.duration > 0 {
		deadline = time.After(cfg.duration)
	}
	rounds := 0
	status := func() {
		g := sub.Snapshot()
		tr := sub.Traffic()
		edges := 0.0
		if g.N() > 0 {
			edges = float64(g.NumEdges()) / float64(g.N())
		}
		fmt.Printf("round=%d components=%d edges/node=%.2f sends=%d losses=%d delivered=%d pending=%d\n",
			rounds, g.ComponentCount(), edges, tr.Sends, tr.Losses, tr.Deliveries, sub.Pending())
	}
	for {
		select {
		case <-tick.C:
			sub.TickRound()
			rounds++
		case <-rep.C:
			status()
		case <-sig:
			fmt.Println("leaving (no protocol action needed)")
			return 0
		case <-deadline:
			sub.DrainDelayed()
			status()
			if err := sub.CheckInvariants(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			return 0
		}
	}
}

func parseSeeds(s string) ([]peer.ID, error) {
	if s == "" {
		return nil, fmt.Errorf("sfnode: -seeds is required")
	}
	var out []peer.ID
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sfnode: bad seed %q: %w", part, err)
		}
		out = append(out, peer.ID(v))
	}
	return out, nil
}

func addPeers(ep *transport.Endpoint, spec string) error {
	if spec == "" {
		return fmt.Errorf("sfnode: -peers is required")
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("sfnode: bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return fmt.Errorf("sfnode: bad peer id %q: %w", kv[0], err)
		}
		if err := ep.AddPeer(peer.ID(id), kv[1]); err != nil {
			return err
		}
	}
	return nil
}
