package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sendforget/internal/protocol"
	"sendforget/internal/transport"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 3 {
		t.Errorf("parseSeeds = %v", seeds)
	}
	if _, err := parseSeeds("", 0); err == nil {
		t.Error("accepted empty seeds")
	}
	if _, err := parseSeeds("1,x", 0); err == nil {
		t.Error("accepted non-numeric seed")
	}
	if _, err := parseSeeds("1,2,1", 0); err == nil {
		t.Error("accepted duplicate seed")
	}
	if _, err := parseSeeds("1,2", 2); err == nil {
		t.Error("accepted the node's own id as a seed")
	}
}

func TestAddPeers(t *testing.T) {
	ep, err := transport.NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := addPeers(ep, "1=127.0.0.1:9000, 2=127.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	if err := addPeers(ep, ""); err == nil {
		t.Error("accepted empty peers")
	}
	if err := addPeers(ep, "nokv"); err == nil {
		t.Error("accepted malformed entry")
	}
	if err := addPeers(ep, "x=127.0.0.1:9000"); err == nil {
		t.Error("accepted non-numeric id")
	}
	if err := addPeers(ep, "1=bad::addr::x"); err == nil {
		t.Error("accepted bad address")
	}
}

// runInTest invokes run with a background context and discarded output,
// asserting it terminates.
func runInTest(t *testing.T, ctx context.Context, args []string) int {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, io.Discard, io.Discard) }()
	select {
	case code := <-done:
		return code
	case <-time.After(10 * time.Second):
		t.Fatal("run did not terminate")
		return -1
	}
}

func TestRunForDuration(t *testing.T) {
	code := runInTest(t, context.Background(), []string{
		"-id", "0",
		"-listen", "127.0.0.1:0",
		"-peers", "1=127.0.0.1:19999",
		"-seeds", "1,2",
		"-period", "5ms",
		"-report", "20ms",
		"-duration", "80ms",
	})
	if code != 0 {
		t.Errorf("run exit = %d", code)
	}
}

func TestRunBadArgs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-bogus"}},
		{"missing seeds", []string{"-listen", "127.0.0.1:0"}},
		{"missing peers", []string{"-listen", "127.0.0.1:0", "-seeds", "1,2"}},
		{"odd s", []string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-s", "7"}},
		{"unknown protocol", []string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-protocol", "nosuch"}},
		{"duplicate seeds", []string{"-listen", "127.0.0.1:0", "-seeds", "1,1", "-peers", "1=127.0.0.1:19998"}},
		{"self seed", []string{"-id", "2", "-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998"}},
		{"loss without local", []string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-loss", "0.1"}},
		{"engine without local", []string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-engine", "sharded"}},
		{"bad engine with local", []string{"-local", "10", "-engine", "nosuch"}},
	}
	for _, tc := range cases {
		if code := runInTest(t, context.Background(), tc.args); code != 2 {
			t.Errorf("%s: exit = %d, want 2", tc.name, code)
		}
	}
}

// TestRunLocalOnlyFlagDefaults guards the flag matrix from the other side:
// the -engine and -loss *defaults* must not trip the rejection when the
// flags are not set explicitly.
func TestRunLocalOnlyFlagDefaults(t *testing.T) {
	code := runInTest(t, context.Background(), []string{
		"-listen", "127.0.0.1:0",
		"-peers", "1=127.0.0.1:19996",
		"-seeds", "1,2",
		"-period", "5ms", "-report", "50ms", "-duration", "30ms",
	})
	if code != 0 {
		t.Errorf("defaults-only run exit = %d, want 0", code)
	}
}

func TestNewCoreAllProtocols(t *testing.T) {
	for _, name := range []string{"sf", "sfopt", "shuffle", "flipper", "pushpull"} {
		core, err := newCore(name, 8, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if core.ViewSize() != 8 {
			t.Errorf("%s: view size = %d, want 8", name, core.ViewSize())
		}
	}
	if _, err := newCore("nosuch", 8, 2); err == nil {
		t.Error("accepted unknown protocol")
	}
}

func TestRunForDurationShuffle(t *testing.T) {
	// The runtime node runs the request/reply baselines too.
	code := runInTest(t, context.Background(), []string{
		"-id", "0",
		"-protocol", "shuffle",
		"-listen", "127.0.0.1:0",
		"-peers", "1=127.0.0.1:19997",
		"-seeds", "1,2",
		"-period", "5ms",
		"-report", "20ms",
		"-duration", "80ms",
	})
	if code != 0 {
		t.Errorf("run exit = %d", code)
	}
}

// hookMgmtAddr reroutes the mgmtStarted hook to a channel for the duration
// of one test. Tests using it must not run in parallel.
func hookMgmtAddr(t *testing.T) <-chan string {
	t.Helper()
	ch := make(chan string, 1)
	prev := mgmtStarted
	mgmtStarted = func(addr string) { ch <- addr }
	t.Cleanup(func() { mgmtStarted = prev })
	return ch
}

// waitMgmtAddr receives the bound management address or fails the test.
func waitMgmtAddr(t *testing.T, ch <-chan string) string {
	t.Helper()
	select {
	case addr := <-ch:
		return addr
	case <-time.After(5 * time.Second):
		t.Fatal("management server did not start")
		return ""
	}
}

// TestRunGracefulShutdownUDP boots a UDP node with the management API, hits
// /health and /metrics, then cancels the signal context and asserts a clean
// exit — the graceful-shutdown path end to end (run under -race in CI).
func TestRunGracefulShutdownUDP(t *testing.T) {
	addrCh := hookMgmtAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, w: &out}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-id", "0",
			"-listen", "127.0.0.1:0",
			"-peers", "1=127.0.0.1:19995",
			"-seeds", "1,2",
			"-period", "5ms",
			"-report", "1h",
			"-mgmt", "127.0.0.1:0",
		}, w, w)
	}()
	base := "http://" + waitMgmtAddr(t, addrCh)

	resp, err := http.Get(base + "/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Mode   string `json:"mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Mode != "udp" {
		t.Errorf("health = %+v", health)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"sendforget_traffic_sends_total", "sendforget_node_ticks_total", "sendforget_up 1"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down after signal")
	}
	// The mgmt listener is down once run returns.
	if _, err := http.Get(base + "/health"); err == nil {
		t.Error("management server still serving after shutdown")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(out.String(), "leaving on signal") {
		t.Error("shutdown not logged")
	}
}

// TestRunLocalSignalPathDrains is the regression test for the shutdown bug:
// the signal exit used to skip DrainDelayed + CheckInvariants. Both exits now
// share one shutdown routine, so a signalled run must still log the final
// drained status (pending=0) before returning 0.
func TestRunLocalSignalPathDrains(t *testing.T) {
	addrCh := hookMgmtAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, w: &out}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-local", "30",
			"-loss", "0.3",
			"-period", "2ms",
			"-report", "1h",
			"-seed", "7",
			"-mgmt", "127.0.0.1:0",
		}, w, w)
	}()
	base := "http://" + waitMgmtAddr(t, addrCh)

	// Let some rounds happen (0.3 loss + delay queue leaves work in flight),
	// then deliver the "signal".
	for attempt := 0; ; attempt++ {
		resp, err := http.Get(base + "/health")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Rounds int64 `json:"rounds"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Rounds >= 10 {
			break
		}
		if attempt > 1000 {
			t.Fatal("cluster never reached 10 rounds")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runLocal did not shut down after signal")
	}
	mu.Lock()
	logs := out.String()
	mu.Unlock()
	if !strings.Contains(logs, "reason=\"signal") {
		t.Errorf("signal shutdown not logged:\n%s", logs)
	}
	// The drained final status is the proof the signal path ran the shared
	// shutdown routine: pending must have been emptied and reported.
	last := logs[strings.LastIndex(logs, "overlay status"):]
	if !strings.Contains(last, "pending=0") {
		t.Errorf("final status not drained:\n%s", last)
	}
}

// TestRunLocalLeaveViaAPI exercises the other daemon exit: a bare POST
// /leave drains the cluster and shuts the whole process down with code 0.
func TestRunLocalLeaveViaAPI(t *testing.T) {
	addrCh := hookMgmtAddr(t)
	var out bytes.Buffer
	var mu sync.Mutex
	w := lockedWriter{mu: &mu, w: &out}
	done := make(chan int, 1)
	go func() {
		done <- run(context.Background(), []string{
			"-local", "20",
			"-period", "2ms",
			"-report", "1h",
			"-seed", "11",
			"-mgmt", "127.0.0.1:0",
		}, w, w)
	}()
	base := "http://" + waitMgmtAddr(t, addrCh)

	resp, err := http.Post(base+"/leave", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare /leave status = %d", resp.StatusCode)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exit = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after bare /leave")
	}
}

// lockedWriter serializes writes between run's logger and test assertions.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestRejectLocalOnlyFlags covers the -local flag matrix at the unit level.
func TestRejectLocalOnlyFlags(t *testing.T) {
	matrix := []struct {
		args    []string
		wantErr bool
	}{
		{[]string{}, false},
		{[]string{"-loss", "0.5"}, true},
		{[]string{"-engine", "seq"}, true},
		{[]string{"-loss", "0.5", "-engine", "seq"}, true},
		{[]string{"-s", "10"}, false},
	}
	for _, tc := range matrix {
		fs := flag.NewFlagSet("sfnode-test", flag.ContinueOnError)
		fs.Float64("loss", 0, "")
		fs.String("engine", "cluster", "")
		fs.Int("s", 8, "")
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		err := rejectLocalOnlyFlags(fs)
		if (err != nil) != tc.wantErr {
			t.Errorf("rejectLocalOnlyFlags(%v) err = %v, wantErr = %v", tc.args, err, tc.wantErr)
		}
	}
}
