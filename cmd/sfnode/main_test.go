package main

import (
	"testing"
	"time"

	"sendforget/internal/protocol"
	"sendforget/internal/transport"
)

func TestParseSeeds(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 || seeds[0] != 1 || seeds[2] != 3 {
		t.Errorf("parseSeeds = %v", seeds)
	}
	if _, err := parseSeeds(""); err == nil {
		t.Error("accepted empty seeds")
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Error("accepted non-numeric seed")
	}
}

func TestAddPeers(t *testing.T) {
	ep, err := transport.NewEndpoint("127.0.0.1:0", func(protocol.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := addPeers(ep, "1=127.0.0.1:9000, 2=127.0.0.1:9001"); err != nil {
		t.Fatal(err)
	}
	if err := addPeers(ep, ""); err == nil {
		t.Error("accepted empty peers")
	}
	if err := addPeers(ep, "nokv"); err == nil {
		t.Error("accepted malformed entry")
	}
	if err := addPeers(ep, "x=127.0.0.1:9000"); err == nil {
		t.Error("accepted non-numeric id")
	}
	if err := addPeers(ep, "1=bad::addr::x"); err == nil {
		t.Error("accepted bad address")
	}
}

func TestRunForDuration(t *testing.T) {
	args := []string{
		"-id", "0",
		"-listen", "127.0.0.1:0",
		"-peers", "1=127.0.0.1:19999",
		"-seeds", "1,1",
		"-period", "5ms",
		"-report", "20ms",
		"-duration", "80ms",
	}
	done := make(chan int, 1)
	go func() { done <- run(args) }()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exit = %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not terminate")
	}
}

func TestRunBadArgs(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-listen", "127.0.0.1:0"}); code != 2 {
		t.Errorf("missing seeds exit = %d, want 2", code)
	}
	if code := run([]string{"-listen", "127.0.0.1:0", "-seeds", "1,2"}); code != 2 {
		t.Errorf("missing peers exit = %d, want 2", code)
	}
	if code := run([]string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-s", "7"}); code != 2 {
		t.Errorf("odd s exit = %d, want 2", code)
	}
	if code := run([]string{"-listen", "127.0.0.1:0", "-seeds", "1,2", "-peers", "1=127.0.0.1:19998", "-protocol", "nosuch"}); code != 2 {
		t.Errorf("unknown protocol exit = %d, want 2", code)
	}
}

func TestNewCoreAllProtocols(t *testing.T) {
	for _, name := range []string{"sf", "sfopt", "shuffle", "flipper", "pushpull"} {
		core, err := newCore(name, 8, 2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if core.ViewSize() != 8 {
			t.Errorf("%s: view size = %d, want 8", name, core.ViewSize())
		}
	}
	if _, err := newCore("nosuch", 8, 2); err == nil {
		t.Error("accepted unknown protocol")
	}
}

func TestRunForDurationShuffle(t *testing.T) {
	// The runtime node runs the request/reply baselines too.
	args := []string{
		"-id", "0",
		"-protocol", "shuffle",
		"-listen", "127.0.0.1:0",
		"-peers", "1=127.0.0.1:19997",
		"-seeds", "1,1",
		"-period", "5ms",
		"-report", "20ms",
		"-duration", "80ms",
	}
	done := make(chan int, 1)
	go func() { done <- run(args) }()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("run exit = %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not terminate")
	}
}
