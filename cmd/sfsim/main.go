// Command sfsim runs a single membership simulation and prints the
// property metrics of Section 2.
//
// Example:
//
//	sfsim -protocol sf -n 500 -s 40 -dl 18 -loss 0.05 -rounds 300
package main

import (
	"flag"
	"fmt"
	"os"

	"sendforget/internal/engine"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sfsim", flag.ContinueOnError)
	protoName := fs.String("protocol", "sf", "protocol: sf, shuffle, flipper, or pushpull")
	n := fs.Int("n", 500, "number of nodes")
	s := fs.Int("s", 40, "view size (even)")
	dl := fs.Int("dl", 18, "S&F duplication threshold (even)")
	initDeg := fs.Int("init", 0, "initial outdegree (0 = default)")
	lossRate := fs.Float64("loss", 0.01, "uniform message loss rate")
	rounds := fs.Int("rounds", 300, "rounds to run (n actions each)")
	seed := fs.Int64("seed", 1, "random seed")
	deps := fs.Bool("deps", true, "track dependence (S&F only)")
	traceFile := fs.String("trace", "", "write a JSONL action trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var (
		proto protocol.Protocol
		sf    *sendforget.Protocol
		err   error
	)
	switch *protoName {
	case "sf":
		sf, err = sendforget.New(sendforget.Config{
			N: *n, S: *s, DL: *dl, InitDegree: *initDeg, TrackDependence: *deps,
		})
		proto = sf
	case "shuffle":
		proto, err = shuffle.New(shuffle.Config{N: *n, S: *s, InitDegree: *initDeg})
	case "flipper":
		proto, err = flipper.New(flipper.Config{N: *n, S: *s, Degree: *initDeg})
	case "pushpull":
		proto, err = pushpull.New(pushpull.Config{N: *n, S: *s, InitDegree: *initDeg})
	default:
		err = fmt.Errorf("unknown protocol %q", *protoName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	lm, err := loss.NewUniform(*lossRate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	e, err := engine.New(proto, lm, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		rec := trace.NewRecorder(f)
		rec.Attach(e)
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		}()
	}
	e.Run(*rounds)
	printSummary(e, proto, sf, *n)
	return 0
}

func printSummary(e *engine.Engine, proto protocol.Protocol, sf *sendforget.Protocol, n int) {
	g := e.Snapshot()
	deg := metrics.Degrees(g, nil)
	c := e.Counters()
	fmt.Printf("protocol        %s\n", proto.Name())
	fmt.Printf("steps           %d (sends %d, losses %d, deliveries %d)\n", c.Steps, c.Sends, c.Losses, c.Deliveries)
	fmt.Printf("empirical loss  %.4f\n", c.LossRate())
	fmt.Printf("edges           %d (%.2f per node)\n", g.NumEdges(), float64(g.NumEdges())/float64(n))
	fmt.Printf("outdegree       %.2f (var %.2f)\n", deg.MeanOut, deg.VarOut)
	fmt.Printf("indegree        %.2f (var %.2f, min %d, max %d)\n", deg.MeanIn, deg.VarIn, deg.MinIn, deg.MaxIn)
	fmt.Printf("components      %d (weakly connected: %v)\n", g.ComponentCount(), g.WeaklyConnected())
	printDependence(g, sf)
}

func printDependence(g *graph.Graph, sf *sendforget.Protocol) {
	sd := metrics.MeasureSpatialDependence(g)
	fmt.Printf("self-edges      %d, same-view duplicates %d (visible dependent fraction %.4f)\n",
		sd.SelfEdges, sd.Duplicates, sd.DependentFraction())
	if sf == nil {
		return
	}
	pc := sf.Counters()
	if pc.Sends > 0 {
		fmt.Printf("dup prob        %.4f, deletion prob %.4f (Lemma 6.6: dup = loss + del)\n",
			float64(pc.Duplications)/float64(pc.Sends), float64(pc.Deletions)/float64(pc.Sends))
	}
	if st := sf.DependenceStats(); st.Entries > 0 {
		fmt.Printf("alpha           %.4f (independent entries, Lemma 7.9)\n", st.Alpha())
	}
}
