package main

import (
	"os"
	"testing"

	"sendforget/internal/trace"
)

func TestRunSF(t *testing.T) {
	args := []string{"-protocol", "sf", "-n", "60", "-s", "12", "-dl", "4", "-loss", "0.05", "-rounds", "50", "-seed", "7"}
	if code := run(args); code != 0 {
		t.Errorf("sf run exit = %d", code)
	}
}

func TestRunShuffle(t *testing.T) {
	args := []string{"-protocol", "shuffle", "-n", "60", "-s", "12", "-rounds", "50"}
	if code := run(args); code != 0 {
		t.Errorf("shuffle run exit = %d", code)
	}
}

func TestRunPushPull(t *testing.T) {
	args := []string{"-protocol", "pushpull", "-n", "60", "-s", "12", "-rounds", "50"}
	if code := run(args); code != 0 {
		t.Errorf("pushpull run exit = %d", code)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if code := run([]string{"-protocol", "raft"}); code != 2 {
		t.Errorf("unknown protocol exit = %d, want 2", code)
	}
}

func TestRunBadParams(t *testing.T) {
	if code := run([]string{"-protocol", "sf", "-s", "7"}); code != 2 {
		t.Errorf("odd view size exit = %d, want 2", code)
	}
	if code := run([]string{"-loss", "1.5"}); code != 2 {
		t.Errorf("bad loss exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.jsonl"
	args := []string{"-n", "40", "-s", "12", "-dl", "4", "-rounds", "20", "-trace", path}
	if code := run(args); code != 0 {
		t.Fatalf("traced run exit = %d", code)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 800 {
		t.Errorf("trace has %d records, want 800", len(records))
	}
}

func TestRunTraceBadPath(t *testing.T) {
	if code := run([]string{"-rounds", "1", "-trace", "/no/such/dir/x.jsonl"}); code != 2 {
		t.Errorf("bad trace path exit = %d, want 2", code)
	}
}

func TestRunFlipper(t *testing.T) {
	args := []string{"-protocol", "flipper", "-n", "60", "-s", "12", "-rounds", "50"}
	if code := run(args); code != 0 {
		t.Errorf("flipper run exit = %d", code)
	}
}
