// Command sfvet runs the repository's static-analysis suite — the fourteen
// invariant checkers in internal/analyzers — over the named package
// patterns and prints every diagnostic in file:line:col form. It is the
// multichecker CI and the Makefile `vet` target invoke; both run
//
//	go run ./cmd/sfvet ./...
//
// so contributors see exactly the diagnostics CI enforces. Exit status is
// 0 when clean, 1 when any diagnostic fired, 2 on usage or load errors.
// A load failure caused by missing compiled export data (a stale build
// cache, not broken source) is reported distinctly, with the `go build
// ./...` remedy, so CI logs point at the cache rather than the code.
//
// Packages are analyzed in parallel (the export data, call graph, and
// program-wide fixpoints are built once and shared); diagnostic order is
// deterministic regardless of -parallel.
//
// Flags:
//
//	-list             print the analyzers and their one-line docs, then exit
//	-only name[,name] run only the named analyzers
//	-json             print diagnostics as a JSON array on stdout
//	-github           print GitHub Actions ::error workflow annotations
//	-unusedallow      also report //lint:allow directives that suppressed
//	                  nothing this run (stale escape hatches); warnings only,
//	                  the exit status is unchanged. Conflicts with -only,
//	                  since staleness is meaningful only for a full-suite run.
//	-parallel n       analyze up to n packages concurrently (default GOMAXPROCS)
//
// Suppression is per line in the source, not per invocation: a reviewed
// exception carries a `//lint:allow <analyzer> <reason>` comment (see
// internal/analyzers/framework).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"sendforget/internal/analyzers"
	"sendforget/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire shape: one object per diagnostic, stable
// field names so CI tooling can consume it without parsing the human form.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "print diagnostics as a JSON array on stdout")
	github := fs.Bool("github", false, "print GitHub Actions ::error annotations")
	unusedAllow := fs.Bool("unusedallow", false, "also report //lint:allow directives that suppressed nothing (warnings; exit status unchanged)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *unusedAllow && *only != "" {
		fmt.Fprintln(stderr, "sfvet: -unusedallow conflicts with -only: a directive for an analyzer that did not run always looks stale")
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(suite))
		valid := make([]string, 0, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		sort.Strings(valid)
		var selected []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "sfvet: unknown analyzer %q; valid analyzers: %s\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			selected = append(selected, a)
		}
		suite = selected
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := framework.NewLoader("")
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return failLoad(err, stderr)
	}
	prog := framework.NewProgram(pkgs)
	diags, err := prog.AnalyzeAll(suite, *parallel)
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	switch {
	case *asJSON:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "sfvet: %v\n", err)
			return 2
		}
	case *github:
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=sfvet/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *unusedAllow {
		warnOut := stdout
		if *asJSON {
			warnOut = stderr // keep stdout a pure JSON array
		}
		reportUnusedAllows(prog.UnusedAllows(), *github, warnOut, stderr)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sfvet: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// failLoad prints a package-load failure and returns the usage/load exit
// status. A failure rooted in missing export data gets the distinct message
// the CI step and `make vet` rely on: the build cache is stale, not the
// source, and `go build ./...` repairs it.
func failLoad(err error, stderr io.Writer) int {
	if errors.Is(err, framework.ErrExportData) {
		fmt.Fprintln(stderr, "sfvet: cannot load compiled export data (stale or missing build cache, not a source error)")
		fmt.Fprintln(stderr, "sfvet: run `go build ./...` to repopulate the cache, then re-run sfvet")
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "sfvet: %v\n", err)
	return 2
}

// reportUnusedAllows prints one warning per stale //lint:allow directive —
// a grant that suppressed nothing across the full run. Warnings never change
// the exit status: a stale directive means a diagnostic disappeared, which is
// progress to harvest, not a regression to block on. Under -github the
// warnings are ::warning workflow annotations so they surface on the PR
// without failing the check.
func reportUnusedAllows(unused []framework.AllowDirective, github bool, stdout, stderr io.Writer) {
	for _, u := range unused {
		if github {
			fmt.Fprintf(stdout, "::warning file=%s,line=%d,title=sfvet/unusedallow::unused //lint:allow %s directive (%s)\n",
				u.File, u.Line, u.Analyzer, githubEscape(u.Reason))
			continue
		}
		fmt.Fprintf(stdout, "%s:%d: unused //lint:allow %s directive (%s)\n", u.File, u.Line, u.Analyzer, u.Reason)
	}
	if len(unused) > 0 {
		fmt.Fprintf(stderr, "sfvet: %d unused //lint:allow directive(s); remove them or re-justify\n", len(unused))
	}
}

// githubEscape applies the workflow-command data escaping rules: percent,
// CR, and LF must be URL-style escaped or the runner truncates the message.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
