// Command sfvet runs the repository's static-analysis suite — the five
// invariant checkers in internal/analyzers — over the named package
// patterns and prints every diagnostic in file:line:col form. It is the
// multichecker CI and the Makefile `vet` target invoke; both run
//
//	go run ./cmd/sfvet ./...
//
// so contributors see exactly the diagnostics CI enforces. Exit status is
// 0 when clean, 1 when any diagnostic fired, 2 on usage or load errors.
//
// Flags:
//
//	-list             print the analyzers and their one-line docs, then exit
//	-only name[,name] run only the named analyzers
//
// Suppression is per line in the source, not per invocation: a reviewed
// exception carries a `//lint:allow <analyzer> <reason>` comment (see
// internal/analyzers/framework).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sendforget/internal/analyzers"
	"sendforget/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var selected []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "sfvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		suite = selected
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := framework.NewLoader("")
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintf(stderr, "sfvet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "sfvet: %d diagnostic(s) across %d package(s)\n", total, len(pkgs))
		return 1
	}
	return 0
}
