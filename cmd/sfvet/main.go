// Command sfvet runs the repository's static-analysis suite — the nine
// invariant checkers in internal/analyzers — over the named package
// patterns and prints every diagnostic in file:line:col form. It is the
// multichecker CI and the Makefile `vet` target invoke; both run
//
//	go run ./cmd/sfvet ./...
//
// so contributors see exactly the diagnostics CI enforces. Exit status is
// 0 when clean, 1 when any diagnostic fired, 2 on usage or load errors.
//
// Packages are analyzed in parallel (the export data, call graph, and
// program-wide fixpoints are built once and shared); diagnostic order is
// deterministic regardless of -parallel.
//
// Flags:
//
//	-list             print the analyzers and their one-line docs, then exit
//	-only name[,name] run only the named analyzers
//	-json             print diagnostics as a JSON array on stdout
//	-github           print GitHub Actions ::error workflow annotations
//	-parallel n       analyze up to n packages concurrently (default GOMAXPROCS)
//
// Suppression is per line in the source, not per invocation: a reviewed
// exception carries a `//lint:allow <analyzer> <reason>` comment (see
// internal/analyzers/framework).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"sendforget/internal/analyzers"
	"sendforget/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire shape: one object per diagnostic, stable
// field names so CI tooling can consume it without parsing the human form.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "print diagnostics as a JSON array on stdout")
	github := fs.Bool("github", false, "print GitHub Actions ::error annotations")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*framework.Analyzer, len(suite))
		valid := make([]string, 0, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
			valid = append(valid, a.Name)
		}
		sort.Strings(valid)
		var selected []*framework.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "sfvet: unknown analyzer %q; valid analyzers: %s\n",
					name, strings.Join(valid, ", "))
				return 2
			}
			selected = append(selected, a)
		}
		suite = selected
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := framework.NewLoader("")
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	prog := framework.NewProgram(pkgs)
	diags, err := prog.AnalyzeAll(suite, *parallel)
	if err != nil {
		fmt.Fprintf(stderr, "sfvet: %v\n", err)
		return 2
	}
	switch {
	case *asJSON:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "sfvet: %v\n", err)
			return 2
		}
	case *github:
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=sfvet/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sfvet: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// githubEscape applies the workflow-command data escaping rules: percent,
// CR, and LF must be URL-style escaped or the runner truncates the message.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
