package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sendforget/internal/analyzers"
	"sendforget/internal/analyzers/framework"
)

// TestAnalyzerNameListIsCurrent keeps the test's own name list honest: it
// must match the registered suite exactly, so the -list and usage-error
// assertions below cover every analyzer that actually runs.
func TestAnalyzerNameListIsCurrent(t *testing.T) {
	suite := analyzers.All()
	if len(suite) != len(allAnalyzerNames) {
		t.Fatalf("allAnalyzerNames has %d names, suite registers %d", len(allAnalyzerNames), len(suite))
	}
	for i, a := range suite {
		if a.Name != allAnalyzerNames[i] {
			t.Errorf("suite[%d] = %q, allAnalyzerNames[%d] = %q", i, a.Name, i, allAnalyzerNames[i])
		}
	}
}

var allAnalyzerNames = []string{
	"detrand", "seedflow", "lockdiscipline", "counterbalance", "maporder",
	"substrate", "seedtaint", "lockreach", "goroleak", "errdrop",
	"hotalloc", "atomicmix", "sharedguard", "shardconfine",
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -list: exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(out.String(), name) {
			t.Errorf("sfvet -list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzerIsUsageError pins the exit-code contract (2 for usage
// errors) and the help the message must carry: the full list of valid
// names, so a typo is a one-round-trip fix.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("sfvet -only nosuch: exit %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", msg)
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(msg, name) {
			t.Errorf("unknown-analyzer message does not list valid name %q: %s", name, msg)
		}
	}
}

func TestSingleAnalyzerOverOnePackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -only detrand ./internal/rng/...: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}

// TestJSONOutputIsWellFormed: -json must emit a JSON array (empty for a
// clean package) that CI tooling can consume without parsing the human
// form.
func TestJSONOutputIsWellFormed(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -json: exit %d\nstderr: %s", code, errOut.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected clean package, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestGitHubModeEmitsNothingWhenClean: ::error annotations appear only for
// findings.
func TestGitHubModeEmitsNothingWhenClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-github", "-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -github: exit %d\nstderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "::error") {
		t.Errorf("clean run emitted annotations:\n%s", out.String())
	}
}

// TestUnusedAllowConflictsWithOnly pins the flag-composition rule: with a
// partial suite every directive for a skipped analyzer would read as stale,
// so the combination is a usage error, not a quietly wrong report.
func TestUnusedAllowConflictsWithOnly(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-unusedallow", "-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 2 {
		t.Fatalf("sfvet -unusedallow -only detrand: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-unusedallow conflicts with -only") {
		t.Errorf("stderr missing conflict message: %s", errOut.String())
	}
}

// TestUnusedAllowWarningsDoNotChangeExitStatus runs the full suite with
// -unusedallow over internal/rng — whose one detrand directive is live — and
// requires a clean exit with no warning lines.
func TestUnusedAllowWarningsDoNotChangeExitStatus(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-unusedallow", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -unusedallow ./internal/rng/...: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "unused //lint:allow") {
		t.Errorf("live directive reported stale:\n%s", out.String())
	}
}

// TestReportUnusedAllowsFormats covers both output forms off a synthetic
// directive: the human file:line form and the -github ::warning annotation
// (which must not be a ::error — stale allows warn, never fail).
func TestReportUnusedAllowsFormats(t *testing.T) {
	unused := []framework.AllowDirective{
		{File: "internal/x/x.go", Line: 12, Analyzer: "detrand", Reason: "old excuse"},
	}

	var out, errOut bytes.Buffer
	reportUnusedAllows(unused, false, &out, &errOut)
	if want := "internal/x/x.go:12: unused //lint:allow detrand directive (old excuse)\n"; out.String() != want {
		t.Errorf("human form = %q, want %q", out.String(), want)
	}
	if !strings.Contains(errOut.String(), "1 unused //lint:allow directive(s)") {
		t.Errorf("summary missing from stderr: %s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	reportUnusedAllows(unused, true, &out, &errOut)
	if !strings.HasPrefix(out.String(), "::warning file=internal/x/x.go,line=12,title=sfvet/unusedallow::") {
		t.Errorf("github form not a ::warning annotation: %q", out.String())
	}
	if strings.Contains(out.String(), "::error") {
		t.Errorf("stale allows must warn, not error: %q", out.String())
	}
}

// TestExportDataFailureIsDistinct pins the fail-fast contract for a stale
// build cache: errors.Is(err, framework.ErrExportData) must route to the
// message that names the remedy, and anything else to the plain form.
func TestExportDataFailureIsDistinct(t *testing.T) {
	var errOut bytes.Buffer
	err := fmt.Errorf("loading export data for sendforget/internal/view failed (%w)", framework.ErrExportData)
	if code := failLoad(err, &errOut); code != 2 {
		t.Fatalf("failLoad exit %d, want 2", code)
	}
	msg := errOut.String()
	for _, part := range []string{"stale or missing build cache", "go build ./..."} {
		if !strings.Contains(msg, part) {
			t.Errorf("export-data failure message missing %q: %s", part, msg)
		}
	}

	errOut.Reset()
	if code := failLoad(fmt.Errorf("some other load error"), &errOut); code != 2 {
		t.Fatalf("failLoad exit %d, want 2", code)
	}
	if strings.Contains(errOut.String(), "build cache") {
		t.Errorf("ordinary load error got the export-data message: %s", errOut.String())
	}
}

func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% loss\r\nnext")
	want := "50%25 loss%0D%0Anext"
	if got != want {
		t.Errorf("githubEscape = %q, want %q", got, want)
	}
}

// TestWholeRepoIsClean is the CLI-level form of the suite's acceptance
// criterion: zero diagnostics over every package, exit status 0. The run
// carries -unusedallow, so it doubles as the stale-suppression audit: every
// //lint:allow directive in the tree must still be earning its keep.
func TestWholeRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-unusedallow"}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -unusedallow ./...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("sfvet -unusedallow ./... printed diagnostics or stale directives despite exit 0:\n%s", out.String())
	}
}

// BenchmarkSfvetRepo is the whole-repo smoke benchmark: one full suite run —
// load, call graph, program-wide fixpoints, fourteen analyzers over every
// package — per iteration. It bounds the CI vet budget (the workflow
// parses its ns/op figure and fails above the stated budget); a
// regression here is a regression in every CI run.
func BenchmarkSfvetRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out, errOut bytes.Buffer
		if code := run(nil, &out, &errOut); code != 0 {
			b.Fatalf("sfvet ./...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
	}
}
