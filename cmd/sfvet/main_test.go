package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -list: exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"detrand", "seedflow", "lockdiscipline", "counterbalance", "maporder"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("sfvet -list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("sfvet -only nosuch: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errOut.String())
	}
}

func TestSingleAnalyzerOverOnePackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -only detrand ./internal/rng/...: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}

// TestWholeRepoIsClean is the CLI-level form of the suite's acceptance
// criterion: zero diagnostics over every package, exit status 0.
func TestWholeRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("sfvet ./...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("sfvet ./... printed diagnostics despite exit 0:\n%s", out.String())
	}
}
