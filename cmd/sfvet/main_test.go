package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var allAnalyzerNames = []string{
	"detrand", "seedflow", "lockdiscipline", "counterbalance", "maporder",
	"seedtaint", "lockreach", "goroleak", "errdrop",
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -list: exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(out.String(), name) {
			t.Errorf("sfvet -list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzerIsUsageError pins the exit-code contract (2 for usage
// errors) and the help the message must carry: the full list of valid
// names, so a typo is a one-round-trip fix.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("sfvet -only nosuch: exit %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", msg)
	}
	for _, name := range allAnalyzerNames {
		if !strings.Contains(msg, name) {
			t.Errorf("unknown-analyzer message does not list valid name %q: %s", name, msg)
		}
	}
}

func TestSingleAnalyzerOverOnePackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -only detrand ./internal/rng/...: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}

// TestJSONOutputIsWellFormed: -json must emit a JSON array (empty for a
// clean package) that CI tooling can consume without parsing the human
// form.
func TestJSONOutputIsWellFormed(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -json: exit %d\nstderr: %s", code, errOut.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected clean package, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestGitHubModeEmitsNothingWhenClean: ::error annotations appear only for
// findings.
func TestGitHubModeEmitsNothingWhenClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-github", "-only", "detrand", "./internal/rng/..."}, &out, &errOut); code != 0 {
		t.Fatalf("sfvet -github: exit %d\nstderr: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "::error") {
		t.Errorf("clean run emitted annotations:\n%s", out.String())
	}
}

func TestGitHubEscape(t *testing.T) {
	got := githubEscape("50% loss\r\nnext")
	want := "50%25 loss%0D%0Anext"
	if got != want {
		t.Errorf("githubEscape = %q, want %q", got, want)
	}
}

// TestWholeRepoIsClean is the CLI-level form of the suite's acceptance
// criterion: zero diagnostics over every package, exit status 0.
func TestWholeRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("sfvet ./...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("sfvet ./... printed diagnostics despite exit 0:\n%s", out.String())
	}
}

// BenchmarkSfvetRepo is the whole-repo smoke benchmark: one full suite run —
// load, call graph, program-wide fixpoints, nine analyzers over every
// package — per iteration. It bounds the CI vet budget; a regression here
// is a regression in every CI run.
func BenchmarkSfvetRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out, errOut bytes.Buffer
		if code := run(nil, &out, &errOut); code != 0 {
			b.Fatalf("sfvet ./...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
	}
}
