// Package sendforget is a reproduction of "Correctness of Gossip-Based
// Membership under Message Loss" (Gurevich and Keidar, PODC 2009; extended
// version SIAM J. Comput. 39(8), 2010).
//
// The repository implements the Send & Forget (S&F) gossip membership
// protocol, the paper's analytical machinery (degree Markov chain, threshold
// selection, decay and independence bounds), baseline protocols, a
// discrete-event simulator, a concurrent goroutine runtime, and a benchmark
// harness that regenerates every figure and table in the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results. The root package holds only documentation
// and the top-level benchmark harness (bench_test.go); the implementation
// lives under internal/, the binaries under cmd/, and runnable examples under
// examples/.
package sendforget
