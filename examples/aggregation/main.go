// Aggregation: gossip-based averaging driven by S&F membership samples —
// one of the applications the paper's introduction motivates ("gathering
// statistics, gossip-based aggregation").
//
// Every node holds a numeric value; in each round every node picks a
// partner *from its S&F view* and the pair averages their values. With
// uniform, independent views (Properties M3/M4) this converges to the true
// mean exponentially fast. For contrast, the same computation run over a
// static ring converges far slower — the value of maintaining good views.
package main

import (
	"fmt"
	"log"
	"math"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

const (
	n      = 256
	rounds = 60
)

func main() {
	// True mean of the initial values 0..n-1.
	trueMean := float64(n-1) / 2

	sfErr, err := runAveraging(newSFSampler())
	if err != nil {
		log.Fatal(err)
	}
	ringErr, err := runAveraging(ringSampler{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("averaging %d nodes toward true mean %.1f\n\n", n, trueMean)
	fmt.Println("round  max error (S&F views)  max error (static ring)")
	for r := 0; r <= rounds; r += 5 {
		fmt.Printf("%5d  %22.4f  %23.4f\n", r, sfErr[r], ringErr[r])
	}
	fmt.Println("\nuniform independent views mix the values in O(log n) rounds;")
	fmt.Println("the ring needs O(n^2) — the membership service is what makes")
	fmt.Println("gossip aggregation fast.")
}

// sampler yields a gossip partner for node u in the current round.
type sampler interface {
	partner(u peer.ID, r *rng.RNG) (peer.ID, bool)
	tick() // advance the membership protocol one round, if any
}

// sfSampler samples partners from live S&F views maintained under loss.
type sfSampler struct {
	eng   *engine.Engine
	proto *sendforget.Protocol
	r     *rng.RNG
}

func newSFSampler() *sfSampler {
	proto, err := sendforget.New(sendforget.Config{N: n, S: 16, DL: 6})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(proto, loss.MustUniform(0.02), rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(100) // reach the steady state first
	return &sfSampler{eng: eng, proto: proto, r: rng.New(8)}
}

func (s *sfSampler) partner(u peer.ID, r *rng.RNG) (peer.ID, bool) {
	ids := s.proto.View(u).IDs()
	if len(ids) == 0 {
		return 0, false
	}
	return ids[r.Intn(len(ids))], true
}

// tick keeps the membership evolving while the aggregation runs, providing
// fresh samples (temporal independence, Property M5).
func (s *sfSampler) tick() { s.eng.Round() }

// ringSampler is the contrast: each node only ever talks to its two ring
// neighbors.
type ringSampler struct{}

func (ringSampler) partner(u peer.ID, r *rng.RNG) (peer.ID, bool) {
	if r.Bernoulli(0.5) {
		return peer.ID((int(u) + 1) % n), true
	}
	return peer.ID((int(u) + n - 1) % n), true
}

func (ringSampler) tick() {}

// runAveraging runs pairwise averaging and returns the max absolute error
// per round.
func runAveraging(s sampler) ([]float64, error) {
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	trueMean := float64(n-1) / 2
	r := rng.New(99)
	errs := make([]float64, rounds+1)
	errs[0] = maxErr(values, trueMean)
	for round := 1; round <= rounds; round++ {
		s.tick()
		for u := 0; u < n; u++ {
			v, ok := s.partner(peer.ID(u), r)
			if !ok || int(v) == u || int(v) < 0 || int(v) >= n {
				continue
			}
			avg := (values[u] + values[v]) / 2
			values[u], values[v] = avg, avg
		}
		errs[round] = maxErr(values, trueMean)
	}
	return errs, nil
}

func maxErr(values []float64, mean float64) float64 {
	worst := 0.0
	for _, v := range values {
		if e := math.Abs(v - mean); e > worst {
			worst = e
		}
	}
	return worst
}
