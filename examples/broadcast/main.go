// Broadcast: rumor spreading over membership overlays after prolonged
// exposure to message loss.
//
// The same push rumor-mongering runs over three overlays that each spent
// 300 rounds under 5% loss: S&F (compensates for loss), keep-on-send
// push-pull (loss-immune but spatially dependent), and delete-on-send
// shuffle (decays under loss — Section 3.1). The experiment shows why the
// membership layer's loss behaviour decides whether dissemination on top of
// it can work at all.
package main

import (
	"fmt"
	"log"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

const (
	n         = 400
	s         = 20
	lossRate  = 0.05
	warm      = 300
	fanout    = 2
	maxRounds = 40
)

func main() {
	overlays := []struct {
		name  string
		build func() (protocol.Protocol, error)
	}{
		{"send&forget", func() (protocol.Protocol, error) {
			return sendforget.New(sendforget.Config{N: n, S: s, DL: 8, InitDegree: 10})
		}},
		{"push-pull", func() (protocol.Protocol, error) {
			return pushpull.New(pushpull.Config{N: n, S: s, InitDegree: 10})
		}},
		{"shuffle", func() (protocol.Protocol, error) {
			return shuffle.New(shuffle.Config{N: n, S: s, InitDegree: 10})
		}},
	}

	fmt.Printf("rumor spreading over overlays aged %d rounds at %.0f%%%% loss (fanout %d)\n\n",
		warm, lossRate*100, fanout)
	fmt.Println("overlay       edges/node   coverage by round (5/10/20/40)")
	for _, o := range overlays {
		proto, err := o.build()
		if err != nil {
			log.Fatal(err)
		}
		eng, err := engine.New(proto, loss.MustUniform(lossRate), rng.New(17))
		if err != nil {
			log.Fatal(err)
		}
		eng.Run(warm)
		edges := float64(eng.Snapshot().NumEdges()) / n
		cov := spread(eng.Views(), rng.New(23))
		fmt.Printf("%-12s  %10.2f   %5.3f / %5.3f / %5.3f / %5.3f\n",
			o.name, edges, cov[5], cov[10], cov[20], cov[40])
	}
	fmt.Println("\nshuffle's decayed overlay cannot reach everyone; S&F matches the")
	fmt.Println("loss-immune baseline while keeping views balanced and independent.")
}

// spread infects node 0 and pushes the rumor to fanout random view entries
// per round per infected node (the rumor messages themselves are also
// subject to loss). It returns the coverage fraction per round.
func spread(views []*view.View, r *rng.RNG) []float64 {
	infected := make([]bool, n)
	infected[0] = true
	count := 1
	cov := make([]float64, maxRounds+1)
	cov[0] = 1.0 / n
	for round := 1; round <= maxRounds; round++ {
		var newly []peer.ID
		for u := 0; u < n; u++ {
			if !infected[u] || views[u] == nil {
				continue
			}
			ids := views[u].IDs()
			for k := 0; k < fanout && len(ids) > 0; k++ {
				target := ids[r.Intn(len(ids))]
				if r.Bernoulli(lossRate) {
					continue // rumor message lost
				}
				if int(target) >= 0 && int(target) < n && !infected[target] {
					infected[target] = true
					newly = append(newly, target)
				}
			}
		}
		count += len(newly)
		cov[round] = float64(count) / n
	}
	return cov
}
