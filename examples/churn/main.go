// Churn: joins and leaves under message loss (Section 6.5 of the paper).
//
// A node leaves — taking no protocol action at all — and its id decays out
// of the other views; the measured decay stays below the Lemma 6.10 bound.
// A node then joins with dL seed ids copied from a live view, and within
// about 2s rounds it has acquired a quarter of the steady-state indegree
// (Corollary 6.14) and a healthy outdegree.
package main

import (
	"fmt"
	"log"

	"sendforget/internal/analysis"
	"sendforget/internal/churn"
	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

const (
	n        = 300
	s        = 40
	dl       = 20 // s/dL = 2, the Corollary 6.14 regime
	lossRate = 0.02
	delta    = 0.01
)

func main() {
	proto, err := sendforget.New(sendforget.Config{N: n, S: s, DL: dl})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(proto, loss.MustUniform(lossRate), rng.New(3))
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(80) // steady state
	din := metrics.Degrees(eng.Snapshot(), nil).MeanIn
	fmt.Printf("steady state reached: mean indegree %.1f at loss %.0f%%\n\n", din, lossRate*100)

	// --- Leave ---------------------------------------------------------
	const leaver = peer.ID(7)
	decay, err := churn.TrackLeaverDecay(eng, leaver, 200)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := analysis.SurvivalBound(lossRate, delta, dl, s, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %v left (no protocol action) with %d id instances in views\n", leaver, decay.Initial)
	fmt.Println("rounds since leave   remaining (sim)   Lemma 6.10 bound")
	for _, r := range []int{0, 25, 50, 75, 100, 150, 200} {
		fmt.Printf("%18d   %15.3f   %16.3f\n", r, decay.Remaining[r], bound[r])
	}
	fmt.Printf("half-life: %d rounds (the bound's half-life is %d; Lemma 6.10 bounds the\n", decay.HalfLife(), mustHalfLife())
	fmt.Printf("expectation — a single leaver with ~%d instances fluctuates around it,\n", decay.Initial)
	fmt.Println("see the fig6.4 experiment for the averaged curve)")
	fmt.Println()

	// --- Join ----------------------------------------------------------
	joiner := peer.ID(9)
	if err := eng.Leave(joiner); err != nil {
		log.Fatal(err)
	}
	eng.Run(200) // flush its id before re-joining
	seeds := proto.View(peer.ID(n - 1)).IDs()
	if len(seeds) > dl {
		seeds = seeds[:dl]
	}
	trace, err := churn.TrackJoinerIntegration(eng, joiner, seeds, 2*s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %v joined with %d seed ids (outdegree dL=%d, indegree 0)\n", joiner, len(seeds), dl)
	fmt.Println("rounds since join   indegree   outdegree")
	for _, r := range []int{0, 10, 20, 40, 60, 80} {
		fmt.Printf("%17d   %8d   %9d\n", r, trace.Indegree[r], trace.Outdegree[r])
	}
	fmt.Printf("\nCorollary 6.14 bound: >= Din/4 = %.1f id instances within 2s = %d rounds; got %d\n",
		din/4, 2*s, trace.Indegree[2*s])
}

func mustHalfLife() int {
	hl, err := analysis.HalfLife(lossRate, delta, dl, s)
	if err != nil {
		log.Fatal(err)
	}
	return hl
}
