// Loadbalance: using the membership view as a random peer sampler for work
// assignment — the "choosing locations for data caching" application class
// from the paper's introduction.
//
// Each round every node assigns one unit of work to a peer drawn from its
// local view. A true i.i.d. sampler gives the balls-into-bins baseline;
// view-based samplers add dispersion proportional to how unequal and how
// *persistent* the indegrees are. The decisive comparison is S&F's live
// views against a frozen snapshot of the very same views: temporal
// independence (Property M5) — views that keep evolving — is what erases
// per-node hot spots. Keep-on-send push-pull is included for scale: its
// pinned-full views also rebalance, at the price of the spatial dependence
// measured in the base1 experiment.
package main

import (
	"fmt"
	"log"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
	"sendforget/internal/stats"
	"sendforget/internal/view"
)

const (
	n      = 300
	s      = 16
	dl     = 6
	rounds = 200
)

func main() {
	fmt.Printf("assigning %d work unit per node per round over %d rounds (n=%d)\n\n", 1, rounds, n)
	fmt.Println("sampler                 max load  mean load  load stddev  chi2/df")

	runCase("true uniform (i.i.d.)", func(int) []*view.View { return nil })

	sf, sfEng := buildSF()
	runCase("S&F (live views)", func(round int) []*view.View {
		sfEng.Round()
		return sf.Views()
	})

	frozen, frozenEng := buildSF()
	frozenEng.Run(1) // settle, then freeze
	frozenViews := snapshotViews(frozen.Views())
	runCase("S&F (frozen snapshot)", func(int) []*view.View {
		return frozenViews
	})

	pp, ppEng := buildPushPull()
	runCase("push-pull (live views)", func(round int) []*view.View {
		ppEng.Round()
		return pp.Views()
	})

	fmt.Println()
	fmt.Println("the frozen snapshot keeps hammering the same targets; letting the")
	fmt.Println("views evolve (Property M5, temporal independence) closes most of the")
	fmt.Println("gap to the i.i.d. baseline without any coordination.")
}

func buildSF() (*sendforget.Protocol, *engine.Engine) {
	proto, err := sendforget.New(sendforget.Config{N: n, S: s, DL: dl})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(proto, loss.MustUniform(0.02), rng.New(41))
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(100)
	return proto, eng
}

func buildPushPull() (*pushpull.Protocol, *engine.Engine) {
	proto, err := pushpull.New(pushpull.Config{N: n, S: s})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := engine.New(proto, loss.MustUniform(0.02), rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(100)
	return proto, eng
}

// runCase distributes work by sampling one target per node per round from
// the views the source yields, then reports the load distribution.
func runCase(name string, viewsAt func(round int) []*view.View) {
	r := rng.New(77)
	load := make([]int, n)
	for round := 0; round < rounds; round++ {
		views := viewsAt(round)
		for u := 0; u < n; u++ {
			if views == nil {
				// The i.i.d. reference: any peer, uniformly.
				load[r.Intn(n)]++
				continue
			}
			if views[u] == nil {
				continue
			}
			ids := views[u].IDs()
			if len(ids) == 0 {
				continue
			}
			target := ids[r.Intn(len(ids))]
			if int(target) >= 0 && int(target) < n {
				load[target]++
			}
		}
	}
	var acc stats.Accumulator
	maxLoad := 0
	for _, l := range load {
		acc.Add(float64(l))
		if l > maxLoad {
			maxLoad = l
		}
	}
	stat, _, err := stats.ChiSquareUniformTest(load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s  %8d  %9.1f  %11.2f  %7.2f\n",
		name, maxLoad, acc.Mean(), acc.StdDev(), stat/float64(n-1))
}

// snapshotViews deep-copies views so the frozen case cannot drift.
func snapshotViews(vs []*view.View) []*view.View {
	out := make([]*view.View, len(vs))
	for i, v := range vs {
		if v != nil {
			out[i] = v.Clone()
		}
	}
	return out
}

// Interface assertions documenting what the example relies on.
var (
	_ protocol.Protocol = (*sendforget.Protocol)(nil)
	_ protocol.Protocol = (*pushpull.Protocol)(nil)
	_                   = peer.Nil
)
