// Quickstart: a 64-node S&F cluster through the public membership API.
// Each node runs the protocol in its own goroutine over an in-memory lossy
// network; after a few hundred gossip rounds the views satisfy the
// membership properties of Section 2 of the paper: small (M1), load
// balanced (M2), uniform (M3), and mostly independent (M4).
package main

import (
	"fmt"
	"log"

	"sendforget/membership"
)

func main() {
	// Pick protocol parameters for an expected degree of ~8 with a 1%
	// duplication budget, per the paper's Section 6.3 rule.
	dl, s, err := membership.Thresholds(8, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thresholds for expected degree 8: dL=%d s=%d\n\n", dl, s)

	cluster, err := membership.NewCluster(membership.ClusterConfig{
		N:    64,
		S:    s,
		DL:   dl,
		Loss: 0.02, // 2% of gossip messages silently vanish
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  edges/node  mean out  indeg var  components")
	for round := 0; round <= 300; round += 50 {
		st := cluster.Stats()
		fmt.Printf("%5d  %10.2f  %8.1f  %9.1f  %10d\n",
			round, st.EdgesPerNode, st.MeanOutdegree, st.IndegreeVariance, st.Components)
		cluster.Gossip(50)
	}

	if err := cluster.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	st := cluster.Stats()
	fmt.Printf("\nfinal: weakly connected=%v, visible dependent fraction=%.4f\n",
		st.WeaklyConnected, st.DependentFraction)
	fmt.Println("\nnode 0's view (an approximately uniform sample of the cluster):")
	fmt.Println(" ", cluster.Sample(0))

	// Churn: node 7 leaves by simply stopping; later a newcomer joins by
	// copying a live node's view.
	cluster.Remove(7)
	cluster.Gossip(150)
	if err := cluster.Add(7, cluster.Sample(0)); err != nil {
		log.Fatal(err)
	}
	cluster.Gossip(50)
	cluster.Stop()
	fmt.Printf("\nafter leave+rejoin of node 7: connected=%v\n", cluster.Stats().WeaklyConnected)
}
