module sendforget

go 1.22
