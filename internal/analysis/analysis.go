// Package analysis implements the paper's closed-form results: the
// analytical degree distribution of Section 6.1 (Eq. 6.1), the threshold
// selection rule of Section 6.3, the id-decay and join-integration bounds of
// Section 6.5 (Lemmas 6.9-6.13, Corollary 6.14), the spatial-independence
// bound of Lemma 7.9, the connectivity threshold of Section 7.4, and the
// temporal-independence bound of Lemma 7.15.
package analysis

import (
	"fmt"
	"math"

	"sendforget/internal/stats"
)

// OutdegreeDist returns the analytical approximation of the steady-state
// outdegree distribution (Eq. 6.1) for sum degree dm under no loss with
// dL = 0: Pr(d(u) = d) ~ a(d) / sum a(d'), where
//
//	a(d) = C(dm, d) * C(dm-d, (dm-d)/2)
//
// over even d in [0, dm]. The returned slice is indexed by degree (odd
// entries zero).
func OutdegreeDist(dm int) ([]float64, error) {
	if dm <= 0 || dm%2 != 0 {
		return nil, fmt.Errorf("analysis: sum degree must be positive and even, got %d", dm)
	}
	logA := make([]float64, dm+1)
	maxLog := math.Inf(-1)
	for d := 0; d <= dm; d += 2 {
		la := stats.LogChoose(dm, d) + stats.LogChoose(dm-d, (dm-d)/2)
		logA[d] = la
		if la > maxLog {
			maxLog = la
		}
	}
	dist := make([]float64, dm+1)
	sum := 0.0
	for d := 0; d <= dm; d += 2 {
		dist[d] = math.Exp(logA[d] - maxLog)
		sum += dist[d]
	}
	for d := 0; d <= dm; d += 2 {
		dist[d] /= sum
	}
	return dist, nil
}

// IndegreeDist returns the analytical indegree distribution implied by
// Eq. 6.1: Pr(din = (dm-d)/2) = Pr(d(u) = d). Indexed by indegree.
func IndegreeDist(dm int) ([]float64, error) {
	out, err := OutdegreeDist(dm)
	if err != nil {
		return nil, err
	}
	dist := make([]float64, dm/2+1)
	for d := 0; d <= dm; d += 2 {
		dist[(dm-d)/2] = out[d]
	}
	return dist, nil
}

// Thresholds computes the rule-of-thumb parameters of Section 6.3: given the
// desired lossless expected outdegree dHat and the maximum duplication and
// deletion probability delta, it returns
//
//	dL = max{ d' even <= dHat : Pr(d <= d') <= delta }
//	s  = min{ d' even >= dHat : Pr(d >= d') <= delta }
//
// under the analytical distribution with dm = 3*dHat (Lemma 6.3). The
// paper's worked example: dHat = 30, delta = 0.01 gives dL = 18, s = 40.
// Using Eq. 6.1 directly, the upper tail at 40 is ~0.025, giving s = 42; the
// paper's s = 40 corresponds to the slightly narrower exact degree-MC
// distribution, which ThresholdsFromDist accepts (the tab6.3 experiment
// reports both).
func Thresholds(dHat int, delta float64) (dl, s int, err error) {
	if dHat <= 0 || dHat%2 != 0 {
		return 0, 0, fmt.Errorf("analysis: dHat must be positive and even, got %d", dHat)
	}
	dm := 3 * dHat
	dist, err := OutdegreeDist(dm)
	if err != nil {
		return 0, 0, err
	}
	return ThresholdsFromDist(dist, dHat, delta)
}

// ThresholdsFromDist applies the Section 6.3 rule to an arbitrary outdegree
// pmf (indexed by degree), e.g. the exact distribution from the degree MC.
func ThresholdsFromDist(dist []float64, dHat int, delta float64) (dl, s int, err error) {
	if dHat <= 0 || dHat%2 != 0 {
		return 0, 0, fmt.Errorf("analysis: dHat must be positive and even, got %d", dHat)
	}
	if delta <= 0 || delta >= 0.5 {
		return 0, 0, fmt.Errorf("analysis: delta must be in (0, 0.5), got %v", delta)
	}
	dm := len(dist) - 1
	if dm < dHat {
		return 0, 0, fmt.Errorf("analysis: distribution support %d below dHat %d", dm, dHat)
	}
	// Lower threshold: largest even d' <= dHat with P(d <= d') <= delta.
	// The running sums include odd degrees for robustness against
	// empirical distributions with off-parity mass.
	cdf := 0.0
	dl = -1
	for d := 0; d <= dHat; d++ {
		cdf += dist[d]
		if d%2 == 0 && cdf <= delta {
			dl = d
		}
	}
	if dl < 0 {
		dl = 0
	}
	// Upper threshold: smallest even d' >= dHat with P(d >= d') <= delta.
	tail := 0.0
	s = -1
	for d := dm; d >= dHat; d-- {
		tail += dist[d]
		if d%2 == 0 && tail <= delta {
			s = d
		}
	}
	if s < 0 {
		return 0, 0, fmt.Errorf("analysis: no feasible upper threshold for dHat=%d delta=%v", dHat, delta)
	}
	return dl, s, nil
}

// SurvivalBound returns the Lemma 6.9/6.10 upper bound on the probability
// that an id instance present at round t0 is still in some view i rounds
// later:
//
//	(1 - (1-l-delta)*dL / s^2)^i
//
// The returned slice has rounds+1 entries (index = rounds elapsed).
func SurvivalBound(l, delta float64, dl, s, rounds int) ([]float64, error) {
	if err := checkRates(l, delta); err != nil {
		return nil, err
	}
	if dl < 0 || s <= 0 || dl > s {
		return nil, fmt.Errorf("analysis: invalid degrees dL=%d s=%d", dl, s)
	}
	if rounds < 0 {
		return nil, fmt.Errorf("analysis: negative rounds %d", rounds)
	}
	perRound := 1 - (1-l-delta)*float64(dl)/float64(s*s)
	if perRound < 0 {
		perRound = 0
	}
	out := make([]float64, rounds+1)
	out[0] = 1
	for i := 1; i <= rounds; i++ {
		out[i] = out[i-1] * perRound
	}
	return out, nil
}

// HalfLife returns the smallest round count i at which SurvivalBound falls
// to at most 1/2. For the paper's example (dL=18, s=40, small l+delta) this
// is about 70 rounds ("after merely 70 rounds ... fewer than 50% of the id
// instances of a left/failed node are expected to remain").
func HalfLife(l, delta float64, dl, s int) (int, error) {
	if err := checkRates(l, delta); err != nil {
		return 0, err
	}
	if dl <= 0 || s <= 0 || dl > s {
		return 0, fmt.Errorf("analysis: invalid degrees dL=%d s=%d", dl, s)
	}
	perRound := 1 - (1-l-delta)*float64(dl)/float64(s*s)
	if perRound >= 1 || perRound <= 0 {
		return 0, fmt.Errorf("analysis: degenerate decay rate %v", perRound)
	}
	return int(math.Ceil(math.Log(0.5) / math.Log(perRound))), nil
}

// CreationRateBound returns the Lemma 6.11 lower bound on the expected
// number of new id instances an average node creates per round:
//
//	Delta >= (1-l-delta)*dL/s^2 * Din
func CreationRateBound(l, delta float64, dl, s int, din float64) (float64, error) {
	if err := checkRates(l, delta); err != nil {
		return 0, err
	}
	if dl < 0 || s <= 0 {
		return 0, fmt.Errorf("analysis: invalid degrees dL=%d s=%d", dl, s)
	}
	return (1 - l - delta) * float64(dl) / float64(s*s) * din, nil
}

// JoinerIntegration returns the Lemma 6.13 quantities: within the first
// rounds = s^2 / ((1-l-delta)*dL) rounds, a newly joined node is expected to
// create at least (dL/s)^2 * Din id instances. Corollary 6.14: for s/dL = 2
// and l+delta << 1 this reads "after 2s rounds, at least Din/4 instances".
func JoinerIntegration(l, delta float64, dl, s int, din float64) (rounds float64, instances float64, err error) {
	if err := checkRates(l, delta); err != nil {
		return 0, 0, err
	}
	if dl <= 0 || s <= 0 || dl > s {
		return 0, 0, fmt.Errorf("analysis: invalid degrees dL=%d s=%d", dl, s)
	}
	rounds = float64(s*s) / ((1 - l - delta) * float64(dl))
	ratio := float64(dl) / float64(s)
	instances = ratio * ratio * din
	return rounds, instances, nil
}

// AlphaLowerBound returns the Lemma 7.9 lower bound on the expected
// fraction of independent view entries: alpha >= 1 - 2(l+delta).
func AlphaLowerBound(l, delta float64) (float64, error) {
	if err := checkRates(l, delta); err != nil {
		return 0, err
	}
	a := 1 - 2*(l+delta)
	if a < 0 {
		a = 0
	}
	return a, nil
}

// DuplicationBounds returns the Lemma 6.7 bracket on the steady-state
// duplication probability: l <= dup <= l + delta.
func DuplicationBounds(l, delta float64) (lo, hi float64, err error) {
	if err := checkRates(l, delta); err != nil {
		return 0, 0, err
	}
	return l, l + delta, nil
}

// ConnectivityMinDL returns the minimal dL such that, modeling the number
// of independent ids in a view as Binomial(dL, alpha) with
// alpha = 1 - 2(l+delta), the probability of fewer than 3 independent
// out-neighbors is at most eps (Section 7.4: "for l = delta = 1% and
// eps = 1e-30, dL should be set to at least 26"; three independent
// out-neighbors suffice for weak connectivity by [15]).
func ConnectivityMinDL(l, delta, eps float64) (int, error) {
	if err := checkRates(l, delta); err != nil {
		return 0, err
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("analysis: eps must be in (0, 1), got %v", eps)
	}
	alpha, err := AlphaLowerBound(l, delta)
	if err != nil {
		return 0, err
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("analysis: alpha bound is 0 at l=%v delta=%v; no dL suffices", l, delta)
	}
	const maxDL = 10000
	for dl := 3; dl <= maxDL; dl++ {
		if stats.BinomialCDF(dl, 2, alpha) <= eps {
			return dl, nil
		}
	}
	return 0, fmt.Errorf("analysis: no dL up to %d satisfies eps=%v", maxDL, eps)
}

// checkRates validates loss and duplication-slack rates.
func checkRates(l, delta float64) error {
	if l < 0 || l >= 1 {
		return fmt.Errorf("analysis: loss rate %v outside [0, 1)", l)
	}
	if delta < 0 || delta >= 1 {
		return fmt.Errorf("analysis: delta %v outside [0, 1)", delta)
	}
	if l+delta >= 1 {
		return fmt.Errorf("analysis: l+delta = %v >= 1", l+delta)
	}
	return nil
}
