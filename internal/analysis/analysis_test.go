package analysis

import (
	"math"
	"testing"

	"sendforget/internal/stats"
)

func TestOutdegreeDistValidation(t *testing.T) {
	if _, err := OutdegreeDist(0); err == nil {
		t.Error("accepted dm=0")
	}
	if _, err := OutdegreeDist(7); err == nil {
		t.Error("accepted odd dm")
	}
}

func TestOutdegreeDistProperties(t *testing.T) {
	dist, err := OutdegreeDist(90)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for d, p := range dist {
		if d%2 == 1 && p != 0 {
			t.Fatalf("odd degree %d has probability %v", d, p)
		}
		if p < 0 {
			t.Fatalf("negative probability at %d", d)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	// Lemma 6.3: mean outdegree is dm/3 = 30. The analytical distribution
	// is an approximation; its mode and mean sit at 30 exactly by symmetry
	// of a(d) around... verify numerically within a small tolerance.
	mean := stats.DistMean(dist)
	if math.Abs(mean-30) > 0.5 {
		t.Errorf("mean outdegree = %v, want ~30 (dm/3)", mean)
	}
	// Figure 6.1 compares against binomials with the same expectation.
	// For the outdegree, Binomial(90, 1/3) has variance 20 and the
	// analytical curve is essentially as wide (within a few percent); the
	// sharp variance reduction shows up in the indegree, whose variance is
	// a quarter of the outdegree's (din = (dm-d)/2).
	if v := stats.DistVariance(dist); math.Abs(v-20) > 1.5 {
		t.Errorf("analytical outdegree variance %v, want ~20", v)
	}
	in, err := IndegreeDist(90)
	if err != nil {
		t.Fatal(err)
	}
	if v := stats.DistVariance(in); v >= 20.0/2 {
		t.Errorf("analytical indegree variance %v not well below binomial 20", v)
	}
}

func TestIndegreeDistMirror(t *testing.T) {
	in, err := IndegreeDist(90)
	if err != nil {
		t.Fatal(err)
	}
	out, err := OutdegreeDist(90)
	if err != nil {
		t.Fatal(err)
	}
	// P(din = (90-d)/2) = P(dout = d).
	for d := 0; d <= 90; d += 2 {
		if got, want := in[(90-d)/2], out[d]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("indegree mirror broken at d=%d: %v != %v", d, got, want)
		}
	}
	mean := stats.DistMean(in)
	if math.Abs(mean-30) > 0.3 {
		t.Errorf("mean indegree = %v, want ~30", mean)
	}
	if _, err := IndegreeDist(3); err == nil {
		t.Error("accepted odd dm")
	}
}

func TestThresholdsPaperExample(t *testing.T) {
	// Section 6.3: dHat = 30, delta = 0.01 -> dL = 18, s = 40. Under the
	// analytical Eq. 6.1 tail the upper threshold lands one even step
	// higher (42); the paper's 40 matches the exact degree-MC distribution
	// (see tab6.3 in EXPERIMENTS.md). Accept the adjacent even value.
	dl, s, err := Thresholds(30, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 18 {
		t.Errorf("Thresholds(30, 0.01) dL = %d, want 18", dl)
	}
	if s != 40 && s != 42 {
		t.Errorf("Thresholds(30, 0.01) s = %d, want 40 or 42", s)
	}
}

func TestThresholdsFromDist(t *testing.T) {
	// A synthetic narrow distribution around 30: tails vanish quickly, so
	// the bracket should be tight.
	dist := make([]float64, 91)
	dist[28], dist[30], dist[32] = 0.25, 0.5, 0.25
	dl, s, err := ThresholdsFromDist(dist, 30, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 26 || s != 34 {
		t.Errorf("ThresholdsFromDist = (%d, %d), want (26, 34)", dl, s)
	}
	if _, _, err := ThresholdsFromDist(dist[:20], 30, 0.01); err == nil {
		t.Error("accepted support below dHat")
	}
}

func TestThresholdsMonotonicity(t *testing.T) {
	// Tighter delta widens the bracket.
	dlLoose, sLoose, err := Thresholds(30, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dlTight, sTight, err := Thresholds(30, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !(dlTight <= dlLoose && sTight >= sLoose) {
		t.Errorf("tighter delta did not widen bracket: loose (%d,%d), tight (%d,%d)", dlLoose, sLoose, dlTight, sTight)
	}
	if dlLoose >= 30 || sLoose <= 30 {
		t.Errorf("bracket does not straddle dHat: (%d, %d)", dlLoose, sLoose)
	}
}

func TestThresholdsValidation(t *testing.T) {
	if _, _, err := Thresholds(0, 0.01); err == nil {
		t.Error("accepted dHat=0")
	}
	if _, _, err := Thresholds(31, 0.01); err == nil {
		t.Error("accepted odd dHat")
	}
	if _, _, err := Thresholds(30, 0); err == nil {
		t.Error("accepted delta=0")
	}
	if _, _, err := Thresholds(30, 0.5); err == nil {
		t.Error("accepted delta=0.5")
	}
}

func TestSurvivalBound(t *testing.T) {
	// Paper example: dL=18, s=40, delta=0.01. The per-round retention is
	// 1 - 0.99*18/1600 ~ 0.98886 at l=0; after 70 rounds the bound is
	// below 50% but above 40%.
	curve, err := SurvivalBound(0, 0.01, 18, 40, 70)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0] != 1 {
		t.Errorf("survival at round 0 = %v, want 1", curve[0])
	}
	if curve[70] >= 0.5 || curve[70] < 0.4 {
		t.Errorf("survival bound at 70 rounds = %v, want in [0.4, 0.5)", curve[70])
	}
	// Monotone decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("survival bound increased at round %d", i)
		}
	}
	// Loss barely changes the decay rate (Figure 6.4's observation).
	lossy, err := SurvivalBound(0.1, 0.01, 18, 40, 70)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossy[70]-curve[70]) > 0.05 {
		t.Errorf("decay rate strongly affected by loss: %v vs %v", lossy[70], curve[70])
	}
	if _, err := SurvivalBound(-0.1, 0, 18, 40, 10); err == nil {
		t.Error("accepted negative loss")
	}
	if _, err := SurvivalBound(0, 0, 41, 40, 10); err == nil {
		t.Error("accepted dL > s")
	}
	if _, err := SurvivalBound(0, 0, 18, 40, -1); err == nil {
		t.Error("accepted negative rounds")
	}
}

func TestHalfLifePaperExample(t *testing.T) {
	// "after merely 70 rounds ... fewer than 50% of the id instances ...
	// are expected to remain" for the example parameters.
	hl, err := HalfLife(0, 0.01, 18, 40)
	if err != nil {
		t.Fatal(err)
	}
	if hl < 55 || hl > 70 {
		t.Errorf("half-life = %d rounds, want ~60-70 per Figure 6.4", hl)
	}
	if _, err := HalfLife(0, 0, 0, 40); err == nil {
		t.Error("accepted dL=0 (no decay)")
	}
}

func TestCreationRateBound(t *testing.T) {
	got, err := CreationRateBound(0, 0.01, 18, 40, 28)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.99 * 18.0 / 1600.0 * 28
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("creation rate = %v, want %v", got, want)
	}
	if _, err := CreationRateBound(0, 0, -1, 40, 28); err == nil {
		t.Error("accepted negative dL")
	}
}

func TestJoinerIntegrationCorollary614(t *testing.T) {
	// Corollary 6.14: s/dL = 2 and l+delta << 1 -> after ~2s rounds the
	// joiner creates at least Din/4 instances.
	rounds, instances, err := JoinerIntegration(0, 0.001, 20, 40, 28)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rounds-2*40/(1-0.001)) > 0.2 {
		t.Errorf("integration rounds = %v, want ~2s = 80", rounds)
	}
	if math.Abs(instances-7) > 1e-9 {
		t.Errorf("instances = %v, want Din/4 = 7", instances)
	}
	if _, _, err := JoinerIntegration(0, 0, 0, 40, 28); err == nil {
		t.Error("accepted dL=0")
	}
}

func TestAlphaLowerBound(t *testing.T) {
	a, err := AlphaLowerBound(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.96) > 1e-12 {
		t.Errorf("alpha bound = %v, want 0.96", a)
	}
	a, err = AlphaLowerBound(0, 0)
	if err != nil || a != 1 {
		t.Errorf("alpha at zero loss = %v, want 1", a)
	}
	// Clamped at zero for extreme rates.
	a, err = AlphaLowerBound(0.4, 0.2)
	if err != nil || a != 0 {
		t.Errorf("alpha at extreme rates = %v, want 0", a)
	}
	if _, err := AlphaLowerBound(0.7, 0.5); err == nil {
		t.Error("accepted l+delta >= 1")
	}
}

func TestDuplicationBounds(t *testing.T) {
	lo, hi, err := DuplicationBounds(0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0.05 || math.Abs(hi-0.06) > 1e-12 {
		t.Errorf("bounds = (%v, %v), want (0.05, 0.06)", lo, hi)
	}
}

func TestConnectivityMinDLPaperExample(t *testing.T) {
	// Section 7.4: l = delta = 1%, eps = 1e-30 -> dL >= 26.
	dl, err := ConnectivityMinDL(0.01, 0.01, 1e-30)
	if err != nil {
		t.Fatal(err)
	}
	if dl != 26 {
		t.Errorf("ConnectivityMinDL = %d, want 26", dl)
	}
}

func TestConnectivityMinDLValidation(t *testing.T) {
	if _, err := ConnectivityMinDL(0.01, 0.01, 0); err == nil {
		t.Error("accepted eps=0")
	}
	if _, err := ConnectivityMinDL(0.01, 0.01, 1); err == nil {
		t.Error("accepted eps=1")
	}
	if _, err := ConnectivityMinDL(0.3, 0.2, 1e-10); err == nil {
		t.Error("accepted alpha=0 parameters")
	}
	// Larger eps needs smaller dL.
	loose, err := ConnectivityMinDL(0.01, 0.01, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ConnectivityMinDL(0.01, 0.01, 1e-30)
	if err != nil {
		t.Fatal(err)
	}
	if loose >= tight {
		t.Errorf("loose eps dL %d >= tight eps dL %d", loose, tight)
	}
}

func TestExpectedConductanceBound(t *testing.T) {
	phi, err := ExpectedConductanceBound(40, 28, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	want := 28.0 * 27 * 0.96 / (2 * 40 * 39)
	if math.Abs(phi-want) > 1e-12 {
		t.Errorf("conductance bound = %v, want %v", phi, want)
	}
	if _, err := ExpectedConductanceBound(1, 1, 1); err == nil {
		t.Error("accepted s=1")
	}
	if _, err := ExpectedConductanceBound(40, 50, 1); err == nil {
		t.Error("accepted dE > s")
	}
	if _, err := ExpectedConductanceBound(40, 28, 0); err == nil {
		t.Error("accepted alpha=0")
	}
}

func TestTemporalIndependenceBound(t *testing.T) {
	tau, err := TemporalIndependenceBound(1000, 40, 28, 0.96, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
	// O(n s log n) scaling: doubling n should grow tau by a factor of
	// roughly 2*log(2n)/log(n) (slightly above 2).
	tau2, err := TemporalIndependenceBound(2000, 40, 28, 0.96, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tau2 / tau
	if ratio < 2 || ratio > 2.4 {
		t.Errorf("tau scaling for 2x n = %v, want slightly above 2", ratio)
	}
	// Per-node actions: tau/n, O(s log n).
	per, err := ActionsPerNode(tau, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per-tau/1000) > 1e-9 {
		t.Errorf("ActionsPerNode = %v", per)
	}
	if _, err := ActionsPerNode(tau, 0); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := TemporalIndependenceBound(1, 40, 28, 0.96, 0.01); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := TemporalIndependenceBound(1000, 40, 28, 0.96, 1); err == nil {
		t.Error("accepted eps=1")
	}
}

func TestZeroLossAlphaOneScaling(t *testing.T) {
	// For zero loss and alpha = 1 the bound is O(n s log n): check the
	// prefactor matches 16 s^2 (s-1)^2 / (dE^2 (dE-1)^2).
	s, dE := 40, 30.0
	tau, err := TemporalIndependenceBound(500, s, dE, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sf := float64(s)
	pre := 16 * sf * sf * (sf - 1) * (sf - 1) / (dE * dE * (dE - 1) * (dE - 1))
	want := pre * (500*sf*math.Log(500) + math.Log(400))
	if math.Abs(tau-want) > 1e-6*want {
		t.Errorf("tau = %v, want %v", tau, want)
	}
}
