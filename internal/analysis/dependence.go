package analysis

import (
	"fmt"

	"sendforget/internal/markov"
)

// DependenceChain materializes the two-state dependence Markov chain of
// Figure 7.1 used in the proof of Lemma 7.9. A nonempty view entry is
// either independent (state 0) or dependent (state 1); per non-self-loop
// transformation involving the entry:
//
//   - independent -> dependent with probability at most (3/2)(l+delta):
//     the entry is duplicated (<= l+delta, Lemma 6.7), inflated by the <= 1/2
//     probability that a previously sent dependent copy returns (Lemma 7.8);
//   - dependent -> independent with probability at least (5/6)(1-(l+delta)):
//     the entry moves without duplication (>= 1-(l+delta)) and is not a
//     self-edge (the self-edge fraction beta is at most 1/6 under
//     Assumption 7.7).
func DependenceChain(l, delta float64) (*markov.Dense, error) {
	if err := checkRates(l, delta); err != nil {
		return nil, err
	}
	toDep := 1.5 * (l + delta)
	toIndep := 5.0 / 6.0 * (1 - (l + delta))
	if toDep > 1 {
		toDep = 1
	}
	c := markov.NewDense(2)
	c.Set(0, 1, toDep)
	c.Set(0, 0, 1-toDep)
	c.Set(1, 0, toIndep)
	c.Set(1, 1, 1-toIndep)
	return c, nil
}

// DependentFraction returns the stationary probability of the dependent
// state of the Figure 7.1 chain — the expected fraction of transformations
// an entry spends dependent, which Lemma 7.9 bounds by 2(l+delta).
func DependentFraction(l, delta float64) (float64, error) {
	if err := checkRates(l, delta); err != nil {
		return 0, err
	}
	toDep := 1.5 * (l + delta)
	toIndep := 5.0 / 6.0 * (1 - (l + delta))
	if toDep+toIndep == 0 {
		return 0, nil
	}
	return toDep / (toDep + toIndep), nil
}

// VerifyLemma79Algebra checks, for the given rates, that the stationary
// dependent fraction of the Figure 7.1 chain is at most 2(l+delta) — the
// final inequality in the proof of Lemma 7.9. It returns the fraction and
// the bound.
func VerifyLemma79Algebra(l, delta float64) (fraction, bound float64, err error) {
	fraction, err = DependentFraction(l, delta)
	if err != nil {
		return 0, 0, err
	}
	bound = 2 * (l + delta)
	if bound > 1 {
		bound = 1
	}
	if fraction > bound+1e-12 {
		return fraction, bound, fmt.Errorf("analysis: dependent fraction %v exceeds Lemma 7.9 bound %v", fraction, bound)
	}
	return fraction, bound, nil
}
