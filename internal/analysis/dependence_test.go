package analysis

import (
	"math"
	"testing"

	"sendforget/internal/markov"
)

func TestDependenceChainStationaryMatchesClosedForm(t *testing.T) {
	for _, rates := range [][2]float64{{0, 0.01}, {0.01, 0.01}, {0.05, 0.01}, {0.1, 0.02}} {
		l, delta := rates[0], rates[1]
		chain, err := DependenceChain(l, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := markov.Validate(chain); err != nil {
			t.Fatal(err)
		}
		pi, _, err := markov.Stationary(chain, nil, 1e-13, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DependentFraction(l, delta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pi[1]-want) > 1e-9 {
			t.Errorf("l=%v delta=%v: chain stationary %v != closed form %v", l, delta, pi[1], want)
		}
	}
}

func TestDependentFractionZeroAtZeroRates(t *testing.T) {
	got, err := DependentFraction(0, 0)
	if err != nil || got != 0 {
		t.Errorf("DependentFraction(0,0) = %v, %v; want 0", got, err)
	}
}

func TestVerifyLemma79AlgebraGrid(t *testing.T) {
	// The final inequality of Lemma 7.9 must hold across the moderate-rate
	// grid the paper targets (l+delta well below 1/2).
	for _, l := range []float64{0, 0.005, 0.01, 0.05, 0.1, 0.2} {
		for _, delta := range []float64{0, 0.005, 0.01, 0.05} {
			frac, bound, err := VerifyLemma79Algebra(l, delta)
			if err != nil {
				t.Errorf("l=%v delta=%v: %v", l, delta, err)
				continue
			}
			if frac < 0 || frac > 1 || bound < 0 {
				t.Errorf("l=%v delta=%v: degenerate values frac=%v bound=%v", l, delta, frac, bound)
			}
			// The fraction grows roughly like 9/5*(l+delta) for small
			// rates; sanity-check the leading constant.
			if l+delta > 0 && l+delta < 0.05 {
				ratio := frac / (l + delta)
				if ratio < 1.5 || ratio > 2.0 {
					t.Errorf("l=%v delta=%v: fraction/(l+delta) = %v, want in [1.5, 2]", l, delta, ratio)
				}
			}
		}
	}
}

func TestDependenceChainValidation(t *testing.T) {
	if _, err := DependenceChain(-0.1, 0); err == nil {
		t.Error("accepted negative loss")
	}
	if _, err := DependentFraction(0.8, 0.5); err == nil {
		t.Error("accepted l+delta >= 1")
	}
}
