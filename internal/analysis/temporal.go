package analysis

import (
	"fmt"
	"math"
)

// ExpectedConductanceBound returns the Lemma 7.14 lower bound on the
// expected conductance of the global MC graph:
//
//	Phi(G) >= dE*(dE-1)*alpha / (2*s*(s-1))
func ExpectedConductanceBound(s int, dE, alpha float64) (float64, error) {
	if s < 2 {
		return 0, fmt.Errorf("analysis: view size %d too small", s)
	}
	if dE < 1 || dE > float64(s) {
		return 0, fmt.Errorf("analysis: expected outdegree %v outside [1, s]", dE)
	}
	if alpha <= 0 || alpha > 1 {
		return 0, fmt.Errorf("analysis: alpha %v outside (0, 1]", alpha)
	}
	return dE * (dE - 1) * alpha / (2 * float64(s) * float64(s-1)), nil
}

// TemporalIndependenceBound returns the Lemma 7.15 upper bound on the
// number of transformations needed, starting from a random steady state, to
// reach a state epsilon-independent of it:
//
//	tau <= 16 s^2 (s-1)^2 / (dE^2 (dE-1)^2 alpha^2) * (n*s*log n + log(4/eps))
//
// For zero loss and alpha = 1 this is O(n*s*log n) transformations, i.e.
// O(s*log n) actions initiated per node.
func TemporalIndependenceBound(n, s int, dE, alpha, eps float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("analysis: n %d too small", n)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("analysis: eps %v outside (0, 1)", eps)
	}
	if _, err := ExpectedConductanceBound(s, dE, alpha); err != nil {
		return 0, err
	}
	sf := float64(s)
	pre := 16 * sf * sf * (sf - 1) * (sf - 1) / (dE * dE * (dE - 1) * (dE - 1) * alpha * alpha)
	return pre * (float64(n)*sf*math.Log(float64(n)) + math.Log(4/eps)), nil
}

// ActionsPerNode converts a transformation-count bound into the expected
// number of actions each node initiates (dividing by n).
func ActionsPerNode(tau float64, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("analysis: n must be positive, got %d", n)
	}
	return tau / float64(n), nil
}
