// Package analyzers is the repository's static-analysis suite: fourteen
// framework.Analyzers that mechanically enforce the determinism,
// lock-discipline, accounting, allocation, goroutine-lifecycle, and
// concurrency invariants the reproduction's correctness and performance
// arguments rest on.
//
// The paper derives the membership properties M1-M5 under a precisely
// controlled randomness model; the model<->simulation cross-validation in
// internal/equivalence and internal/experiments is only evidence if the
// simulator honors that model bit-for-bit. These invariants were previously
// enforced by code review and PR-description convention (PR 2 established
// the lock discipline, PR 3 the seed-derivation rule); this suite promotes
// them to compiler-grade checks run by cmd/sfvet in CI.
//
// The first six analyzers are syntactic, per-package checks:
//
//	detrand        no ambient randomness or wall clock in simulation code
//	seedflow       RNG seeds come from rng.DeriveSeed, never arithmetic
//	lockdiscipline no sends or blocking calls under a node/cluster mutex
//	counterbalance traffic counters move only through their owning package,
//	               and every send is paired with an outcome
//	maporder       no map-iteration order leaking into ordered output
//	substrate      execution backends are built only via runtime.New — no
//	               package outside internal/runtime calls a concrete
//	               substrate constructor
//
// The remaining eight are interprocedural, built on the framework's CFG,
// call graph, taint, escape, and happens-before engines, and see the whole
// loaded program:
//
//	seedtaint no arithmetic-derived seed reaches rng.New through any
//	          chain of calls or assignments
//	lockreach no call that transitively blocks (send, channel op, lock)
//	          while a runtime/engine mutex is held
//	goroleak  every goroutine in the runtime and commands has a
//	          termination path and a shutdown/sync mechanism
//	errdrop   transport/faults errors are consulted, never discarded
//	hotalloc  no allocation site reachable from a //vet:hotpath root —
//	          the zero-alloc tick guarantee, proved over every branch
//	          instead of sampled by alloc counters
//	atomicmix no field accessed both via sync/atomic and by plain
//	          read/write without a mutex held
//	sharedguard conflicting accesses to substrate state (runtime, mgmt,
//	          driver, transport) must be ordered by a happens-before
//	          edge, excluded by a common lock, or provably confined
//	shardconfine fields annotated //vet:confined are only touched by
//	          their owning shard's worker between barrier phases or
//	          while holding the engine's gate token
//
// Exceptions are granted per line with `//lint:allow <analyzer> <reason>`
// (see the framework package).
package analyzers

import (
	"strings"

	"sendforget/internal/analyzers/framework"
)

// All returns the full suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		Detrand,
		Seedflow,
		Lockdiscipline,
		Counterbalance,
		Maporder,
		Substrate,
		Seedtaint,
		Lockreach,
		Goroleak,
		Errdrop,
		Hotalloc,
		Atomicmix,
		Sharedguard,
		Shardconfine,
	}
}

// fixturePackage reports whether path names an analysistest fixture package
// (testdata packages are loaded under their bare directory name, with no
// slash). Fixtures opt in to every scope so each analyzer can be exercised.
func fixturePackage(path string) bool {
	return !strings.Contains(path, "/")
}

// deterministicPackage reports whether the package must be bit-for-bit
// reproducible: every internal package is — the simulators, chains, and
// experiment drivers directly, and the support packages because the
// simulators call them — and so are the command mains (cmd/...), which
// drive experiments whose results must replay from a -seed flag alone.
// Intentional entropy and wall-clock progress timing in commands carry
// explicit `//lint:allow detrand` directives.
func deterministicPackage(path string) bool {
	return fixturePackage(path) ||
		strings.HasPrefix(path, "sendforget/internal/") ||
		strings.HasPrefix(path, "sendforget/cmd/")
}
