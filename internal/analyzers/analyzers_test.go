package analyzers

import (
	"path/filepath"
	"testing"

	"sendforget/internal/analyzers/framework"
	"sendforget/internal/rng"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestDetrandFixture(t *testing.T) {
	framework.RunFixture(t, fixture("detrand"), Detrand)
}

func TestSeedflowFixture(t *testing.T) {
	framework.RunFixture(t, fixture("seedflow"), Seedflow)
}

func TestLockdisciplineFixture(t *testing.T) {
	framework.RunFixture(t, fixture("lockdiscipline"), Lockdiscipline)
}

func TestCounterbalanceFixture(t *testing.T) {
	framework.RunFixture(t, fixture("counterbalance"), Counterbalance)
}

func TestMaporderFixture(t *testing.T) {
	framework.RunFixture(t, fixture("maporder"), Maporder)
}

func TestSeedtaintFixture(t *testing.T) {
	framework.RunFixture(t, fixture("seedtaint"), Seedtaint)
}

func TestLockreachFixture(t *testing.T) {
	framework.RunFixture(t, fixture("lockreach"), Lockreach)
}

func TestGoroleakFixture(t *testing.T) {
	framework.RunFixture(t, fixture("goroleak"), Goroleak)
}

func TestErrdropFixture(t *testing.T) {
	framework.RunFixture(t, fixture("errdrop"), Errdrop)
}

func TestSubstrateFixture(t *testing.T) {
	framework.RunFixture(t, fixture("substrate"), Substrate)
}

// TestSeedtaintSeesWhatSeedflowMisses pins the gap that justifies the
// interprocedural engine: every flagged case in the seedtaint fixture hides
// its arithmetic behind a helper whose parameters are not seed-named, so
// the syntactic seedflow analyzer reports nothing on the package — while
// seedtaint, following the taint through calls and fields, flags the PR 3
// collision scheme end to end.
func TestSeedtaintSeesWhatSeedflowMisses(t *testing.T) {
	dir := fixture("seedtaint")

	syntactic, err := framework.FixtureDiagnostics(dir, Seedflow)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range syntactic {
		t.Errorf("seedflow unexpectedly sees through the helper: %s", d)
	}

	interproc, err := framework.FixtureDiagnostics(dir, Seedtaint)
	if err != nil {
		t.Fatal(err)
	}
	if len(interproc) != 3 {
		t.Fatalf("want 3 seedtaint diagnostics (helper, inline, field), got %d: %v", len(interproc), interproc)
	}
	for _, d := range interproc {
		if d.Analyzer != "seedtaint" {
			t.Errorf("diagnostic from %q, want seedtaint: %s", d.Analyzer, d)
		}
	}
}

// TestSeedflowCatchesPR3Collision is the regression test for the PR 3 seed
// bug: the cluster derived node u's initial stream from Seed+u+1 and its
// rejoin stream from Seed+u+7919, so a rejoining node u replayed the
// initial stream of node u+7918. The test asserts (a) seedflow flags both
// derivations in the replayed scheme, (b) the historical scheme really does
// collide, and (c) rng.DeriveSeed on the same part tuples does not.
func TestSeedflowCatchesPR3Collision(t *testing.T) {
	dir := fixture("seedcollision")
	framework.RunFixture(t, dir, Seedflow)

	diags, err := framework.FixtureDiagnostics(dir, Seedflow)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 seedflow diagnostics for the PR 3 scheme, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "seedflow" {
			t.Errorf("diagnostic from %q, want seedflow: %s", d.Analyzer, d)
		}
	}

	// (b) The collision itself: node u's rejoin stream equals node
	// w = u+7918's initial stream under the additive scheme.
	const seed = 42
	const u = int64(3)
	w := u + 7918
	rejoin := rng.New(seed + u + 7919)
	initial := rng.New(seed + w + 1)
	for i := 0; i < 8; i++ {
		if got, want := rejoin.Uint64(), initial.Uint64(); got != want {
			t.Fatalf("draw %d: expected the historical additive scheme to collide (got %d vs %d)", i, got, want)
		}
	}

	// (c) DeriveSeed decorrelates the same part tuples.
	a := rng.New(rng.DeriveSeed(seed, u, 7919))
	b := rng.New(rng.DeriveSeed(seed, w, 1))
	identical := true
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("rng.DeriveSeed streams collide on the PR 3 part tuples")
	}
}

// TestRepoClean re-runs the full suite over the whole module as one
// program — so the interprocedural analyzers see every cross-package call
// edge, exactly as cmd/sfvet does — pinning the "sfvet runs clean"
// invariant into the ordinary test run.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	loader, err := framework.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	prog := framework.NewProgram(pkgs)
	diags, err := prog.AnalyzeAll(All(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
