package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Atomicmix flags variables accessed both through the classic sync/atomic
// function API (atomic.AddInt64(&x.n, 1), atomic.LoadUint32(&v), ...) and by
// plain read/write with no mutex held. Mixing the two is a data race even
// when each side looks locally innocent: the plain access can tear, be
// reordered, or read a stale value, and -race only catches the schedules it
// happens to see.
//
// The repo's sanctioned pattern is the one runtime.Node.SetPeriod (PR 8)
// uses: a *typed* atomic (atomic.Int64) for the shared word — which makes
// unsynchronized plain access a compile error — plus a channel for the
// wakeup edge. The regression this analyzer guards against is the classic
// form creeping back in during a refactor: someone converts the field to a
// plain int64 "because only one writer exists", keeps atomic.LoadInt64 on
// the reader, and writes it bare in Reconfigure.
//
// Mechanics: a program-wide pass collects every object (field or variable)
// whose address is passed to a classic sync/atomic function. Then each
// function in every package runs the same CFG-based may-hold lock dataflow
// lockreach uses; a plain mention of a monitored object at a point where no
// mutex may be held is reported, pointing back at the atomic access site.
// Accesses under any held mutex are accepted — the analyzer checks the
// atomic/plain mix, not which mutex is the right one. Typed atomics are out
// of scope: the type system already polices them.
var Atomicmix = &framework.Analyzer{
	Name: "atomicmix",
	Doc:  "no field accessed both via sync/atomic and by plain read/write without a mutex held",
	Run:  runAtomicmix,
}

// atomicUses maps each object reached by a classic &x atomic call to the
// position of one such call, for the diagnostic.
type atomicUses map[types.Object]token.Position

func runAtomicmix(pass *framework.Pass) error {
	uses := pass.Prog.Shared("atomicmix.uses", func() any {
		return collectAtomicUses(pass.Prog)
	}).(atomicUses)
	if len(uses) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAtomicmix(pass, fd.Body, uses)
		}
	}
	return nil
}

// collectAtomicUses scans every source package for classic sync/atomic
// calls and records the objects their first &-argument addresses.
func collectAtomicUses(prog *framework.Program) atomicUses {
	uses := make(atomicUses)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj := classicAtomicTarget(pkg.Info, call); obj != nil {
					if _, seen := uses[obj]; !seen {
						uses[obj] = pkg.Fset.Position(call.Pos())
					}
				}
				return true
			})
		}
	}
	return uses
}

// classicAtomicTarget returns the object addressed by the first argument of
// a classic sync/atomic function call (atomic.AddInt64(&c.n, 1) -> field n),
// or nil when call is anything else. Methods on the typed atomics also live
// in package sync/atomic but arrive as method selections, which the
// Selections check excludes.
func classicAtomicTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, isMethod := info.Selections[sel]; isMethod {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
		strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"), strings.HasPrefix(name, "Or"),
		strings.HasPrefix(name, "And"):
	default:
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil
	}
	return addressedObject(info, addr.X)
}

// addressedObject resolves &expr's target to a field or variable object.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}

// checkAtomicmix runs the may-hold lock dataflow over one body and reports
// plain mentions of atomically-accessed objects at lock-free points.
// Function literals get their own analysis with an empty held set — a
// callback does not inherit its creator's critical section.
func checkAtomicmix(pass *framework.Pass, body *ast.BlockStmt, uses atomicUses) {
	cfg := framework.BuildCFG(body)
	transfer := func(b *framework.Block, in heldFact) heldFact {
		out := in.clone()
		for _, n := range b.Nodes {
			applyLockOps(pass.TypesInfo, n, out)
		}
		return out
	}
	join := func(a, b heldFact) heldFact {
		m := a.clone()
		for k := range b {
			m[k] = true
		}
		return m
	}
	equal := func(a, b heldFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	entry := framework.ForwardDataflow(cfg, heldFact{}, transfer, join, equal)

	reported := map[token.Pos]bool{}
	for _, blk := range cfg.Blocks {
		held, ok := entry[blk]
		if !ok {
			continue // unreachable block
		}
		held = held.clone()
		for _, n := range blk.Nodes {
			if len(held) == 0 {
				reportPlainAtomicAccess(pass, n, uses, reported)
			}
			applyLockOps(pass.TypesInfo, n, held)
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkAtomicmix(pass, lit.Body, uses)
			return false
		}
		return true
	})
}

// reportPlainAtomicAccess reports plain mentions of monitored objects inside
// one CFG node. Atomic calls on the objects are skipped whole (they are the
// sanctioned access), as are composite-literal field keys (naming a field is
// not accessing it) and nested literals (analyzed separately).
func reportPlainAtomicAccess(pass *framework.Pass, node ast.Node, uses atomicUses, reported map[token.Pos]bool) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if classicAtomicTarget(pass.TypesInfo, n) != nil {
					// The atomic access itself; its remaining arguments still
					// need checking (atomic.StoreInt64(&c.n, c.m) reads c.m).
					for _, arg := range n.Args[1:] {
						walk(arg)
					}
					return false
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						walk(kv.Value)
					} else {
						walk(elt)
					}
				}
				return false
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil {
					if at, monitored := uses[obj]; monitored && !reported[n.Pos()] {
						reported[n.Pos()] = true
						pass.Reportf(n.Pos(),
							"%s is accessed atomically (%s) but plainly here with no mutex held; use the atomic API or hold the lock",
							n.Name, at)
					}
				}
			}
			return true
		})
	}
	walk(node)
}
