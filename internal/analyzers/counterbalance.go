package analyzers

import (
	"go/ast"
	"go/types"

	"sendforget/internal/analyzers/framework"
)

// Counterbalance guards the unified traffic-accounting identity documented
// on metrics.Traffic: every attempted transmission is counted under a send
// field (Sent/Sends) exactly once, and then lands in exactly one outcome —
// lost, delivered, or dead-lettered — possibly after a stay in the delay
// queue. The cross-substrate loss experiments compare these ledgers between
// the sequential engine and the concurrent runtime; a counter nudged
// outside the accounting helpers silently invalidates the comparison while
// every test still passes.
//
// A struct type is treated as a traffic ledger when it declares a send
// field (Sent or Sends) alongside at least two outcome fields (Lost,
// Losses, Delivered, Deliveries, NoRoute, DeadLetters, Delayed). That
// shape matches metrics.Traffic, transport.Counters, engine.Counters, and
// trace.Summary — and deliberately excludes per-node tallies like
// runtime.NodeCounters, which have no outcome side.
//
// Two rules are enforced on ledger fields:
//
//  1. Only the package that declares a ledger type may write its fields.
//     Everyone else consumes ledgers read-only (experiments, equivalence,
//     reports) or constructs them whole via composite literals, which the
//     analyzer does not flag: a literal states a complete ledger, it does
//     not perturb a live one.
//
//  2. Inside the declaring package, a function that increments a send
//     field must also write at least one outcome field (in some branch) or
//     hand the message to the delay queue (Delayed): counting an attempt
//     without recording where it landed breaks Sends = Losses + Deliveries
//     + DeadLetters once the queue drains. Outcome-only functions (delay
//     queue drains) are legal; send-only functions are not.
//
// Suite history: the suite's first full-repo run verified that all live
// ledger writes sit in transport.Network.Send/Advance, engine.transmit/
// drainDue, and trace.Summarize, each balanced; this analyzer keeps new
// accounting honest.
var Counterbalance = &framework.Analyzer{
	Name: "counterbalance",
	Doc:  "traffic ledger fields move only in their owning package, and every send write is paired with an outcome write",
	Run:  runCounterbalance,
}

var counterSendFields = map[string]bool{
	"Sent": true, "Sends": true,
}

var counterOutcomeFields = map[string]bool{
	"Lost": true, "Losses": true,
	"Delivered": true, "Deliveries": true,
	"NoRoute": true, "DeadLetters": true,
	"Delayed": true,
}

func runCounterbalance(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCounterWrites(pass, fd)
		}
	}
	return nil
}

// counterWrite is one mutation of a ledger field.
type counterWrite struct {
	pos   ast.Node
	field string
	owner *types.Package // package declaring the ledger type
	typ   string         // ledger type name, for diagnostics
}

func checkCounterWrites(pass *framework.Pass, fd *ast.FuncDecl) {
	var sends, outcomes []counterWrite
	record := func(target ast.Expr) {
		w, ok := ledgerFieldWrite(pass, target)
		if !ok {
			return
		}
		if w.owner != pass.Pkg {
			pass.Reportf(w.pos.Pos(),
				"direct write to %s.%s outside its accounting package %s: route the event through the owning package's counters",
				w.typ, w.field, w.owner.Path())
			return
		}
		if counterSendFields[w.field] {
			sends = append(sends, w)
		} else {
			outcomes = append(outcomes, w)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		}
		return true
	})
	if len(sends) > 0 && len(outcomes) == 0 {
		w := sends[0]
		pass.Reportf(w.pos.Pos(),
			"%s counts a send (%s.%s) but records no outcome: every attempt must land in lost, delivered, dead-letter, or the delay queue",
			fd.Name.Name, w.typ, w.field)
	}
}

// ledgerFieldWrite resolves a write target to a ledger field, if it is one.
func ledgerFieldWrite(pass *framework.Pass, target ast.Expr) (counterWrite, bool) {
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		return counterWrite{}, false
	}
	field := sel.Sel.Name
	if !counterSendFields[field] && !counterOutcomeFields[field] {
		return counterWrite{}, false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return counterWrite{}, false
	}
	recv := selection.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return counterWrite{}, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || !isLedgerStruct(st) {
		return counterWrite{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return counterWrite{}, false
	}
	return counterWrite{pos: sel, field: field, owner: obj.Pkg(), typ: obj.Name()}, true
}

// isLedgerStruct applies the structural ledger test: an integer send field
// plus at least two integer outcome fields. The integer requirement keeps
// per-event records like engine.ActionEvent (whose Sent and Lost are bools
// describing one action, not tallies) out of the ledger rules.
func isLedgerStruct(st *types.Struct) bool {
	sendN, outcomeN := 0, 0
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		if counterSendFields[f.Name()] {
			sendN++
		}
		if counterOutcomeFields[f.Name()] {
			outcomeN++
		}
	}
	return sendN >= 1 && outcomeN >= 2
}
