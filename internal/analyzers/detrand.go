package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"sendforget/internal/analyzers/framework"
)

// Detrand forbids ambient randomness and wall-clock reads in deterministic
// packages: importing math/rand, math/rand/v2, or crypto/rand, and calling
// time.Now, time.Since, or time.Until. Every random draw in simulation and
// analysis code must flow through internal/rng (seeded xoshiro256**), and
// simulated time must be logical (rounds, steps, ticks) — otherwise
// experiment results stop being bit-reproducible across runs, hosts, and
// -parallel worker counts, and the model<->simulation cross-validation the
// paper's argument rests on loses its footing.
//
// time.Duration arithmetic and timers (time.NewTicker in the concurrent
// runtime) remain legal: the runtime's job is wall-clock pacing, and pacing
// does not feed protocol decisions. Reading the clock does.
//
// The one sanctioned escape is internal/rng itself, which may wrap an
// entropy source behind a `//lint:allow detrand` directive (rng.AutoSeed
// uses crypto/rand this way) so that even nondeterministic seeding for
// production nodes enters through the audited package. Calling AutoSeed is
// itself a detrand finding: each call site injects entropy and must carry
// its own `//lint:allow detrand` explaining why the run need not replay.
//
// Scope: all of internal/... and — since the suite went interprocedural —
// the command mains under cmd/..., whose experiment runs must replay from a
// -seed flag alone. Wall-clock progress timing written to stderr is legal
// there but must be visibly allowed.
//
// Suite history: the suite's first full-repo run found no live violations —
// PR 1-3 had already scrubbed them by hand; this analyzer keeps it that way.
var Detrand = &framework.Analyzer{
	Name: "detrand",
	Doc:  "forbid ambient randomness (math/rand, crypto/rand) and wall-clock reads (time.Now) in deterministic packages",
	Run:  runDetrand,
}

// detrandForbiddenImports maps forbidden import paths to the reason shown in
// the diagnostic.
var detrandForbiddenImports = map[string]string{
	"math/rand":    "unseeded ambient randomness",
	"math/rand/v2": "unseeded ambient randomness",
	"crypto/rand":  "nondeterministic entropy",
}

// detrandForbiddenTimeFuncs are the wall-clock reads in package time.
var detrandForbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *framework.Pass) error {
	if !deterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if reason, bad := detrandForbiddenImports[path]; bad {
				pass.Reportf(spec.Pos(),
					"import of %s (%s) in deterministic package %s: all randomness must flow through internal/rng",
					path, reason, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && detrandForbiddenTimeFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to time.%s in deterministic package %s: simulated time must be logical (rounds/steps), not wall clock",
					fn.Name(), pass.Pkg.Path())
			}
			if fn.Name() == "AutoSeed" && fn.Pkg().Path() == rngPkgPath {
				pass.Reportf(call.Pos(),
					"call to rng.AutoSeed injects nondeterministic entropy into package %s: use an explicit seed, or allow this site with a reason",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
