package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Errdrop forbids silently discarding the error results of transport and
// fault-layer send/receive calls. Those errors are the experiment's ground
// truth: the unified traffic ledger and the loss-rate accounting (PR 2/3)
// depend on every failed send being either recorded as an outcome or
// propagated to a caller that records it. A dropped transport error is an
// unaccounted loss — the empirical loss rate drifts below the configured
// model and the paper's predicted-vs-measured comparison silently skews.
//
// Three discard shapes are reported, resolved through the call graph so
// interface-typed sends (runtime.Sender) count the same as direct ones:
//
//   - an ExprStmt call: `ep.Send(dst, msg)` with the error unbound,
//   - a blank assignment: `_ = ep.Send(dst, msg)`,
//   - a bound-but-dead error: `err := ep.Send(...)` where err is never
//     read again in the enclosing function.
//
// Close is exempt (shutdown-path errors carry no accounting value), as are
// calls under defer/go statements — a deferred or spawned send has no
// caller left to consult the error, and goroleak/lockreach police those
// shapes separately. The transport and fault packages themselves are out
// of scope: their internals are where errors originate, not where they
// must be accounted.
var Errdrop = &framework.Analyzer{
	Name: "errdrop",
	Doc:  "transport/faults send and receive errors must be consulted — recorded as an outcome or propagated, never discarded",
	Run:  runErrdrop,
}

func errdropScoped(path string) bool {
	if strings.HasPrefix(path, "sendforget/internal/transport") ||
		strings.HasPrefix(path, "sendforget/internal/faults") {
		return false
	}
	return fixturePackage(path) ||
		strings.HasPrefix(path, "sendforget/internal/") ||
		strings.HasPrefix(path, "sendforget/cmd/")
}

func runErrdrop(pass *framework.Pass) error {
	if !errdropScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkErrdropBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkErrdropBody scans one function body (including nested literals — a
// closure's error variable lives in the same object space) for the three
// discard shapes.
func checkErrdropBody(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if name, ok := errdropMonitored(pass, call); ok {
					pass.Reportf(call.Pos(),
						"error returned by %s is discarded: record the outcome or propagate it", name)
				}
			}
		case *ast.AssignStmt:
			errdropCheckAssign(pass, body, n)
		}
		return true
	})
}

// errdropCheckAssign handles `_ = send(...)` and `err := send(...)` where
// err is never read afterwards.
func errdropCheckAssign(pass *framework.Pass, scope *ast.BlockStmt, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := errdropMonitored(pass, call)
	if !ok {
		return
	}
	idx := errdropErrIndex(pass.TypesInfo, call)
	if idx < 0 || idx >= len(as.Lhs) {
		return
	}
	id, ok := ast.Unparen(as.Lhs[idx]).(*ast.Ident)
	if !ok {
		// Stored into a field or index expression: treated as escaping to
		// wherever that structure is consulted.
		return
	}
	if id.Name == "_" {
		pass.Reportf(id.Pos(),
			"error returned by %s is assigned to _: record the outcome or propagate it", name)
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if !errdropConsulted(pass.TypesInfo, scope, id, obj) {
		pass.Reportf(id.Pos(),
			"error %s from %s is bound but never consulted: record the outcome or propagate it", id.Name, name)
	}
}

// errdropConsulted reports whether obj is *read* anywhere in scope other
// than at the binding identifier itself. Idents appearing as assignment
// targets are writes, not reads, and do not count; neither does the
// compiler-pacifying `_ = err` discard, which is exactly the shape this
// analyzer exists to reject.
func errdropConsulted(info *types.Info, scope *ast.BlockStmt, binding *ast.Ident, obj types.Object) bool {
	writes := map[*ast.Ident]bool{binding: true}
	ast.Inspect(scope, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				writes[id] = true
				if id.Name == "_" && len(as.Lhs) == len(as.Rhs) {
					if rhs, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
						writes[rhs] = true // `_ = err` is a discard, not a read
					}
				}
			}
		}
		return true
	})
	consulted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if consulted {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || writes[id] {
			return true
		}
		if info.Uses[id] == obj {
			consulted = true
			return false
		}
		return true
	})
	return consulted
}

// errdropMonitored reports whether the call targets a transport/faults
// function (directly or through CHA-resolved interface dispatch) that
// returns an error, and names it for the diagnostic. Close is exempt. In
// fixture packages, methods and functions named Send/Receive/Recv/SendTo
// stand in for the transport layer.
func errdropMonitored(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	if errdropErrIndex(pass.TypesInfo, call) < 0 {
		return "", false
	}
	for _, fn := range pass.Prog.CallGraph.Callees(pass.TypesInfo, call) {
		if fn.Name() == "Close" || fn.Pkg() == nil {
			continue
		}
		path := fn.Pkg().Path()
		monitored := strings.HasPrefix(path, "sendforget/internal/transport") ||
			strings.HasPrefix(path, "sendforget/internal/faults") ||
			(fixturePackage(path) && errdropFixtureName(fn.Name()))
		if monitored {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return fmt.Sprintf("(%s).%s", recv.Type(), fn.Name()), true
			}
			return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name()), true
		}
	}
	return "", false
}

func errdropFixtureName(name string) bool {
	switch name {
	case "Send", "Receive", "Recv", "SendTo":
		return true
	}
	return false
}

// errdropErrIndex returns the result index of the call's error value, or -1
// when the call returns no error.
func errdropErrIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return -1
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return i
			}
		}
		return -1
	}
	if types.Identical(tv.Type, errType) {
		return 0
	}
	return -1
}
