package framework

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at dir, applies the analyzers, and
// compares the surviving diagnostics against the fixture's expectations —
// the analysistest contract. Each source line may carry a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// naming, in order, the diagnostics expected on that line. Lines without a
// want comment expect none. //lint:allow directives are honored before
// matching, so fixtures can cover the suppression mechanism itself.
func RunFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	diags, wants, err := runFixture(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q (want comment unsatisfied)", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
}

// FixtureDiagnostics loads and analyzes a fixture package, returning the
// surviving diagnostics without asserting on want comments. Regression
// tests use it to probe specific scenarios directly.
func FixtureDiagnostics(dir string, analyzers ...*Analyzer) ([]Diagnostic, error) {
	diags, _, err := runFixture(dir, analyzers)
	return diags, err
}

func runFixture(dir string, analyzers []*Analyzer) ([]Diagnostic, []wantExpectation, error) {
	loader, err := NewLoader("")
	if err != nil {
		return nil, nil, err
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return nil, nil, err
	}
	var wants []wantExpectation
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		fw, err := parseWants(filename)
		if err != nil {
			return nil, nil, err
		}
		wants = append(wants, fw...)
	}
	return diags, wants, nil
}

// wantExpectation is one expected diagnostic parsed from a want comment.
type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts want expectations from one source file.
func parseWants(filename string) ([]wantExpectation, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	var wants []wantExpectation
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		patterns, err := splitQuoted(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed want comment: %w", filepath.Base(filename), i+1, err)
		}
		for _, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", filepath.Base(filename), i+1, p, err)
			}
			wants = append(wants, wantExpectation{file: filename, line: i + 1, re: re})
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted strings ("..." or `...`).
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		quote := s[0]
		end := 1
		for ; end < len(s); end++ {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
		}
		if end == len(s) {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %w", s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
