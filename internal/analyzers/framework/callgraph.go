package framework

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// CallGraph is a static call graph spanning every package a Program loaded
// from source, in the class-hierarchy-analysis (CHA) style: a direct call
// resolves to its single static callee, and a call through an interface
// method resolves to that method on every named type in the module whose
// method set implements the interface. Function-valued calls (variables,
// fields, parameters of func type) resolve to nothing — callers must treat
// them as unknown.
//
// The CHA universe is deliberately bounded to the module's own packages
// (import path prefix of the module root): resolving error.Error or
// fmt.Stringer.String against the whole standard library would drown every
// analysis in irrelevant edges, while intra-module interfaces — the
// protocol.StepCore implementations, the loss.Model family, the
// runtime.Sender transports — resolve precisely.
type CallGraph struct {
	modulePrefix string
	// decls maps a function or method object to its source declaration.
	decls map[*types.Func]*FuncSource
	// named is the CHA universe: every named (non-interface) type declared
	// in a module package, source-loaded or imported via export data.
	named []*types.Named
	// implCache memoizes interface-method -> concrete-methods resolution.
	// implMu guards it: Callees runs from parallel per-package passes.
	implMu    sync.Mutex
	implCache map[*types.Func][]*types.Func
}

// FuncSource locates one function's source: the package it was loaded from
// and its declaration (Decl.Body may be nil for assembly stubs).
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// buildCallGraph indexes declarations and the CHA type universe for the
// given source packages. modulePrefix bounds the universe ("sendforget/");
// an empty prefix admits every package the type-checker saw.
func buildCallGraph(pkgs []*Package, modulePrefix string) *CallGraph {
	g := &CallGraph{
		modulePrefix: modulePrefix,
		decls:        make(map[*types.Func]*FuncSource),
		implCache:    make(map[*types.Func][]*types.Func),
	}
	seenPkg := make(map[*types.Package]bool)
	var collectTypes func(tp *types.Package)
	collectTypes = func(tp *types.Package) {
		if tp == nil || seenPkg[tp] {
			return
		}
		seenPkg[tp] = true
		if g.inUniverse(tp.Path()) {
			scope := tp.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				if named, ok := tn.Type().(*types.Named); ok {
					if _, isIface := named.Underlying().(*types.Interface); !isIface {
						g.named = append(g.named, named)
					}
				}
			}
		}
		for _, imp := range tp.Imports() {
			collectTypes(imp)
		}
	}
	for _, pkg := range pkgs {
		collectTypes(pkg.Types)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = &FuncSource{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	// Fixture packages are loaded under bare directory names with no slash;
	// they are always in the universe (see inUniverse), and sorting keeps
	// CHA resolution order deterministic.
	sort.Slice(g.named, func(i, j int) bool {
		return g.named[i].Obj().Id() < g.named[j].Obj().Id()
	})
	return g
}

func (g *CallGraph) inUniverse(path string) bool {
	return g.modulePrefix == "" || strings.HasPrefix(path, g.modulePrefix) ||
		!strings.Contains(path, "/") // testdata fixture packages
}

// SourceOf returns the source declaration of fn, or nil when fn was loaded
// from export data only (or is synthetic).
func (g *CallGraph) SourceOf(fn *types.Func) *FuncSource {
	if fn == nil {
		return nil
	}
	return g.decls[fn]
}

// FuncOf returns the function object a declaration defines, using the
// declaring package's type info.
func FuncOf(pkg *Package, decl *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	return fn
}

// Callees resolves one call expression against the graph using the calling
// package's type info. It returns the possible callees: exactly one for a
// static call, every CHA-compatible concrete method for an interface call,
// and nil for calls through function values, builtins, and conversions.
func (g *CallGraph) Callees(info *types.Info, call *ast.CallExpr) []*types.Func {
	fun := ast.Unparen(call.Fun)
	// A conversion is not a call.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
		if fn, ok := info.Defs[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return g.implementations(sel.Recv(), fn)
			}
			return []*types.Func{fn}
		}
		// Package-qualified function (rng.New, time.Sleep).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return []*types.Func{fn}
		}
	}
	return nil
}

// implementations performs the CHA step: the concrete methods named like
// method on every universe type whose method set satisfies the interface.
func (g *CallGraph) implementations(recv types.Type, method *types.Func) []*types.Func {
	g.implMu.Lock()
	defer g.implMu.Unlock()
	if cached, ok := g.implCache[method]; ok {
		return cached
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	g.implCache[method] = out
	return out
}

// GoroutineEntry resolves the function a go statement launches: the literal
// itself for `go func(){...}()`, the static callee's source for
// `go ep.receiveLoop()`. It returns the body to analyze and the package
// whose type info covers it, or ok=false when the target is dynamic (a
// function value) or has no source.
func (g *CallGraph) GoroutineEntry(pkg *Package, s *ast.GoStmt) (body *ast.BlockStmt, in *Package, ok bool) {
	if lit, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit); isLit {
		return lit.Body, pkg, true
	}
	for _, fn := range g.Callees(pkg.Info, s.Call) {
		if src := g.SourceOf(fn); src != nil && src.Decl.Body != nil {
			return src.Decl.Body, src.Pkg, true
		}
	}
	return nil, nil, false
}
