package framework

import (
	"go/ast"
	"sort"
	"testing"
)

// TestCHAResolvesStepCoreImplementations is the call-graph acceptance test:
// the interface call n.core.Initiate(...) in runtime.Node must resolve,
// class-hierarchy style, to the Initiate method of every protocol core in
// the module — the five StepCore implementations — because that edge is
// what lets lockreach and goroleak see through the runtime's
// protocol-agnostic indirection.
func TestCHAResolvesStepCoreImplementations(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the runtime and every protocol package")
	}
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./internal/runtime", "./internal/protocol/...")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(pkgs)
	rt := prog.Package("sendforget/internal/runtime")
	if rt == nil {
		t.Fatal("runtime package not loaded")
	}

	var call *ast.CallExpr
	for _, f := range rt.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call != nil {
				return false
			}
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Initiate" {
				call = c
				return false
			}
			return true
		})
	}
	if call == nil {
		t.Fatal("no Initiate call site found in internal/runtime")
	}

	callees := prog.CallGraph.Callees(rt.Info, call)
	gotPkgs := map[string]bool{}
	for _, fn := range callees {
		if fn.Name() != "Initiate" {
			t.Errorf("resolved to non-Initiate method %s", fn.FullName())
		}
		if fn.Pkg() != nil {
			gotPkgs[fn.Pkg().Path()] = true
		}
	}
	wantPkgs := []string{
		"sendforget/internal/protocol/flipper",
		"sendforget/internal/protocol/pushpull",
		"sendforget/internal/protocol/sendforget",
		"sendforget/internal/protocol/sfopt",
		"sendforget/internal/protocol/shuffle",
	}
	for _, p := range wantPkgs {
		if !gotPkgs[p] {
			got := make([]string, 0, len(gotPkgs))
			for k := range gotPkgs {
				got = append(got, k)
			}
			sort.Strings(got)
			t.Errorf("CHA missed implementation in %s; resolved packages: %v", p, got)
		}
	}

	// Every resolved method must have source available for interprocedural
	// analyses to descend into.
	for _, fn := range callees {
		if prog.CallGraph.SourceOf(fn) == nil {
			t.Errorf("no source for resolved callee %s", fn.FullName())
		}
	}
}
