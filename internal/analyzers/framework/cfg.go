package framework

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block of a control-flow graph: a maximal run of
// branch-free statements and expressions, executed in order, followed by an
// unconditional transfer to one of Succs. Nodes holds the statements and the
// control expressions (an if condition, a switch tag, a range operand) in
// evaluation order.
type Block struct {
	Index int
	// Kind describes why the block exists ("entry", "if.then", "for.head",
	// ...); it is stable and part of the golden-test contract.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic return point every terminating path
// reaches. Deferred calls are collected in Defers (in registration order)
// rather than wired into the edges: they run at every function exit, and
// analyses that care (lock modeling, shutdown detection) treat them
// explicitly.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.CallExpr
}

// BuildCFG constructs the control-flow graph of a function body. The
// builder understands if/else, for (including for{} with no exit edge),
// range, switch with fallthrough, type switch, select, labeled
// break/continue, goto, panic, and defer. It is purely syntactic: no type
// information is needed, so it works on any parsed file.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
		loops:  make(map[string]*loopTargets),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.link(b.cur, b.cfg.Exit)
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

// ExitReachable reports whether any path from Entry reaches Exit — i.e.
// whether the function can terminate by falling off the end or returning
// (panics also route to Exit). A goroutine body whose CFG cannot reach Exit
// runs forever.
func (c *CFG) ExitReachable() bool {
	return c.reachableFrom(c.Entry)[c.Exit]
}

// reachableFrom returns the set of blocks reachable from start (inclusive).
func (c *CFG) reachableFrom(start *Block) map[*Block]bool {
	seen := map[*Block]bool{start: true}
	work := []*Block{start}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// String renders the graph in the compact golden-test format, one block per
// line: index, kind, abbreviated node syntax, and successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			parts := make([]string, len(blk.Nodes))
			for i, n := range blk.Nodes {
				parts[i] = nodeText(n)
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	if len(c.Defers) > 0 {
		parts := make([]string, len(c.Defers))
		for i, d := range c.Defers {
			parts[i] = nodeText(d)
		}
		fmt.Fprintf(&sb, "defers {%s}\n", strings.Join(parts, "; "))
	}
	return sb.String()
}

// nodeText prints a node's syntax on one line, truncated for readability.
func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), n)
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// loopTargets records where break and continue transfer for one loop (or
// switch/select, which only has a break target).
type loopTargets struct {
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return/break/goto/panic) until the next reachable statement.
	cur *Block
	// loopStack tracks enclosing break/continue targets, innermost last.
	loopStack []*loopTargets
	// loops maps label names to their loop's targets for labeled
	// break/continue; labels maps label names to goto target blocks.
	loops        map[string]*loopTargets
	labels       map[string]*Block
	pendingLabel string
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, starting an unreachable one if control
// cannot arrive here (statements after return/break).
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// startBlock ends the current block and begins a new one linked from it.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.link(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// pushLoop registers the targets (also under the pending label, if any).
func (b *cfgBuilder) pushLoop(t *loopTargets) string {
	b.loopStack = append(b.loopStack, t)
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.loops[label] = t
	}
	return label
}

func (b *cfgBuilder) popLoop(label string) {
	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	if label != "" {
		delete(b.loops, label)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// A label is a join point: goto may enter here.
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = lb
		}
		if b.cur != nil {
			b.link(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, false); t != nil {
				b.link(b.ensure(), t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.branchTarget(s, true); t != nil {
				b.link(b.ensure(), t)
			}
			b.cur = nil
		case token.GOTO:
			lb, ok := b.labels[s.Label.Name]
			if !ok {
				lb = b.newBlock("label." + s.Label.Name)
				b.labels[s.Label.Name] = lb
			}
			b.link(b.ensure(), lb)
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.link(b.ensure(), b.fallthroughTo)
			}
			b.cur = nil
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock("if.done")
		b.cur = b.newBlock("if.then")
		b.link(cond, b.cur)
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, after)
		}
		if s.Else != nil {
			b.cur = b.newBlock("if.else")
			b.link(cond, b.cur)
			b.stmt(s.Else)
			if b.cur != nil {
				b.link(b.cur, after)
			}
		} else {
			b.link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock("for.head")
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock("for.done")
		var post *Block
		contTarget := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
			contTarget = post
		}
		if s.Cond != nil {
			b.link(head, after)
		}
		label := b.pushLoop(&loopTargets{brk: after, cont: contTarget})
		b.cur = b.newBlock("for.body")
		b.link(head, b.cur)
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, contTarget)
		}
		b.popLoop(label)
		b.cur = after

	case *ast.RangeStmt:
		head := b.startBlock("range.head")
		head.Nodes = append(head.Nodes, s.X)
		after := b.newBlock("range.done")
		b.link(head, after)
		label := b.pushLoop(&loopTargets{brk: after, cont: head})
		b.cur = b.newBlock("range.body")
		b.link(head, b.cur)
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.popLoop(label)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildCases(s.Body.List, "switch", true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildCases(s.Body.List, "typeswitch", false)

	case *ast.SelectStmt:
		head := b.ensure()
		after := b.newBlock("select.done")
		label := b.pushLoop(&loopTargets{brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			cb := b.newBlock(kind)
			b.link(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			if b.cur != nil {
				b.link(b.cur, after)
			}
		}
		b.popLoop(label)
		// select{} with no cases blocks forever: no edge to after.
		if len(s.Body.List) == 0 {
			after.Kind = "select.blocked"
		}
		b.cur = after

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.link(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// buildCases wires switch / type-switch case clauses. The head (current
// block) branches to every case and — absent a default — to the join block.
func (b *cfgBuilder) buildCases(clauses []ast.Stmt, kind string, allowFallthrough bool) {
	head := b.ensure()
	after := b.newBlock(kind + ".done")
	label := b.pushLoop(&loopTargets{brk: after})
	hasDefault := false
	// Pre-create the case bodies so fallthrough can target the next one.
	bodies := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(k)
		b.link(head, bodies[i])
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		if allowFallthrough && i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmts(cc.Body)
		b.fallthroughTo = nil
		if b.cur != nil {
			b.link(b.cur, after)
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.popLoop(label)
	b.cur = after
}

// branchTarget resolves a break/continue, labeled or not.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, cont bool) *Block {
	var t *loopTargets
	if s.Label != nil {
		t = b.loops[s.Label.Name]
	} else if len(b.loopStack) > 0 {
		if cont {
			// continue skips switch/select frames (they have no cont target).
			for i := len(b.loopStack) - 1; i >= 0; i-- {
				if b.loopStack[i].cont != nil {
					t = b.loopStack[i]
					break
				}
			}
		} else {
			t = b.loopStack[len(b.loopStack)-1]
		}
	}
	if t == nil {
		return nil
	}
	if cont {
		return t.cont
	}
	return t.brk
}

// isPanicCall reports whether e is a call to the builtin panic or os.Exit —
// both terminate the enclosing function unconditionally.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// ForwardDataflow runs a forward worklist dataflow analysis over the graph
// and returns each block's entry fact. entry seeds the Entry block; transfer
// maps a block's entry fact to its exit fact; join merges two facts (and
// must be monotone for termination); equal detects the fixpoint.
func ForwardDataflow[F any](c *CFG, entry F, transfer func(*Block, F) F, join func(F, F) F, equal func(F, F) bool) map[*Block]F {
	in := make(map[*Block]F, len(c.Blocks))
	seeded := make(map[*Block]bool, len(c.Blocks))
	in[c.Entry] = entry
	seeded[c.Entry] = true
	work := []*Block{c.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			if !seeded[s] {
				in[s] = out
				seeded[s] = true
				work = append(work, s)
				continue
			}
			merged := join(in[s], out)
			if !equal(merged, in[s]) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	return in
}
