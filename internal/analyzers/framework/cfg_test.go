package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a file containing one function and returns its
// body. The CFG builder is purely syntactic, so no type-checking is needed.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestCFGGolden pins the graph shape — block kinds, node placement, edge
// order — for the control constructs the analyzers rely on. The format is
// CFG.String()'s contract; a diff here means every CFG-based analyzer needs
// a second look.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "if-else-returns",
			src: `func f(x int) int {
	if x > 0 {
		return 1
	} else {
		return -1
	}
}`,
			want: `b0 entry {x > 0} -> b3 b4
b1 exit
b2 if.done -> b1
b3 if.then {return 1} -> b1
b4 if.else {return -1} -> b1
`,
		},
		{
			name: "labeled-break-continue",
			src: `func g(xs []int) int {
	total := 0
outer:
	for i := 0; i < len(xs); i++ {
		for _, x := range xs {
			if x < 0 {
				continue outer
			}
			if x == 9 {
				break outer
			}
			total += x
		}
	}
	return total
}`,
			want: `b0 entry {total := 0} -> b2
b1 exit
b2 label.outer {i := 0} -> b3
b3 for.head {i < len(xs)} -> b4 b6
b4 for.done {return total} -> b1
b5 for.post {i++} -> b3
b6 for.body -> b7
b7 range.head {xs} -> b8 b9
b8 range.done -> b5
b9 range.body {x < 0} -> b11 b10
b10 if.done {x == 9} -> b13 b12
b11 if.then -> b5
b12 if.done {total += x} -> b7
b13 if.then -> b4
`,
		},
		{
			name: "defer-and-panic",
			src: `func h(ok bool) {
	defer cleanup()
	if !ok {
		panic("bad")
	}
	work()
}`,
			want: `b0 entry {defer cleanup(); !ok} -> b3 b2
b1 exit
b2 if.done {work()} -> b1
b3 if.then {panic("bad")} -> b1
defers {cleanup()}
`,
		},
		{
			name: "switch-fallthrough",
			src: `func s(n int) string {
	switch n {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	default:
		return "big"
	}
}`,
			want: `b0 entry {n} -> b3 b4 b5 b6
b1 exit
b2 switch.done -> b1
b3 switch.case {return "zero"} -> b1
b4 switch.case -> b5
b5 switch.case {return "small"} -> b1
b6 switch.default {return "big"} -> b1
`,
		},
		{
			name: "gossip-select-loop",
			src: `func sel(a, b chan int, done chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case <-done:
			return 0
		default:
			b <- 1
		}
	}
}`,
			want: `b0 entry -> b2
b1 exit
b2 for.head -> b4
b3 for.done -> b1
b4 for.body -> b6 b7 b8
b5 select.done -> b2
b6 select.case {v := <-a; return v} -> b1
b7 select.case {<-done; return 0} -> b1
b8 select.default {b <- 1} -> b5
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := BuildCFG(parseBody(t, tc.src)).String()
			if got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestExitReachable pins the termination judgment goroleak rests on.
func TestExitReachable(t *testing.T) {
	cases := []struct {
		name, src string
		want      bool
	}{
		{"plain-return", `func f() { work() }`, true},
		{"bare-infinite-loop", `func f() { for { work() } }`, false},
		{"loop-with-guarded-return", `func f(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}`, true},
		{"empty-select", `func f() { select {} }`, false},
		{"loop-with-break", `func f() { for { break } }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := BuildCFG(parseBody(t, tc.src)).ExitReachable(); got != tc.want {
				t.Errorf("ExitReachable = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestForwardDataflow checks the worklist solver joins facts across
// branches: block kinds seen on *some* path into each block, with union
// join — the may-analysis shape lockreach uses for held locks.
func TestForwardDataflow(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f(x int) int {
	if x > 0 {
		return 1
	} else {
		return -1
	}
}`))
	type fact = map[string]bool
	transfer := func(b *Block, in fact) fact {
		out := fact{b.Kind: true}
		for k := range in {
			out[k] = true
		}
		return out
	}
	join := func(a, b fact) fact {
		m := fact{}
		for k := range a {
			m[k] = true
		}
		for k := range b {
			m[k] = true
		}
		return m
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	in := ForwardDataflow(cfg, fact{}, transfer, join, equal)
	atExit := in[cfg.Exit]
	for _, kind := range []string{"entry", "if.then", "if.else"} {
		if !atExit[kind] {
			t.Errorf("exit entry fact missing %q: %v", kind, keys(atExit))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCFGStringTruncation: long statements are abbreviated, keeping goldens
// readable.
func TestCFGStringTruncation(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `func f() {
	veryLongFunctionName(firstArgument, secondArgument, thirdArgument, fourthArgument)
}`))
	s := cfg.String()
	if !strings.Contains(s, "...") {
		t.Errorf("expected truncated node text in %q", s)
	}
}
