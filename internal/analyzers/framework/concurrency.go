// The happens-before/confinement engine: the framework's fifth layer, under
// the sharedguard and shardconfine analyzers. It models the orderings a Go
// program establishes — goroutine-creation edges, channel token protocols
// (including the sharded engine's gate/work/done barrier dispatch),
// sync.WaitGroup join edges, sync.Once bodies, and mutex locksets — and
// classifies every pair of accesses to the same shared object as read-only,
// constructor-fresh, sequential, ordered, mutually excluded, confined, or
// racy.
//
// The engine is deliberately instance-insensitive: a lock or an access is
// keyed by the declared field (or package variable) object, not by the
// runtime instance, exactly like lockreach's receiver-path keys one level
// up. That makes the classification a may-analysis over instances: two
// accesses with a common exclusive lock key are excluded on every instance,
// and two conflicting accesses with no ordering on any instance are
// reported once, at the write.
//
// Three ideas carry the precision the sharded engine needs:
//
//   - Token channels. A capacity-1 channel field that some single function
//     both bare-receives (acquire) and sends (release) is a lock; holding
//     it is ModeExcl, like a mutex. Deferred releases are ignored, so a
//     token acquired under `defer func() { e.gate <- struct{}{} }()` is
//     held to function exit.
//
//   - Barrier-inherited locks. When a goroutine parks on a select case that
//     receives work from channel W and answers on channel D, and some
//     function sends W and bare-receives D (the dispatcher), the locks the
//     dispatcher holds at the send are inherited by the worker region
//     between the W-receive and the D-send — demoted to ModeBarrier. A
//     barrier lock excludes the region against every *real* holder of the
//     same lock (the engine cannot be re-entered while its dispatcher holds
//     the gate), but not against the other workers of the same phase: those
//     run concurrently and must be confined by shard index instead.
//
//   - Confinement. Accesses that provably stay inside one worker's shard —
//     indexed by a value tainted from the shard-steal counter, reached
//     through a handle checked out at such an index, or rooted in a
//     function-local value — are confined; two confined accesses cannot
//     alias across workers.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockMode grades how strongly a held lock key excludes other holders.
// ModeExcl is a real exclusive hold (mutex Lock, token channel, once body);
// ModeRead is a shared RLock hold; ModeBarrier is inherited across a
// dispatch barrier and excludes only non-barrier holders.
type LockMode int

const (
	ModeBarrier LockMode = iota
	ModeRead
	ModeExcl
)

// Lockset maps lock key objects (mutex fields, token channel fields,
// sync.Once fields) to the mode they are held in.
type Lockset map[types.Object]LockMode

func (l Lockset) clone() Lockset {
	c := make(Lockset, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// intersect is the call-site meet: a callee holds a key only if every
// caller holds it, in the weakest mode any caller holds it in.
func intersectLocks(a, b Lockset) Lockset {
	out := make(Lockset)
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			m := ma
			if mb < m {
				m = mb
			}
			out[k] = m
		}
	}
	return out
}

func equalLocks(a, b Lockset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Goroutine is one static goroutine-creation context: a go statement, or
// the synthetic External context modeling callers outside the loaded
// program (exported API, main, stored callbacks, address-taken methods).
type Goroutine struct {
	Pos   token.Pos
	Label string
	// SelfConcurrent marks a spawn site inside a loop: two instances of the
	// same goroutine may run concurrently with each other.
	SelfConcurrent bool
	// External marks the synthetic outside-world context. Two accesses that
	// only ever run externally are treated as sequenced by the caller
	// (exported APIs synchronize internally; the pair rule needs at least
	// one side on a tracked goroutine).
	External bool
}

// ConfinedField is one struct field annotated `//vet:confined shard` or
// `//vet:confined gate`.
type ConfinedField struct {
	Field *types.Var
	// Mode is "shard" (owned by the worker processing the field's shard
	// index between barrier phases) or "gate" (touched only while holding
	// the owning engine's token channel for real).
	Mode string
	Pos  token.Position
}

// ConcAccess is one read or write of a tracked shared object (a struct
// field or package-level variable), with everything the pair classifier
// needs: where, in which goroutine contexts, under which locks, and
// whether the access is provably confined.
type ConcAccess struct {
	Obj      types.Object
	Pos      token.Pos
	Position token.Position
	Pkg      *Package
	FnLabel  string
	Write    bool
	// Fresh: the access runs on an object this function just allocated and
	// has not shared yet (constructor confinement).
	Fresh bool
	// Confined: the access stays inside one worker's shard or one
	// function's locals — a shard-index-tainted element access, an access
	// through a handle checked out at such an index, or an access rooted
	// in a pointer-free local value.
	Confined bool
	// Region is the named type that owns the storage the access resolves
	// into: the pointee of the last pointer crossed on the access path (or
	// the root variable's own type), with slice, array, and map storage
	// counted as inside their owner. Nil when the path defies the walk.
	// Accesses in regions that provably cannot overlap do not race even
	// though they share a field object.
	Region types.Type
	// Locks holds the must-held lock keys at the access.
	Locks Lockset
	// Joined holds WaitGroup objects this access runs after Wait() on.
	Joined map[types.Object]bool
	// Ctxs holds the goroutine contexts the enclosing code may run in.
	Ctxs map[*Goroutine]bool

	unit *concUnit
}

// HoldsToken reports whether the access really holds (ModeExcl) a token
// channel of the concurrency result — the gate, for the sharded engine.
func (a *ConcAccess) HoldsToken(r *ConcurrencyResult) bool {
	for k, m := range a.Locks {
		if m == ModeExcl && r.Tokens[k] {
			return true
		}
	}
	return false
}

// InBarrierPhase reports whether the access runs in a worker region that
// inherited a token across a dispatch barrier — i.e. between receiving a
// phase from the dispatcher and reporting done.
func (a *ConcAccess) InBarrierPhase(r *ConcurrencyResult) bool {
	for k, m := range a.Locks {
		if m == ModeBarrier && r.Tokens[k] {
			return true
		}
	}
	return false
}

// PairClass is the verdict on one pair of accesses to the same object.
type PairClass int

const (
	// PairReadRead: neither access writes.
	PairReadRead PairClass = iota
	// PairFresh: at least one side runs on a freshly allocated, not yet
	// shared instance.
	PairFresh
	// PairSequential: the two accesses cannot run concurrently (no
	// overlapping goroutine contexts beyond the external caller).
	PairSequential
	// PairOrdered: a happens-before edge (goroutine creation, WaitGroup
	// join) orders the two accesses.
	PairOrdered
	// PairExcluded: a common lock key held in an exclusive-enough mode on
	// at least one side separates the accesses.
	PairExcluded
	// PairDisjoint: the two accesses resolve into value storage owned by
	// distinct named types, neither of which can appear inside the other's
	// value representation — the storage cannot overlap even though the
	// declared field object is shared (e.g. the same counter struct
	// embedded by value in two unrelated engine types).
	PairDisjoint
	// PairConfined: both accesses are confined to one worker's shard or
	// one function's locals, so they cannot alias across threads.
	PairConfined
	// PairRacy: conflicting, concurrent, unordered, unlocked, unconfined.
	PairRacy
)

// ConcurrencyResult is the program-wide happens-before/confinement model,
// built once per Program (prog.Concurrency()) and shared by analyzers.
type ConcurrencyResult struct {
	// Accesses holds every tracked access in deterministic (file, line,
	// col) order.
	Accesses []*ConcAccess
	// Confined maps annotated field objects to their confinement contract.
	Confined map[types.Object]*ConfinedField
	// Tokens marks the channel objects detected as exclusivity tokens.
	Tokens map[types.Object]bool

	spawns map[*types.Func][]spawnRec
}

// Concurrency returns the program's happens-before/confinement model,
// computing it on first use.
func (prog *Program) Concurrency() *ConcurrencyResult {
	return prog.Shared("framework.concurrency", func() any {
		return newConcSolver(prog).solve()
	}).(*ConcurrencyResult)
}

// Classify grades one pair of accesses to the same object. The order of
// the tests is the proof search: cheap structural exemptions first, then
// concurrency, ordering, exclusion, confinement.
func (r *ConcurrencyResult) Classify(a, b *ConcAccess) PairClass {
	if !a.Write && !b.Write {
		return PairReadRead
	}
	if a.Fresh || b.Fresh {
		return PairFresh
	}
	if !mayRunConcurrently(a, b) {
		return PairSequential
	}
	if r.ordered(a, b) || r.ordered(b, a) {
		return PairOrdered
	}
	if locksExclude(a.Locks, b.Locks) {
		return PairExcluded
	}
	if regionsDisjoint(a.Region, b.Region) {
		return PairDisjoint
	}
	if a.Confined && b.Confined {
		return PairConfined
	}
	return PairRacy
}

// regionsDisjoint reports that two accesses land in storage owned by
// distinct named types where neither type's value representation can
// contain the other: such storage cannot overlap, so the pair cannot be
// the same memory even under the instance-insensitive field keying.
func regionsDisjoint(a, b types.Type) bool {
	if a == nil || b == nil || types.Identical(a, b) {
		return false
	}
	return !valueReach(a, b, make(map[types.Type]bool)) &&
		!valueReach(b, a, make(map[types.Type]bool))
}

// valueReach reports whether the value representation of from — its
// fields, array elements, and the backing stores of its slices and maps —
// can contain a to. Pointers, interfaces, channels, and funcs stop the
// walk: storage behind them is a separate allocation with its own region.
func valueReach(from, to types.Type, seen map[types.Type]bool) bool {
	if types.Identical(from, to) {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	switch u := from.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if valueReach(u.Field(i).Type(), to, seen) {
				return true
			}
		}
	case *types.Array:
		return valueReach(u.Elem(), to, seen)
	case *types.Slice:
		return valueReach(u.Elem(), to, seen)
	case *types.Map:
		return valueReach(u.Key(), to, seen) || valueReach(u.Elem(), to, seen)
	}
	return false
}

// mayRunConcurrently: the pair needs two contexts that can overlap, at
// least one of them a tracked goroutine. Two accesses that only ever run
// in external callers are the caller's to sequence.
func mayRunConcurrently(a, b *ConcAccess) bool {
	for ga := range a.Ctxs {
		for gb := range b.Ctxs {
			if ga.External && gb.External {
				continue
			}
			if ga != gb || ga.SelfConcurrent {
				return true
			}
		}
	}
	return false
}

// locksExclude: a common key held on both sides, where at least one side
// holds it exclusively. Read-vs-read on an RWMutex does not exclude, and
// neither does barrier-vs-barrier: two workers of the same phase hold the
// same inherited token and still run concurrently.
func locksExclude(a, b Lockset) bool {
	for k, ma := range a {
		if mb, ok := b[k]; ok && (ma == ModeExcl || mb == ModeExcl) {
			return true
		}
	}
	return false
}

// ordered reports a happens-before edge from a to b: either b runs only in
// goroutines a's function spawns after a executes (goroutine-creation
// edge), or b's function signals a WaitGroup a has already Wait()ed on
// (join edge).
func (r *ConcurrencyResult) ordered(a, b *ConcAccess) bool {
	// Join edge: a runs after wg.Wait(); b's unit calls wg.Done().
	for w := range a.Joined {
		if b.unit.doneWGs[w] {
			return true
		}
	}
	// Spawn edge: every context of b is a goroutine spawned in a's
	// declaring function, at a point after a.
	if a.unit.root && len(b.Ctxs) > 0 {
		all := true
		for gb := range b.Ctxs {
			if gb.External {
				all = false
				break
			}
			found := false
			for _, rec := range r.spawns[a.unit.declObj] {
				if rec.g == gb && rec.pos > a.Pos {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

type spawnRec struct {
	pos token.Pos
	g   *Goroutine
}

// concUnit is one unit of sequential execution for bookkeeping purposes: a
// declared function body together with its deferred and immediately
// invoked literals. Go-statement literals and stored callback literals get
// their own units.
type concUnit struct {
	declObj *types.Func
	label   string
	// root: this unit is the declared body proper (spawn-before edges
	// anchor here).
	root    bool
	doneWGs map[types.Object]bool
}

// concFn is the solver's view of one declared function.
type concFn struct {
	pkg   *Package
	decl  *ast.FuncDecl
	obj   *types.Func
	label string
	ctxs  map[*Goroutine]bool
	entry Lockset
	known bool
	root  bool
	// goEntry: some go statement spawns this function directly. Its entry
	// lockset is pinned empty — a fresh goroutine holds nothing — even if
	// other call sites exist.
	goEntry bool
}

// barrierSpec is one detected dispatch barrier: receiving from work starts
// the inherited region, sending done ends it.
type barrierSpec struct {
	work, done types.Object
	locks      Lockset // every key ModeBarrier
}

type concSolver struct {
	prog     *Program
	fns      []*concFn
	byObj    map[*types.Func]*concFn
	tokens   map[types.Object]bool
	confined map[types.Object]*ConfinedField
	external *Goroutine
	litCtx   map[*ast.FuncLit]*Goroutine
	spawns   map[*types.Func][]spawnRec
	barriers []*barrierSpec

	hasCaller map[*types.Func]bool
	addrTaken map[*types.Func]bool

	// Cross-function must-facts for parameters, updated per fixpoint round
	// with AND semantics over call sites.
	paramTaint map[*types.Var]bool
	paramBless map[*types.Var]bool
	// recvRegion refines a method receiver's storage region when every
	// known (non-fresh, non-interface) call site agrees on it: the helper
	// (NodeCounters).accumulate only ever runs on &e.counters[k], so its
	// receiver accesses are in the ShardedCluster region, not in every
	// struct that embeds a NodeCounters.
	recvRegion map[*types.Var]types.Type

	// Per-round accumulators.
	cand       map[*types.Func]Lockset
	candSeen   map[*types.Func]bool
	taintCand  map[*types.Var]int // bit1 = saw tainted site, bit2 = saw untainted
	blessCand  map[*types.Var]int
	sendHeld   map[types.Object]Lockset // meet of held at sends per chan field
	sendHeldOK map[types.Object]bool
	freshCand  map[*types.Func]int // bit1 = fresh-receiver site, bit2 = shared site
	recvCand   map[*types.Var]types.Type
	recvSeen   map[*types.Var]bool
	recvBad    map[*types.Var]bool
	// freshOnly: every known call site of this method runs on a freshly
	// constructed receiver — its receiver accesses are constructor-fresh.
	freshOnly map[*types.Func]bool

	cfgs map[*ast.BlockStmt]*CFG

	emit     bool
	accesses []*ConcAccess
}

func newConcSolver(prog *Program) *concSolver {
	return &concSolver{
		prog:       prog,
		byObj:      make(map[*types.Func]*concFn),
		tokens:     make(map[types.Object]bool),
		confined:   make(map[types.Object]*ConfinedField),
		external:   &Goroutine{Label: "external caller", External: true},
		litCtx:     make(map[*ast.FuncLit]*Goroutine),
		spawns:     make(map[*types.Func][]spawnRec),
		hasCaller:  make(map[*types.Func]bool),
		addrTaken:  make(map[*types.Func]bool),
		paramTaint: make(map[*types.Var]bool),
		paramBless: make(map[*types.Var]bool),
		recvRegion: make(map[*types.Var]types.Type),
		freshOnly:  make(map[*types.Func]bool),
		cfgs:       make(map[*ast.BlockStmt]*CFG),
	}
}

func (s *concSolver) solve() *ConcurrencyResult {
	s.collectFunctions()
	s.collectConfined()
	s.collectTokens()
	s.collectReferences()
	s.seedContexts()
	s.propagateContexts()
	s.lockFixpoint() // phase 1: no barriers
	s.detectBarriers()
	if len(s.barriers) > 0 {
		s.lockFixpoint() // phase 2: barrier regions inherit demoted locks
	}
	s.emit = true
	s.cand, s.candSeen = nil, nil
	for _, fn := range s.fns {
		if fn.known {
			s.runBody(fn)
		}
	}
	sort.Slice(s.accesses, func(i, j int) bool {
		a, b := s.accesses[i].Position, s.accesses[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return &ConcurrencyResult{
		Accesses: s.accesses,
		Confined: s.confined,
		Tokens:   s.tokens,
		spawns:   s.spawns,
	}
}

func (s *concSolver) collectFunctions() {
	for _, pkg := range s.prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := FuncOf(pkg, fd)
				if obj == nil {
					continue
				}
				fn := &concFn{
					pkg:   pkg,
					decl:  fd,
					obj:   obj,
					label: funcLabel(obj),
					ctxs:  make(map[*Goroutine]bool),
				}
				s.fns = append(s.fns, fn)
				s.byObj[obj] = fn
			}
		}
	}
}

// collectConfined parses the //vet:confined field directives. The
// directive sits in the field's doc comment group or its trailing line
// comment:
//
//	slots []peer.ID //vet:confined shard
func (s *concSolver) collectConfined() {
	for _, pkg := range s.prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mode := confinedMode(field.Doc)
					if mode == "" {
						mode = confinedMode(field.Comment)
					}
					if mode == "" {
						continue
					}
					for _, name := range field.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						s.confined[v] = &ConfinedField{
							Field: v,
							Mode:  mode,
							Pos:   pkg.Fset.Position(name.Pos()),
						}
					}
				}
				return true
			})
		}
	}
}

func confinedMode(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, "//vet:confined") {
			continue
		}
		mode := strings.TrimSpace(strings.TrimPrefix(c.Text, "//vet:confined"))
		if mode == "shard" || mode == "gate" {
			return mode
		}
	}
	return ""
}

// collectTokens detects token channels: a channel-typed field or package
// variable that one function body both bare-receives (acquire) and sends
// (release), deferred literal sends included. The pairing inside a single
// body is what separates a lock token (gate) from barrier plumbing (the
// work/done channels, whose sends and receives live in different
// functions).
func (s *concSolver) collectTokens() {
	for _, fn := range s.fns {
		recv := make(map[types.Object]bool)
		send := make(map[types.Object]bool)
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					return false
				case *ast.FuncLit:
					return false
				case *ast.DeferStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						walk(lit.Body)
					}
					return false
				case *ast.ExprStmt:
					if u, ok := ast.Unparen(n.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						if obj := chanRefObject(fn.pkg.Info, u.X); obj != nil {
							recv[obj] = true
						}
						return false
					}
				case *ast.SendStmt:
					if obj := chanRefObject(fn.pkg.Info, n.Chan); obj != nil {
						send[obj] = true
					}
				}
				return true
			})
		}
		walk(fn.decl.Body)
		for obj := range recv {
			if send[obj] {
				s.tokens[obj] = true
			}
		}
	}
}

// chanRefObject resolves an expression naming a channel-typed field or
// package-level variable to its declared object, or nil.
func chanRefObject(info *types.Info, e ast.Expr) types.Object {
	obj := refObject(info, e)
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// refObject resolves a selector chain or identifier to the final named
// variable object: the field for e.gate or c.srv.mu, the package variable
// for a global, the local for a plain identifier.
func refObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// collectReferences finds address-taken functions (used as values — stored
// handlers, method values) and marks which functions have any in-program
// caller; functions with neither are external entry points.
func (s *concSolver) collectReferences() {
	for _, pkg := range s.prog.Packages {
		for _, f := range pkg.Files {
			callFuns := make(map[ast.Expr]bool)
			selSels := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					callFuns[ast.Unparen(n.Fun)] = true
					for _, fn := range s.prog.CallGraph.Callees(pkg.Info, n) {
						s.hasCaller[fn] = true
					}
				case *ast.SelectorExpr:
					selSels[n.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if callFuns[n] {
						return true
					}
					if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
						s.addrTaken[fn] = true
					}
				case *ast.Ident:
					if callFuns[n] || selSels[n] {
						return true
					}
					if fn, ok := pkg.Info.Uses[n].(*types.Func); ok {
						s.addrTaken[fn] = true
					}
				}
				return true
			})
		}
	}
}

// seedContexts creates one Goroutine per go statement, seeds spawned
// functions with it, records spawn sites for the happens-before edge, and
// marks external entry points.
func (s *concSolver) seedContexts() {
	for _, fn := range s.fns {
		loopDepth := 0
		var walk func(n ast.Node, inStoredLit bool)
		walk = func(n ast.Node, inStoredLit bool) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loopDepth++
					var body *ast.BlockStmt
					if f, ok := n.(*ast.ForStmt); ok {
						body = f.Body
					} else {
						body = n.(*ast.RangeStmt).Body
					}
					walk(body, inStoredLit)
					loopDepth--
					return false
				case *ast.GoStmt:
					g := &Goroutine{Pos: n.Pos(), SelfConcurrent: loopDepth > 0}
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						g.Label = fn.label + " goroutine literal"
						s.litCtx[lit] = g
						walk(lit.Body, inStoredLit) // nested spawns
					} else {
						for _, callee := range s.prog.CallGraph.Callees(fn.pkg.Info, n.Call) {
							g.Label = funcLabel(callee)
							if target := s.byObj[callee]; target != nil {
								target.ctxs[g] = true
								target.goEntry = true
							}
						}
					}
					if !inStoredLit {
						s.spawns[fn.obj] = append(s.spawns[fn.obj], spawnRec{pos: n.Pos(), g: g})
					}
					for _, arg := range n.Call.Args {
						walk(arg, inStoredLit)
					}
					return false
				case *ast.FuncLit:
					// Stored or passed literal: spawns inside it do not
					// order against the enclosing body.
					walk(n.Body, true)
					return false
				}
				return true
			})
		}
		walk(fn.decl.Body, false)
	}
	for _, fn := range s.fns {
		if !s.hasCaller[fn.obj] || s.addrTaken[fn.obj] {
			fn.root = true
			fn.ctxs[s.external] = true
			fn.entry = Lockset{}
			fn.known = true
		}
		if fn.goEntry && !fn.known {
			fn.entry = Lockset{}
			fn.known = true
		}
	}
}

// concEdge is one context-propagation edge: a call from somewhere in a
// function to callee, carrying either the caller's contexts (kind 0), one
// specific goroutine (kind 1), or the external context (kind 2).
type concEdge struct {
	callee *types.Func
	kind   int
	g      *Goroutine
}

const (
	edgeInherit = iota
	edgeGoroutine
	edgeExternal
)

// inheritLitCallers lists call targets whose function-literal argument runs
// synchronously in the caller: the literal inherits contexts and locks
// instead of being treated as an escaping callback.
func inheritsLitArg(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort":
			return true
		case "sync":
			return fn.Name() == "Do" // sync.Once.Do
		}
	}
	return false
}

// callEdges walks one function body and produces its context-propagation
// edges, classifying each call by the region it executes in.
func (s *concSolver) callEdges(fn *concFn) []*concEdge {
	var edges []*concEdge
	info := fn.pkg.Info
	add := func(call *ast.CallExpr, kind int, g *Goroutine) {
		for _, callee := range s.prog.CallGraph.Callees(info, call) {
			if s.byObj[callee] != nil {
				edges = append(edges, &concEdge{callee: callee, kind: kind, g: g})
			}
		}
	}
	var walk func(n ast.Node, kind int, g *Goroutine)
	walk = func(n ast.Node, kind int, g *Goroutine) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, edgeGoroutine, s.litCtx[lit])
				}
				// Non-literal go targets were seeded directly; argument
				// expressions evaluate in the current region.
				for _, arg := range n.Call.Args {
					walk(arg, kind, g)
				}
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, kind, g)
				} else {
					add(n.Call, kind, g)
				}
				for _, arg := range n.Call.Args {
					walk(arg, kind, g)
				}
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, kind, g)
				} else {
					add(n, kind, g)
				}
				inherit := inheritsLitArg(info, n)
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						if inherit {
							walk(lit.Body, kind, g)
						} else {
							walk(lit.Body, edgeExternal, nil)
						}
						continue
					}
					walk(arg, kind, g)
				}
				return false
			case *ast.FuncLit:
				// Stored literal (assigned, returned): escapes to callers.
				walk(n.Body, edgeExternal, nil)
				return false
			}
			return true
		})
	}
	walk(fn.decl.Body, edgeInherit, nil)
	return edges
}

// propagateContexts runs the goroutine-context worklist to a fixpoint.
func (s *concSolver) propagateContexts() {
	edges := make(map[*concFn][]*concEdge, len(s.fns))
	for _, fn := range s.fns {
		edges[fn] = s.callEdges(fn)
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range s.fns {
			for _, e := range edges[fn] {
				target := s.byObj[e.callee]
				if target == nil {
					continue
				}
				grow := func(g *Goroutine) {
					if !target.ctxs[g] {
						target.ctxs[g] = true
						changed = true
					}
				}
				switch e.kind {
				case edgeInherit:
					for g := range fn.ctxs {
						grow(g)
					}
				case edgeGoroutine:
					if e.g != nil {
						grow(e.g)
					}
				case edgeExternal:
					grow(s.external)
				}
				if !target.known {
					// Reachable at all → it will get an entry lockset from
					// the fixpoint; seed callbacks/goroutine literals'
					// callees pessimistically there.
					_ = target
				}
			}
		}
	}
}

// lockFixpoint computes entry locksets by iterated call-site meets:
// roots start empty, goroutine entries start empty, everything else is the
// intersection of what its callers hold at the call, skipping call sites
// whose receiver is a freshly constructed, unshared object.
func (s *concSolver) lockFixpoint() {
	// Reset non-root entries.
	for _, fn := range s.fns {
		if fn.root || len(fn.ctxs) > 0 && fn.entry != nil && len(fn.entry) == 0 && s.isGoEntry(fn) {
			continue
		}
		if !fn.root && !s.isGoEntry(fn) {
			fn.entry = nil
			fn.known = false
		}
	}
	for round := 0; round < 12; round++ {
		s.cand = make(map[*types.Func]Lockset)
		s.candSeen = make(map[*types.Func]bool)
		s.taintCand = make(map[*types.Var]int)
		s.blessCand = make(map[*types.Var]int)
		s.sendHeld = make(map[types.Object]Lockset)
		s.sendHeldOK = make(map[types.Object]bool)
		s.freshCand = make(map[*types.Func]int)
		s.recvCand = make(map[*types.Var]types.Type)
		s.recvSeen = make(map[*types.Var]bool)
		s.recvBad = make(map[*types.Var]bool)
		for _, fn := range s.fns {
			if fn.known {
				s.runBody(fn)
			}
		}
		changed := false
		for _, fn := range s.fns {
			if fn.root || s.isGoEntry(fn) {
				continue
			}
			meet, seen := s.cand[fn.obj], s.candSeen[fn.obj]
			if !seen {
				continue
			}
			if !fn.known || !equalLocks(fn.entry, meet) {
				fn.entry = meet
				fn.known = true
				changed = true
			}
		}
		for v, bits := range s.taintCand {
			want := bits == 1
			if s.paramTaint[v] != want {
				s.paramTaint[v] = want
				changed = true
			}
		}
		for v, bits := range s.blessCand {
			want := bits == 1
			if s.paramBless[v] != want {
				s.paramBless[v] = want
				changed = true
			}
		}
		for fnObj, bits := range s.freshCand {
			want := bits == 1
			if s.freshOnly[fnObj] != want {
				s.freshOnly[fnObj] = want
				changed = true
			}
		}
		for _, fn := range s.fns {
			sig, _ := fn.obj.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				continue
			}
			v := sig.Recv()
			var want types.Type
			if !fn.root && s.recvSeen[v] && !s.recvBad[v] {
				want = s.recvCand[v]
			}
			cur := s.recvRegion[v]
			if (want == nil) != (cur == nil) || (want != nil && cur != nil && !types.Identical(want, cur)) {
				if want == nil {
					delete(s.recvRegion, v)
				} else {
					s.recvRegion[v] = want
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Anything still unknown is unreachable from any entry; analyze it as
	// an isolated root so its accesses are still collected.
	for _, fn := range s.fns {
		if !fn.known {
			fn.entry = Lockset{}
			fn.known = true
			if len(fn.ctxs) == 0 {
				fn.ctxs[s.external] = true
			}
		}
	}
}

func (s *concSolver) isGoEntry(fn *concFn) bool {
	return fn.goEntry && !fn.root
}

// detectBarriers looks for the dispatch-barrier protocol: a goroutine
// parked on `case p := <-work:` that ends its region with `done <- tok`,
// paired with a dispatcher that sends work and bare-receives done. The
// locks the dispatcher holds at the send — demoted to ModeBarrier — are
// inherited by the region.
func (s *concSolver) detectBarriers() {
	// Which functions send / bare-receive which channel fields.
	sendIn := make(map[types.Object]map[*concFn]bool)
	recvIn := make(map[types.Object]map[*concFn]bool)
	for _, fn := range s.fns {
		info := fn.pkg.Info
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if obj := chanRefObject(info, n.Chan); obj != nil {
					if sendIn[obj] == nil {
						sendIn[obj] = make(map[*concFn]bool)
					}
					sendIn[obj][fn] = true
				}
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(n.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if obj := chanRefObject(info, u.X); obj != nil {
						if recvIn[obj] == nil {
							recvIn[obj] = make(map[*concFn]bool)
						}
						recvIn[obj][fn] = true
					}
				}
			}
			return true
		})
	}
	seen := make(map[types.Object]bool)
	for _, fn := range s.fns {
		if !s.isGoEntry(fn) {
			continue
		}
		info := fn.pkg.Info
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			for _, c := range sel.Body.List {
				cc := c.(*ast.CommClause)
				workObj := commRecvObject(info, cc.Comm)
				if workObj == nil || seen[workObj] {
					continue
				}
				var doneObj types.Object
				for _, st := range cc.Body {
					if sd, ok := st.(*ast.SendStmt); ok {
						if obj := chanRefObject(info, sd.Chan); obj != nil && obj != workObj {
							doneObj = obj
						}
					}
				}
				if doneObj == nil {
					continue
				}
				// A dispatcher sends work and bare-receives done.
				dispatcher := false
				for d := range sendIn[workObj] {
					if recvIn[doneObj][d] {
						dispatcher = true
					}
				}
				if !dispatcher {
					continue
				}
				held, ok := s.sendHeld[workObj]
				if !ok || len(held) == 0 {
					continue
				}
				locks := make(Lockset, len(held))
				for k := range held {
					locks[k] = ModeBarrier
				}
				seen[workObj] = true
				s.barriers = append(s.barriers, &barrierSpec{
					work:  workObj,
					done:  doneObj,
					locks: locks,
				})
			}
			return true
		})
	}
}

// commRecvObject resolves a select comm statement receiving from a channel
// field/var (with or without binding) to the channel object.
func commRecvObject(info *types.Info, comm ast.Stmt) types.Object {
	switch comm := comm.(type) {
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return chanRefObject(info, u.X)
			}
		}
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return chanRefObject(info, u.X)
		}
	}
	return nil
}

func funcLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return "(" + n.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}
