// Body analysis for the happens-before/confinement engine: per-function
// control-flow replay that tracks the must-held lockset through every
// block, collects call-site contributions for the interprocedural entry
// fixpoint, and (in the final pass) records every tracked shared-object
// access with its locks, contexts, and confinement facts.

package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// waitRec is one wg.Wait() call: accesses positioned after it in the same
// body are ordered after the Done()s it joins.
type waitRec struct {
	pos token.Pos
	wg  types.Object
}

// bodyEnv is the per-body analysis environment. Deferred and immediately
// invoked literals share the enclosing environment (same unit, same local
// fact maps); goroutine and stored-callback literals get their own.
type bodyEnv struct {
	fn      *concFn
	pkg     *Package
	unit    *concUnit
	ctxs    map[*Goroutine]bool
	entry   Lockset
	freshOK bool
	fresh   map[types.Object]bool
	taint   map[types.Object]bool
	bless   map[types.Object]bool
	// addr marks locals whose storage may be reached from outside the
	// body's straight-line code: address-taken (explicitly or by a
	// pointer-receiver method call) or captured by a function literal.
	// Only addr-free locals qualify as private value storage.
	addr  map[types.Object]bool
	waits []waitRec
}

func (s *concSolver) runBody(fn *concFn) {
	env := &bodyEnv{
		fn:  fn,
		pkg: fn.pkg,
		unit: &concUnit{
			declObj: fn.obj,
			label:   fn.label,
			root:    true,
			doneWGs: make(map[types.Object]bool),
		},
		ctxs:    fn.ctxs,
		entry:   fn.entry,
		freshOK: true,
		fresh:   make(map[types.Object]bool),
		taint:   make(map[types.Object]bool),
		bless:   make(map[types.Object]bool),
		addr:    make(map[types.Object]bool),
	}
	sig, _ := fn.obj.Type().(*types.Signature)
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			s.seedParam(env, recv)
			if s.freshOnly[fn.obj] {
				env.fresh[recv] = true
				env.bless[recv] = true
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			s.seedParam(env, sig.Params().At(i))
		}
	}
	s.analyzeBody(env, fn.decl.Body)
}

// seedParam applies the cross-function must-facts to one parameter: a
// pointer-free value parameter is the callee's own copy (always blessed);
// reference parameters are blessed or shard-tainted only when every known
// call site passes a blessed or tainted argument.
func (s *concSolver) seedParam(env *bodyEnv, v *types.Var) {
	if pointerFreeType(v.Type()) || s.paramBless[v] {
		env.bless[v] = true
	}
	if s.paramTaint[v] {
		env.taint[v] = true
	}
}

// analyzeBody runs the full per-body pipeline: local fact prescan,
// WaitGroup bookkeeping, must-lockset dataflow, and the block replay that
// feeds the fixpoint (collect mode) or the access list (emit mode).
func (s *concSolver) analyzeBody(env *bodyEnv, body *ast.BlockStmt) {
	s.collectAddrTaken(env, body)
	s.prescan(env, body)
	s.collectWaits(env, body)
	cfg := s.cfgOf(body)
	entry := env.entry.clone()
	facts := ForwardDataflow(cfg, entry,
		func(b *Block, f Lockset) Lockset {
			out := f.clone()
			for _, n := range b.Nodes {
				s.applyNodeOps(env, out, n)
			}
			return out
		},
		intersectLocks, equalLocks)
	for _, b := range cfg.Blocks {
		f, ok := facts[b]
		if !ok {
			continue // unreachable
		}
		held := f.clone()
		for _, n := range b.Nodes {
			s.walkNode(env, n, held)
			s.applyNodeOps(env, held, n)
		}
	}
}

func (s *concSolver) cfgOf(body *ast.BlockStmt) *CFG {
	if c, ok := s.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	if s.cfgs == nil {
		s.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	s.cfgs[body] = c
	return c
}

// prescan computes the body's local facts to a fixpoint: freshly
// allocated locals, shard-index-tainted locals, and blessed (confined)
// locals. It walks the body proper plus deferred/invoked literals, and
// skips goroutine and stored literals (they get their own environments).
func (s *concSolver) prescan(env *bodyEnv, body *ast.BlockStmt) {
	for round := 0; round < 4; round++ {
		changed := false
		mark := func(m map[types.Object]bool, obj types.Object) {
			if obj != nil && !m[obj] {
				m[obj] = true
				changed = true
			}
		}
		assign := func(lhs ast.Expr, rhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return
			}
			obj := refObject(env.pkg.Info, id)
			if obj == nil {
				return
			}
			if env.freshOK && freshExpr(rhs) {
				mark(env.fresh, obj)
				mark(env.bless, obj)
			}
			if s.taintedExpr(env, rhs) {
				mark(env.taint, obj)
			}
			if s.blessedExpr(env, rhs) {
				mark(env.bless, obj)
			}
		}
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					return false
				case *ast.DeferStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						walk(lit.Body)
					}
					return false
				case *ast.CallExpr:
					if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
						walk(lit.Body)
					}
					inherit := inheritsLitArg(env.pkg.Info, n)
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							if inherit {
								walk(lit.Body)
							}
							continue
						}
						walk(arg)
					}
					return false
				case *ast.FuncLit:
					return false
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							assign(n.Lhs[i], n.Rhs[i])
						}
					} else if len(n.Rhs) == 1 {
						for _, l := range n.Lhs {
							assign(l, n.Rhs[0])
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i := range n.Names {
							assign(n.Names[i], n.Values[i])
						}
					} else if len(n.Values) == 1 {
						for _, name := range n.Names {
							assign(name, n.Values[0])
						}
					}
				case *ast.RangeStmt:
					// Ranging over a blessed container blesses the value
					// binding (the element is the worker's own); ranging
					// over anything blesses neither index nor key with
					// shard taint.
					if n.Value != nil && s.blessedExpr(env, n.X) {
						if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
							mark(env.bless, refObject(env.pkg.Info, id))
						}
					}
				}
				return true
			})
		}
		walk(body)
		if !changed {
			break
		}
	}
}

// collectAddrTaken marks locals whose storage can leak out of the body's
// value semantics: explicitly address-taken, implicitly address-taken by a
// pointer-receiver method call, or captured by a function literal. The
// scan descends into literals too — over-marking there only costs
// precision in the shared fact maps, never soundness.
func (s *concSolver) collectAddrTaken(env *bodyEnv, body *ast.BlockStmt) {
	info := env.pkg.Info
	local := func(e ast.Expr) types.Object {
		v, _ := rootIdentObj(info, e).(*types.Var)
		if v == nil || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return nil
		}
		return v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := local(n.X); v != nil {
					env.addr[v] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				break
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				break
			}
			if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
				if v := local(sel.X); v != nil {
					env.addr[v] = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if ok && !v.IsField() && v.Pkg() != nil &&
					v.Parent() != v.Pkg().Scope() &&
					(v.Pos() < n.Pos() || v.Pos() > n.End()) {
					env.addr[v] = true
				}
				return true
			})
		}
		return true
	})
}

// collectWaits records wg.Wait() positions (join edges for later accesses
// in this body) and wg.Done() calls (this unit signals the group),
// including deferred literals.
func (s *concSolver) collectWaits(env *bodyEnv, body *ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body)
				} else if obj, name := s.wgCall(env, n.Call); obj != nil && name == "Done" {
					env.unit.doneWGs[obj] = true
				}
				return false
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if obj, name := s.wgCall(env, n); obj != nil {
					switch name {
					case "Wait":
						env.waits = append(env.waits, waitRec{pos: n.Pos(), wg: obj})
					case "Done":
						env.unit.doneWGs[obj] = true
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// wgCall matches a method call on a sync.WaitGroup-typed field or variable
// and returns the group's object and the method name.
func (s *concSolver) wgCall(env *bodyEnv, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj := refObject(env.pkg.Info, sel.X)
	if obj == nil || !isSyncNamed(obj.Type(), "WaitGroup") {
		return nil, ""
	}
	return obj, sel.Sel.Name
}

// ---------------------------------------------------------------------------
// Lock operations
// ---------------------------------------------------------------------------

// applyNodeOps applies one CFG node's lock operations to held, in place:
// token-channel acquires/releases, barrier-region entry/exit, and mutex
// Lock/Unlock families. Deferred releases are deliberately ignored — a
// token or mutex released only under defer is held to function exit.
func (s *concSolver) applyNodeOps(env *bodyEnv, held Lockset, node ast.Node) {
	info := env.pkg.Info
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(n.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				s.applyRecv(info, held, u.X)
				return false
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					s.applyRecv(info, held, u.X)
				}
			}
		case *ast.SendStmt:
			if obj := chanRefObject(info, n.Chan); obj != nil {
				if s.tokens[obj] {
					delete(held, obj)
				}
				for _, spec := range s.barriers {
					if spec.done == obj {
						for k := range spec.locks {
							if held[k] == ModeBarrier {
								delete(held, k)
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if obj, mode, acquire, ok := mutexOp(info, n); ok {
				if acquire {
					held[obj] = mode
				} else if held[obj] == mode {
					delete(held, obj)
				}
			}
		}
		return true
	})
}

// applyRecv handles a channel receive as a lock operation: receiving a
// token acquires it exclusively; receiving from a barrier work channel
// enters the inherited region.
func (s *concSolver) applyRecv(info *types.Info, held Lockset, ch ast.Expr) {
	obj := chanRefObject(info, ch)
	if obj == nil {
		return
	}
	if s.tokens[obj] {
		held[obj] = ModeExcl
		return
	}
	for _, spec := range s.barriers {
		if spec.work == obj {
			for k, m := range spec.locks {
				if _, exists := held[k]; !exists {
					held[k] = m
				}
			}
		}
	}
}

// mutexOp matches sync.Mutex / sync.RWMutex lock-family calls on a named
// field or variable, keyed instance-insensitively by the declared object.
func mutexOp(info *types.Info, call *ast.CallExpr) (obj types.Object, mode LockMode, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock":
		mode, acquire = ModeExcl, sel.Sel.Name == "Lock"
	case "RLock", "RUnlock":
		mode, acquire = ModeRead, sel.Sel.Name == "RLock"
	default:
		return nil, 0, false, false
	}
	obj = refObject(info, sel.X)
	if obj == nil {
		return nil, 0, false, false
	}
	if !isSyncNamed(obj.Type(), "Mutex") && !isSyncNamed(obj.Type(), "RWMutex") {
		return nil, 0, false, false
	}
	return obj, mode, acquire, true
}

// isSyncNamed reports whether t (possibly behind a pointer) is the named
// sync.<name> type.
func isSyncNamed(t types.Type, name string) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	o := n.Obj()
	return o.Pkg() != nil && o.Pkg().Path() == "sync" && o.Name() == name
}

// syncGuardedType reports whether a field's type is itself a
// synchronization primitive (channels, sync.* and sync/atomic.* values):
// such fields are their own discipline and are not tracked as plain shared
// data.
func syncGuardedType(t types.Type) bool {
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		if pkg := n.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Node replay: calls, literal descent, access recording
// ---------------------------------------------------------------------------

// exprCtx carries the syntactic context down an expression walk: whether
// the expression is a write target and whether an enclosing construct
// (tainted index, len/cap) blesses accesses below it.
type exprCtx struct {
	write   bool
	blessed bool
}

// walkNode dispatches one CFG node to the expression walker with the
// correct write context.
func (s *concSolver) walkNode(env *bodyEnv, n ast.Node, held Lockset) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			s.walkExpr(env, lhs, held, exprCtx{write: true})
		}
		for _, rhs := range n.Rhs {
			s.walkExpr(env, rhs, held, exprCtx{})
		}
	case *ast.IncDecStmt:
		s.walkExpr(env, n.X, held, exprCtx{write: true})
	case *ast.SendStmt:
		if !s.emit {
			// Record the must-held meet at every send on a channel field:
			// barrier detection reads the dispatcher's lockset here.
			if obj := chanRefObject(env.pkg.Info, n.Chan); obj != nil {
				if !s.sendHeldOK[obj] {
					s.sendHeld[obj] = held.clone()
					s.sendHeldOK[obj] = true
				} else {
					s.sendHeld[obj] = intersectLocks(s.sendHeld[obj], held)
				}
			}
		}
		s.walkExpr(env, n.Chan, held, exprCtx{})
		s.walkExpr(env, n.Value, held, exprCtx{})
	case *ast.GoStmt:
		s.walkGoCall(env, n, held)
	case *ast.DeferStmt:
		s.walkDeferCall(env, n, held)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			s.walkExpr(env, r, held, exprCtx{})
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.walkExpr(env, v, held, exprCtx{})
					}
				}
			}
		}
	case *ast.ExprStmt:
		s.walkExpr(env, n.X, held, exprCtx{})
	case ast.Expr:
		s.walkExpr(env, n, held, exprCtx{})
	}
}

// walkGoCall handles a go statement during replay: the spawned literal is
// analyzed in its own goroutine environment; a spawned declared function
// receives an empty call-site lockset; argument expressions evaluate in
// the current region.
func (s *concSolver) walkGoCall(env *bodyEnv, n *ast.GoStmt, held Lockset) {
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		g := s.litCtx[lit]
		sub := &bodyEnv{
			fn:  env.fn,
			pkg: env.pkg,
			unit: &concUnit{
				declObj: env.fn.obj,
				label:   env.unit.label + " goroutine",
				doneWGs: make(map[types.Object]bool),
			},
			ctxs:    map[*Goroutine]bool{g: true},
			entry:   Lockset{},
			freshOK: false,
			fresh:   make(map[types.Object]bool),
			taint:   make(map[types.Object]bool),
			bless:   make(map[types.Object]bool),
			addr:    make(map[types.Object]bool),
		}
		s.seedLitParams(env, sub, lit, n.Call.Args, true)
		s.analyzeBody(sub, lit.Body)
	} else if !s.emit {
		for _, callee := range s.prog.CallGraph.Callees(env.pkg.Info, n.Call) {
			if s.byObj[callee] != nil {
				s.candMeet(callee, Lockset{})
				s.recordArgFacts(env, callee, n.Call, false, true)
			}
		}
	}
	for _, arg := range n.Call.Args {
		if _, isLit := ast.Unparen(arg).(*ast.FuncLit); !isLit {
			s.walkExpr(env, arg, held, exprCtx{})
		}
	}
}

// walkDeferCall handles a defer during replay. A deferred literal inherits
// the environment with the locks held at registration (deferred releases
// are ignored, so this matches the locks still held at exit on the paths
// through this defer); a deferred named call is treated as an executed
// call site.
func (s *concSolver) walkDeferCall(env *bodyEnv, n *ast.DeferStmt, held Lockset) {
	if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
		sub := env.inherit(held)
		s.analyzeBody(sub, lit.Body)
	} else {
		s.walkCallSite(env, n.Call, held)
		if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
			s.walkExpr(env, sel.X, held, exprCtx{})
		}
	}
	for _, arg := range n.Call.Args {
		if _, isLit := ast.Unparen(arg).(*ast.FuncLit); !isLit {
			s.walkExpr(env, arg, held, exprCtx{})
		}
	}
}

// inherit builds a sub-environment that shares the unit and local facts of
// env but snapshots the given lockset as its entry.
func (env *bodyEnv) inherit(held Lockset) *bodyEnv {
	return &bodyEnv{
		fn:      env.fn,
		pkg:     env.pkg,
		unit:    env.unit,
		ctxs:    env.ctxs,
		entry:   held.clone(),
		freshOK: env.freshOK,
		fresh:   env.fresh,
		taint:   env.taint,
		bless:   env.bless,
		addr:    env.addr,
		waits:   env.waits,
	}
}

// seedLitParams maps taint/blessing facts from call arguments onto a
// literal's parameters. Taint survives a spawn — a shard index is a value,
// copied at the go statement — but blessing does not: storage that was
// fresh or confined when the spawner ran is published by the spawn itself,
// and the goroutine touches it only after the spawner has moved on.
func (s *concSolver) seedLitParams(env *bodyEnv, sub *bodyEnv, lit *ast.FuncLit, args []ast.Expr, spawn bool) {
	if lit.Type.Params == nil {
		return
	}
	i := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			v, _ := env.pkg.Info.Defs[name].(*types.Var)
			if v == nil {
				i++
				continue
			}
			if pointerFreeType(v.Type()) {
				sub.bless[v] = true
			}
			if i < len(args) {
				if s.taintedExpr(env, args[i]) {
					sub.taint[v] = true
				}
				if !spawn && s.blessedExpr(env, args[i]) {
					sub.bless[v] = true
				}
			}
			i++
		}
	}
}

// walkExpr recursively records accesses (emit mode), collects executed
// call sites (fixpoint mode), and descends into function literals with
// the environment their execution context demands.
func (s *concSolver) walkExpr(env *bodyEnv, e ast.Expr, held Lockset, ctx exprCtx) {
	if e == nil {
		return
	}
	info := env.pkg.Info
	switch e := e.(type) {
	case *ast.ParenExpr:
		s.walkExpr(env, e.X, held, ctx)
	case *ast.Ident:
		s.recordIdent(env, e, held, ctx)
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			s.record(env, e, v, held, ctx)
		}
		s.walkExpr(env, e.X, held, exprCtx{blessed: ctx.blessed})
	case *ast.IndexExpr:
		inner := exprCtx{write: ctx.write, blessed: ctx.blessed || s.taintedExpr(env, e.Index)}
		s.walkExpr(env, e.X, held, inner)
		s.walkExpr(env, e.Index, held, exprCtx{})
	case *ast.SliceExpr:
		s.walkExpr(env, e.X, held, exprCtx{write: ctx.write, blessed: ctx.blessed})
		s.walkExpr(env, e.Low, held, exprCtx{})
		s.walkExpr(env, e.High, held, exprCtx{})
		s.walkExpr(env, e.Max, held, exprCtx{})
	case *ast.StarExpr:
		s.walkExpr(env, e.X, held, ctx)
	case *ast.UnaryExpr:
		s.walkExpr(env, e.X, held, exprCtx{write: ctx.write && e.Op == token.AND, blessed: ctx.blessed})
	case *ast.BinaryExpr:
		s.walkExpr(env, e.X, held, exprCtx{blessed: ctx.blessed})
		s.walkExpr(env, e.Y, held, exprCtx{blessed: ctx.blessed})
	case *ast.TypeAssertExpr:
		s.walkExpr(env, e.X, held, ctx)
	case *ast.KeyValueExpr:
		s.walkExpr(env, e.Value, held, exprCtx{})
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.walkExpr(env, el, held, exprCtx{})
		}
	case *ast.FuncLit:
		// A bare literal in expression position escapes: analyze as an
		// external callback.
		s.descendStoredLit(env, e)
	case *ast.CallExpr:
		s.walkCall(env, e, held, ctx)
	}
}

// walkCall handles every call-shaped expression: conversions, len/cap
// blessing, sync.Once bodies, immediately invoked and escaping literals,
// executed call-site collection, and receiver/argument traversal.
func (s *concSolver) walkCall(env *bodyEnv, call *ast.CallExpr, held Lockset, ctx exprCtx) {
	info := env.pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversion: the operand keeps the surrounding context.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			s.walkExpr(env, arg, held, exprCtx{blessed: ctx.blessed})
		}
		return
	}
	// len/cap read only the header: bless the operand access (a shard
	// geometry computation may measure a confined slice without touching
	// its elements).
	if id, ok := fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				s.walkExpr(env, arg, held, exprCtx{blessed: true})
			}
			return
		}
	}
	// Immediately invoked literal: inherits everything.
	if lit, ok := fun.(*ast.FuncLit); ok {
		sub := env.inherit(held)
		s.analyzeBody(sub, lit.Body)
	} else {
		// once.Do(func(){...}): the body runs under the Once's own
		// exclusion key in the caller's context.
		if onceObj := onceDoTarget(info, call); onceObj != nil {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				entry := held.clone()
				entry[onceObj] = ModeExcl
				sub := env.inherit(entry)
				sub.entry = entry
				s.analyzeBody(sub, lit.Body)
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					s.walkExpr(env, sel.X, held, exprCtx{})
				}
				return
			}
		}
		s.walkCallSite(env, call, held)
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			// Method receiver (or package qualifier — resolves to nothing).
			s.walkExpr(env, sel.X, held, exprCtx{blessed: ctx.blessed})
		}
	}
	inherit := inheritsLitArg(info, call)
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if inherit {
				sub := env.inherit(held)
				s.analyzeBody(sub, lit.Body)
			} else {
				s.descendStoredLit(env, lit)
			}
			continue
		}
		s.walkExpr(env, arg, held, exprCtx{})
	}
}

// descendStoredLit analyzes a literal that escapes the current region —
// stored, returned, or passed to a callee that may hold it — as an
// external callback: unknown context, no locks, no freshness.
func (s *concSolver) descendStoredLit(env *bodyEnv, lit *ast.FuncLit) {
	sub := &bodyEnv{
		fn:  env.fn,
		pkg: env.pkg,
		unit: &concUnit{
			declObj: env.fn.obj,
			label:   env.unit.label + " callback",
			doneWGs: make(map[types.Object]bool),
		},
		ctxs:    map[*Goroutine]bool{s.external: true},
		entry:   Lockset{},
		freshOK: false,
		fresh:   make(map[types.Object]bool),
		taint:   make(map[types.Object]bool),
		bless:   make(map[types.Object]bool),
		addr:    make(map[types.Object]bool),
	}
	s.seedLitParams(env, sub, lit, nil, false)
	s.analyzeBody(sub, lit.Body)
}

// onceDoTarget matches once.Do(f) on a sync.Once field/variable.
func onceDoTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || len(call.Args) != 1 {
		return nil
	}
	obj := refObject(info, sel.X)
	if obj == nil || !isSyncNamed(obj.Type(), "Once") {
		return nil
	}
	return obj
}

// walkCallSite feeds one executed call into the interprocedural fixpoint:
// the callee's entry lockset candidates meet the caller's held set, and
// parameter taint/blessing candidates accumulate with AND semantics. Call
// sites on a freshly constructed receiver are skipped — the callee runs on
// an unshared instance there, which must not weaken the entry lockset its
// shared-instance callers establish.
func (s *concSolver) walkCallSite(env *bodyEnv, call *ast.CallExpr, held Lockset) {
	if s.emit {
		return
	}
	info := env.pkg.Info
	freshRecv := false
	var recvSel ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// A receiver that is freshly allocated — or that points into the
		// caller's own value storage, like sum.accumulate on a local sum —
		// runs the callee on an unshared instance: the site must not weaken
		// the entry lockset or region its shared-instance callers establish.
		if root := rootIdentObj(info, sel.X); root != nil && env.fresh[root] {
			freshRecv = true
		} else if valueChainRoot(info, sel.X) != nil {
			freshRecv = true
		}
		// Receiver region meets flow only through direct (non-interface)
		// method calls: a devirtualized interface call says nothing about
		// where the implementation's instance lives.
		if tv, ok := info.Types[sel.X]; ok && !types.IsInterface(tv.Type) {
			recvSel = sel.X
		}
	}
	for _, callee := range s.prog.CallGraph.Callees(info, call) {
		if s.byObj[callee] == nil {
			continue
		}
		if freshRecv {
			s.freshCand[callee] |= 1
		} else {
			s.freshCand[callee] |= 2
			s.candMeet(callee, held)
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if recvSel != nil {
					s.recvMeet(sig.Recv(), s.regionOf(env, recvSel))
				} else {
					// Interface dispatch or method value: instance unknown.
					s.recvBad[sig.Recv()] = true
					s.recvSeen[sig.Recv()] = true
				}
			}
		}
		s.recordArgFacts(env, callee, call, freshRecv, false)
	}
}

// recvMeet accumulates the receiver-region candidate for one callee
// receiver: all known call sites must agree on a non-nil region.
func (s *concSolver) recvMeet(recv *types.Var, reg types.Type) {
	if reg == nil {
		s.recvBad[recv] = true
		return
	}
	if !s.recvSeen[recv] {
		s.recvCand[recv] = reg
		s.recvSeen[recv] = true
		return
	}
	if !types.Identical(s.recvCand[recv], reg) {
		s.recvBad[recv] = true
	}
}

func (s *concSolver) candMeet(callee *types.Func, held Lockset) {
	if !s.candSeen[callee] {
		s.cand[callee] = held.clone()
		s.candSeen[callee] = true
		return
	}
	s.cand[callee] = intersectLocks(s.cand[callee], held)
}

// recordArgFacts accumulates per-parameter must-facts across call sites.
// A spawn site keeps taint (a shard index is a value, copied at the go
// statement) but never contributes blessing: the spawner's fresh or
// confined storage is published by the spawn itself, and the goroutine
// runs only after the spawner has moved on.
func (s *concSolver) recordArgFacts(env *bodyEnv, callee *types.Func, call *ast.CallExpr, freshRecv, spawn bool) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	note := func(v *types.Var, tainted, blessed bool) {
		if tainted {
			s.taintCand[v] |= 1
		} else {
			s.taintCand[v] |= 2
		}
		if blessed && !spawn {
			s.blessCand[v] |= 1
		} else {
			s.blessCand[v] |= 2
		}
	}
	if recv := sig.Recv(); recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			blessed := freshRecv || s.blessedExpr(env, sel.X)
			note(recv, s.taintedExpr(env, sel.X), blessed)
		}
	}
	params := sig.Params()
	if sig.Variadic() || params.Len() != len(call.Args) {
		// Shapes the simple positional mapping cannot cover keep their
		// parameters unblessed.
		for i := 0; i < params.Len(); i++ {
			note(params.At(i), false, false)
		}
		return
	}
	for i := 0; i < params.Len(); i++ {
		arg := call.Args[i]
		note(params.At(i), s.taintedExpr(env, arg), s.blessedExpr(env, arg))
	}
}

// ---------------------------------------------------------------------------
// Access recording
// ---------------------------------------------------------------------------

// recordIdent records a package-level variable access.
func (s *concSolver) recordIdent(env *bodyEnv, id *ast.Ident, held Lockset, ctx exprCtx) {
	if !s.emit {
		return
	}
	v, ok := env.pkg.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return // local
	}
	s.emitAccess(env, id.Pos(), v, held, ctx.write, false, ctx.blessed, nil)
}

// record records a field access reached through a selector.
func (s *concSolver) record(env *bodyEnv, sel *ast.SelectorExpr, v *types.Var, held Lockset, ctx exprCtx) {
	if !s.emit || !v.IsField() {
		return
	}
	root := rootIdentObj(env.pkg.Info, sel.X)
	fresh := (root != nil && env.fresh[root]) || s.privateRoot(env, sel.X) != nil
	blessed := ctx.blessed ||
		(root != nil && env.bless[root]) ||
		s.chainHasConfined(env, sel.X)
	s.emitAccess(env, sel.Sel.Pos(), v, held, ctx.write, fresh, blessed, s.regionOf(env, sel.X))
}

func (s *concSolver) emitAccess(env *bodyEnv, pos token.Pos, v *types.Var, held Lockset, write, fresh, blessed bool, region types.Type) {
	if syncGuardedType(v.Type()) {
		return
	}
	var joined map[types.Object]bool
	for _, w := range env.waits {
		if w.pos < pos {
			if joined == nil {
				joined = make(map[types.Object]bool)
			}
			joined[w.wg] = true
		}
	}
	s.accesses = append(s.accesses, &ConcAccess{
		Obj:      v,
		Pos:      pos,
		Position: env.pkg.Fset.Position(pos),
		Pkg:      env.pkg,
		FnLabel:  env.unit.label,
		Write:    write,
		Fresh:    fresh,
		Confined: blessed,
		Region:   region,
		Locks:    held.clone(),
		Joined:   joined,
		Ctxs:     env.ctxs,
		unit:     env.unit,
	})
}

// chainHasConfined reports whether the base expression itself goes through
// a confined field: an access chained behind a confined checkpoint (e.g.
// the .live behind e.nodes[u]) is covered by the inner access's own
// verdict and must not double-report.
func (s *concSolver) chainHasConfined(env *bodyEnv, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := env.pkg.Info.Uses[sel.Sel].(*types.Var); ok && s.confined[v] != nil {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
