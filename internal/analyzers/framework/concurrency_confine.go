// Confinement-side value classification for the happens-before engine: how
// one expression is judged fresh (an allocation this frame just made, or
// storage that never leaves a local's own bytes), shard-tainted (a value
// derived from the atomic steal counter), blessed (confined storage, or an
// element checked out of a //vet:confined field at a tainted index), and
// which named type's region its storage belongs to. concurrency_body.go
// consumes these while replaying function bodies.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rootIdentObj strips selectors, indexing, slicing, dereference, address-of
// and parens down to the base identifier's object.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return refObject(info, x)
		default:
			return nil
		}
	}
}

// privateRoot returns the local value variable that owns the storage a
// selector chain resolves into, when the chain never leaves the variable's
// own bytes and the variable's address never escapes. Writes into such
// storage are the function's own — value semantics mean every assignment
// copied — exactly like a fresh allocation.
func (s *concSolver) privateRoot(env *bodyEnv, e ast.Expr) *types.Var {
	v := valueChainRoot(env.pkg.Info, e)
	if v == nil || env.addr[v] {
		return nil
	}
	return v
}

// valueChainRoot resolves a chain that stays inside one local value: every
// step selects a field of a value or indexes a value array, and the root
// is a local or parameter of non-pointer type. The caller decides whether
// address-taking disqualifies the root: an access needs the storage fully
// private, while a method call only needs the receiver to point into the
// caller's own value at this site.
func valueChainRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			tv, ok := info.Types[x.X]
			if !ok || isPointerType(tv.Type) {
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			tv, ok := info.Types[x.X]
			if !ok {
				return nil
			}
			if _, isArr := tv.Type.Underlying().(*types.Array); !isArr {
				return nil
			}
			e = x.X
		case *ast.Ident:
			v, _ := refObject(info, x).(*types.Var)
			if v == nil || v.IsField() ||
				v.Pkg() == nil || v.Parent() == v.Pkg().Scope() ||
				isPointerType(v.Type()) {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}

// regionOf resolves the named type that owns the storage an access base
// expression lands in: the pointee of the last pointer crossed, with
// slice, array, and map storage counted as inside their owner (the
// repo's internal slices are never shared across owners — the same
// convention //vet:confined relies on). A receiver variable whose every
// known call site agrees on a finer region uses that instead.
func (s *concSolver) regionOf(env *bodyEnv, e ast.Expr) types.Type {
	info := env.pkg.Info
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok && isPointerType(tv.Type) {
				return namedPointee(tv.Type)
			}
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok && isPointerType(tv.Type) {
				return namedPointee(tv.Type)
			}
			e = x.X
		case *ast.SliceExpr:
			if tv, ok := info.Types[x.X]; ok && isPointerType(tv.Type) {
				return namedPointee(tv.Type)
			}
			e = x.X
		case *ast.StarExpr:
			if tv, ok := info.Types[x.X]; ok {
				return namedPointee(tv.Type)
			}
			return nil
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			v, _ := refObject(info, x).(*types.Var)
			if v == nil {
				return nil
			}
			if r, ok := s.recvRegion[v]; ok {
				return r
			}
			return namedPointee(v.Type())
		default:
			return nil
		}
	}
}

// namedPointee strips one pointer level and returns the named type, or nil
// for anonymous and non-named shapes.
func namedPointee(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

func isPointerType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// taintedExpr reports whether e carries a shard index: a value derived
// from the shard-steal counter (an atomic Add/Load on a counter field) or
// from a parameter every caller passes a shard index to. Taint propagates
// through arithmetic, conversions, and call results — but deliberately not
// through indexing or field selection: a value read OUT of shard state
// (like a message's destination id) is not a shard index.
func (s *concSolver) taintedExpr(env *bodyEnv, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := refObject(env.pkg.Info, e)
		return obj != nil && env.taint[obj]
	case *ast.BinaryExpr:
		return s.taintedExpr(env, e.X) || s.taintedExpr(env, e.Y)
	case *ast.UnaryExpr:
		return e.Op != token.AND && s.taintedExpr(env, e.X)
	case *ast.CallExpr:
		if atomicCounterCall(env.pkg.Info, e) {
			return true
		}
		for _, arg := range e.Args {
			if s.taintedExpr(env, arg) {
				return true
			}
		}
		return false
	}
	return false
}

// atomicCounterCall matches reading the shard-steal counter: a method call
// (Add, Load, Swap) on a sync/atomic-typed field, or the package-function
// form (atomic.AddInt32) on such a field's address.
func atomicCounterCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		return true
	}
	switch sel.Sel.Name {
	case "Add", "Load", "Swap", "CompareAndSwap":
		if obj := refObject(info, sel.X); obj != nil {
			if n, ok := obj.Type().(*types.Named); ok {
				if pkg := n.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
					return true
				}
			}
		}
	}
	return false
}

// blessedExpr reports whether e denotes confined storage: a fresh or
// blessed local (or anything reached through one), a confined field
// element checked out at a shard-tainted index, or a slice/address of
// either.
func (s *concSolver) blessedExpr(env *bodyEnv, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := refObject(env.pkg.Info, e)
		return obj != nil && (env.bless[obj] || env.fresh[obj])
	case *ast.UnaryExpr:
		return e.Op == token.AND && s.blessedExpr(env, e.X)
	case *ast.SliceExpr:
		return s.blessedExpr(env, e.X)
	case *ast.SelectorExpr:
		return s.blessedExpr(env, e.X)
	case *ast.IndexExpr:
		if s.taintedExpr(env, e.Index) {
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				if v, ok := env.pkg.Info.Uses[sel.Sel].(*types.Var); ok && s.confined[v] != nil {
					return true
				}
			}
		}
		return s.blessedExpr(env, e.X)
	}
	return false
}

// freshExpr matches an allocation the enclosing function just made:
// &T{...}, new(T), make(...), or a composite literal value.
func freshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
		return isLit
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}

// pointerFreeType reports whether values of t are self-contained: copying
// one shares no mutable storage with the original. Such locals and
// by-value parameters are always the function's own.
func pointerFreeType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Array:
		return pointerFreeType(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !pointerFreeType(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}
