package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// namedStruct builds a named struct type from (fieldName, fieldType) pairs,
// mirroring how the engine sees real declarations without loading source.
func namedStruct(name string, fields ...any) *types.Named {
	var vars []*types.Var
	for i := 0; i+1 < len(fields); i += 2 {
		vars = append(vars, types.NewField(token.NoPos, nil, fields[i].(string), fields[i+1].(types.Type), false))
	}
	st := types.NewStruct(vars, nil)
	tn := types.NewTypeName(token.NoPos, nil, name, nil)
	return types.NewNamed(tn, st, nil)
}

// TestRegionsDisjoint pins the region proof the Classify chain relies on:
// storage of two named types overlaps only when one type's value
// representation can contain the other. Pointers, channels, and interfaces
// are separate allocations and stop containment.
func TestRegionsDisjoint(t *testing.T) {
	intT := types.Typ[types.Int]
	stats := namedStruct("stats", "hits", intT)
	alpha := namedStruct("alpha", "s", stats)                     // embeds stats by value
	beta := namedStruct("beta", "s", stats)                       // also embeds by value
	gamma := namedStruct("gamma", "p", types.NewPointer(stats))   // only points at stats
	delta := namedStruct("delta", "xs", types.NewSlice(stats))    // backing store holds stats
	eps := namedStruct("eps", "m", types.NewMap(intT, stats))     // map values hold stats
	zeta := namedStruct("zeta", "arr", types.NewArray(stats, 16)) // array elements are stats

	cases := []struct {
		name     string
		a, b     types.Type
		disjoint bool
	}{
		{"nil side never disjoint", nil, stats, false},
		{"identical type not disjoint", stats, stats, false},
		{"value embedding overlaps", alpha, stats, false},
		{"slice backing store overlaps", delta, stats, false},
		{"map element overlaps", eps, stats, false},
		{"array element overlaps", zeta, stats, false},
		{"pointer field does not overlap", gamma, stats, true},
		{"two value embedders are distinct regions", alpha, beta, true},
	}
	for _, c := range cases {
		if got := regionsDisjoint(c.a, c.b); got != c.disjoint {
			t.Errorf("%s: regionsDisjoint(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.disjoint)
		}
		if got := regionsDisjoint(c.b, c.a); got != c.disjoint {
			t.Errorf("%s (flipped): regionsDisjoint(%v, %v) = %v, want %v", c.name, c.b, c.a, got, c.disjoint)
		}
	}
}

// TestValueReachIsCycleSafe: a self-referential shape (struct holding a
// slice of itself) must terminate and still report containment.
func TestValueReachIsCycleSafe(t *testing.T) {
	tn := types.NewTypeName(token.NoPos, nil, "node", nil)
	node := types.NewNamed(tn, nil, nil)
	st := types.NewStruct([]*types.Var{
		types.NewField(token.NoPos, nil, "kids", types.NewSlice(node), false),
	}, nil)
	node.SetUnderlying(st)

	if !valueReach(node, node, make(map[types.Type]bool)) {
		t.Error("valueReach(node, node) = false, want true (identity)")
	}
	other := namedStruct("other", "n", types.NewSlice(node))
	if !valueReach(other, node, make(map[types.Type]bool)) {
		t.Error("valueReach(other, node) = false, want true (through slice of recursive type)")
	}
}

// TestLocksExclude pins the mode semantics: exclusion needs a common key
// with at least one exclusive hold. Read-vs-read and barrier-vs-barrier
// never exclude — two phase workers inherit the same barrier token and
// still run concurrently.
func TestLocksExclude(t *testing.T) {
	mu := types.NewVar(token.NoPos, nil, "mu", types.Typ[types.Int])
	gate := types.NewVar(token.NoPos, nil, "gate", types.Typ[types.Int])

	cases := []struct {
		name    string
		a, b    Lockset
		exclude bool
	}{
		{"no common key", Lockset{mu: ModeExcl}, Lockset{gate: ModeExcl}, false},
		{"both exclusive", Lockset{mu: ModeExcl}, Lockset{mu: ModeExcl}, true},
		{"excl vs read", Lockset{mu: ModeExcl}, Lockset{mu: ModeRead}, true},
		{"read vs read", Lockset{mu: ModeRead}, Lockset{mu: ModeRead}, false},
		{"barrier vs barrier", Lockset{gate: ModeBarrier}, Lockset{gate: ModeBarrier}, false},
		{"token holder vs barrier worker", Lockset{gate: ModeExcl}, Lockset{gate: ModeBarrier}, true},
	}
	for _, c := range cases {
		if got := locksExclude(c.a, c.b); got != c.exclude {
			t.Errorf("%s: locksExclude = %v, want %v", c.name, got, c.exclude)
		}
	}
}

// TestPointerFreeType: a by-value parameter of self-contained type is the
// callee's own copy; anything that can alias mutable storage is not.
func TestPointerFreeType(t *testing.T) {
	intT := types.Typ[types.Int]
	cases := []struct {
		name string
		t    types.Type
		free bool
	}{
		{"int", intT, true},
		{"string", types.Typ[types.String], true}, // immutable backing store
		{"array of int", types.NewArray(intT, 4), true},
		{"struct of ints", namedStruct("pair", "a", intT, "b", intT), true},
		{"unsafe pointer", types.Typ[types.UnsafePointer], false},
		{"slice", types.NewSlice(intT), false},
		{"pointer", types.NewPointer(intT), false},
		{"struct with slice", namedStruct("buf", "xs", types.NewSlice(intT)), false},
	}
	for _, c := range cases {
		if got := pointerFreeType(c.t); got != c.free {
			t.Errorf("%s: pointerFreeType(%v) = %v, want %v", c.name, c.t, got, c.free)
		}
	}
}

// TestNamedPointee: one pointer level is stripped; anonymous shapes have
// no owning region.
func TestNamedPointee(t *testing.T) {
	stats := namedStruct("stats", "hits", types.Typ[types.Int])
	if got := namedPointee(types.NewPointer(stats)); got != stats {
		t.Errorf("namedPointee(*stats) = %v, want stats", got)
	}
	if got := namedPointee(stats); got != stats {
		t.Errorf("namedPointee(stats) = %v, want stats", got)
	}
	if got := namedPointee(types.NewPointer(types.NewSlice(stats))); got != nil {
		t.Errorf("namedPointee(*[]stats) = %v, want nil (anonymous shape)", got)
	}
}

// TestFreshExpr drives the freshness matcher over parsed expression forms:
// only allocations the enclosing frame just made count.
func TestFreshExpr(t *testing.T) {
	cases := []struct {
		src   string
		fresh bool
	}{
		{"&T{}", true},
		{"T{a: 1}", true},
		{"new(T)", true},
		{"make([]int, 8)", true},
		{"(&T{})", true},
		{"x", false},
		{"f()", false},
		{"&x", false}, // address of existing storage, not an allocation
		{"x.f", false},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		if got := freshExpr(e); got != c.fresh {
			t.Errorf("freshExpr(%q) = %v, want %v", c.src, got, c.fresh)
		}
	}
}

// TestRootIdentObj walks chains down to their base identifier with real
// type information, the same resolution record() uses to find an access's
// root variable.
func TestRootIdentObj(t *testing.T) {
	const src = `package p
type T struct{ f [4]int }
var g T
func use(p *T) int { return p.f[g.f[0]] }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var ret ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r.Results[0]
		}
		return true
	})
	obj := rootIdentObj(info, ret)
	if obj == nil || obj.Name() != "p" {
		t.Fatalf("rootIdentObj(p.f[g.f[0]]) = %v, want the parameter p", obj)
	}
}
