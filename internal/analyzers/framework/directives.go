package framework

import (
	"strings"
)

// allowKey identifies one (file, line, analyzer) suppression grant.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans a package's comments for //lint:allow directives. A
// directive grants suppression on its own line and on the line directly
// below it, so both trailing-comment and preceding-comment styles work:
//
//	import "math/rand" //lint:allow detrand cross-validation only
//
//	//lint:allow detrand cross-validation only
//	import "math/rand"
func collectAllows(pkg *Package) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range names {
					allows[allowKey{pos.Filename, pos.Line, name}] = true
					allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return allows
}

// parseAllow extracts the analyzer names from one comment's text, or
// reports that the comment is not an allow directive. The expected shape is
// `//lint:allow name[,name...] [free-text reason]`.
func parseAllow(text string) ([]string, bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return nil, false
	}
	namesField := strings.Fields(rest)[0]
	var names []string
	for _, n := range strings.Split(namesField, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// suppressAllowed drops diagnostics covered by an allow directive.
func suppressAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	allows := collectAllows(pkg)
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}
