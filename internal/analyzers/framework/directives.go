package framework

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// allowKey identifies one (file, line, analyzer) suppression grant.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowDirective is one parsed //lint:allow grant. Used reports whether the
// directive suppressed at least one diagnostic (or answered an AllowedAt
// query) during this run — a directive that is never used is a stale escape
// hatch the -unusedallow sfvet mode surfaces.
type AllowDirective struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Used     bool
}

// allowSet is a package's parsed suppression directives. Both line grants of
// a directive (its own line and the one below) share a single record, so
// using either marks the directive used. The mutex covers Used marking:
// AllowedAt may be called from parallel per-package passes.
type allowSet struct {
	mu    sync.Mutex
	byKey map[allowKey]*AllowDirective
	all   []*AllowDirective
}

// allows returns the package's directive set, building it on first use.
func (pkg *Package) allows() *allowSet {
	pkg.allowOnce.Do(func() {
		s := &allowSet{byKey: make(map[allowKey]*AllowDirective)}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, name := range names {
						d := &AllowDirective{
							File:     pos.Filename,
							Line:     pos.Line,
							Analyzer: name,
							Reason:   reason,
						}
						s.all = append(s.all, d)
						// A directive grants suppression on its own line and
						// on the line directly below it, so both
						// trailing-comment and preceding-comment styles work.
						s.byKey[allowKey{pos.Filename, pos.Line, name}] = d
						s.byKey[allowKey{pos.Filename, pos.Line + 1, name}] = d
					}
				}
			}
		}
		pkg.allowSet = s
	})
	return pkg.allowSet
}

// parseAllow extracts the analyzer names and trailing free-text reason from
// one comment's text, or reports that the comment is not an allow directive.
// The expected shape is `//lint:allow name[,name...] [free-text reason]`.
func parseAllow(text string) (names []string, reason string, ok bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return nil, "", false
	}
	namesField := strings.Fields(rest)[0]
	reason = strings.TrimSpace(strings.TrimPrefix(rest, namesField))
	for _, n := range strings.Split(namesField, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, reason, len(names) > 0
}

// suppressAllowed drops diagnostics covered by an allow directive, marking
// the covering directives used.
func suppressAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	s := pkg.allows()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.byKey) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if a := s.byKey[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; a != nil {
			a.Used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// AllowedAt reports whether an allow directive for the named analyzer covers
// pos, marking it used. Analyzers use this to honor suppressions at places
// other than the reported diagnostic — hotalloc consults it at every call
// edge so an allow on a call site prunes the whole subtree behind the call.
func (pkg *Package) AllowedAt(pos token.Pos, analyzer string) bool {
	s := pkg.allows()
	p := pkg.Fset.Position(pos)
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.byKey[allowKey{p.Filename, p.Line, analyzer}]; a != nil {
		a.Used = true
		return true
	}
	return false
}

// UnusedAllows returns every //lint:allow directive in the program that
// suppressed nothing during the analyses run so far, sorted by file, line,
// and analyzer. Call it after AnalyzeAll: a directive unused at that point
// is a stale escape hatch — the diagnostic it once silenced is gone.
func (prog *Program) UnusedAllows() []AllowDirective {
	var out []AllowDirective
	for _, pkg := range prog.Packages {
		s := pkg.allows()
		s.mu.Lock()
		for _, d := range s.all {
			if !d.Used {
				out = append(out, *d)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// HotpathDecls returns the function declarations in pkg marked with a
// //vet:hotpath directive comment. The directive must sit in the
// declaration's doc comment group (directly above the func keyword, no blank
// line), the same placement contract as //go:noinline:
//
//	// TickRound advances every node one round.
//	//
//	//vet:hotpath
//	func (e *ShardedCluster) TickRound() { ... }
//
// These declarations are the roots the hotalloc analyzer proves
// allocation-free together with everything they transitively call.
func HotpathDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == "//vet:hotpath" || strings.HasPrefix(c.Text, "//vet:hotpath ") {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}
