package framework

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("sendforget/internal/engine"),
	// or the fixture directory's base name for testdata packages.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Parsed //lint:allow directives, built lazily (see directives.go).
	allowOnce sync.Once
	allowSet  *allowSet
}

// ErrExportData marks a package-load failure caused by missing or unreadable
// compiled export data — typically a toolchain/cache mismatch, not a bug in
// the analyzed code. Drivers should test for it with errors.Is and print an
// actionable message (run `go build ./...` to repopulate the build cache)
// instead of surfacing the raw type-checker error.
var ErrExportData = errors.New("export data load failed")

// listedPackage is the slice of `go list -json` output the driver uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Loader type-checks packages without golang.org/x/tools: package metadata
// and compiled export data come from `go list -deps -export -json`, and the
// standard gc importer consumes the export files. This is the same
// information a vettool receives from the go command, obtained directly.
//
// Test files are not loaded (GoFiles excludes them): the enforced
// invariants govern simulation and runtime code; tests may use wall-clock
// timeouts and ad-hoc randomness freely.
type Loader struct {
	// ModuleDir is the module root every `go list` invocation runs from.
	ModuleDir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader builds a loader rooted at moduleDir. An empty moduleDir resolves
// the enclosing module of the current working directory via `go env GOMOD`.
func NewLoader(moduleDir string) (*Loader, error) {
	if moduleDir == "" {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			return nil, fmt.Errorf("framework: resolving module root: %w", err)
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			return nil, fmt.Errorf("framework: not inside a module")
		}
		moduleDir = filepath.Dir(gomod)
	}
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   make(map[string]string),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := l.exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("framework: no export data for %q: %w", path, ErrExportData)
		}
		return os.Open(exp)
	})
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists, parses, and type-checks the packages matching the patterns
// (e.g. "./..."), returning them sorted by import path. Dependencies are
// loaded as export data only.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.list(append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Name == "" {
			continue
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir without
// requiring it to be listable by the go command — this is how testdata
// fixture packages (which `go list ./...` deliberately skips) are loaded.
// Imports are resolved against the loader's module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("framework: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("framework: no Go files in %s", dir)
	}
	sort.Strings(files)

	// Resolve the fixture's imports to export data before type-checking.
	var imports []string
	seen := map[string]bool{}
	tmpFset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(tmpFset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("framework: %w", err)
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	if len(imports) > 0 {
		if _, err := l.list(append([]string{"-deps"}, imports...)...); err != nil {
			return nil, err
		}
	}
	return l.check(filepath.Base(dir), dir, files)
}

// list runs `go list -e -export -json` with the given extra arguments from
// the module root, records every package's export data file, and returns
// the listing.
func (l *Loader) list(args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-json"}, args...)...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("framework: go list: %v\n%s", err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("framework: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// check parses and type-checks one package's files.
func (l *Loader) check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("framework: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:                 l.imp,
		DisableUnusedImportCheck: true,
		Error:                    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		max := len(typeErrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		importFailed := false
		for _, e := range typeErrs[:max] {
			msg := e.Error()
			if strings.Contains(msg, "could not import") || strings.Contains(msg, "no export data for") {
				importFailed = true
			}
			msgs = append(msgs, msg)
		}
		joined := strings.Join(msgs, "\n  ")
		if importFailed {
			// The type checker flattens importer failures into ordinary type
			// errors; resurface them under the sentinel so drivers can tell
			// a stale build cache apart from broken source.
			return nil, fmt.Errorf("framework: loading export data for %s failed (%w):\n  %s", path, ErrExportData, joined)
		}
		return nil, fmt.Errorf("framework: type errors in %s:\n  %s", path, joined)
	}
	if err != nil {
		return nil, fmt.Errorf("framework: checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
