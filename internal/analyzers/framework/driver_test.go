package framework

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestExportDataFailureSurfacesSentinel proves the fail-fast contract end to
// end at the framework layer: when a package's import has no export data in
// the loader's table — the stale-build-cache shape — the type checker's
// flattened "could not import" error is resurfaced under ErrExportData, so
// drivers can errors.Is their way to the `go build ./...` remedy instead of
// misreporting the cache problem as broken source.
func TestExportDataFailureSurfacesSentinel(t *testing.T) {
	l, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := "package p\n\nimport \"sendforget/internal/peer\"\n\nvar _ peer.ID\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	// Check the file without ever listing its import: the exports table has
	// no entry for sendforget/internal/peer, exactly as if the build cache
	// had been purged between `go list` and the importer's read.
	_, err = l.check("p", dir, []string{"p.go"})
	if err == nil {
		t.Fatal("check succeeded with no export data for the import")
	}
	if !errors.Is(err, ErrExportData) {
		t.Fatalf("error does not satisfy errors.Is(err, ErrExportData): %v", err)
	}
}
