package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the framework's escape/allocation layer: an interprocedural
// leak analysis over the loaded program plus a per-function allocation-site
// classifier built on top of it. Together they let analyzers answer "does
// this function allocate on the heap, and why" statically — the question the
// hotalloc analyzer asks of every function reachable from a //vet:hotpath
// root — where dynamic alloc counting (testing.AllocsPerRun over whichever
// branches one n and seed happen to hit) cannot.
//
// The leak half (SolveEscape) is object-based and flow-insensitive, the same
// coarsening the taint engine uses: a types.Object is "leaked" when the data
// it binds may outlive its function's frame — it is returned, stored into a
// field, global, map, or channel, captured by a function literal, passed to
// a go statement, or passed as an argument to a parameter the callee leaks.
// Per-function parameter-leak summaries (receiver first) propagate through
// the CHA call graph to a fixpoint, so `u := make(...); helper(u)` leaks u
// exactly when helper retains its argument, any number of calls deep.
// Assignment edges propagate leaks backward (w := v; return w leaks v), and
// only objects whose types can carry pointers participate: a struct of plain
// integers (protocol.FlatMsg, peer.ID) cannot pin heap memory, so copying it
// around never constitutes a leak.
//
// The classifier half (AllocSites) walks one function body and reports every
// construct that can reach the allocator, using the leak fixpoint to prove
// the innocent ones innocent:
//
//   - make(chan)/make(map), map literals, and map-index assignments always
//     allocate;
//   - make([]T, n) with non-constant n always allocates; with constant n it
//     allocates only when the bound object leaks (a provably stack-local
//     constant-size make is free);
//   - new(T), &T{...}, and []T{...} allocate only when they escape (bound to
//     a leaked object, passed to a leaking parameter, returned, or used in a
//     leaking position);
//   - append allocates unless its base is rooted in a parameter, receiver,
//     or package variable — the pooled-slab idiom (`o.Msgs = append(o.Msgs,
//     m)`, `e.inboxRefs[d] = append(e.inboxRefs[d], ref)`) reuses caller-
//     owned capacity and is the hot path's sanctioned append shape;
//   - boxing a concrete non-pointer-shaped value into an interface
//     (assignment, call argument, or return) allocates, as does a variadic
//     call that materializes its argument slice, string concatenation, and
//     string<->[]byte/[]rune conversions;
//   - go statements and capturing closures allocate by construction;
//   - calls into allocating stdlib packages (fmt, errors, strings, sort,
//     encoding/json, ...) are allocation sites at the call — their bodies
//     are export data, so the call graph cannot descend into them.
//
// Known under-approximations, accepted deliberately: calls through function
// values resolve to no callees (CHA's documented blind spot), and calls into
// stdlib packages outside the allocator list (math/bits, sync, encoding/
// binary, container/heap internals) are treated as allocation-free. The
// heap.Push caller-side boxing is still caught — the any-conversion happens
// at the call site.

// AllocSite is one statically classified allocation site.
type AllocSite struct {
	// Pos locates the allocating construct.
	Pos token.Pos
	// What explains the classification ("make with non-constant size", ...).
	What string
}

// allocPkgs are stdlib packages whose exported functions are treated as
// allocation sites at the call: their bodies are export data (the call graph
// cannot descend), and their common entry points allocate. encoding/binary,
// math/bits, sync, and sync/atomic are deliberately absent — their hot
// entry points (PutUint32, TrailingZeros, atomic loads) are allocation-free
// and legitimate on hot paths.
var allocPkgs = map[string]bool{
	"bufio":         true,
	"encoding/json": true,
	"errors":        true,
	"fmt":           true,
	"io":            true,
	"log":           true,
	"log/slog":      true,
	"net":           true,
	"os":            true,
	"reflect":       true,
	"sort":          true,
	"strconv":       true,
	"strings":       true,
}

// EscapeResult is the solved interprocedural leak fixpoint. It is built once
// per Program (see Program.Escape) and is read-only afterwards.
type EscapeResult struct {
	graph  *CallGraph
	leaked map[types.Object]bool
	// leaks is the per-function parameter-leak summary, receiver first.
	leaks map[*types.Func][]bool
	// edges[dst] lists the objects whose data flows into dst by assignment;
	// a leak of dst propagates backward onto them.
	edges map[types.Object][]types.Object
	// carries memoizes carriesPointers per type.
	carries map[types.Type]bool
}

// Escape returns the program's escape/allocation fixpoint, solving it on
// first use and sharing it across passes.
func (prog *Program) Escape() *EscapeResult {
	return prog.Shared("framework.escape", func() any {
		return SolveEscape(prog)
	}).(*EscapeResult)
}

// Leaked reports whether obj's bound data may outlive its function's frame.
func (r *EscapeResult) Leaked(obj types.Object) bool { return r.leaked[obj] }

// ParamLeaks returns fn's parameter-leak summary (receiver first), or nil
// when fn was not loaded from source.
func (r *EscapeResult) ParamLeaks(fn *types.Func) []bool { return r.leaks[fn] }

// escFunc is one source function participating in the fixpoint.
type escFunc struct {
	pkg    *Package
	fn     *types.Func
	body   *ast.BlockStmt
	params []types.Object
}

// SolveEscape runs the leak analysis to fixpoint over every source function
// of the program.
func SolveEscape(prog *Program) *EscapeResult {
	r := &EscapeResult{
		graph:   prog.CallGraph,
		leaked:  make(map[types.Object]bool),
		leaks:   make(map[*types.Func][]bool),
		edges:   make(map[types.Object][]types.Object),
		carries: make(map[types.Type]bool),
	}
	var fns []escFunc
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := FuncOf(pkg, fd)
				if fn == nil {
					continue
				}
				params := paramObjects(fn)
				r.leaks[fn] = make([]bool, len(params))
				fns = append(fns, escFunc{pkg: pkg, fn: fn, body: fd.Body, params: params})
			}
		}
	}
	// Transfer passes alternate with backward edge propagation until the
	// summaries stop changing. Leaks only ever grow, so this terminates; the
	// bound is a safety net sized like the taint engine's.
	for pass := 0; pass < 64; pass++ {
		for _, ef := range fns {
			r.scan(ef.pkg, ef.body, pass == 0)
		}
		r.propagateEdges()
		if !r.refreshSummaries(fns) {
			return r
		}
	}
	return r
}

// paramObjects returns fn's receiver (if any) followed by its parameters.
func paramObjects(fn *types.Func) []types.Object {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Object
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// refreshSummaries recomputes every function's parameter-leak bits from the
// leaked set, reporting whether any bit rose.
func (r *EscapeResult) refreshSummaries(fns []escFunc) bool {
	changed := false
	for _, ef := range fns {
		bits := r.leaks[ef.fn]
		for i, p := range ef.params {
			if !bits[i] && r.leaked[p] {
				bits[i] = true
				changed = true
			}
		}
	}
	return changed
}

// propagateEdges closes the leaked set backward over assignment edges. The
// closure of a set is order-independent, but the worklist is still seeded in
// declaration order to keep every intermediate state reproducible.
func (r *EscapeResult) propagateEdges() {
	work := make([]types.Object, 0, len(r.leaked))
	for obj := range r.leaked {
		work = append(work, obj)
	}
	sort.Slice(work, func(i, j int) bool { return work[i].Pos() < work[j].Pos() })
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, src := range r.edges[obj] {
			if !r.leaked[src] {
				r.leaked[src] = true
				work = append(work, src)
			}
		}
	}
}

// markLeaked leaks every root of e.
func (r *EscapeResult) markLeaked(info *types.Info, e ast.Expr) {
	for _, obj := range r.rootsOf(info, e, nil) {
		r.leaked[obj] = true
	}
}

// scan runs one transfer pass over a function body: it seeds leaks from
// returns, stores, sends, go statements, captures, and leaking call
// arguments, and (on the first pass only) records the static assignment
// edges used for backward propagation.
func (r *EscapeResult) scan(pkg *Package, body *ast.BlockStmt, buildEdges bool) {
	info := pkg.Info
	pkgScope := pkg.Types.Scope()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				r.markLeaked(info, res)
			}
		case *ast.SendStmt:
			r.markLeaked(info, n.Value)
		case *ast.GoStmt:
			// The spawned call's receiver and arguments outlive this frame.
			r.markLeaked(info, n.Call.Fun)
			for _, arg := range n.Call.Args {
				r.markLeaked(info, arg)
			}
		case *ast.DeferStmt:
			// Deferred calls run on this frame; treat like a normal call.
			r.flowCall(info, n.Call)
		case *ast.CallExpr:
			r.flowCall(info, n)
		case *ast.FuncLit:
			// Captured outer variables may be referenced after this frame
			// returns (the literal can escape): leak them.
			r.leakCaptures(info, pkgScope, n)
		case *ast.AssignStmt:
			r.flowAssign(info, pkgScope, n, buildEdges)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					r.flowPair(info, pkgScope, name, n.Values[i], buildEdges)
				}
			}
		case *ast.RangeStmt:
			// Key/value bind (possibly aliased) element data of X.
			if buildEdges {
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := info.Defs[id]; obj != nil && r.carriesPointers(obj.Type()) {
						r.edges[obj] = append(r.edges[obj], r.rootsOf(info, n.X, nil)...)
					}
				}
			}
		}
		return true
	})
}

// flowAssign applies the leak/edge rules to one assignment statement.
func (r *EscapeResult) flowAssign(info *types.Info, pkgScope *types.Scope, n *ast.AssignStmt, buildEdges bool) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// x, y := f() — call results carry no roots of this frame.
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		r.flowPair(info, pkgScope, lhs, n.Rhs[i], buildEdges)
	}
}

// flowPair handles one lhs = rhs pair: a plain local lhs records an
// assignment edge; any other lhs (field, index, dereference, global) is a
// store that leaks the rhs roots.
func (r *EscapeResult) flowPair(info *types.Info, pkgScope *types.Scope, lhs, rhs ast.Expr, buildEdges bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if v, isVar := obj.(*types.Var); isVar && !v.IsField() && obj.Parent() != pkgScope {
			if buildEdges && r.carriesPointers(obj.Type()) {
				r.edges[obj] = append(r.edges[obj], r.rootsOf(info, rhs, nil)...)
			}
			return
		}
	}
	// Store into a non-local location: the rhs data becomes reachable from
	// outside this frame's locals.
	r.markLeaked(info, rhs)
}

// flowCall leaks arguments (and the receiver) that flow into parameters the
// callee leaks — or into unknown callees, conservatively.
func (r *EscapeResult) flowCall(info *types.Info, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		// Conversions pass data through (the binding rules see through them
		// via rootsOf); builtins never retain their arguments: append's
		// aliasing is modeled in rootsOf, copy/len/cap/delete/clear do not
		// leak.
		return
	}
	callees := r.graph.Callees(info, call)
	// Receiver argument of a method call.
	var recvExpr ast.Expr
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	if recvExpr != nil && r.callMayLeakParam(callees, 0) {
		r.markLeaked(info, recvExpr)
	}
	shift := 0
	if recvExpr != nil {
		shift = 1
	}
	for i, arg := range call.Args {
		if r.callMayLeakParam(callees, shift+i) {
			r.markLeaked(info, arg)
		}
	}
}

// callMayLeakParam reports whether any possible callee leaks parameter slot
// idx (receiver-first numbering). Unknown callees (function values) and
// source-less callees leak conservatively, except a small intrinsics list of
// stdlib functions known to only write through their arguments.
func (r *EscapeResult) callMayLeakParam(callees []*types.Func, idx int) bool {
	if len(callees) == 0 {
		return true
	}
	for _, fn := range callees {
		bits, known := r.leaks[fn]
		if !known {
			if nonRetainingStdlib(fn) {
				continue
			}
			return true
		}
		pi := idx
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() {
			max := len(bits) - 1
			if pi > max {
				pi = max
			}
		}
		if pi >= 0 && pi < len(bits) && bits[pi] {
			return true
		}
	}
	return false
}

// nonRetainingStdlib lists export-data-only functions that provably do not
// retain their arguments: the encoding/binary put/get family the zero-alloc
// codec is built on, and the copy-like byte helpers.
func nonRetainingStdlib(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "encoding/binary", "math/bits":
		return true
	}
	return false
}

// leakCaptures leaks the outer-scope variables a function literal captures.
// A variable is captured when it is used inside the literal but declared
// outside it (and is not a package-level variable or a field — those are
// reachable without capture).
func (r *EscapeResult) leakCaptures(info *types.Info, pkgScope *types.Scope, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == pkgScope {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			r.leaked[v] = true
		}
		return true
	})
}

// rootsOf returns the frame-local objects whose heap data e may alias:
// following selectors, indexing, slicing, dereferences, conversions, and
// append chains down to identifiers. Only objects whose types can carry
// pointers are roots — leaking a pure-value struct pins nothing.
func (r *EscapeResult) rootsOf(info *types.Info, e ast.Expr, out []types.Object) []types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && r.carriesPointers(v.Type()) {
			out = append(out, v)
		}
	case *ast.ParenExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.SelectorExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.StarExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.IndexExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.SliceExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.TypeAssertExpr:
		out = r.rootsOf(info, e.X, out)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			out = r.rootsOf(info, e.X, out)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = r.rootsOf(info, elt, out)
		}
	case *ast.CallExpr:
		fun := ast.Unparen(e.Fun)
		if tv, ok := info.Types[fun]; ok && tv.IsType() && len(e.Args) == 1 {
			// Conversion: same data, new type.
			return r.rootsOf(info, e.Args[0], out)
		}
		if id, ok := fun.(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "append" {
				// The result aliases the base's backing array and holds the
				// appended elements.
				for _, arg := range e.Args {
					out = r.rootsOf(info, arg, out)
				}
			}
		}
		// Other call results are fresh from this frame's point of view.
	}
	return out
}

// carriesPointers reports whether a value of type t can hold a reference to
// heap memory. Pure-value types (integers, structs and arrays of them)
// cannot leak anything no matter where they are copied.
func (r *EscapeResult) carriesPointers(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := r.carries[t]; ok {
		return v
	}
	// Seed false to break cycles: a type can only recurse into itself
	// through a pointer-shaped component, which answers true on its own.
	r.carries[t] = false
	v := false
	switch u := t.Underlying().(type) {
	case *types.Basic:
		v = u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		v = true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if r.carriesPointers(u.Field(i).Type()) {
				v = true
				break
			}
		}
	case *types.Array:
		v = r.carriesPointers(u.Elem())
	default:
		v = true // type parameters and anything unforeseen: be conservative
	}
	r.carries[t] = v
	return v
}

// ---------------------------------------------------------------------------
// Allocation-site classification.

// AllocSites classifies every potential allocation site in fn's body,
// deduplicated by position and sorted in source order. decl must be a
// declaration from pkg with a non-nil body.
func (r *EscapeResult) AllocSites(pkg *Package, decl *ast.FuncDecl) []AllocSite {
	c := &allocClassifier{
		r:        r,
		info:     pkg.Info,
		pkgScope: pkg.Types.Scope(),
		seen:     make(map[token.Pos]bool),
		bound:    make(map[ast.Expr]types.Object),
		argOf:    make(map[ast.Expr]*ast.CallExpr),
		pooled:   make(map[types.Object]bool),
		params:   make(map[types.Object]bool),
	}
	c.prescan(decl)
	c.classify(decl.Body)
	sort.Slice(c.sites, func(i, j int) bool { return c.sites[i].Pos < c.sites[j].Pos })
	return c.sites
}

type allocClassifier struct {
	r        *EscapeResult
	info     *types.Info
	pkgScope *types.Scope
	sites    []AllocSite
	seen     map[token.Pos]bool

	// bound maps an allocation expression to the local it initializes;
	// argOf maps one passed directly as a call argument to the call.
	bound map[ast.Expr]types.Object
	argOf map[ast.Expr]*ast.CallExpr
	// pooled marks locals holding caller-owned (parameter/receiver/global
	// rooted) storage; params holds the function's own parameter objects.
	pooled map[types.Object]bool
	params map[types.Object]bool
}

func (c *allocClassifier) report(pos token.Pos, format string, args ...any) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	c.sites = append(c.sites, AllocSite{Pos: pos, What: fmt.Sprintf(format, args...)})
}

// prescan records binding contexts (local := allocExpr, f(allocExpr)),
// parameter objects (of the declaration and every literal within), and the
// pooled-local set.
func (c *allocClassifier) prescan(decl *ast.FuncDecl) {
	collectParams := func(ft *ast.FuncType, recv *ast.FieldList) {
		for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					if obj := c.info.Defs[name]; obj != nil {
						c.params[obj] = true
					}
				}
			}
		}
	}
	collectParams(decl.Type, decl.Recv)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			collectParams(n.Type, nil)
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					obj := c.info.Defs[id]
					if obj == nil {
						obj = c.info.Uses[id]
					}
					if obj != nil {
						c.bound[ast.Unparen(n.Rhs[i])] = obj
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := c.info.Defs[name]; obj != nil {
						c.bound[ast.Unparen(n.Values[i])] = obj
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				c.argOf[ast.Unparen(arg)] = n
			}
		}
		return true
	})
	// Pooled locals: assigned from expressions rooted in a parameter,
	// receiver, global, or another pooled local. Two passes close short
	// local chains (cur := e.outboxes; b := cur).
	for pass := 0; pass < 2; pass++ {
		for rhs, obj := range c.bound {
			if c.pooled[obj] {
				continue
			}
			for _, root := range c.r.rootsOf(c.info, rhs, nil) {
				if c.params[root] || root.Parent() == c.pkgScope || c.pooled[root] {
					c.pooled[obj] = true
					break
				}
			}
		}
	}
}

// callerOwned reports whether e is rooted in storage this frame does not
// own: a parameter, receiver, package variable, or a pooled local.
func (c *allocClassifier) callerOwned(e ast.Expr) bool {
	for _, root := range c.r.rootsOf(c.info, e, nil) {
		if c.params[root] || root.Parent() == c.pkgScope || c.pooled[root] {
			return true
		}
	}
	return false
}

// escapes decides whether a fresh allocation expression outlives the frame:
// bound to a local, it escapes iff the local leaks; passed directly as an
// argument, iff the callee leaks that parameter; anything else (returned,
// stored, sent, compared...) is treated as escaping.
func (c *allocClassifier) escapes(e ast.Expr) bool {
	if obj, ok := c.bound[e]; ok {
		return c.r.leaked[obj]
	}
	if call, ok := c.argOf[e]; ok {
		callees := c.r.graph.Callees(c.info, call)
		shift := 0
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
			if s, found := c.info.Selections[sel]; found && s.Kind() == types.MethodVal {
				shift = 1
			}
		}
		for i, arg := range call.Args {
			if ast.Unparen(arg) == e {
				return c.r.callMayLeakParam(callees, shift+i)
			}
		}
	}
	return true
}

// classify walks one body reporting allocation sites. Non-invoked function
// literals are reported as closure sites and not descended into (their
// bodies run through whatever calls the value — a dynamic edge the call
// graph cannot follow); immediately-invoked and deferred literals run on
// this frame and are descended.
func (c *allocClassifier) classify(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				c.classify(lit.Body)
				return false
			}
			return true
		case *ast.FuncLit:
			if cap := c.captured(n); cap != "" {
				c.report(n.Pos(), "function literal captures %s (closure allocation)", cap)
			}
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				c.classify(lit.Body)
				for _, arg := range n.Args {
					c.classifyExpr(arg)
				}
				return false
			}
			c.classifyCall(n)
		case *ast.AssignStmt:
			c.classifyAssign(n)
		case *ast.CompositeLit:
			c.classifyCompositeLit(n, false)
			// Element expressions are visited by the enclosing Inspect.
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if c.escapesOuter(n) {
						c.report(n.Pos(), "escaping composite literal address (&%s{...})", typeLabel(c.info, lit))
					}
					// The literal's own value-ness is subsumed by the &.
					for _, elt := range lit.Elts {
						c.classifyExpr(elt)
					}
					return false
				}
			}
		case *ast.BinaryExpr:
			c.classifyBinary(n)
		}
		return true
	})
}

// classifyExpr applies classify to a bare expression.
func (c *allocClassifier) classifyExpr(e ast.Expr) {
	c.classify(&ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: e}}})
}

// escapesOuter is escapes() keyed on the outermost allocating expression
// (the &lit node rather than the literal).
func (c *allocClassifier) escapesOuter(e ast.Expr) bool { return c.escapes(ast.Unparen(e)) }

func (c *allocClassifier) classifyBinary(n *ast.BinaryExpr) {
	if n.Op != token.ADD {
		return
	}
	if tv, ok := c.info.Types[n]; ok && tv.Value == nil {
		if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
			c.report(n.Pos(), "string concatenation allocates")
		}
	}
}

func (c *allocClassifier) classifyAssign(n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := c.info.TypeOf(idx.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.report(lhs.Pos(), "map assignment may allocate (bucket growth)")
				}
			}
		}
	}
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
		if t := c.info.TypeOf(n.Lhs[0]); t != nil {
			if b, isBasic := t.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
				c.report(n.Pos(), "string concatenation allocates")
			}
		}
	}
	// Interface boxing through assignment: concrete non-pointer-shaped rhs
	// into interface-typed lhs. Multi-value forms (x, ok := v.(T), x, y :=
	// f()) pass values through without a conversion step.
	if (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) && len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			lt := c.info.TypeOf(lhs)
			if lt == nil && n.Tok == token.DEFINE {
				continue // inferred type equals rhs type: no boxing
			}
			c.checkBox(lt, n.Rhs[i])
		}
	}
}

// checkBox reports rhs when assigning/passing it to an interface-typed
// destination boxes a concrete non-pointer-shaped value.
func (c *allocClassifier) checkBox(dst types.Type, rhs ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	rt := c.info.TypeOf(rhs)
	if rt == nil || types.IsInterface(rt) {
		return
	}
	if _, isTuple := rt.(*types.Tuple); isTuple {
		return // multi-value expression in a single-assign context
	}
	if b, isBasic := rt.Underlying().(*types.Basic); isBasic &&
		(b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return
	}
	if tv, ok := c.info.Types[rhs]; ok && tv.Value != nil {
		return // constants box to interned values in practice; skip the noise
	}
	switch rt.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: boxes without allocating
	}
	c.report(rhs.Pos(), "%s boxed into interface (allocates)", typeString(rt))
}

func (c *allocClassifier) classifyCompositeLit(n *ast.CompositeLit, addressed bool) {
	t := c.info.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if c.escapes(n) {
			c.report(n.Pos(), "escaping slice literal")
		} else if len(n.Elts) > 0 {
			// Non-escaping constant-size backing array: stack-allocated.
		}
	case *types.Map:
		c.report(n.Pos(), "map literal allocates")
	}
}

func (c *allocClassifier) classifyCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Conversions: string <-> []byte/[]rune allocate.
	if tv, ok := c.info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.checkConversion(call, tv.Type)
		}
		return
	}
	// Builtins: make/new allocate by kind; append by ownership.
	if id, ok := fun.(*ast.Ident); ok {
		if b, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
			c.classifyBuiltin(call, b.Name())
			return
		}
	}
	sig, _ := c.info.TypeOf(fun).(*types.Signature)
	if sig != nil {
		c.checkCallBoxing(call, sig)
	}
	// Calls into allocating stdlib packages are sites themselves: the call
	// graph cannot descend into export data.
	for _, fn := range c.r.graph.Callees(c.info, call) {
		if c.r.graph.SourceOf(fn) == nil && fn.Pkg() != nil && allocPkgs[fn.Pkg().Path()] {
			c.report(call.Pos(), "calls %s.%s (allocating stdlib package)", fn.Pkg().Name(), fn.Name())
			break
		}
	}
}

// checkCallBoxing reports interface boxing of arguments and the variadic
// argument slice a call with listed variadic arguments materializes.
func (c *allocClassifier) checkCallBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type() // spread: slice passed as-is
			} else if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		c.checkBox(pt, arg)
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > n-1 {
		c.report(call.Pos(), "variadic call materializes its argument slice")
	}
}

func (c *allocClassifier) checkConversion(call *ast.CallExpr, target types.Type) {
	src := c.info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if tv, ok := c.info.Types[call.Args[0]]; ok && tv.Value != nil {
		return // constant conversions fold at compile time
	}
	tb, tIsBasic := target.Underlying().(*types.Basic)
	sb, sIsBasic := src.Underlying().(*types.Basic)
	if tIsBasic && tb.Info()&types.IsString != 0 && isByteOrRuneSlice(src) {
		c.report(call.Pos(), "[]byte/[]rune to string conversion allocates")
	}
	if sIsBasic && sb.Info()&types.IsString != 0 && isByteOrRuneSlice(target) {
		c.report(call.Pos(), "string to []byte/[]rune conversion allocates")
	}
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (c *allocClassifier) classifyBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		t := c.info.TypeOf(call)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			c.report(call.Pos(), "make(map) allocates")
		case *types.Chan:
			c.report(call.Pos(), "make(chan) allocates")
		case *types.Slice:
			if !c.makeSizeConstant(call) {
				c.report(call.Pos(), "make with non-constant size allocates")
			} else if c.escapes(call) {
				c.report(call.Pos(), "escaping make (constant size but leaks the frame)")
			}
		}
	case "new":
		if c.escapes(call) {
			c.report(call.Pos(), "escaping new(T)")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if !c.callerOwned(call.Args[0]) {
			c.report(call.Pos(), "append to non-pooled slice may grow the backing array")
		}
	}
	// Arguments still need classification (string conversions inside
	// append(dst, string(b)...), etc.).
	for _, arg := range call.Args {
		c.classifyExpr(arg)
	}
}

// makeSizeConstant reports whether every size argument of a make call is a
// compile-time constant.
func (c *allocClassifier) makeSizeConstant(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false // make([]T) is invalid anyway; be conservative
	}
	for _, arg := range call.Args[1:] {
		tv, ok := c.info.Types[arg]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}

// captured names one variable a literal captures from its enclosing
// function, or "" when it captures nothing (a static closure).
func (c *allocClassifier) captured(lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == c.pkgScope {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return typeString(t)
	}
	return "T"
}

func typeString(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
