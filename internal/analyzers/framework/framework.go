// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API shape: named Analyzers run over
// type-checked packages and report position-tagged diagnostics.
//
// The repository vendors no third-party modules, so the x/tools analysis
// driver is not available; this package provides the slice of it that
// cmd/sfvet and the internal/analyzers suite need:
//
//   - Analyzer / Pass / Diagnostic types mirroring go/analysis,
//   - a Loader that type-checks packages through `go list -export`
//     export data (see driver.go), and
//   - an analysistest-style fixture runner keyed on `// want "regexp"`
//     comments (see atest.go).
//
// Suppression: a source line carrying (or directly following) a comment of
// the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// is exempt from diagnostics of the named analyzers. The directive is
// deliberately loud — it marks a reviewed exception to a repo invariant and
// should carry a reason.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a single lowercase word.
	Name string
	// Doc states the invariant the analyzer enforces and why.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// RunAnalyzers applies every analyzer to pkg, filters the findings through
// the package's //lint:allow directives, and returns them in file/line
// order. Analyzer runtime errors (not diagnostics) are returned as err.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = suppressAllowed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
