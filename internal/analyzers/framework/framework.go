// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API shape: named Analyzers run over
// type-checked packages and report position-tagged diagnostics.
//
// The repository vendors no third-party modules, so the x/tools analysis
// driver is not available; this package provides the slice of it that
// cmd/sfvet and the internal/analyzers suite need:
//
//   - Analyzer / Pass / Diagnostic types mirroring go/analysis,
//   - a Loader that type-checks packages through `go list -export`
//     export data (see driver.go), and
//   - an analysistest-style fixture runner keyed on `// want "regexp"`
//     comments (see atest.go).
//
// Suppression: a source line carrying (or directly following) a comment of
// the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// is exempt from diagnostics of the named analyzers. The directive is
// deliberately loud — it marks a reviewed exception to a repo invariant and
// should carry a reason.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. It must be a single lowercase word.
	Name string
	// Doc states the invariant the analyzer enforces and why.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package. Prog gives
// interprocedural analyzers the whole loaded program: every source package,
// the shared call graph, and a memo for program-wide computations.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Program is a whole loaded program: the source packages under analysis,
// the CHA call graph spanning them, and a memo that lets analyzers share
// program-wide computations (taint fixpoints, blocking summaries) across
// per-package passes — including parallel ones.
type Program struct {
	Packages  []*Package
	CallGraph *CallGraph

	byPath map[string]*Package

	mu     sync.Mutex
	shared map[string]*sharedEntry
}

// sharedEntry is one memoized program-wide computation. Each key builds
// under its own once, so one Shared build may depend on another (hotalloc's
// reachability pass consumes the escape fixpoint); only self-recursion on a
// single key deadlocks.
type sharedEntry struct {
	once sync.Once
	v    any
}

// NewProgram builds the program view — including the call graph — over the
// given source packages.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Packages:  pkgs,
		CallGraph: buildCallGraph(pkgs, "sendforget/"),
		byPath:    make(map[string]*Package, len(pkgs)),
		shared:    make(map[string]*sharedEntry),
	}
	for _, pkg := range pkgs {
		prog.byPath[pkg.Path] = pkg
	}
	return prog
}

// Package returns the source package with the given path, or nil when it
// was not loaded from source.
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// Shared memoizes a program-wide computation under key: the first caller
// builds it, everyone else gets the same value. Each key builds under its
// own sync.Once, so a value is computed exactly once even when packages are
// analyzed in parallel, and one build may call Shared for a different key;
// the built value must be treated as read-only.
func (prog *Program) Shared(key string, build func() any) any {
	prog.mu.Lock()
	e, ok := prog.shared[key]
	if !ok {
		e = &sharedEntry{}
		prog.shared[key] = e
	}
	prog.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

// Analyze applies every analyzer to one of the program's packages, filters
// the findings through the package's //lint:allow directives, and returns
// them in file/line order. Analyzer runtime errors (not diagnostics) are
// returned as err.
func (prog *Program) Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = suppressAllowed(pkg, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// AnalyzeAll runs the suite over every package of the program on up to
// workers goroutines and returns the findings in deterministic (package,
// file, line) order regardless of the worker count. The heavy shared
// structures — export data, the call graph, Shared memos — are built once
// and read by all workers.
func (prog *Program) AnalyzeAll(analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(prog.Packages) {
		workers = len(prog.Packages)
	}
	perPkg := make([][]Diagnostic, len(prog.Packages))
	errs := make([]error, len(prog.Packages))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], errs[i] = prog.Analyze(prog.Packages[i], analyzers)
			}
		}()
	}
	for i := range prog.Packages {
		next <- i
	}
	close(next)
	wg.Wait()
	var diags []Diagnostic
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		diags = append(diags, perPkg[i]...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunAnalyzers analyzes a single package as its own one-package program —
// the fixture runner's entry point. Interprocedural analyzers see only the
// package itself, which is exactly the fixture contract.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).Analyze(pkg, analyzers)
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
