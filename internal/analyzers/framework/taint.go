package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Taint is a small monotone lattice of labels ordered by <: joining takes
// the maximum. 0 means untainted. What the levels mean is the analyzer's
// business — seedtaint uses 1 = "is a seed" and 2 = "seed derived by
// arithmetic".
type Taint uint8

// TaintSpec configures one interprocedural taint analysis over a Program.
//
// The engine is flow-insensitive and object-based: taint attaches to
// types.Objects (variables, parameters, struct fields, results assigned to
// named values) and to function return values, and propagates through
// assignments, composite-literal fields, call arguments into parameters of
// source-loaded callees (including CHA-resolved interface callees), and
// returns back to call sites — iterated to a fixpoint. Field taint is
// field-based (one label per field object, not per instance), the standard
// sound coarsening. Closures propagate naturally: a captured variable is
// the same object inside and outside the literal.
type TaintSpec struct {
	// Include selects the packages whose function bodies participate in
	// propagation. Excluded packages are invisible — their functions have
	// no summaries, and sources/sinks inside them are not considered.
	Include func(*Package) bool
	// Source returns the intrinsic taint of an expression (before operand
	// propagation), e.g. "an integer identifier named like a seed". Return
	// 0 for expressions with no intrinsic taint.
	Source func(info *types.Info, e ast.Expr) Taint
	// Binary combines operand taints through a binary operator — the hook
	// where seedtaint promotes "seed" to "arithmetically derived seed".
	Binary func(op token.Token, x, y Taint) Taint
	// Call, when it reports handled=true, overrides the taint of a call's
	// result (e.g. rng.DeriveSeed sanitizes: any input, clean seed out).
	// Unhandled calls take the join of their resolved callees' return
	// taints.
	Call func(info *types.Info, call *ast.CallExpr, callees []*types.Func, arg func(int) Taint) (t Taint, handled bool)
}

// TaintResult is the fixpoint of one taint analysis. Eval answers "how
// tainted is this expression" for sink checks after solving.
type TaintResult struct {
	spec  TaintSpec
	graph *CallGraph
	obj   map[types.Object]Taint
	ret   map[*types.Func]Taint
}

// SolveTaint runs the analysis to fixpoint over prog's included packages.
func SolveTaint(prog *Program, spec TaintSpec) *TaintResult {
	r := &TaintResult{
		spec:  spec,
		graph: prog.CallGraph,
		obj:   make(map[types.Object]Taint),
		ret:   make(map[*types.Func]Taint),
	}
	var included []*Package
	for _, pkg := range prog.Packages {
		if spec.Include == nil || spec.Include(pkg) {
			included = append(included, pkg)
		}
	}
	// The lattice is finite and every transfer joins upward, so this
	// terminates; the bound is a safety net, not a tuning knob.
	for pass := 0; pass < 64; pass++ {
		changed := false
		for _, pkg := range included {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn := FuncOf(pkg, fd)
					if r.propagate(pkg.Info, fn, fd.Body) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return r
		}
	}
	return r
}

// Eval returns the taint of an expression under the solved fixpoint, using
// the type info of the package the expression belongs to.
func (r *TaintResult) Eval(info *types.Info, e ast.Expr) Taint {
	return r.eval(info, e)
}

// joinObj raises an object's taint, reporting whether it changed.
func (r *TaintResult) joinObj(obj types.Object, t Taint) bool {
	if obj == nil || t == 0 || r.obj[obj] >= t {
		return false
	}
	r.obj[obj] = t
	return true
}

func (r *TaintResult) joinRet(fn *types.Func, t Taint) bool {
	if fn == nil || t == 0 || r.ret[fn] >= t {
		return false
	}
	r.ret[fn] = t
	return true
}

// propagate runs one transfer pass over a function body, joining taint into
// assigned objects, callee parameters, and the function's return summary.
// fn is nil inside function literals whose return values no call site can
// see; their internal object flow still propagates.
func (r *TaintResult) propagate(info *types.Info, fn *types.Func, body *ast.BlockStmt) bool {
	changed := false
	var walk func(n ast.Node, fn *types.Func)
	walk = func(n ast.Node, fn *types.Func) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Its returns are invisible to call sites (dynamic), but
				// captured-variable flow inside still matters.
				walk(n.Body, nil)
				return false
			case *ast.AssignStmt:
				r.assign(info, n, &changed)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if r.joinObj(info.Defs[name], r.eval(info, n.Values[i])) {
							changed = true
						}
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal field write: T{Field: v}.
				if key, ok := n.Key.(*ast.Ident); ok {
					if r.joinObj(info.Uses[key], r.eval(info, n.Value)) {
						changed = true
					}
				}
			case *ast.CallExpr:
				r.callArgs(info, n, &changed)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if r.joinRet(fn, r.eval(info, res)) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				t := r.eval(info, n.X)
				if t != 0 {
					for _, lhs := range []ast.Expr{n.Key, n.Value} {
						if id, ok := lhs.(*ast.Ident); ok {
							if r.joinObj(info.Defs[id], t) {
								changed = true
							}
						}
					}
				}
			case *ast.IncDecStmt:
				// x++ is x = x + 1: arithmetic on x's current taint.
				if r.spec.Binary != nil {
					t := r.spec.Binary(token.ADD, r.eval(info, n.X), 0)
					if r.joinLHS(info, n.X, t) {
						changed = true
					}
				}
			}
			return true
		})
	}
	walk(body, fn)
	return changed
}

// assign joins RHS taint into LHS objects, handling compound assignment
// operators (seed += 1 is arithmetic) and multi-value calls.
func (r *TaintResult) assign(info *types.Info, n *ast.AssignStmt, changed *bool) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// x, y := f(): the single return summary covers every result.
		t := r.eval(info, n.Rhs[0])
		for _, lhs := range n.Lhs {
			if r.joinLHS(info, lhs, t) {
				*changed = true
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		t := r.eval(info, n.Rhs[i])
		if op, isCompound := compoundOp(n.Tok); isCompound && r.spec.Binary != nil {
			t = r.spec.Binary(op, r.eval(info, lhs), t)
		}
		if r.joinLHS(info, lhs, t) {
			*changed = true
		}
	}
}

// joinLHS attaches taint to the object behind an assignable expression.
func (r *TaintResult) joinLHS(info *types.Info, lhs ast.Expr, t Taint) bool {
	if t == 0 {
		return false
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[lhs]; obj != nil {
			return r.joinObj(obj, t)
		}
		return r.joinObj(info.Uses[lhs], t)
	case *ast.SelectorExpr:
		return r.joinObj(info.Uses[lhs.Sel], t)
	case *ast.StarExpr:
		return r.joinLHS(info, lhs.X, t)
	case *ast.IndexExpr:
		return r.joinLHS(info, lhs.X, t)
	}
	return false
}

// callArgs flows argument taint into the parameters of every source-loaded
// callee (the interprocedural step).
func (r *TaintResult) callArgs(info *types.Info, call *ast.CallExpr, changed *bool) {
	callees := r.graph.Callees(info, call)
	if len(callees) == 0 {
		return
	}
	for _, fn := range callees {
		src := r.graph.SourceOf(fn)
		if src == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := sig.Params()
		for i, arg := range call.Args {
			t := r.eval(info, arg)
			if t == 0 {
				continue
			}
			pi := i
			if sig.Variadic() && pi >= params.Len()-1 {
				pi = params.Len() - 1
			}
			if pi < params.Len() {
				if r.joinObj(params.At(pi), t) {
					*changed = true
				}
			}
		}
	}
}

// eval computes an expression's taint: intrinsic source taint joined with
// propagated object, operator, and call-summary taint.
func (r *TaintResult) eval(info *types.Info, e ast.Expr) Taint {
	if e == nil {
		return 0
	}
	var t Taint
	if r.spec.Source != nil {
		t = r.spec.Source(info, e)
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			t = maxTaint(t, r.obj[obj])
		} else if obj := info.Defs[e]; obj != nil {
			t = maxTaint(t, r.obj[obj])
		}
	case *ast.SelectorExpr:
		t = maxTaint(t, r.obj[info.Uses[e.Sel]])
	case *ast.ParenExpr:
		t = maxTaint(t, r.eval(info, e.X))
	case *ast.StarExpr:
		t = maxTaint(t, r.eval(info, e.X))
	case *ast.UnaryExpr:
		inner := r.eval(info, e.X)
		if r.spec.Binary != nil && isArithUnary(e.Op) {
			inner = r.spec.Binary(arithToken(e.Op), inner, 0)
		}
		t = maxTaint(t, inner)
	case *ast.BinaryExpr:
		x, y := r.eval(info, e.X), r.eval(info, e.Y)
		if r.spec.Binary != nil {
			t = maxTaint(t, r.spec.Binary(e.Op, x, y))
		} else {
			t = maxTaint(t, maxTaint(x, y))
		}
	case *ast.CallExpr:
		t = maxTaint(t, r.evalCall(info, e))
	case *ast.IndexExpr:
		t = maxTaint(t, r.eval(info, e.X))
	case *ast.TypeAssertExpr:
		t = maxTaint(t, r.eval(info, e.X))
	}
	return t
}

func (r *TaintResult) evalCall(info *types.Info, call *ast.CallExpr) Taint {
	// A conversion passes its operand's taint through unchanged.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		return r.eval(info, call.Args[0])
	}
	callees := r.graph.Callees(info, call)
	if r.spec.Call != nil {
		if t, handled := r.spec.Call(info, call, callees, func(i int) Taint {
			if i < 0 || i >= len(call.Args) {
				return 0
			}
			return r.eval(info, call.Args[i])
		}); handled {
			return t
		}
	}
	var t Taint
	for _, fn := range callees {
		t = maxTaint(t, r.ret[fn])
	}
	return t
}

func maxTaint(a, b Taint) Taint {
	if a > b {
		return a
	}
	return b
}

// compoundOp maps an assignment operator to its underlying arithmetic
// token (+= to +), reporting whether tok is compound at all.
func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	}
	return tok, false
}

func isArithUnary(op token.Token) bool {
	return op == token.SUB || op == token.XOR // -x, ^x
}

func arithToken(op token.Token) token.Token {
	if op == token.XOR {
		return token.XOR
	}
	return token.SUB
}
