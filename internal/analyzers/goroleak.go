package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Goroleak requires every goroutine launched in the concurrent runtime and
// the command binaries to be stoppable and accounted for. Two properties
// are checked on each `go` statement, interprocedurally where the body
// calls helpers:
//
//  1. Termination: the goroutine's CFG must be able to reach its exit — a
//     `for { work() }` loop with no return is unstoppable by construction.
//     Gossip loops pass because their select carries a `case <-stop:
//     return` arm.
//  2. Shutdown/synchronization: the body (or a function it transitively
//     calls) must reference one of the sanctioned mechanisms — a channel
//     receive (done/stop channel, range over a work channel, select arm), a
//     context.Context.Done call, or a sync.WaitGroup.Done so a Stop path
//     can Wait for it.
//
// Why this is an invariant and not a style preference: runtime.Node.Stop
// documents "terminates the gossip loop and waits for it", and the
// equivalence harness and churn tests call Stop between phases — a leaked
// gossip goroutine keeps ticking into the network after its node
// "departed", which breaks the paper's leave semantics (a leaver stops
// participating, Section 5) and shows up as phantom sends in the unified
// traffic ledger. PR 3's churn race was exactly a lifecycle bug of this
// family: state mutated by a goroutine that outlived the membership change.
//
// Goroutines launched through dynamic function values cannot be resolved
// statically and are skipped; `go` on a named function is followed through
// the call graph to its source.
//
// Scope: internal/runtime and cmd/... (plus fixture packages). The
// sequential packages spawn no goroutines by design — detrand and the
// determinism rules keep it that way.
var Goroleak = &framework.Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine in the runtime and commands needs a termination path and a shutdown/sync mechanism (done channel, context, or WaitGroup)",
	Run:  runGoroleak,
}

func goroleakScoped(path string) bool {
	return fixturePackage(path) ||
		strings.HasPrefix(path, "sendforget/internal/runtime") ||
		strings.HasPrefix(path, "sendforget/internal/mgmt") ||
		strings.HasPrefix(path, "sendforget/cmd/")
}

func runGoroleak(pass *framework.Pass) error {
	if !goroleakScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *framework.Pass, gs *ast.GoStmt) {
	body, in, ok := pass.Prog.CallGraph.GoroutineEntry(pkgOf(pass), gs)
	if !ok {
		return // dynamic target: nothing to inspect statically
	}
	cfg := framework.BuildCFG(body)
	if !cfg.ExitReachable() {
		pass.Reportf(gs.Pos(),
			"goroutine cannot terminate: no path reaches a return — add a stop signal (done channel, context) to its loop")
		return
	}
	if !hasShutdownSignal(pass.Prog, in, body, map[*types.Func]bool{}) {
		pass.Reportf(gs.Pos(),
			"goroutine has no shutdown or synchronization mechanism (done-channel receive, context.Done, or WaitGroup.Done): Stop paths cannot reach or await it")
	}
}

// pkgOf recovers the pass's source package from the program (the pass holds
// the types.Package; the call graph wants the loaded framework.Package).
func pkgOf(pass *framework.Pass) *framework.Package {
	if pkg := pass.Prog.Package(pass.Pkg.Path()); pkg != nil {
		return pkg
	}
	// Fixture packages are registered under their bare name.
	for _, pkg := range pass.Prog.Packages {
		if pkg.Types == pass.Pkg {
			return pkg
		}
	}
	return nil
}

// hasShutdownSignal reports whether the body — or any source function it
// transitively calls — contains a channel receive, a context Done call, or
// a WaitGroup.Done call. Function literals inside the body count (the
// deferred `func() { <-sem }()` idiom); further `go` statements do not:
// a goroutine does not shut down by spawning another.
func hasShutdownSignal(prog *framework.Program, pkg *framework.Package, body *ast.BlockStmt, seen map[*types.Func]bool) bool {
	found := false
	var calls []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if isShutdownCall(pkg.Info, n) {
				found = true
				return false
			}
			calls = append(calls, n)
		}
		return true
	})
	if found {
		return true
	}
	for _, call := range calls {
		for _, callee := range prog.CallGraph.Callees(pkg.Info, call) {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			src := prog.CallGraph.SourceOf(callee)
			if src == nil || src.Decl.Body == nil {
				continue
			}
			if hasShutdownSignal(prog, src.Pkg, src.Decl.Body, seen) {
				return true
			}
		}
	}
	return false
}

// isShutdownCall matches context.Context.Done and sync.WaitGroup.Done.
func isShutdownCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	selection, found := info.Selections[sel]
	if !found {
		return false
	}
	recv := selection.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	// sync.WaitGroup is concrete; context.Context is an interface — both
	// surface here as named types.
	if named, isNamed := recv.(*types.Named); isNamed {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		switch {
		case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
			return true
		case obj.Pkg().Path() == "context" && obj.Name() == "Context":
			return true
		}
	}
	return false
}
