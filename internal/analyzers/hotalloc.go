package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Hotalloc statically proves the declared hot paths allocation-free: no
// allocation site may be reachable from a function carrying a //vet:hotpath
// directive, through any chain of static or CHA-resolved calls.
//
// The sharded engine's zero-alloc tick guarantee (PR 6) is what makes the
// million-node target affordable, but until now it was enforced only
// dynamically: TestShardedZeroAllocTick and the allocs_per_op bench gate
// count allocations on whichever branches a particular n and seed happen to
// execute. An allocation hidden in a churn/rejoin or reply-outbox branch
// ships silently until a workload hits it at scale. Hotalloc replaces the
// sampled count with whole-path proof: every make/new, growing append,
// interface boxing, closure capture, string concat/conversion, map insert,
// variadic materialization, go statement, and call into an allocating
// stdlib package (fmt, sort, strconv, ...) reachable from a hot root is a
// finding, reported with the full call chain from root to site.
//
// The escape layer (framework.SolveEscape) keeps the sanctioned idioms out
// of the findings: constant-size makes that provably never leave their
// frame, the pooled view-slab and Outbox appends (`o.IDs = append(o.IDs,
// ...)` reuses caller-owned capacity), and value-struct message passing
// (FlatMsg carries no pointers) are all allocation-free and stay silent.
//
// Suppression composes in two ways: a `//lint:allow hotalloc` on the
// allocation site silences that site (every root still reaching it), and
// one on a *call* prunes the entire subtree behind the call — the edge cut
// used where the sharded engine intentionally falls back to the allocating
// classic-core path for protocols without a batch core.
//
// Known blind spots, by construction of the call graph: calls through
// function values resolve to no callees and are not followed, and calls
// into non-allocating stdlib packages are trusted allocation-free.
var Hotalloc = &framework.Analyzer{
	Name: "hotalloc",
	Doc:  "no allocation site reachable from a //vet:hotpath root (zero-alloc tick path, batch cores, fused view ops, FlatMsg codec, router)",
	Run:  runHotalloc,
}

// hotFinding is one allocation site reachable from a hot root, resolved to
// the package that must report (and may suppress) it.
type hotFinding struct {
	pkgPath string
	pos     token.Pos
	chain   string
	what    string
}

func runHotalloc(pass *framework.Pass) error {
	findings := pass.Prog.Shared("hotalloc.findings", func() any {
		return collectHotFindings(pass.Prog)
	}).([]hotFinding)
	for _, f := range findings {
		if f.pkgPath == pass.Pkg.Path() {
			pass.Reportf(f.pos, "allocation on hot path (%s): %s", f.chain, f.what)
		}
	}
	return nil
}

// collectHotFindings walks the call graph breadth-first from every
// //vet:hotpath root, classifying allocation sites in each reached function.
// BFS order makes the recorded chain the shortest root-to-function path, and
// the deterministic package/declaration/callee ordering makes the output
// stable across runs and worker counts.
func collectHotFindings(prog *framework.Program) []hotFinding {
	esc := prog.Escape()
	graph := prog.CallGraph

	type workItem struct {
		fn    *types.Func
		chain []string
	}
	var queue []workItem
	visited := make(map[*types.Func]bool)
	for _, pkg := range prog.Packages {
		for _, decl := range framework.HotpathDecls(pkg) {
			fn := framework.FuncOf(pkg, decl)
			if fn == nil || visited[fn] {
				continue
			}
			visited[fn] = true
			queue = append(queue, workItem{fn, []string{decl.Name.Name}})
		}
	}

	var findings []hotFinding
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		src := graph.SourceOf(item.fn)
		if src == nil || src.Decl.Body == nil {
			continue
		}
		chain := strings.Join(item.chain, " -> ")
		for _, site := range esc.AllocSites(src.Pkg, src.Decl) {
			findings = append(findings, hotFinding{
				pkgPath: src.Pkg.Path,
				pos:     site.Pos,
				chain:   chain,
				what:    site.What,
			})
		}
		forEachExecutedCall(src.Decl.Body, func(call *ast.CallExpr) {
			// An allow directive on the call line cuts this edge: everything
			// behind the call is a reviewed, documented exception (e.g. the
			// classic-core fallback inside the sharded engine).
			if src.Pkg.AllowedAt(call.Pos(), "hotalloc") {
				return
			}
			for _, callee := range graph.Callees(src.Pkg.Info, call) {
				if visited[callee] || graph.SourceOf(callee) == nil {
					continue
				}
				visited[callee] = true
				next := make([]string, len(item.chain), len(item.chain)+1)
				copy(next, item.chain)
				queue = append(queue, workItem{callee, append(next, callee.Name())})
			}
		})
	}
	return findings
}
