package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sendforget/internal/analyzers/framework"
)

func TestHotallocFixture(t *testing.T) {
	framework.RunFixture(t, fixture("hotalloc"), Hotalloc)
}

func TestAtomicmixFixture(t *testing.T) {
	framework.RunFixture(t, fixture("atomicmix"), Atomicmix)
}

func TestHotplantFixture(t *testing.T) {
	framework.RunFixture(t, fixture("hotplant"), Hotalloc)
}

// TestFixtureParity is the meta-test behind the fixture audit: every
// registered analyzer must keep a testdata/src/<name> fixture package
// holding at least one positive expectation (a `// want` comment, proving
// the analyzer fires) and at least one `//lint:allow <name>` directive
// (proving its suppression path is exercised), so adding an analyzer
// without two-sided fixture coverage fails here rather than shipping
// untested.
func TestFixtureParity(t *testing.T) {
	wantRE := regexp.MustCompile(`//\s*want\s+`)
	for _, a := range All() {
		entries, err := os.ReadDir(fixture(a.Name))
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory: %v", a.Name, err)
			continue
		}
		allowMark := "//lint:allow " + a.Name
		goFiles, wants, allows := 0, 0, 0
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			goFiles++
			src, err := os.ReadFile(filepath.Join(fixture(a.Name), e.Name()))
			if err != nil {
				t.Errorf("analyzer %s fixture %s unreadable: %v", a.Name, e.Name(), err)
				continue
			}
			for _, line := range strings.Split(string(src), "\n") {
				if wantRE.MatchString(line) {
					wants++
				}
				if strings.Contains(line, allowMark) {
					allows++
				}
			}
		}
		if goFiles == 0 {
			t.Errorf("analyzer %s fixture directory holds no Go files", a.Name)
			continue
		}
		if wants == 0 {
			t.Errorf("analyzer %s fixture has no `// want` expectation: nothing proves the analyzer fires", a.Name)
		}
		if allows == 0 {
			t.Errorf("analyzer %s fixture has no //lint:allow %s case: the suppression path is untested", a.Name, a.Name)
		}
	}
}

// The mirror of testdata/src/hotplant, compiled for real so the dynamic
// side of the comparison actually runs: a reduced sharded tick path whose
// rejoin branch — where the allocation is planted — executes only on an
// incarnation change.
type plantNode struct {
	view        [8]int32
	occ         int
	incarnation int32
}

type plantCluster struct {
	nodes []plantNode
	seen  []int32
	inbox []int32
}

func (c *plantCluster) tickRound() {
	c.initiate()
	c.deliver()
}

func (c *plantCluster) initiate() {
	for u := range c.nodes {
		nd := &c.nodes[u]
		if nd.incarnation != c.seen[u] {
			c.rejoin(u)
		}
		if nd.occ >= 2 {
			i, j := nd.occ-1, nd.occ-2
			c.inbox = append(c.inbox, nd.view[i], nd.view[j])
			nd.view[i], nd.view[j] = 0, 0
			nd.occ -= 2
		}
	}
}

func (c *plantCluster) rejoin(u int) {
	nd := &c.nodes[u]
	seeds := make([]int32, len(c.nodes)) // the planted allocation
	for i := range seeds {
		seeds[i] = int32(i)
	}
	for i := 0; i < len(nd.view) && i < len(seeds); i++ {
		nd.view[i] = seeds[i]
	}
	nd.occ = len(nd.view)
	c.seen[u] = nd.incarnation
}

func (c *plantCluster) deliver() {
	for _, id := range c.inbox {
		nd := &c.nodes[int(id)%len(c.nodes)]
		if nd.occ < len(nd.view) {
			nd.view[nd.occ] = id
			nd.occ++
		}
	}
	c.inbox = c.inbox[:0]
}

// TestHotallocCatchesWhatDynamicCountingMisses is the regression test the
// hotalloc analyzer exists for, mirroring the seedtaint-vs-seedflow test
// from PR 5: the planted allocation sits on the rejoin branch, a
// TestShardedZeroAllocTick-style AllocsPerRun count over a stable 500-node
// cluster measures zero allocations — the branch never runs — while the
// static analyzer reports the site with its full call chain.
func TestHotallocCatchesWhatDynamicCountingMisses(t *testing.T) {
	const n = 500
	c := &plantCluster{
		nodes: make([]plantNode, n),
		seen:  make([]int32, n),
	}
	for u := range c.nodes {
		nd := &c.nodes[u]
		for i := range nd.view {
			nd.view[i] = int32((u + i + 1) % n)
		}
		nd.occ = len(nd.view)
	}

	// Dynamic side: the steady-state tick is allocation-free at n=500, so an
	// alloc counter certifies the path "zero-alloc" with the bug in place.
	allocs := testing.AllocsPerRun(10, c.tickRound)
	if allocs != 0 {
		t.Fatalf("dynamic count sees %v allocs/run; the planted branch was supposed to stay cold", allocs)
	}

	// Static side: hotalloc reports the planted make regardless of which
	// branches any particular run takes.
	diags, err := framework.FixtureDiagnostics(fixture("hotplant"), Hotalloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the planted allocation, got %d diagnostics: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "hotalloc" {
		t.Errorf("diagnostic from %q, want hotalloc", d.Analyzer)
	}
	for _, part := range []string{"tickRound -> initiate -> rejoin", "make with non-constant size"} {
		if !strings.Contains(d.Message, part) {
			t.Errorf("diagnostic %q missing %q", d.Message, part)
		}
	}
}

// TestUnusedAllows pins the -unusedallow contract at the framework level:
// after a full run over the fixture, the directive that suppressed a live
// detrand diagnostic is used, and the stale one is reported with its file,
// line, and reason.
func TestUnusedAllows(t *testing.T) {
	loader, err := framework.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(fixture("unusedallow"))
	if err != nil {
		t.Fatal(err)
	}
	prog := framework.NewProgram([]*framework.Package{pkg})
	diags, err := prog.Analyze(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("fixture should analyze clean (the live finding is suppressed): %s", d)
	}
	unused := prog.UnusedAllows()
	if len(unused) != 1 {
		t.Fatalf("want exactly the stale directive, got %d: %v", len(unused), unused)
	}
	u := unused[0]
	if u.Analyzer != "detrand" {
		t.Errorf("stale directive analyzer = %q, want detrand", u.Analyzer)
	}
	if !strings.Contains(u.Reason, "stale") {
		t.Errorf("stale directive reason %q not preserved", u.Reason)
	}
	if u.Used {
		t.Error("reported directive is marked used")
	}
}
