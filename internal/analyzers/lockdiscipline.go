package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Lockdiscipline forbids transport sends, channel operations, and known
// blocking calls on paths that hold a sync.Mutex or sync.RWMutex. This is
// the "replies are sent outside the node lock" rule PR 2 established for
// the concurrent runtime: a node that sends while holding its own lock can
// deadlock against a peer doing the same (each send runs the receiver's
// handler, which takes the receiver's lock), and a blocking call under a
// node or cluster mutex stalls every goroutine that gossips through it.
//
// The check is an intraprocedural approximation, deliberately conservative:
//
//   - Lock/RLock on any mutex-typed value marks its receiver path held;
//     Unlock/RUnlock releases it. A deferred Unlock holds the mutex for the
//     remainder of the function body, which matches its runtime semantics.
//   - Branch bodies (if/for/switch/select) are analyzed with a copy of the
//     held set, so an early `mu.Unlock(); return` branch does not leak a
//     release into the fall-through path.
//   - Function literals are analyzed with an empty held set: a spawned
//     goroutine does not inherit the spawner's critical section.
//
// While any mutex is held, the analyzer flags: calls to methods named Send
// (the transport.Network / transport.Endpoint / runtime.Sender surface),
// channel sends and receives, selects without a default, time.Sleep,
// sync.WaitGroup.Wait, and sync.Cond.Wait.
//
// Suite history: the suite's first full-repo run confirmed internal/runtime
// and internal/transport already honor the discipline (node.Tick and
// node.HandleMessage stage messages under the lock and send after
// releasing it); this analyzer is what makes that convention load-bearing.
var Lockdiscipline = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no transport sends, channel ops, or blocking calls while holding a mutex",
	Run:  runLockdiscipline,
}

func runLockdiscipline(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w := &lockWalker{pass: pass}
					w.stmts(n.Body.List, lockSet{})
				}
				return false // the walker descends itself, including into FuncLits
			case *ast.FuncLit:
				// Top-level function literals (package var initializers).
				w := &lockWalker{pass: pass}
				w.stmts(n.Body.List, lockSet{})
				return false
			}
			return true
		})
	}
	return nil
}

// lockSet tracks held mutexes by the printed path of their receiver
// expression ("n.mu", "c.mu") mapped to the Lock call position.
type lockSet map[string]token.Pos

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// heldNames returns the held receiver paths, sorted for stable diagnostics.
func (s lockSet) heldNames() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockWalker performs the statement-ordered traversal of one function body.
type lockWalker struct {
	pass *framework.Pass
}

// stmts processes a statement list in order, mutating held in place; the
// caller passes a copy when the list is a branch body.
func (w *lockWalker) stmts(list []ast.Stmt, held lockSet) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := w.mutexOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if _, op, ok := w.mutexOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred release: the mutex stays held until return, which the
			// held set already models; nothing to do.
			return
		}
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, lockSet{})
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(s.Pos(), "channel send while holding %s: stage the value and send after unlocking", held.heldNames())
		}
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.pass.Reportf(s.Pos(), "blocking select while holding %s", held.heldNames())
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, held.clone())
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr scans an expression for violations under the current held set.
func (w *lockWalker) expr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, lockSet{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.pass.Reportf(n.Pos(), "channel receive while holding %s", held.heldNames())
			}
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if name, ok := w.violatingCall(n); ok {
				w.pass.Reportf(n.Pos(), "call to %s while holding %s: release the lock (or stage the message) first", name, held.heldNames())
			}
		}
		return true
	})
}

// mutexOp reports whether e is a Lock/RLock/Unlock/RUnlock method call on a
// sync.Mutex or sync.RWMutex, returning the receiver path and method name.
func (w *lockWalker) mutexOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := w.pass.TypesInfo.Selections[sel]
	if !found {
		return "", "", false
	}
	if !isSyncMutex(selection.Recv()) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isSyncMutex reports whether t (possibly behind a pointer) is sync.Mutex
// or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// violatingCall classifies a call that must not run under a lock, returning
// a display name for the diagnostic.
func (w *lockWalker) violatingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Method dispatch (concrete or interface).
	if selection, found := w.pass.TypesInfo.Selections[sel]; found {
		name := sel.Sel.Name
		if name == "Send" {
			return types.ExprString(sel.X) + ".Send", true
		}
		if name == "Wait" {
			recv := selection.Recv()
			if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
					(obj.Name() == "WaitGroup" || obj.Name() == "Cond") {
					return "sync." + obj.Name() + ".Wait", true
				}
			}
		}
		return "", false
	}
	// Package-level functions.
	if fn, isFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil {
		if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	}
	return "", false
}

// selectHasDefault reports whether a select statement has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
