package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Lockreach is the interprocedural upgrade of lockdiscipline: it flags
// calls made while a mutex is held to functions that block *transitively* —
// a channel operation, a transport send, a lock acquisition, or a known
// blocking call buried any number of helper calls deep. Lockdiscipline sees
//
//	n.mu.Lock()
//	n.ch <- v // flagged: direct op under lock
//
// but is blind to
//
//	n.mu.Lock()
//	n.flush() // flush does n.ch <- v
//
// which deadlocks just the same — the shape PR 2's "replies are sent
// outside the node lock" rule exists to prevent, and the shape a helper
// extraction silently reintroduces.
//
// Mechanics: a program-wide summary pass computes, for every source
// function, whether its body can block (channel send/receive, blocking
// select, range over a channel, Lock/RLock acquisition, time.Sleep,
// WaitGroup/Cond.Wait, or a method named Send) or calls — statically or
// through a CHA-resolved interface — a function that can. Then each
// function in the scoped packages is analyzed with a CFG-based forward
// "may-hold" dataflow (Lock adds, Unlock removes, deferred Unlock holds to
// function exit, branch facts join by union), and every call whose callee
// summary blocks while the held set is nonempty is reported with the
// blocking reason one level down the chain.
//
// Division of labor with lockdiscipline: direct operations in the locked
// function itself (channel ops, .Send calls, time.Sleep, Wait) stay
// lockdiscipline's findings; lockreach reports only the transitive cases
// lockdiscipline provably cannot see. Goroutine bodies and non-invoked
// function literals do not count toward a function's summary — spawning is
// not blocking.
//
// Scope: internal/runtime and internal/engine, where the node/cluster
// locks and the gossip hot path live (plus fixture packages).
var Lockreach = &framework.Analyzer{
	Name: "lockreach",
	Doc:  "no call that transitively blocks (channel op, send, lock, sleep, wait) while holding a mutex",
	Run:  runLockreach,
}

// lockreachScoped reports whether the package's functions are checked for
// held-lock call sites. The blocking summaries always span the whole
// program; only the reporting is scoped.
func lockreachScoped(path string) bool {
	return fixturePackage(path) ||
		strings.HasPrefix(path, "sendforget/internal/runtime") ||
		strings.HasPrefix(path, "sendforget/internal/engine")
}

// blockReason explains why a function may block: a direct operation at Pos,
// or a call to the next blocking function down the chain.
type blockReason struct {
	what string
	pos  token.Position
}

// blockSummaries maps every source function that may block to its reason.
type blockSummaries map[*types.Func]*blockReason

func runLockreach(pass *framework.Pass) error {
	if !lockreachScoped(pass.Pkg.Path()) {
		return nil
	}
	summaries := pass.Prog.Shared("lockreach.summaries", func() any {
		return buildBlockSummaries(pass.Prog)
	}).(blockSummaries)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockreach(pass, fd.Body, summaries)
		}
	}
	return nil
}

// buildBlockSummaries computes the may-block fixpoint over every source
// function in the program.
func buildBlockSummaries(prog *framework.Program) blockSummaries {
	summaries := make(blockSummaries)
	type fnBody struct {
		pkg  *framework.Package
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnBody
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := framework.FuncOf(pkg, fd)
				if fn == nil {
					continue
				}
				fns = append(fns, fnBody{pkg, fn, fd.Body})
				if why := directBlockOp(pkg, fd.Body); why != nil {
					summaries[fn] = why
				}
			}
		}
	}
	// Propagate call edges to fixpoint: fn blocks if any resolvable callee
	// (outside go statements and non-invoked literals) blocks.
	for changed := true; changed; {
		changed = false
		for _, fb := range fns {
			if summaries[fb.fn] != nil {
				continue
			}
			forEachExecutedCall(fb.body, func(call *ast.CallExpr) {
				if summaries[fb.fn] != nil {
					return
				}
				for _, callee := range prog.CallGraph.Callees(fb.pkg.Info, call) {
					if callee == fb.fn {
						continue
					}
					if why := summaries[callee]; why != nil {
						summaries[fb.fn] = &blockReason{
							what: fmt.Sprintf("calls %s, which %s", callee.Name(), why.what),
							pos:  fb.pkg.Fset.Position(call.Pos()),
						}
						changed = true
						return
					}
				}
			})
		}
	}
	return summaries
}

// directBlockOp scans a body for operations that block the calling
// goroutine, ignoring goroutine launches and function literals that are not
// invoked on the spot (their ops run elsewhere/later). Deferred calls run
// on this goroutine and count.
func directBlockOp(pkg *framework.Package, body *ast.BlockStmt) *blockReason {
	var found *blockReason
	report := func(what string, pos token.Pos) {
		if found == nil {
			found = &blockReason{what: what, pos: pkg.Fset.Position(pos)}
		}
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				// Spawning never blocks; the spawned body runs elsewhere.
				for _, arg := range n.Call.Args {
					walk(arg)
				}
				return false
			case *ast.FuncLit:
				// Only counted where invoked (call or defer), handled below.
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					walk(lit.Body) // immediately-invoked literal runs here
				}
				if what := blockingCallName(pkg.Info, n); what != "" {
					report(what, n.Pos())
				}
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body) // runs on this goroutine at exit
				}
			case *ast.SendStmt:
				report("sends on a channel", n.Pos())
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report("receives from a channel", n.Pos())
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					report("blocks in a select", n.Pos())
				}
			case *ast.RangeStmt:
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						report("ranges over a channel", n.Pos())
					}
				}
			}
			return true
		})
	}
	walk(body)
	return found
}

// blockingCallName classifies a single call as a direct blocking operation,
// returning a description ("" if it is not one). Lock acquisitions count:
// taking a second mutex while holding the first is the lock-ordering
// deadlock this analyzer exists to surface.
func blockingCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if selection, found := info.Selections[sel]; found {
		switch sel.Sel.Name {
		case "Send":
			return "calls " + types.ExprString(sel.X) + ".Send"
		case "Lock", "RLock":
			if isSyncMutex(selection.Recv()) {
				return "acquires " + types.ExprString(sel.X)
			}
		case "Wait":
			recv := selection.Recv()
			if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
				recv = p.Elem()
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
					(obj.Name() == "WaitGroup" || obj.Name() == "Cond") {
					return "waits on sync." + obj.Name()
				}
			}
		}
		return ""
	}
	if fn, isFn := info.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil {
		if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "calls time.Sleep"
		}
	}
	return ""
}

// forEachExecutedCall visits the calls a body executes on its own
// goroutine: it skips go statements and the bodies of function literals
// that are merely defined, while descending into immediately-invoked and
// deferred literals.
func forEachExecutedCall(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					walk(arg)
				}
				return false
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body)
				} else {
					visit(n.Call)
				}
				for _, arg := range n.Call.Args {
					walk(arg)
				}
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					walk(lit.Body)
				} else {
					visit(n)
				}
			}
			return true
		})
	}
	walk(body)
}

// heldFact is the may-hold dataflow fact: the set of held mutex receiver
// paths. Facts are immutable; transfer copies before mutating.
type heldFact map[string]bool

func (h heldFact) clone() heldFact {
	c := make(heldFact, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func (h heldFact) names() string {
	names := make([]string, 0, len(h))
	for k := range h {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// checkLockreach runs the may-hold dataflow over one function body and
// reports transitively-blocking calls made while any mutex may be held.
// Function literals are analyzed independently with an empty held set — a
// goroutine or callback does not inherit the spawner's critical section.
func checkLockreach(pass *framework.Pass, body *ast.BlockStmt, summaries blockSummaries) {
	cfg := framework.BuildCFG(body)
	transfer := func(b *framework.Block, in heldFact) heldFact {
		out := in.clone()
		for _, n := range b.Nodes {
			applyLockOps(pass.TypesInfo, n, out)
		}
		return out
	}
	join := func(a, b heldFact) heldFact {
		m := a.clone()
		for k := range b {
			m[k] = true
		}
		return m
	}
	equal := func(a, b heldFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	entry := framework.ForwardDataflow(cfg, heldFact{}, transfer, join, equal)

	reported := map[token.Pos]bool{}
	for _, blk := range cfg.Blocks {
		held, ok := entry[blk]
		if !ok {
			continue // unreachable block
		}
		held = held.clone()
		for _, n := range blk.Nodes {
			if len(held) > 0 {
				checkNodeCalls(pass, n, held, summaries, reported)
			}
			applyLockOps(pass.TypesInfo, n, held)
		}
	}

	// Nested literals get their own, lock-free analysis.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLockreach(pass, lit.Body, summaries)
			return false
		}
		return true
	})
}

// applyLockOps mutates the held set for any Lock/Unlock statements in the
// node. Deferred unlocks are ignored: the mutex stays held to function
// exit, which the fact already models.
func applyLockOps(info *types.Info, n ast.Node, held heldFact) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return
	}
	key, op, ok := lockreachMutexOp(info, es.X)
	if !ok {
		return
	}
	switch op {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// checkNodeCalls reports calls within one CFG node whose callees
// transitively block, while held is nonempty. Direct blocking operations
// and Send-named calls are lockdiscipline's findings and are skipped here;
// lock/unlock statements themselves are the transfer function's business.
func checkNodeCalls(pass *framework.Pass, n ast.Node, held heldFact, summaries blockSummaries, reported map[token.Pos]bool) {
	if es, ok := n.(*ast.ExprStmt); ok {
		if _, _, isLockOp := lockreachMutexOp(pass.TypesInfo, es.X); isLockOp {
			return
		}
	}
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if reported[n.Pos()] {
				return true
			}
			if blockingCallName(pass.TypesInfo, n) != "" {
				return true // lockdiscipline's finding
			}
			for _, callee := range pass.Prog.CallGraph.Callees(pass.TypesInfo, n) {
				why := summaries[callee]
				if why == nil {
					continue
				}
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(),
					"call to %s while holding %s: %s %s (%s); release the lock first",
					callee.Name(), held.names(), callee.Name(), why.what, why.pos)
				break
			}
		}
		return true
	})
}

// lockreachMutexOp mirrors lockdiscipline's mutexOp without needing a
// walker instance.
func lockreachMutexOp(info *types.Info, e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := info.Selections[sel]
	if !found || !isSyncMutex(selection.Recv()) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
