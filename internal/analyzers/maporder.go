package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Maporder flags `range` over a map when the loop body feeds
// order-sensitive output: appends to a slice, table/report building
// (AddRow, AddNote), direct writer calls (fmt.Print/Fprint families,
// Write/WriteString), channel sends, or floating-point accumulation.
// Go randomizes map iteration order per run, so any of these sinks makes
// the output differ between two executions with identical seeds — which
// breaks the repository's byte-identical `-parallel` guarantee (the
// sfexperiments printer promises identical stdout for every worker count,
// and the equivalence harness diffs reports across substrates).
//
// Pure accumulation into order-free targets (integer sums, sets, other
// maps) is not flagged. An append is also forgiven when, later in the same
// function, the appended slice is passed to a sort call (sort.*, slices.*)
// — the sort re-establishes a canonical order, which is the standard
// sorted-keys idiom used by experiments.IDs.
//
// Floating-point accumulation (`x += f(...)`) is flagged even though it
// looks commutative: float addition is not associative, so map order
// changes the rounded sum and the printed digits with it.
//
// Suite history: the suite's first full-repo run caught three real
// bit-determinism bugs — stats.Histogram.Mean and Variance summed their
// counts map in iteration order, and loss.PerDest.Rate did the same over
// its per-destination map; all three were rewritten to iterate sorted
// keys. The repo's remaining map ranges were already order-free or sorted
// (registry.buildRegistry sorts its id slice before emitting).
var Maporder = &framework.Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach ordered output (slices, tables, writers) without a sort",
	Run:  runMaporder,
}

func runMaporder(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMapType(t) {
					return true
				}
				reportMapOrderSinks(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

// isMapType reports whether t is (or points to) a map.
func isMapType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderedSinkMethods are method names that emit into ordered structures.
var orderedSinkMethods = map[string]bool{
	"AddRow": true, "AddNote": true,
	"Write": true, "WriteString": true, "WriteRow": true,
}

// reportMapOrderSinks scans one map-range body for order-sensitive sinks.
func reportMapOrderSinks(pass *framework.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && isBuiltinAppend(pass, fun) && len(n.Args) > 0 {
					target := types.ExprString(n.Args[0])
					if !sortedLaterInFunc(pass, fd, rs, target) {
						pass.Reportf(n.Pos(),
							"append to %s in map-iteration order: sort the keys first (or sort %s before it is consumed)",
							target, target)
					}
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					if len(name) >= 5 && (name[:5] == "Print" || name[:6] == "Fprint") {
						pass.Reportf(n.Pos(),
							"fmt.%s inside a map range: output order changes per run; sort the keys first", name)
					}
					return true
				}
				if _, isMethod := pass.TypesInfo.Selections[fun]; isMethod && orderedSinkMethods[name] {
					pass.Reportf(n.Pos(),
						"%s call in map-iteration order: rows/bytes land in per-run order; sort the keys first", name)
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in map-iteration order: receivers observe a per-run order; sort the keys first")
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						pass.Reportf(n.Pos(),
							"floating-point accumulation in map-iteration order: float addition is not associative, so the sum depends on the per-run order; sort the keys first")
					}
				}
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// isBuiltinAppend confirms the identifier resolves to the append builtin
// (not a shadowing local function).
func isBuiltinAppend(pass *framework.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sortedLaterInFunc reports whether, after the range statement, the target
// expression is passed to a sort call in the same function — the
// sorted-keys idiom that re-establishes deterministic order.
func sortedLaterInFunc(pass *framework.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		var callee *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee = fun.Sel
		case *ast.Ident:
			callee = fun
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Anything from sort/slices, plus domain sorters like peer.Sort
		// (also reached as a bare Sort(...) inside package peer itself).
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" &&
			!strings.HasPrefix(fn.Name(), "Sort") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
