package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Seedflow requires RNG seeds to be produced by rng.DeriveSeed, never by
// arithmetic on other seeds. Additive or multiplicative derivations
// (seed+id, seed+index+1, seed+id*7919...) produce colliding streams
// whenever two derivations land on the same value — the exact bug class
// fixed in PR 3, where the cluster's Seed+u+1 / Seed+u+7919 scheme made a
// rejoining node replay the initial stream of node u+7918, silently
// correlating "independent" experiment arms. DeriveSeed hashes every part
// through SplitMix64, so distinct part tuples give decorrelated streams.
//
// Flagged shapes:
//   - any integer arithmetic whose operands mention a seed-named variable
//     or field (seed, Seed, *Seed suffix),
//   - rng.New called on an arithmetic expression,
//   - a Seed struct field or seed-named variable assigned from an
//     arithmetic expression.
//
// internal/rng itself is exempt: it is the sanctioned mixer, and its
// SplitMix64 internals are exactly the arithmetic this analyzer bans
// elsewhere.
//
// Violations found and fixed when the analyzer landed: the per-point
// engine seeds in internal/experiments (ablations2, baselines, churnexp,
// fig6, randomwalk, sec65, sec7 — all p.Seed+int64(i) shapes) and the
// paired-substrate seed split in internal/equivalence (cfg.Seed+1).
var Seedflow = &framework.Analyzer{
	Name: "seedflow",
	Doc:  "RNG seeds must come from rng.DeriveSeed, never from arithmetic on other seeds",
	Run:  runSeedflow,
}

// seedflowOps are the arithmetic operators that can alias streams.
var seedflowOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.OR: true, token.AND: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

func runSeedflow(pass *framework.Pass) error {
	if pass.Pkg.Path() == "sendforget/internal/rng" {
		return nil
	}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if seedflowOps[n.Op] && (mentionsSeed(pass, n.X) || mentionsSeed(pass, n.Y)) {
					report(n.Pos(),
						"seed derived by arithmetic (%s): use rng.DeriveSeed so streams cannot collide", n.Op)
				}
			case *ast.CallExpr:
				if isRngNew(pass, n) && len(n.Args) == 1 {
					if arg, ok := n.Args[0].(*ast.BinaryExpr); ok && seedflowOps[arg.Op] {
						report(arg.Pos(),
							"rng.New seeded with an arithmetic expression: use rng.DeriveSeed so streams cannot collide")
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && isSeedName(key.Name) {
					if v, ok := n.Value.(*ast.BinaryExpr); ok && seedflowOps[v.Op] {
						report(v.Pos(),
							"field %s set from an arithmetic expression: use rng.DeriveSeed so streams cannot collide", key.Name)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if !isSeedNamedExpr(lhs) {
						continue
					}
					if v, ok := n.Rhs[i].(*ast.BinaryExpr); ok && seedflowOps[v.Op] {
						report(v.Pos(),
							"seed variable assigned from an arithmetic expression: use rng.DeriveSeed so streams cannot collide")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSeedName reports whether an identifier names a seed: "seed", "Seed", or
// a camel-case *Seed/*seed suffix (nodeSeed, clusterSeed). Plural "seeds"
// (bootstrap id lists) deliberately does not match.
func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" ||
		strings.HasSuffix(name, "Seed") || strings.HasSuffix(name, "seed")
}

// isSeedNamedExpr reports whether the expression is a seed-named variable
// or field reference.
func isSeedNamedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return isSeedName(e.Name)
	case *ast.SelectorExpr:
		return isSeedName(e.Sel.Name)
	}
	return false
}

// mentionsSeed reports whether the expression contains an integer-typed
// seed-named leaf.
func mentionsSeed(p *framework.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return true
		}
		if !isSeedName(name) {
			return true
		}
		if t := p.TypesInfo.TypeOf(n.(ast.Expr)); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isRngNew reports whether the call is sendforget/internal/rng.New.
func isRngNew(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "New" && fn.Pkg() != nil &&
		fn.Pkg().Path() == "sendforget/internal/rng"
}
