package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"sendforget/internal/analyzers/framework"
)

// Seedtaint is the interprocedural upgrade of seedflow: it tracks seed
// values through assignments, struct fields, and any chain of function
// calls, and reports when a seed that was *derived by arithmetic* reaches
// rng.New. Seedflow catches `rng.New(seed+1)` written in one place; it is
// blind the moment the derivation hides behind a helper —
//
//	func deriveSeed(base int64, u int64) int64 { return base + u + 1 }
//	...
//	r := rng.New(deriveSeed(cfg.Seed, id))
//
// — which is exactly how the PR 3 collision survived review: the cluster's
// additive scheme lived in a seedFor helper, syntactically far from the
// rng.New call it fed. Seedtaint replays that bug class end-to-end: the
// seed parameter is tainted at the call, the addition inside the helper
// promotes it to "arithmetically derived", the return carries the taint
// back, and the rng.New sink fires.
//
// Taint lattice: seedTaintIsSeed (an integer value named like a seed, or
// the result of rng.DeriveSeed) < seedTaintDerived (arithmetic applied to a
// seed). Only seedTaintDerived is reportable; plain seeds flowing into
// rng.New are the normal, correct pattern. rng.DeriveSeed sanitizes: its
// result is a clean seed no matter what its arguments were (seedflow still
// polices arithmetic *in* those arguments syntactically).
//
// internal/rng is excluded from propagation entirely — its SplitMix64 and
// xoshiro internals are the arithmetic this analyzer exists to ban
// elsewhere.
var Seedtaint = &framework.Analyzer{
	Name: "seedtaint",
	Doc:  "no arithmetic-derived seed may reach rng.New through any chain of calls or assignments",
	Run:  runSeedtaint,
}

const (
	seedTaintIsSeed  framework.Taint = 1
	seedTaintDerived framework.Taint = 2
)

const rngPkgPath = "sendforget/internal/rng"

func runSeedtaint(pass *framework.Pass) error {
	if pass.Pkg.Path() == rngPkgPath {
		return nil
	}
	result := pass.Prog.Shared("seedtaint", func() any {
		return framework.SolveTaint(pass.Prog, framework.TaintSpec{
			Include: func(p *framework.Package) bool { return p.Path != rngPkgPath },
			Source:  seedTaintSource,
			Binary:  seedTaintBinary,
			Call:    seedTaintCall,
		})
	}).(*framework.TaintResult)

	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRngFunc(pass.TypesInfo, call, "New") || len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			if result.Eval(pass.TypesInfo, arg) == seedTaintDerived && !reported[arg.Pos()] {
				reported[arg.Pos()] = true
				pass.Reportf(arg.Pos(),
					"arithmetic-derived seed reaches rng.New (through assignments/calls): derive with rng.DeriveSeed so streams cannot collide")
			}
			return true
		})
	}
	return nil
}

// seedTaintSource marks integer-typed seed-named identifiers and selectors
// as seeds — the same naming heuristic seedflow uses, so the two analyzers
// agree on what a seed is.
func seedTaintSource(info *types.Info, e ast.Expr) framework.Taint {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return 0
	}
	if !isSeedName(name) {
		return 0
	}
	if t := info.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return seedTaintIsSeed
		}
	}
	return 0
}

// seedTaintBinary promotes any seed flowing through stream-aliasing
// arithmetic to "derived". Comparisons and logical operators do not
// produce seed values at all.
func seedTaintBinary(op token.Token, x, y framework.Taint) framework.Taint {
	if x == 0 && y == 0 {
		return 0
	}
	if seedflowOps[op] {
		return seedTaintDerived
	}
	// Every other binary operator (comparisons, &&, ||) yields a bool, not
	// a seed value.
	return 0
}

// seedTaintCall sanitizes rng.DeriveSeed — the sanctioned mixer returns a
// clean seed regardless of input taint.
func seedTaintCall(info *types.Info, call *ast.CallExpr, callees []*types.Func, arg func(int) framework.Taint) (framework.Taint, bool) {
	if isRngFunc(info, call, "DeriveSeed") {
		return seedTaintIsSeed, true
	}
	return 0, false
}

// isRngFunc reports whether the call targets sendforget/internal/rng.<name>.
func isRngFunc(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == rngPkgPath
}
