package analyzers

import (
	"sendforget/internal/analyzers/framework"
)

// Shardconfine enforces the sharded engine's ownership discipline, the one
// -race cannot see at 100k–1M nodes: fields annotated
//
//	//vet:confined shard — owned by the worker processing the field's
//	    shard index between barrier phases; also touchable while holding
//	    the engine's gate token for real (no phase is running then).
//	//vet:confined gate  — touchable only while provably holding the gate
//	    token; never from inside a barrier phase.
//
// An access to an annotated field passes if the happens-before engine can
// prove one of: the enclosing function runs on a freshly constructed,
// not-yet-shared instance (constructors); the gate token is held in earnest
// (the public API surface); or — for shard mode — the access is confined to
// the owning worker's shard: indexed by a value tainted from the
// shard-steal counter, reached through a handle checked out at such an
// index, or rooted in the function's own locals. Everything else is a
// confinement violation, reported with its barrier-phase context so the
// reader knows which side of the protocol was broken.
var Shardconfine = &framework.Analyzer{
	Name: "shardconfine",
	Doc:  "//vet:confined fields are only touched by their owning shard's worker or under the gate token",
	Run:  runShardconfine,
}

func runShardconfine(pass *framework.Pass) error {
	res := pass.Prog.Concurrency()
	path := pass.Pkg.Path()
	for _, a := range res.Accesses {
		cf := res.Confined[a.Obj]
		if cf == nil || a.Pkg.Path != path {
			continue
		}
		if a.Fresh || a.HoldsToken(res) {
			continue
		}
		if cf.Mode == "shard" && a.Confined {
			continue
		}
		verb := "read of"
		if a.Write {
			verb = "write to"
		}
		if a.InBarrierPhase(res) {
			if cf.Mode == "gate" {
				pass.Reportf(a.Pos,
					"%s gate-confined field %s in %s from inside a barrier phase: the dispatcher holds the gate, the phase worker does not",
					verb, a.Obj.Name(), a.FnLabel)
			} else {
				pass.Reportf(a.Pos,
					"%s shard-confined field %s in %s inside a barrier phase but not provably at the owning worker's shard index",
					verb, a.Obj.Name(), a.FnLabel)
			}
			continue
		}
		pass.Reportf(a.Pos,
			"%s %s-confined field %s in %s outside any barrier phase without holding the gate token",
			verb, cf.Mode, a.Obj.Name(), a.FnLabel)
	}
	return nil
}
