package analyzers

import (
	"fmt"
	"go/types"
	"sort"
	"strings"

	"sendforget/internal/analyzers/framework"
)

// Sharedguard proves race freedom of the concurrent substrates at the
// access-pair level. The framework's happens-before engine
// (framework.Concurrency) models goroutine creation, channel token
// protocols, the sharded engine's dispatch barrier, WaitGroup joins,
// sync.Once, and mutex locksets, then classifies every pair of accesses to
// the same field or package variable. Sharedguard reports the pairs that
// survive every proof: two conflicting accesses that may run concurrently,
// with no common lock, no happens-before edge, and no confinement argument
// separating them.
//
// The paper's correctness results assume atomic per-round semantics;
// `go test -race` only certifies the single schedules it happens to run at
// n≤500. This analyzer is the static side of that bargain: it covers every
// schedule of every instance, at the cost of instance-insensitivity — which
// is exactly the right trade for the cluster/sharded engines, where one
// lock field guards one instance's state.
//
// Scope: objects declared in the concurrent substrate packages
// (internal/runtime, internal/mgmt, internal/driver, internal/transport).
// Fields under a //vet:confined contract are shardconfine's findings and
// are excluded here.
var Sharedguard = &framework.Analyzer{
	Name: "sharedguard",
	Doc:  "conflicting accesses to substrate state must be ordered, excluded, or confined",
	Run:  runSharedguard,
}

// sharedguardScope lists the packages whose declared state the analyzer
// guards. Fixture packages (no slash in the path) are always in scope.
var sharedguardScope = map[string]bool{
	"sendforget/internal/runtime":   true,
	"sendforget/internal/mgmt":      true,
	"sendforget/internal/driver":    true,
	"sendforget/internal/transport": true,
}

func sharedguardScoped(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return sharedguardScope[pkg.Path()] || fixturePackage(pkg.Path())
}

// sharedguardFinding is one unsynchronized conflicting pair, anchored at a
// write site.
type sharedguardFinding struct {
	at      *framework.ConcAccess // the write the diagnostic anchors to
	other   *framework.ConcAccess // the conflicting counterpart
	pkgPath string
}

func runSharedguard(pass *framework.Pass) error {
	findings := pass.Prog.Shared("sharedguard.findings", func() any {
		return collectSharedguard(pass.Prog)
	}).([]*sharedguardFinding)
	path := pass.Pkg.Path()
	for _, f := range findings {
		if f.pkgPath != path {
			continue
		}
		pass.Reportf(f.at.Pos, "%s", sharedguardMessage(f))
	}
	return nil
}

// collectSharedguard classifies every conflicting access pair program-wide
// and keeps the racy ones, one finding per write site (the earliest
// counterpart wins, so the diagnostic is deterministic).
func collectSharedguard(prog *framework.Program) []*sharedguardFinding {
	res := prog.Concurrency()
	byObj := make(map[types.Object][]*framework.ConcAccess)
	for _, a := range res.Accesses {
		if !sharedguardScoped(a.Obj) {
			continue
		}
		if res.Confined[a.Obj] != nil {
			continue // shardconfine owns the annotated fields
		}
		byObj[a.Obj] = append(byObj[a.Obj], a)
	}
	objs := make([]types.Object, 0, len(byObj))
	for obj := range byObj {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool {
		pi, pj := byObj[objs[i]][0].Position, byObj[objs[j]][0].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	var findings []*sharedguardFinding
	for _, obj := range objs {
		accs := byObj[obj]
		reported := make(map[*framework.ConcAccess]bool)
		// Accesses arrive in deterministic position order; scanning writes
		// in order and counterparts in order keeps findings stable.
		for _, w := range accs {
			if !w.Write || reported[w] {
				continue
			}
			for _, o := range accs {
				if o == w {
					continue
				}
				if res.Classify(w, o) != framework.PairRacy {
					continue
				}
				findings = append(findings, &sharedguardFinding{
					at:      w,
					other:   o,
					pkgPath: w.Pkg.Path,
				})
				reported[w] = true
				// If the counterpart is a later write, one diagnostic for
				// the pair is enough.
				if o.Write {
					reported[o] = true
				}
				break
			}
		}
	}
	return findings
}

func sharedguardMessage(f *sharedguardFinding) string {
	kind := "read"
	if f.other.Write {
		kind = "write"
	}
	pos := f.other.Position
	site := fmt.Sprintf("%s:%d", shortFile(pos.Filename), pos.Line)
	return fmt.Sprintf(
		"unsynchronized write to %s in %s: conflicts with the %s in %s at %s — no common lock and no happens-before edge orders the two",
		f.at.Obj.Name(), f.at.FnLabel, kind, f.other.FnLabel, site)
}

// shortFile trims the path to its last two segments, enough to identify the
// file without depending on the checkout location.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
