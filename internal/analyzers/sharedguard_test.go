package analyzers

import (
	"strings"
	"sync/atomic"
	"testing"

	"sendforget/internal/analyzers/framework"
)

func TestSharedguardFixture(t *testing.T) {
	framework.RunFixture(t, fixture("sharedguard"), Sharedguard)
}

func TestShardconfineFixture(t *testing.T) {
	framework.RunFixture(t, fixture("shardconfine"), Shardconfine)
}

func TestShardplantFixture(t *testing.T) {
	framework.RunFixture(t, fixture("shardplant"), Shardconfine)
}

// The mirror of testdata/src/shardplant, compiled for real so the dynamic
// side of the comparison actually runs: a gate/work/done engine whose
// workers steal shard indexes from an atomic counter, with a cross-shard
// write planted on a spill branch that needs ~a million bumps of one slot
// to trigger.
const plantSpillAt = 1 << 20

type plantEngine struct {
	gate   chan struct{}
	work   chan int
	done   chan struct{}
	quit   chan struct{}
	steal  atomic.Int64
	shards int
	counts []int
}

func newPlantEngine(shards int) *plantEngine {
	p := &plantEngine{
		gate:   make(chan struct{}, 1),
		work:   make(chan int),
		done:   make(chan struct{}),
		quit:   make(chan struct{}),
		shards: shards,
	}
	p.counts = make([]int, shards)
	for i := 0; i < shards; i++ {
		go p.worker()
	}
	p.gate <- struct{}{}
	return p
}

func (p *plantEngine) worker() {
	for {
		select {
		case inc := <-p.work:
			for {
				k := int(p.steal.Add(1)) - 1
				if k >= p.shards {
					break
				}
				p.counts[k] += inc
				if p.counts[k] >= plantSpillAt {
					p.counts[0]++ // the planted cross-shard write
				}
			}
			p.done <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

func (p *plantEngine) tick() {
	<-p.gate
	p.steal.Store(0)
	for i := 0; i < p.shards; i++ {
		p.work <- 1
	}
	for i := 0; i < p.shards; i++ {
		<-p.done
	}
	p.gate <- struct{}{}
}

func (p *plantEngine) close() {
	<-p.gate
	close(p.quit)
}

// TestShardconfineCatchesWhatRaceMisses is the regression test the
// shardconfine analyzer exists for, mirroring the hotalloc-vs-AllocsPerRun
// test from PR 9: the planted cross-shard write sits on a spill branch no
// small-n schedule takes, so a race-enabled run of the real engine
// certifies it clean, while the static analyzer reports the write with its
// barrier-phase context on every schedule of every size.
func TestShardconfineCatchesWhatRaceMisses(t *testing.T) {
	const shards, ticks = 4, 8
	p := newPlantEngine(shards)
	for i := 0; i < ticks; i++ {
		p.tick()
	}
	p.close()

	// Dynamic side: with the bug in place, every slot stays far below the
	// spill threshold, the branch never runs, and the race detector (when
	// this test runs under -race) has nothing to see.
	for k, c := range p.counts {
		if c != ticks {
			t.Fatalf("counts[%d] = %d, want %d; the spill branch was supposed to stay cold", k, c, ticks)
		}
	}

	// Static side: shardconfine reports the planted write regardless of
	// which branches any particular schedule takes.
	diags, err := framework.FixtureDiagnostics(fixture("shardplant"), Shardconfine)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the planted write, got %d diagnostics: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "shardconfine" {
		t.Errorf("diagnostic from %q, want shardconfine", d.Analyzer)
	}
	for _, part := range []string{
		"write to shard-confined field counts",
		"inside a barrier phase but not provably at the owning worker's shard index",
	} {
		if !strings.Contains(d.Message, part) {
			t.Errorf("diagnostic %q missing %q", d.Message, part)
		}
	}
}
