package analyzers

import (
	"go/ast"
	"go/types"

	"sendforget/internal/analyzers/framework"
)

// Substrate enforces the construction boundary of the unified execution
// backend (PR 7): every package outside internal/runtime builds backends
// exclusively through runtime.New, the factory returning the Substrate
// interface. The equivalence harness, benchmarks, and commands are
// substrate-neutral by design — the three-way statistical agreement they
// certify is only meaningful if the backend choice is a construction-time
// parameter, never a code path. A direct call to NewCluster or NewSharded
// outside the runtime package reintroduces a backend-specific branch that
// the equivalence matrix cannot see.
//
// Type assertions to a concrete backend (sub.(*runtime.Cluster)) remain
// legal: they recover extra surface (per-node handles, Start) from an
// already-constructed substrate without choosing the backend. In fixture
// packages, functions named NewCluster/NewSharded stand in for the runtime
// constructors.
var Substrate = &framework.Analyzer{
	Name: "substrate",
	Doc:  "execution backends are built only via runtime.New — no package outside internal/runtime calls a concrete substrate constructor",
	Run:  runSubstrate,
}

func runSubstrate(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if path == "sendforget/internal/runtime" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := substrateConstructor(pass, call); ok {
				pass.Reportf(call.Pos(),
					"%s constructs a concrete substrate directly: build backends with runtime.New so the engine choice stays construction-only", name)
			}
			return true
		})
	}
	return nil
}

// substrateConstructor reports whether the call targets a concrete substrate
// constructor — runtime.NewCluster or runtime.NewSharded, or their
// name-matched stand-ins in fixture packages — and names it for the
// diagnostic.
func substrateConstructor(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	switch fn.Name() {
	case "NewCluster", "NewSharded":
	default:
		return "", false
	}
	p := fn.Pkg().Path()
	if p == "sendforget/internal/runtime" || fixturePackage(p) {
		return fn.Pkg().Name() + "." + fn.Name(), true
	}
	return "", false
}
