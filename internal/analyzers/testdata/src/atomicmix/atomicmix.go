// Package atomicmix exercises the atomicmix analyzer: a variable accessed
// through the classic sync/atomic function API must not also be read or
// written plainly with no mutex held. The sanctioned repo pattern is a
// typed atomic (atomic.Int64), which makes the mix a compile error; this
// fixture is the classic form that regresses silently.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int64
	m  int64
}

// inc is the atomic side of the mix: it marks n as atomically accessed.
func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

// read is the regression: a plain read of the atomic field with no lock.
func (c *counter) read() int64 {
	return c.n // want `n is accessed atomically .* but plainly here with no mutex held`
}

// write is the worse half of the same bug.
func (c *counter) write(v int64) {
	c.n = v // want `n is accessed atomically .* but plainly here with no mutex held`
}

// readLocked is accepted: any held mutex makes the plain access deliberate.
func (c *counter) readLocked() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// readUnlockedAgain shows the dataflow is position-sensitive: after the
// unlock the same expression is bare again.
func (c *counter) readUnlockedAgain() int64 {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want `n is accessed atomically .* but plainly here with no mutex held`
}

// touch only ever uses m plainly: no atomic access, no findings.
func (c *counter) touch() { c.m++ }

// Package-level variables mix the same way.
var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func peek() int64 {
	return hits // want `hits is accessed atomically .* but plainly here with no mutex held`
}

// fresh constructs a counter; naming the field in a composite literal is not
// an access.
func fresh() *counter {
	return &counter{n: 0}
}

// snapshot carries the reviewed escape hatch.
func (c *counter) snapshot() int64 {
	//lint:allow atomicmix approximate value for diagnostics; torn reads acceptable
	return c.n
}
