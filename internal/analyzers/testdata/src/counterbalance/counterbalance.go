// Package counterbalance exercises the counterbalance analyzer: traffic
// ledger fields move only in their owning package, and every send write is
// paired with an outcome write.
package counterbalance

import "sendforget/internal/metrics"

// Ledger matches the structural ledger test: an integer send field plus at
// least two integer outcome fields. This package owns it, so rule 2
// (send/outcome balance) applies here.
type Ledger struct {
	Sends       int
	Losses      int
	Deliveries  int
	DeadLetters int
}

// Record matches the shapes the ledger test must exclude: its Sent and Lost
// describe one event, not tallies, and they are bools.
type Record struct {
	Sent bool
	Lost bool
	Note string
}

func balanced(l *Ledger, lost bool) {
	l.Sends++
	if lost {
		l.Losses++
	} else {
		l.Deliveries++
	}
}

func sendOnly(l *Ledger) {
	l.Sends++ // want `sendOnly counts a send \(Ledger.Sends\) but records no outcome`
}

// Outcome-only writers (delay-queue drains) are legal.
func drain(l *Ledger, dead int) {
	l.DeadLetters += dead
}

// Per-event records are not ledgers; marking one is always fine.
func mark(r *Record) {
	r.Sent = true
	r.Lost = true
}

// Constructing a ledger whole via a composite literal states a complete
// ledger; it does not perturb a live one.
func snapshot(sends, losses, deliveries int) Ledger {
	return Ledger{Sends: sends, Losses: losses, Deliveries: deliveries}
}

// metrics.Traffic belongs to internal/metrics; poking its fields from here
// breaks rule 1 regardless of balance.
func poke(t *metrics.Traffic) {
	t.Sends++      // want `direct write to Traffic.Sends outside its accounting package sendforget/internal/metrics`
	t.Deliveries++ // want `direct write to Traffic.Deliveries outside its accounting package sendforget/internal/metrics`
}

// Reading foreign ledgers is how they are meant to be consumed.
func lossRate(t *metrics.Traffic) float64 {
	if t.Sends == 0 {
		return 0
	}
	return float64(t.Losses) / float64(t.Sends)
}

// The escape hatch: a test harness resetting a foreign ledger in place.
func reset(t *metrics.Traffic) {
	//lint:allow counterbalance harness-only ledger reset
	t.Sends = 0
}
