// Package detrand exercises the detrand analyzer: ambient randomness and
// wall-clock reads are forbidden in deterministic packages, and the
// //lint:allow escape hatch must suppress a flagged line.
package detrand

import (
	crand "crypto/rand"   // want `import of crypto/rand \(nondeterministic entropy\)`
	"math/rand"           // want `import of math/rand \(unseeded ambient randomness\)`
	randv2 "math/rand/v2" // want `import of math/rand/v2 \(unseeded ambient randomness\)`
	"time"
)

// The imports themselves are the violations; uses are not re-flagged.
func draw() int        { return rand.Int() }
func drawV2() int      { return randv2.Int() }
func entropy(b []byte) { crand.Read(b) }

func stamp() time.Time { return time.Now() } // want `call to time.Now in deterministic package detrand`

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since in deterministic package detrand`
}

func deadlineIn(t1 time.Time) time.Duration {
	return time.Until(t1) // want `call to time.Until in deterministic package detrand`
}

// Duration arithmetic and timers stay legal: they pace wall-clock execution
// but do not feed protocol decisions.
func pace() *time.Ticker { return time.NewTicker(250 * time.Millisecond) }

// The sanctioned escape: an audited entropy read behind //lint:allow, the
// same mechanism rng.AutoSeed uses.
func auditedStamp() time.Time {
	//lint:allow detrand fixture models the audited entropy escape
	return time.Now()
}
