// Package errdrop exercises the errdrop analyzer: transport send/receive
// errors must be consulted — checked, returned, or recorded — never
// discarded. In fixtures, methods named Send/Recv/Receive/SendTo stand in
// for the transport layer.
package errdrop

import "errors"

type ep struct{}

// Send and Recv mimic the transport.Endpoint surface.
func (ep) Send(to int, m string) error { return errors.New("send") }
func (ep) Recv() (string, error)       { return "", errors.New("recv") }
func (ep) Close() error                { return errors.New("close") }

// sender mirrors runtime.Sender: errdrop resolves the interface dispatch
// to the fixture transport through the call graph.
type sender interface {
	Send(to int, m string) error
}

func dropStmt(e ep) {
	e.Send(1, "a") // want `error returned by \(.*ep\)\.Send is discarded`
}

func dropBlank(e ep) {
	_ = e.Send(1, "a") // want `error returned by \(.*ep\)\.Send is assigned to _`
}

// The bound-but-dead shape: err is named, never read. The trailing `_ = err`
// pacifies the compiler and is itself the discard idiom errdrop rejects.
func dropDead(e ep) {
	err := e.Send(1, "a") // want `error err from \(.*ep\)\.Send is bound but never consulted`
	_ = err
}

func dropTupleBlank(e ep) string {
	msg, _ := e.Recv() // want `error returned by \(.*ep\)\.Recv is assigned to _`
	return msg
}

func dropViaInterface(s sender) {
	s.Send(2, "b") // want `error returned by .*Send is discarded`
}

// Sanctioned shapes below.

func checked(e ep) error {
	if err := e.Send(3, "c"); err != nil {
		return err
	}
	return nil
}

func propagated(e ep) error {
	return e.Send(4, "d")
}

func consulted(e ep) int {
	err := e.Send(5, "e")
	if err != nil {
		return 1
	}
	return 0
}

// Close errors carry no accounting value on shutdown paths.
func closer(e ep) {
	e.Close()
}

// Deferred and spawned sends have no caller left to consult the error;
// goroleak polices the spawned shape separately.
func deferred(e ep) {
	defer e.Send(6, "f")
}

func spawned(e ep) {
	go e.Send(7, "g")
}

// The escape hatch, for reviewed exceptions.
func allowed(e ep) {
	//lint:allow errdrop best-effort notification, loss is recorded by the receiver
	e.Send(8, "h")
}
