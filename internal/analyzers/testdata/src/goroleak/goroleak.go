// Package goroleak exercises the goroleak analyzer: every goroutine needs a
// termination path (its CFG can reach a return) and a shutdown/sync
// mechanism (a channel receive, context.Done, or WaitGroup.Done) so Stop
// paths can end it and tests can await it.
package goroleak

import (
	"context"
	"sync"
)

type worker struct {
	jobs chan int
	stop chan struct{}
	n    int
}

// spin can never return: its CFG has no path to the exit.
func spin(w *worker) {
	for {
		w.n++
	}
}

func leakSpin(w *worker) {
	go spin(w) // want `goroutine cannot terminate`
}

// bump returns, but nothing can stop or await the goroutine running it.
func bump(w *worker) { w.n++ }

func fireAndForget(w *worker) {
	go bump(w) // want `no shutdown or synchronization mechanism`
}

// loop is the sanctioned gossip-loop shape: a select with a stop arm.
func (w *worker) loop() {
	for {
		select {
		case j := <-w.jobs:
			w.n += j
		case <-w.stop:
			return
		}
	}
}

func startLoop(w *worker) {
	go w.loop()
}

// Range over a channel terminates when the channel closes.
func drain(w *worker) {
	go func() {
		for j := range w.jobs {
			w.n += j
		}
	}()
}

// A WaitGroup-tracked one-shot: Stop paths can Wait for it.
func tracked(w *worker, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		bump(w)
	}()
}

// Context-governed shutdown.
func watch(ctx context.Context, w *worker) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-w.jobs:
				w.n += j
			}
		}
	}()
}

// done hides the stop receive behind a helper; the analyzer follows the
// call graph to find it.
func done(w *worker) bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

func viaHelper(w *worker) {
	go func() {
		for {
			if done(w) {
				return
			}
		}
	}()
}

// The escape hatch, for reviewed exceptions.
func allowedSpin(w *worker) {
	//lint:allow goroleak measurement spinner, process-lifetime by design
	go spin(w)
}
