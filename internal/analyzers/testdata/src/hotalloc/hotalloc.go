// Package hotalloc exercises the hotalloc analyzer: no allocation site may
// be reachable from a //vet:hotpath root, through any chain of calls. The
// escape layer keeps the sanctioned idioms silent — constant-size makes
// that stay in their frame, pooled appends into caller-owned storage, and
// value structs — while everything that can reach the allocator on a hot
// chain is a finding carrying the root-to-site path.
package hotalloc

type buf struct {
	out []int
}

var sink any

// tick is the declared hot root; the fixture's reachable world hangs off it.
//
//vet:hotpath
func tick(b *buf, n int, m map[int]int, s1, s2 string, raw []byte) {
	var local [4]int // stack array value: clean
	local[0] = n
	b.out = append(b.out, local[0]) // pooled append into the receiver: clean

	stay := make([]int, 8) // constant size, never leaks this frame: clean
	stay[0] = n

	p := &pair{a: 1, b: 2} // address never leaks: clean
	p.a += n

	grown := freshAppend(n)
	dynamic(b, n+grown)
	sink = n // want `int boxed into interface \(allocates\)`
	mapWrite(m, n)
	_ = concat(s1, s2)
	_ = stringify(raw)
	spawn(b)
	varargs(n)
	closures(n)

	//lint:allow hotalloc logging fallback is off the steady state; reviewed edge cut
	cold(b)
}

type pair struct{ a, b int }

// dynamic is one call deep: its non-constant make is a finding with the
// two-link chain.
func dynamic(b *buf, n int) {
	scratch := make([]int, n) // want `allocation on hot path \(tick -> dynamic\): make with non-constant size allocates`
	for i := range scratch {
		scratch[i] = i
	}
	deeper(b)
}

// deeper is two calls deep: the chain in the diagnostic grows with it.
func deeper(b *buf) []int {
	escapee := make([]int, 4) // want `allocation on hot path \(tick -> dynamic -> deeper\): escaping make \(constant size but leaks the frame\)`
	return escapee
}

// freshAppend grows a slice this frame owns no backing for.
func freshAppend(n int) int {
	var local []int
	local = append(local, n) // want `append to non-pooled slice may grow the backing array`
	return len(local)
}

func mapWrite(m map[int]int, n int) {
	m[n] = n // want `map assignment may allocate \(bucket growth\)`
}

func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

func stringify(raw []byte) string {
	return string(raw) // want `\[\]byte/\[\]rune to string conversion allocates`
}

func spawn(b *buf) {
	go drain(b) // want `go statement allocates a goroutine`
}

func drain(b *buf) { b.out = b.out[:0] }

func report(vs ...any) int { return len(vs) }

func varargs(n int) {
	_ = report(n, n+1) // want `variadic call materializes its argument slice` `int boxed into interface` `int boxed into interface`
}

func closures(n int) func() int {
	static := func() int { return 1 } // captures nothing: clean
	_ = static()
	return func() int { return n } // want `function literal captures n \(closure allocation\)`
}

// cold allocates freely, but tick reaches it only through an allow-cut call
// edge: nothing in here is reported.
func cold(b *buf) {
	b.out = append([]int{}, b.out...)
	sink = make([]byte, len(b.out))
}

// offPath allocates and nothing hot reaches it: silent.
func offPath(n int) []int {
	return make([]int, n)
}

// suppressed shows the site-level escape hatch on a hot chain.
//
//vet:hotpath
func suppressed(n int) []int {
	//lint:allow hotalloc warm-up path runs once per churn epoch, not per tick
	return make([]int, n)
}
