// Package hotplant is a reduced copy of the sharded tick path — root
// tickRound, an initiate pass over the nodes, and a rejoin branch — with a
// one-line allocation planted in the branch that a steady-state dynamic
// alloc count never executes: rejoin runs only for nodes whose incarnation
// changed this round, and TestShardedZeroAllocTick-style counting over a
// stable cluster (all incarnations zero) exercises zero of them. Hotalloc
// reports the site regardless of which branches a run happens to take; the
// mirror test in the analyzers package proves exactly that gap.
package hotplant

type node struct {
	view        [8]int32
	occ         int
	incarnation int32
}

type cluster struct {
	nodes []node
	seen  []int32
	inbox []int32
}

// tickRound mirrors ShardedCluster.TickRound: initiate then deliver.
//
//vet:hotpath
func (c *cluster) tickRound() {
	c.initiate()
	c.deliver()
}

// initiate mirrors the initiate shard pass, with the rejoin branch taken
// only on incarnation change — the branch a fixed-seed dynamic run at any n
// never enters.
func (c *cluster) initiate() {
	for u := range c.nodes {
		nd := &c.nodes[u]
		if nd.incarnation != c.seen[u] {
			c.rejoin(u)
		}
		if nd.occ >= 2 {
			i, j := nd.occ-1, nd.occ-2
			c.inbox = append(c.inbox, nd.view[i], nd.view[j])
			nd.view[i], nd.view[j] = 0, 0
			nd.occ -= 2
		}
	}
}

// rejoin is where the allocation hides: reseeding a returning node's view
// builds a fresh id slice instead of reusing a pooled one.
func (c *cluster) rejoin(u int) {
	nd := &c.nodes[u]
	seeds := make([]int32, len(c.nodes)) // want `allocation on hot path \(tickRound -> initiate -> rejoin\): make with non-constant size allocates`
	for i := range seeds {
		seeds[i] = int32(i)
	}
	for i := 0; i < len(nd.view) && i < len(seeds); i++ {
		nd.view[i] = seeds[i]
	}
	nd.occ = len(nd.view)
	c.seen[u] = nd.incarnation
}

// deliver mirrors the deliver pass: drain the inbox into empty slots.
func (c *cluster) deliver() {
	for _, id := range c.inbox {
		nd := &c.nodes[int(id)%len(c.nodes)]
		if nd.occ < len(nd.view) {
			nd.view[nd.occ] = id
			nd.occ++
		}
	}
	c.inbox = c.inbox[:0]
}
