// Package lockdiscipline exercises the lockdiscipline analyzer: no
// transport sends, channel operations, or blocking calls while holding a
// sync.Mutex or sync.RWMutex.
package lockdiscipline

import (
	"sync"
	"time"
)

type endpoint struct{}

// Send mimics the transport.Endpoint / runtime.Sender surface.
func (endpoint) Send(to int, payload string) {}

type node struct {
	mu  sync.Mutex
	out endpoint
	ch  chan string
	buf []string
}

func (n *node) sendUnderLock() {
	n.mu.Lock()
	n.out.Send(1, "hi") // want `call to n.out.Send while holding n.mu`
	n.mu.Unlock()
}

func (n *node) sendOnChanDeferred(v string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ch <- v // want `channel send while holding n.mu`
}

func (n *node) recvUnderLock() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.ch // want `channel receive while holding n.mu`
}

func (n *node) sleepUnderLock() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while holding n.mu`
	n.mu.Unlock()
}

func (n *node) waitUnderLock(wg *sync.WaitGroup) {
	n.mu.Lock()
	defer n.mu.Unlock()
	wg.Wait() // want `call to sync.WaitGroup.Wait while holding n.mu`
}

func (n *node) selectUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `blocking select while holding n.mu`
	case v := <-n.ch:
		n.buf = append(n.buf, v)
	}
}

// An early-release branch must not leak its unlock into the fall-through
// path: the send below still runs with the mutex held.
func (n *node) branchRelease(cond bool) {
	n.mu.Lock()
	if cond {
		n.mu.Unlock()
		return
	}
	n.out.Send(2, "x") // want `call to n.out.Send while holding n.mu`
	n.mu.Unlock()
}

// The sanctioned pattern PR 2 established: stage under the lock, transmit
// after releasing it.
func (n *node) stageThenSend(v string) {
	n.mu.Lock()
	n.buf = append(n.buf, v)
	staged := n.buf
	n.buf = nil
	n.mu.Unlock()
	for _, m := range staged {
		n.out.Send(0, m)
	}
}

// A spawned goroutine runs outside the spawner's critical section.
func (n *node) spawn() {
	n.mu.Lock()
	go func() {
		n.out.Send(3, "bg")
	}()
	n.mu.Unlock()
}

// A select with a default never blocks.
func (n *node) pollUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case v := <-n.ch:
		n.buf = append(n.buf, v)
	default:
	}
}

type cluster struct {
	mu    sync.RWMutex
	nodes map[int]*node
}

func (c *cluster) broadcastUnderRLock(msg string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.nodes {
		n.out.Send(0, msg) // want `call to n.out.Send while holding c.mu`
	}
}

// The escape hatch for a send the author has proven cannot block.
func (n *node) allowListed() {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:allow lockdiscipline buffered channel sized to the lock's critical sections
	n.ch <- "token"
}
