// Package lockreach exercises the lockreach analyzer: no call that
// *transitively* blocks — through any chain of helpers or an interface
// dispatch — while a mutex is held. Direct operations under a lock are
// lockdiscipline's findings and deliberately absent here.
package lockreach

import "sync"

type node struct {
	mu  sync.Mutex
	ch  chan string
	buf []string
}

// flush blocks directly: it sends on the node's channel.
func (n *node) flush() {
	for _, v := range n.buf {
		n.ch <- v
	}
	n.buf = nil
}

// record blocks directly; log blocks one level removed.
func (n *node) record(v string) { n.ch <- v }
func (n *node) log(v string)    { n.record(v) }

// grow never blocks.
func (n *node) grow() { n.buf = append(n.buf, "x") }

// The shape PR 2's rule exists to prevent, reintroduced by helper
// extraction: syntactically there is no channel op under the lock.
func (n *node) flushUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flush() // want `call to flush while holding n.mu: flush sends on a channel`
}

// Two helpers deep: the diagnostic names the next link of the chain.
func (n *node) logUnderLock() {
	n.mu.Lock()
	n.log("x") // want `call to log while holding n.mu: log calls record, which sends on a channel`
	n.mu.Unlock()
}

// sink dispatches through an interface; CHA resolves Put to chanSink.Put.
type sink interface{ Put(string) }

type chanSink struct{ ch chan string }

func (c chanSink) Put(v string) { c.ch <- v }

func (n *node) drainTo(s sink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s.Put("v") // want `call to Put while holding n.mu: Put sends on a channel`
}

// An early-release branch must not leak its unlock into the fall-through
// path: on the else path the mutex is still held.
func (n *node) branchRelease(cond bool) {
	n.mu.Lock()
	if cond {
		n.mu.Unlock()
		return
	}
	n.flush() // want `call to flush while holding n.mu`
	n.mu.Unlock()
}

// The sanctioned pattern: mutate under the lock, block after releasing it.
func (n *node) stageThenFlush(v string) {
	n.mu.Lock()
	n.buf = append(n.buf, v)
	n.mu.Unlock()
	n.flush()
}

// Non-blocking helpers remain legal under the lock.
func (n *node) growUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.grow()
}

// The escape hatch, for reviewed exceptions.
func (n *node) allowedFlush() {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:allow lockreach startup path, channel is buffered and provably empty
	n.flush()
}
