// Package maporder exercises the maporder analyzer: map iteration order
// must not reach ordered output without a sort re-establishing canonical
// order.
package maporder

import (
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out in map-iteration order`
	}
	return out
}

// The sorted-keys idiom: the append is forgiven because the slice is sorted
// before it is consumed.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortIDs is a domain sorter like peer.Sort; calling it bare (same-package)
// must count as a sort.
func SortIDs(ids []int) { sort.Ints(ids) }

func keysDomainSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	SortIDs(out)
	return out
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside a map range`
	}
}

func floatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation in map-iteration order`
	}
	return sum
}

// Integer accumulation is associative and therefore order-free.
func intSum(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func feed(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send in map-iteration order`
	}
}

type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func fill(t *table, m map[string]string) {
	for k, v := range m {
		t.AddRow(k, v) // want `AddRow call in map-iteration order`
	}
}

// Accumulating into order-free targets (other maps, sets) is fine.
func invert(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// The escape hatch: drawing an arbitrary element where order is
// deliberately irrelevant.
func anyKey(m map[int]int) []int {
	var out []int
	for k := range m {
		//lint:allow maporder sampling one arbitrary element
		out = append(out, k)
		break
	}
	return out
}
