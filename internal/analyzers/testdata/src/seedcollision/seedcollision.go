// Package seedcollision replays the exact PR 3 bug: the concurrent
// cluster derived a node's protocol stream from Seed+u+1 and its rejoin
// stream from Seed+u+7919, so a rejoining node u replayed the initial
// stream of node u+7918. The seedflow analyzer must flag every derivation
// in this scheme; the regression test in analyzers_test.go also proves the
// collision numerically and that rng.DeriveSeed removes it.
package seedcollision

import "sendforget/internal/rng"

type clusterConfig struct {
	Seed int64
}

// nodeRNG is the historical initial-stream derivation.
func nodeRNG(cfg clusterConfig, u int64) *rng.RNG {
	return rng.New(cfg.Seed + u + 1) // want `rng.New seeded with an arithmetic expression`
}

// rejoinRNG is the historical rejoin-stream derivation that collides with
// nodeRNG for u' = u + 7918.
func rejoinRNG(cfg clusterConfig, u int64) *rng.RNG {
	return rng.New(cfg.Seed + u + 7919) // want `rng.New seeded with an arithmetic expression`
}
