// Package seedflow exercises the seedflow analyzer: RNG seeds must come
// from rng.DeriveSeed, never from arithmetic on other seeds.
package seedflow

import "sendforget/internal/rng"

// Params mirrors the experiment parameter structs whose Seed field feeds
// per-point engines.
type Params struct {
	Seed int64
}

// Config mirrors an engine config with a Seed field.
type Config struct {
	Seed int64
}

// perPoint is the PR 3 bug shape: additive per-index seeds collide across
// experiment arms.
func perPoint(p Params, i int) *rng.RNG {
	return rng.New(p.Seed + int64(i)) // want `rng.New seeded with an arithmetic expression`
}

func derive(seed int64, i int) int64 {
	return seed + int64(i) // want `seed derived by arithmetic \(\+\)`
}

func deriveMul(seed int64, u int) int64 {
	return seed ^ int64(u)*7919 // want `seed derived by arithmetic \(\^\)`
}

func configure(base int64, u int) Config {
	return Config{Seed: base*7919 + int64(u)} // want `field Seed set from an arithmetic expression`
}

func reseed(seed int64, u int64) int64 {
	seed = 1 + seed // want `seed variable assigned from an arithmetic expression`
	_ = u
	return seed
}

// Sanctioned shapes below: hashing through DeriveSeed, or arithmetic that
// never touches a seed.

func goodPerPoint(p Params, i int) *rng.RNG {
	return rng.New(rng.DeriveSeed(p.Seed, int64(i)))
}

func goodConfigure(base int64, u int) Config {
	return Config{Seed: rng.DeriveSeed(base, int64(u))}
}

func index(i, j int) int {
	return i*100 + j
}

// Plural "seeds" names bootstrap id lists, not RNG seeds; len arithmetic on
// them stays legal.
func bootstrapCount(seeds []int64) int {
	return len(seeds) + 1
}

// The escape hatch: a regression harness reproducing the historical bug on
// purpose.
func historicalScheme(seed int64, u int64) int64 {
	//lint:allow seedflow reproduces the PR 3 collision on purpose
	return seed + u + 1
}
