// Package seedtaint exercises the seedtaint analyzer: an arithmetic-derived
// seed must not reach rng.New through *any* chain of assignments and calls.
//
// Every flagged case here is deliberately invisible to the syntactic
// seedflow analyzer — the arithmetic is hidden behind helpers whose
// parameters are not seed-named, which is exactly how the PR 3 collision
// scheme survived review. TestSeedtaintSeesWhatSeedflowMisses asserts that
// gap: seedflow reports nothing on this package.
package seedtaint

import "sendforget/internal/rng"

// seedFor is the PR 3 bug shape extracted into a helper: additive per-arm
// seeds collide across experiment arms. Its parameters are not seed-named,
// so seedflow's naming heuristic never looks inside.
func seedFor(base int64, u int64) int64 {
	return base + u + 1
}

// perArm is the call site that made the historical bug: syntactically clean,
// interprocedurally a derived seed.
func perArm(seed int64, arm int64) *rng.RNG {
	s := seedFor(seed, arm)
	return rng.New(s) // want `arithmetic-derived seed reaches rng.New`
}

// perArmInline routes the helper result straight into the sink.
func perArmInline(seed int64, arm int64) *rng.RNG {
	return rng.New(seedFor(seed, arm)) // want `arithmetic-derived seed reaches rng.New`
}

// mix hides multiplicative derivation one more call deep.
func mix(a, b int64) int64 {
	return a ^ b*7919
}

// armConfig carries a seed through a struct field; the taint is field-based.
type armConfig struct {
	Seed int64
}

func viaField(seed int64, u int64) *rng.RNG {
	c := armConfig{Seed: mix(seed, u)}
	return rng.New(c.Seed) // want `arithmetic-derived seed reaches rng.New`
}

// Sanctioned shapes below: plain seeds, DeriveSeed — including DeriveSeed
// hidden behind a helper, which sanitizes the chain.

func plain(seed int64) *rng.RNG {
	return rng.New(seed)
}

func derived(seed int64, u int64) *rng.RNG {
	return rng.New(rng.DeriveSeed(seed, u))
}

// goodFor mirrors seedFor but uses the sanctioned mixer; its result is a
// clean seed no matter how it is routed.
func goodFor(base int64, u int64) int64 {
	return rng.DeriveSeed(base, u)
}

func goodPerArm(seed int64, arm int64) *rng.RNG {
	s := goodFor(seed, arm)
	return rng.New(s)
}

// cleanConfig is a distinct type from armConfig on purpose: field taint is
// per field object, and a clean field must stay clean.
type cleanConfig struct {
	Seed int64
}

func viaCleanField(seed int64, u int64) *rng.RNG {
	c := cleanConfig{Seed: rng.DeriveSeed(seed, u)}
	return rng.New(c.Seed)
}

// The escape hatch: a regression harness reproducing the historical
// collision on purpose.
func historical(seed int64, u int64) *rng.RNG {
	//lint:allow seedtaint reproduces the PR 3 collision on purpose
	return rng.New(seedFor(seed, u))
}
