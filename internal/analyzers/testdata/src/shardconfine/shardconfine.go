// Package shardconfine exercises the //vet:confined contract end to end on
// a miniature gate/work/done engine with the same protocol shape as the
// sharded tick engine: a gate token serializes the public surface, phase
// workers steal shard indexes from an atomic counter between the work
// hand-off and the done report.
package shardconfine

import "sync/atomic"

// mux stands in for the per-engine router: gate-confined, so even the
// phase workers may not touch it.
type mux struct{ routed int }

// engine mirrors the sharded engine's ownership regimes.
type engine struct {
	gate   chan struct{}
	work   chan int
	done   chan struct{}
	quit   chan struct{}
	steal  atomic.Int64
	shards int
	ledger []int //vet:confined shard
	router *mux  //vet:confined gate
}

// New builds the engine and starts its workers; every confined-field write
// here lands on the fresh, not-yet-shared instance.
func New(shards int) *engine {
	e := &engine{
		gate:   make(chan struct{}, 1),
		work:   make(chan int),
		done:   make(chan struct{}),
		quit:   make(chan struct{}),
		shards: shards,
		router: &mux{},
	}
	e.ledger = make([]int, shards)
	for i := 0; i < shards; i++ {
		go e.worker()
	}
	e.gate <- struct{}{}
	return e
}

// worker parks on the barrier. Inside a phase, every ledger index it
// touches through the steal counter is provably its own — but the bump of
// slot zero crosses shards, and the router belongs to the dispatcher.
func (e *engine) worker() {
	for {
		select {
		case base := <-e.work:
			for {
				k := int(e.steal.Add(1)) - 1
				if k >= e.shards {
					break
				}
				e.ledger[k] += base
			}
			e.ledger[0]++       // want `write to shard-confined field ledger in \(engine\)\.worker inside a barrier phase but not provably at the owning worker's shard index`
			_ = e.router.routed // want `read of gate-confined field router in \(engine\)\.worker from inside a barrier phase: the dispatcher holds the gate, the phase worker does not`
			e.done <- struct{}{}
		case <-e.quit:
			return
		}
	}
}

// Tick runs one phase under the gate: hand a work item to every worker,
// collect every done report. Between the send and the report the workers
// own the shard-confined state; the dispatcher only holds the gate.
func (e *engine) Tick() {
	<-e.gate
	e.steal.Store(0)
	for i := 0; i < e.shards; i++ {
		e.work <- 1
	}
	for i := 0; i < e.shards; i++ {
		<-e.done
	}
	e.gate <- struct{}{}
}

// Snapshot is the public surface done right: check the gate token out,
// read the confined state, hand the token back.
func (e *engine) Snapshot() (int, int) {
	<-e.gate
	total := 0
	for _, v := range e.ledger {
		total += v
	}
	routed := e.router.routed
	e.gate <- struct{}{}
	return total, routed
}

// Reset skips the gate on purpose: the fast path races every worker.
func (e *engine) Reset() {
	e.ledger[0] = 0 // want `write to shard-confined field ledger in \(engine\)\.Reset outside any barrier phase without holding the gate token`
}

// Routed reads the router without the gate; callers only invoke it after
// Close has stopped every worker, a lifecycle contract outside the
// engine's model, so the access carries a reviewed suppression.
func (e *engine) Routed() int {
	//lint:allow shardconfine callers invoke Routed only after Close, when no phase can run
	return e.router.routed
}

// Close takes the gate for good and stops the workers.
func (e *engine) Close() {
	<-e.gate
	close(e.quit)
}
