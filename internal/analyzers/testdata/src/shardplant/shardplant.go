// Package shardplant is the regression companion to the shardconfine
// analyzer: a reduced sharded tick path with a cross-shard counter write
// hidden on a spill branch that no small-n schedule takes. The compiled
// mirror of this package passes `go test -race` — the branch stays cold at
// test sizes — while the analyzer reports the write on every schedule.
package shardplant

import "sync/atomic"

// spillAt is sized so the spill branch only runs after ~a million bumps of
// one slot: far beyond anything a race-enabled test reaches.
const spillAt = 1 << 20

type plant struct {
	gate   chan struct{}
	work   chan int
	done   chan struct{}
	quit   chan struct{}
	steal  atomic.Int64
	shards int
	counts []int //vet:confined shard
}

// NewPlant builds the engine and starts its workers.
func NewPlant(shards int) *plant {
	p := &plant{
		gate:   make(chan struct{}, 1),
		work:   make(chan int),
		done:   make(chan struct{}),
		quit:   make(chan struct{}),
		shards: shards,
	}
	p.counts = make([]int, shards)
	for i := 0; i < shards; i++ {
		go p.worker()
	}
	p.gate <- struct{}{}
	return p
}

// worker drains the steal counter each phase. The spill branch folds an
// overflowing slot into slot zero — which belongs to whichever worker
// stole index zero, not to this one.
func (p *plant) worker() {
	for {
		select {
		case inc := <-p.work:
			for {
				k := int(p.steal.Add(1)) - 1
				if k >= p.shards {
					break
				}
				p.counts[k] += inc
				if p.counts[k] >= spillAt {
					p.counts[0]++ // want `write to shard-confined field counts in \(plant\)\.worker inside a barrier phase but not provably at the owning worker's shard index`
				}
			}
			p.done <- struct{}{}
		case <-p.quit:
			return
		}
	}
}

// Tick runs one phase under the gate.
func (p *plant) Tick() {
	<-p.gate
	p.steal.Store(0)
	for i := 0; i < p.shards; i++ {
		p.work <- 1
	}
	for i := 0; i < p.shards; i++ {
		<-p.done
	}
	p.gate <- struct{}{}
}

// Total reads the confined state under the gate token.
func (p *plant) Total() int {
	<-p.gate
	total := 0
	for _, v := range p.counts {
		total += v
	}
	p.gate <- struct{}{}
	return total
}

// Close takes the gate for good and stops the workers.
func (p *plant) Close() {
	<-p.gate
	close(p.quit)
}
