// Package sharedguard exercises the happens-before engine's access-pair
// classification: one representative of every proof path that silences a
// conflicting pair — mutex exclusion, the spawn edge, the WaitGroup join
// edge, region disjointness, caller-private value storage — plus the pair
// no proof covers and a reviewed suppression.
package sharedguard

import "sync"

// srv models one substrate instance: a mutex-guarded counter, state ordered
// by the spawn and join edges, and one field with no synchronization story.
type srv struct {
	mu      sync.Mutex
	guarded int
	ordered int
	joined  int
	racy    int
	allowed int
}

// loop is the worker goroutine body: its guarded bump is excluded by mu,
// its ordered read happens after the pre-spawn write, and its racy bump is
// the real finding.
func (s *srv) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	s.mu.Lock()
	s.guarded++
	s.mu.Unlock()
	_ = s.ordered
	s.racy++ // want `unsynchronized write to racy in \(srv\)\.loop: conflicts with the write in Run at sharedguard/sharedguard\.go:\d+`
}

// Run is an external entry point. The write to ordered precedes the spawn
// (goroutine-creation edge), the guarded bump holds mu on both sides, the
// joined read follows wg.Wait() (join edge) — and the racy bump after the
// spawn has no ordering, no lock, and no confinement argument.
func Run(s *srv) {
	s.ordered = 1
	var wg sync.WaitGroup
	wg.Add(2)
	go s.loop(&wg)
	go func() {
		s.joined++
		wg.Done()
	}()
	s.mu.Lock()
	s.guarded++
	s.mu.Unlock()
	s.racy++
	wg.Wait()
	_ = s.joined
}

// stats is storage embedded by value in two unrelated owners, so the field
// object is one but the regions differ.
type stats struct{ hits int }

type alpha struct{ st stats }

type beta struct{ st stats }

// Mix bumps the same field object through disjoint regions: alpha storage
// and beta storage cannot overlap, so the concurrent pair is not a race
// even under instance-insensitive field keying.
func Mix(a *alpha, b *beta) {
	go func() {
		a.st.hits++
	}()
	b.st.hits++
}

// Tally works on a caller-private value: the struct lives in a local whose
// address is never taken, so its accesses can never be the storage Mix's
// goroutine touches.
func Tally(n int) int {
	var acc stats
	for i := 0; i < n; i++ {
		acc.hits++
	}
	return acc.hits
}

// Dump races Run's protocol on purpose: callers only invoke Dump after the
// workers have quiesced, an external contract the engine cannot see, so
// the pair carries a reviewed suppression instead of a fix.
func Dump(s *srv) {
	go func() {
		//lint:allow sharedguard Dump only runs after the workers have quiesced (protocol outside the model)
		s.allowed++
	}()
	s.allowed++
}
