// Package substrate exercises the substrate analyzer: execution backends
// are constructed only through the runtime.New factory, never by calling a
// concrete constructor directly. In fixtures, package-level functions named
// NewCluster/NewSharded stand in for the runtime constructors.
package substrate

// cluster and sharded mimic the two concrete backends.
type cluster struct{ n int }
type sharded struct{ n int }

// NewCluster and NewSharded mimic runtime's concrete constructors.
func NewCluster(n int) (*cluster, error) { return &cluster{n: n}, nil }
func NewSharded(n int) (*sharded, error) { return &sharded{n: n}, nil }

// New mimics the factory: the one place allowed to pick a backend. The
// fixture package plays the role of an outside caller, so even the factory
// body is flagged here — in the real tree the factory lives inside
// internal/runtime, which is exempt.
func New(kind string, n int) (any, error) {
	switch kind {
	case "sharded":
		return NewSharded(n) // want `substrate\.NewSharded constructs a concrete substrate directly`
	default:
		return NewCluster(n) // want `substrate\.NewCluster constructs a concrete substrate directly`
	}
}

// useFactory builds through the factory: clean.
func useFactory() (any, error) {
	return New("cluster", 10)
}

// direct calls a concrete constructor from harness code: the exact shape
// the analyzer exists to reject.
func direct() (*cluster, error) {
	return NewCluster(10) // want `substrate\.NewCluster constructs a concrete substrate directly`
}

// directSharded is the sharded twin.
func directSharded() (*sharded, error) {
	return NewSharded(100000) // want `substrate\.NewSharded constructs a concrete substrate directly`
}

// allowed carries an explicit exemption: a migration shim may keep a direct
// construction alive for one release with a recorded reason.
func allowed() (*cluster, error) {
	return NewCluster(10) //lint:allow substrate migration shim, removed with the legacy API
}

// newClusterMethod has the constructor name but a receiver: methods are not
// package-level constructors and are not flagged.
type builder struct{}

func (builder) NewCluster(n int) *cluster { return &cluster{n: n} }

func viaMethod() *cluster {
	var b builder
	return b.NewCluster(10)
}

// unrelated constructors stay clean: only the two concrete substrate
// constructors are monitored.
type thing struct{}

func NewThing() *thing { return &thing{} }

func makeThing() *thing { return NewThing() }
