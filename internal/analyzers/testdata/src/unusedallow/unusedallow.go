// Package unusedallow exercises the -unusedallow sfvet mode: one directive
// that still suppresses a live diagnostic (the banned math/rand import) and
// one that suppresses nothing — the stale escape hatch the mode reports.
package unusedallow

import (
	"math/rand" //lint:allow detrand fixture exercises a directive that is genuinely used
)

// draw keeps the banned import referenced.
func draw() int { return rand.Int() }

// quiet once held a time.Now call; the directive outlived the code it
// excused and now suppresses nothing.
//
//lint:allow detrand stale: the wall-clock read this excused is gone
func quiet() int { return 3 }
