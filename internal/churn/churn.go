// Package churn implements the join/leave workloads of Section 6.5: the
// decay of a departed node's id instances (Lemmas 6.9-6.10, Figure 6.4) and
// the integration of a newly joined node (Lemmas 6.11-6.13, Corollary 6.14).
package churn

import (
	"fmt"

	"sendforget/internal/engine"
	"sendforget/internal/peer"
)

// DecayTrace records the fraction of a departed node's id instances that
// remain in the system after each round since the departure.
type DecayTrace struct {
	// Initial is the instance count at the moment of departure.
	Initial int
	// Remaining[i] is the fraction of Initial still present after i rounds
	// (Remaining[0] == 1 when Initial > 0).
	Remaining []float64
}

// TrackLeaverDecay removes node u from a running system (assumed to be in
// steady state) and runs the engine for rounds rounds, recording the decay
// of u's id instances. Because u never initiates again, no new instances of
// its id are created and the trace is exactly the quantity that Lemma 6.10
// bounds from above by (1 - (1-l-delta)dL/s^2)^i.
func TrackLeaverDecay(e *engine.Engine, u peer.ID, rounds int) (*DecayTrace, error) {
	if rounds < 0 {
		return nil, fmt.Errorf("churn: negative rounds %d", rounds)
	}
	if err := e.Leave(u); err != nil {
		return nil, err
	}
	initial := e.Snapshot().IDInstances(u)
	trace := &DecayTrace{Initial: initial, Remaining: make([]float64, rounds+1)}
	if initial == 0 {
		return trace, nil
	}
	trace.Remaining[0] = 1
	for i := 1; i <= rounds; i++ {
		e.Round()
		trace.Remaining[i] = float64(e.Snapshot().IDInstances(u)) / float64(initial)
	}
	return trace, nil
}

// HalfLife returns the first round at which the remaining fraction is at
// most 1/2, or -1 if it never falls that far within the trace.
func (t *DecayTrace) HalfLife() int {
	for i, f := range t.Remaining {
		if f <= 0.5 {
			return i
		}
	}
	return -1
}

// JoinTrace records a joiner's integration into the system.
type JoinTrace struct {
	// Indegree[i] is the joiner's indegree after i rounds since joining
	// (instances of its id in other views).
	Indegree []int
	// Outdegree[i] is the joiner's outdegree after i rounds.
	Outdegree []int
}

// TrackJoinerIntegration joins node u (which must currently be departed)
// with the given seed ids and runs the engine for rounds rounds, recording
// u's degrees after each round. Per Section 6.5 the joiner starts with
// outdegree >= dL and indegree 0.
func TrackJoinerIntegration(e *engine.Engine, u peer.ID, seeds []peer.ID, rounds int) (*JoinTrace, error) {
	if rounds < 0 {
		return nil, fmt.Errorf("churn: negative rounds %d", rounds)
	}
	if err := e.Join(u, seeds); err != nil {
		return nil, err
	}
	trace := &JoinTrace{
		Indegree:  make([]int, rounds+1),
		Outdegree: make([]int, rounds+1),
	}
	record := func(i int) {
		g := e.Snapshot()
		trace.Indegree[i] = g.Indegree(u)
		trace.Outdegree[i] = g.Outdegree(u)
	}
	record(0)
	for i := 1; i <= rounds; i++ {
		e.Round()
		record(i)
	}
	return trace, nil
}

// RoundsToIndegree returns the first round at which the joiner's indegree
// reached target, or -1 if it never did within the trace.
func (t *JoinTrace) RoundsToIndegree(target int) int {
	for i, d := range t.Indegree {
		if d >= target {
			return i
		}
	}
	return -1
}
