package churn

import (
	"testing"

	"sendforget/internal/analysis"
	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

func steadyEngine(t *testing.T, n int, l float64, seed int64) *engine.Engine {
	t.Helper()
	p, err := sendforget.New(sendforget.Config{N: n, S: 12, DL: 4, InitDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(p, loss.MustUniform(l), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(50) // warm into steady state
	return e
}

func TestTrackLeaverDecay(t *testing.T) {
	e := steadyEngine(t, 60, 0.01, 1)
	trace, err := TrackLeaverDecay(e, 7, 120)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Initial <= 0 {
		t.Fatalf("leaver had no id instances at departure")
	}
	if trace.Remaining[0] != 1 {
		t.Errorf("Remaining[0] = %v, want 1", trace.Remaining[0])
	}
	// Decay must be substantial and must respect the Lemma 6.10 bound in
	// expectation. With dL=4, s=12, per-round retention bound is
	// 1 - 0.97*4/144 ~ 0.973: after 120 rounds bound ~ 3.6%.
	bound, err := analysis.SurvivalBound(0.01, 0.02, 4, 12, 120)
	if err != nil {
		t.Fatal(err)
	}
	final := trace.Remaining[120]
	if final > bound[120]+0.15 {
		t.Errorf("remaining %v far above Lemma 6.10 bound %v", final, bound[120])
	}
	if hl := trace.HalfLife(); hl <= 0 {
		t.Errorf("HalfLife = %d, want positive", hl)
	}
}

func TestTrackLeaverDecayValidation(t *testing.T) {
	e := steadyEngine(t, 20, 0, 2)
	if _, err := TrackLeaverDecay(e, 3, -1); err == nil {
		t.Error("accepted negative rounds")
	}
}

func TestTrackLeaverDecayNoInstances(t *testing.T) {
	e := steadyEngine(t, 20, 0, 3)
	// Remove the node twice: second departure has no instances... instead,
	// remove a node, let its id decay fully, then track a fresh "leave" of
	// an already-gone node.
	if err := e.Leave(5); err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	trace, err := TrackLeaverDecay(e, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Initial != 0 {
		t.Skipf("id not fully decayed (%d left); skip degenerate branch", trace.Initial)
	}
	if trace.HalfLife() != -1 && trace.Remaining[0] != 0 {
		t.Errorf("degenerate trace = %+v", trace)
	}
}

func TestTrackJoinerIntegration(t *testing.T) {
	e := steadyEngine(t, 60, 0.01, 4)
	if err := e.Leave(9); err != nil {
		t.Fatal(err)
	}
	e.Run(100) // flush the id
	trace, err := TrackJoinerIntegration(e, 9, []peer.ID{0, 1, 2, 3}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Indegree[0] != 0 {
		t.Errorf("joiner initial indegree = %d, want ~0", trace.Indegree[0])
	}
	if trace.Outdegree[0] != 4 {
		t.Errorf("joiner initial outdegree = %d, want 4 (dL seeds)", trace.Outdegree[0])
	}
	// Corollary 6.14 (s/dL = 3 here, so weaker): within ~s^2/dL rounds the
	// joiner must have acquired in-neighbors.
	if trace.Indegree[80] == 0 {
		t.Error("joiner acquired no in-neighbors in 80 rounds")
	}
	if r := trace.RoundsToIndegree(1); r <= 0 || r > 80 {
		t.Errorf("RoundsToIndegree(1) = %d", r)
	}
	if r := trace.RoundsToIndegree(10_000); r != -1 {
		t.Errorf("RoundsToIndegree(unreachable) = %d, want -1", r)
	}
}

func TestTrackJoinerValidation(t *testing.T) {
	e := steadyEngine(t, 20, 0, 5)
	if _, err := TrackJoinerIntegration(e, 3, []peer.ID{0, 1}, -1); err == nil {
		t.Error("accepted negative rounds")
	}
	// Joining an active node fails.
	if _, err := TrackJoinerIntegration(e, 3, []peer.ID{0, 1, 2, 4}, 5); err == nil {
		t.Error("accepted join of active node")
	}
}
