package churn

import (
	"fmt"

	"sendforget/internal/engine"
	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// WorkloadConfig parameterizes a sustained churn process — an extension
// beyond the paper, whose properties are stated for churn that eventually
// ceases. Each round, one join fires with probability JoinProb and one
// leave with probability LeaveProb (independent coin flips).
type WorkloadConfig struct {
	// JoinProb and LeaveProb are per-round event probabilities in [0, 1].
	JoinProb, LeaveProb float64
	// MinLive floors the live population: leaves are suppressed below it.
	MinLive int
	// MaxSeeds bounds how many ids a joiner copies from a live node's view
	// (0 = as many as the view offers). Per Section 5, a joiner copies
	// another node's view — which may include stale ids.
	MaxSeeds int
}

func (c WorkloadConfig) validate() error {
	if c.JoinProb < 0 || c.JoinProb > 1 || c.LeaveProb < 0 || c.LeaveProb > 1 {
		return fmt.Errorf("churn: event probabilities must be in [0,1]")
	}
	if c.MinLive < 2 {
		return fmt.Errorf("churn: MinLive must be at least 2, got %d", c.MinLive)
	}
	return nil
}

// WorkloadSample is one checkpoint of a churn run.
type WorkloadSample struct {
	Round          int
	Live           int
	LiveComponents int     // weak components among live nodes only
	MeanOutLive    float64 // mean outdegree of live nodes
	StaleFraction  float64 // fraction of live entries pointing at departed ids
}

// WorkloadStats summarizes a churn run.
type WorkloadStats struct {
	Joins, Leaves, FailedJoins int
	Samples                    []WorkloadSample
}

// RunWorkload drives the engine for the given number of rounds while
// injecting churn events, checkpointing every sampleEvery rounds. The
// protocol must support churn (the engine's Join/Leave).
func RunWorkload(e *engine.Engine, cfg WorkloadConfig, rounds, sampleEvery int, r *rng.RNG) (*WorkloadStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rounds < 0 || sampleEvery <= 0 {
		return nil, fmt.Errorf("churn: invalid rounds=%d sampleEvery=%d", rounds, sampleEvery)
	}
	n := e.Protocol().N()
	live := make(map[peer.ID]bool, n)
	var liveList []peer.ID
	for u := 0; u < n; u++ {
		id := peer.ID(u)
		if e.Protocol().View(id) != nil {
			live[id] = true
			liveList = append(liveList, id)
		}
	}
	stats := &WorkloadStats{}
	refresh := func() {
		liveList = liveList[:0]
		for id := range live {
			liveList = append(liveList, id)
		}
		peer.Sort(liveList)
	}
	sample := func(round int) {
		g := e.Snapshot()
		deg := 0
		for _, u := range liveList {
			deg += g.Outdegree(u)
		}
		meanOut := 0.0
		staleFrac := 0.0
		if len(liveList) > 0 && deg > 0 {
			meanOut = float64(deg) / float64(len(liveList))
			staleFrac = float64(g.StaleEdges(liveList)) / float64(deg)
		}
		stats.Samples = append(stats.Samples, WorkloadSample{
			Round:          round,
			Live:           len(liveList),
			LiveComponents: g.InducedComponents(liveList),
			MeanOutLive:    meanOut,
			StaleFraction:  staleFrac,
		})
	}
	sample(0)
	for round := 1; round <= rounds; round++ {
		if r.Bernoulli(cfg.LeaveProb) && len(liveList) > cfg.MinLive {
			victim := liveList[r.Intn(len(liveList))]
			if err := e.Leave(victim); err != nil {
				return nil, err
			}
			delete(live, victim)
			refresh()
			stats.Leaves++
		}
		if r.Bernoulli(cfg.JoinProb) && len(liveList) < n {
			if joiner, ok := joinOne(e, live, liveList, cfg, r); ok {
				live[joiner] = true
				stats.Joins++
				refresh()
			} else {
				stats.FailedJoins++
			}
		}
		e.Round()
		if round%sampleEvery == 0 {
			sample(round)
		}
	}
	return stats, nil
}

// joinOne revives a departed id, seeding it from a live node's view (stale
// entries and all), padded with random live ids when the view is short.
func joinOne(e *engine.Engine, live map[peer.ID]bool, liveList []peer.ID, cfg WorkloadConfig, r *rng.RNG) (peer.ID, bool) {
	n := e.Protocol().N()
	var joiner peer.ID = -1
	// Pick a departed id uniformly (bounded scan from a random offset).
	off := r.Intn(n)
	for k := 0; k < n; k++ {
		id := peer.ID((off + k) % n)
		if !live[id] {
			joiner = id
			break
		}
	}
	if joiner < 0 {
		return 0, false
	}
	donor := liveList[r.Intn(len(liveList))]
	var seeds []peer.ID
	if v := e.Protocol().View(donor); v != nil {
		seeds = v.IDs()
	}
	seeds = append(seeds, donor)
	if cfg.MaxSeeds > 0 && len(seeds) > cfg.MaxSeeds {
		seeds = seeds[:cfg.MaxSeeds]
	}
	// Pad with random live ids if the donor view was too short.
	for len(seeds) < 4 {
		seeds = append(seeds, liveList[r.Intn(len(liveList))])
	}
	if err := e.Join(joiner, seeds); err != nil {
		return 0, false
	}
	return joiner, true
}
