package churn

import (
	"testing"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

func TestWorkloadValidation(t *testing.T) {
	e := steadyEngine(t, 40, 0, 21)
	r := rng.New(1)
	if _, err := RunWorkload(e, WorkloadConfig{JoinProb: -0.1, MinLive: 5}, 10, 5, r); err == nil {
		t.Error("accepted negative probability")
	}
	if _, err := RunWorkload(e, WorkloadConfig{MinLive: 1}, 10, 5, r); err == nil {
		t.Error("accepted MinLive=1")
	}
	if _, err := RunWorkload(e, WorkloadConfig{MinLive: 5}, 10, 0, r); err == nil {
		t.Error("accepted sampleEvery=0")
	}
	if _, err := RunWorkload(e, WorkloadConfig{MinLive: 5}, -1, 5, r); err == nil {
		t.Error("accepted negative rounds")
	}
}

func TestWorkloadNoChurnIsStable(t *testing.T) {
	e := steadyEngine(t, 60, 0.02, 22)
	stats, err := RunWorkload(e, WorkloadConfig{MinLive: 10}, 100, 25, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins != 0 || stats.Leaves != 0 {
		t.Errorf("events fired with zero probabilities: %+v", stats)
	}
	for _, s := range stats.Samples {
		if s.Live != 60 {
			t.Errorf("round %d: live = %d, want 60", s.Round, s.Live)
		}
		if s.LiveComponents != 1 {
			t.Errorf("round %d: %d live components", s.Round, s.LiveComponents)
		}
	}
}

func TestWorkloadSustainedChurn(t *testing.T) {
	e := steadyEngine(t, 80, 0.02, 23)
	// Join bias keeps the population near capacity; leaves at 0.2/round
	// against a ~5%/round stale-decay rate keep staleness a clear minority.
	cfg := WorkloadConfig{JoinProb: 0.25, LeaveProb: 0.2, MinLive: 30}
	stats, err := RunWorkload(e, cfg, 300, 50, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins == 0 || stats.Leaves == 0 {
		t.Fatalf("churn did not fire: %+v joins/leaves", stats)
	}
	last := stats.Samples[len(stats.Samples)-1]
	if last.Live < 20 || last.Live > 80 {
		t.Errorf("live population %d out of range", last.Live)
	}
	// The overlay must stay connected among live nodes under moderate
	// churn — the protocol's core promise.
	for _, s := range stats.Samples {
		if s.LiveComponents > 2 {
			t.Errorf("round %d: %d live components (fragmented)", s.Round, s.LiveComponents)
		}
		if s.StaleFraction < 0 || s.StaleFraction > 1 {
			t.Errorf("round %d: stale fraction %v out of range", s.Round, s.StaleFraction)
		}
	}
	// Stale ids exist under churn but must remain a minority (they decay
	// per Lemma 6.10 while churn keeps injecting them).
	if last.StaleFraction > 0.5 {
		t.Errorf("stale fraction %v majority at steady churn", last.StaleFraction)
	}
	if last.MeanOutLive <= 0 {
		t.Error("live nodes lost all their edges")
	}
}

func TestWorkloadLeaveFloor(t *testing.T) {
	e := steadyEngine(t, 30, 0, 24)
	cfg := WorkloadConfig{LeaveProb: 1, MinLive: 25}
	stats, err := RunWorkload(e, cfg, 50, 10, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	last := stats.Samples[len(stats.Samples)-1]
	if last.Live < 25 {
		t.Errorf("live population %d fell below MinLive 25", last.Live)
	}
	if stats.Leaves != 30-25 {
		t.Errorf("leaves = %d, want 5 (down to the floor)", stats.Leaves)
	}
}

func TestWorkloadJoinRevivesDeparted(t *testing.T) {
	e := steadyEngine(t, 30, 0, 25)
	// Empty some slots first.
	for _, u := range []peer.ID{3, 7, 11} {
		if err := e.Leave(u); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(30)
	cfg := WorkloadConfig{JoinProb: 1, MinLive: 5}
	stats, err := RunWorkload(e, cfg, 10, 5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins != 3 {
		t.Errorf("joins = %d, want 3 (universe refilled)", stats.Joins)
	}
	last := stats.Samples[len(stats.Samples)-1]
	if last.Live != 30 {
		t.Errorf("live = %d, want full 30", last.Live)
	}
}
