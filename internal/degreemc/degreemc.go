// Package degreemc implements the two-dimensional degree Markov chain of
// Section 6.2: the joint evolution of a single tagged node's outdegree d and
// indegree i under S&F with view size s, duplication threshold dL, and
// uniform loss rate l, for arbitrary n >> s.
//
// # States
//
// A state is (d, i) with d even and dL <= d <= s, i >= 0, and the sum degree
// d + 2i capped at SumCap (the paper uses 3s: "states with sum degrees close
// to 3s had negligible probabilities ... we consider sum degrees to be
// bounded by 3s, removing states with higher sum degrees from the MC and
// replacing edges leading to these states with self-loops").
//
// # Transition rates
//
// Exactly three kinds of global actions involve the tagged node u, and each
// occurs with probability Theta(1/n) per action, so the 1/n factor cancels
// from the balance equations and the chain can be built from O(1) *rates*
// and then uniformized. With the common factor 1/(s(s-1)) also dropped:
//
//   - u initiates an active action: rate d(d-1). The action duplicates iff
//     d = dL (Observation 5.1 keeps d >= dL). The message survives with
//     probability (1-l) and finds a non-full receiver with probability
//     (1-pFull), where the receiver is sampled proportionally to indegree
//     (a view entry points at a node with probability proportional to the
//     number of entries holding its id).
//   - u is the message target: its id occupied the first selected slot of
//     some sender x. Each of u's i in-edges lies in the view of a sender
//     whose outdegree is edge-size-biased; the per-edge rate is
//     E[d(x)-1 | edge] =: G (the second selected slot must be nonempty).
//     The sender duplicates with probability pDup, the edge-biased
//     probability that d(x) = dL given the action is active.
//   - u is the message payload: symmetric to the target case, rate i*G, with
//     the third-party receiver full with probability pFull.
//
// The resulting state changes (Figure 5.2 and Lemma 6.8):
//
//	initiator, no dup:  delivered&room -> (d-2, i+1); else (d-2, i)
//	initiator, dup:     delivered&room -> (d,   i+1); else self-loop
//	target,    no dup:  delivered&room -> (d+2, i-1); else (d, i-1)
//	target,    dup:     delivered&room -> (d+2, i  ); else self-loop
//	payload,   no dup:  delivered&room -> self;        else (d, i-1)
//	payload,   dup:     delivered&room -> (d, i+1);    else self-loop
//
// # Fixed point
//
// The mean-field quantities pFull, G, and pDup depend on the population
// degree distribution, which is what the chain computes — the circularity
// the paper resolves iteratively: "We therefore search the correct degree
// distributions iteratively, starting from an arbitrary one, computing the
// corresponding MC's stationary distribution and deriving from it the degree
// distributions, with which we start the next iteration."
package degreemc

import (
	"fmt"

	"sendforget/internal/markov"
)

// State is a (outdegree, indegree) pair of the tagged node.
type State struct {
	Out, In int
}

// SumDegree returns d + 2*i (Definition 6.1).
func (st State) SumDegree() int { return st.Out + 2*st.In }

// Params parameterizes the degree MC.
type Params struct {
	// S is the view size (even, >= 6).
	S int
	// DL is the duplication threshold (even, 0 <= DL <= S-6).
	DL int
	// Loss is the uniform message loss rate l in [0, 1).
	Loss float64
	// SumCap bounds d + 2i; 0 selects the paper's 3*S.
	SumCap int
}

func (p Params) validate() error {
	if p.S < 6 || p.S%2 != 0 {
		return fmt.Errorf("degreemc: s must be even >= 6, got %d", p.S)
	}
	if p.DL < 0 || p.DL > p.S-6 || p.DL%2 != 0 {
		return fmt.Errorf("degreemc: dL must be even in [0, s-6], got %d", p.DL)
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("degreemc: loss must be in [0, 1), got %v", p.Loss)
	}
	if p.SumCap != 0 && p.SumCap < p.S {
		return fmt.Errorf("degreemc: sum cap %d below s=%d", p.SumCap, p.S)
	}
	return nil
}

func (p Params) sumCap() int {
	if p.SumCap == 0 {
		return 3 * p.S
	}
	return p.SumCap
}

// Space is the enumerated state space with index lookup.
type Space struct {
	par    Params
	states []State
	index  map[State]int
}

// NewSpace enumerates all valid states for par.
func NewSpace(par Params) (*Space, error) {
	if err := par.validate(); err != nil {
		return nil, err
	}
	sp := &Space{par: par, index: make(map[State]int)}
	cap := par.sumCap()
	for d := par.DL; d <= par.S; d += 2 {
		for i := 0; d+2*i <= cap; i++ {
			st := State{Out: d, In: i}
			sp.index[st] = len(sp.states)
			sp.states = append(sp.states, st)
		}
	}
	if len(sp.states) == 0 {
		return nil, fmt.Errorf("degreemc: empty state space for %+v", par)
	}
	return sp, nil
}

// Len returns the number of states.
func (sp *Space) Len() int { return len(sp.states) }

// States returns the state list (do not mutate).
func (sp *Space) States() []State { return sp.states }

// Index returns the index of st and whether it exists.
func (sp *Space) Index(st State) (int, bool) {
	i, ok := sp.index[st]
	return i, ok
}

// Field carries the mean-field quantities derived from the population
// distribution.
type Field struct {
	// PFull is the probability that a node sampled proportionally to
	// indegree (i.e. the node behind a random view entry) has a full view.
	PFull float64
	// Gap is G = E[d(x)-1] for a sender x sampled by edge size bias,
	// conditioned on holding the selected entry.
	Gap float64
	// PDup is the probability that such a sender's action duplicates
	// (d(x) = dL), weighted by action activity.
	PDup float64
}

// DeriveField computes the mean-field quantities from a population
// distribution rho over sp's states.
func (sp *Space) DeriveField(rho []float64) (Field, error) {
	if len(rho) != sp.Len() {
		return Field{}, fmt.Errorf("degreemc: rho length %d != states %d", len(rho), sp.Len())
	}
	var (
		edgeW, gapW, dupW float64 // sums over rho*out, rho*out*(out-1), same restricted to out=dL
		inW, inFullW      float64 // sums over rho*in, restricted to out=s
	)
	for k, st := range sp.states {
		p := rho[k]
		if p == 0 {
			continue
		}
		out := float64(st.Out)
		in := float64(st.In)
		edgeW += p * out
		gapW += p * out * (out - 1)
		if st.Out == sp.par.DL {
			dupW += p * out * (out - 1)
		}
		inW += p * in
		if st.Out == sp.par.S {
			inFullW += p * in
		}
	}
	f := Field{}
	if edgeW > 0 {
		f.Gap = gapW / edgeW
	}
	if gapW > 0 {
		f.PDup = dupW / gapW
	}
	if inW > 0 {
		f.PFull = inFullW / inW
	}
	return f, nil
}

// Kind classifies a transition for Figure 6.2: Atomic transitions occur with
// atomic actions (no loss, duplication, or deletion — solid lines); the rest
// occur due to loss, duplications, or deletions (dashed lines).
type Kind uint8

// Transition kinds.
const (
	Atomic Kind = iota
	NonAtomic
)

// Transition is one positive-rate edge of the chain, exposed for Figure 6.2
// and for white-box tests.
type Transition struct {
	From, To State
	Rate     float64
	Kind     Kind
}

// transitions enumerates the state-changing transitions out of st under
// field f (self-loops omitted; rates carry the common 1/(s(s-1)) dropped).
func (sp *Space) transitions(st State, f Field, emit func(to State, rate float64, kind Kind)) {
	par := sp.par
	cap := par.sumCap()
	d, i := st.Out, st.In
	loss := par.Loss
	// clip redirects transitions exceeding the sum cap to self-loops by
	// dropping them (CloseRows restores the mass as self-loop probability).
	clip := func(to State, rate float64, kind Kind) {
		if rate <= 0 {
			return
		}
		if to.SumDegree() > cap {
			return
		}
		if to == st {
			return
		}
		emit(to, rate, kind)
	}

	// Tagged node initiates an active action.
	if d >= 2 {
		w := float64(d * (d - 1))
		pOK := (1 - loss) * (1 - f.PFull) // delivered to non-full receiver
		if d == par.DL {
			// Duplication: entries kept; delivery creates a new in-edge.
			clip(State{d, i + 1}, w*pOK, NonAtomic)
		} else {
			clip(State{d - 2, i + 1}, w*pOK, Atomic)
			clip(State{d - 2, i}, w*(1-pOK), NonAtomic)
		}
	}

	// Tagged node is the target or the payload of another node's action.
	if i >= 1 {
		w := float64(i) * f.Gap

		// Target: u receives [x, w] (or the message is lost).
		if d < par.S {
			clip(State{d + 2, i - 1}, w*(1-f.PDup)*(1-loss), Atomic)
			clip(State{d, i - 1}, w*(1-f.PDup)*loss, NonAtomic)
			clip(State{d + 2, i}, w*f.PDup*(1-loss), NonAtomic)
		} else {
			// Full target: delivery deletes the ids; either way the
			// non-duplicating sender cleared its entry for u.
			clip(State{d, i - 1}, w*(1-f.PDup), NonAtomic)
		}

		// Payload: an instance of u's id moves between third parties.
		pKeep := (1 - loss) * (1 - f.PFull)
		clip(State{d, i - 1}, w*(1-f.PDup)*(1-pKeep), NonAtomic)
		clip(State{d, i + 1}, w*f.PDup*pKeep, NonAtomic)
	}
}

// Transitions returns all state-changing transitions under field f.
func (sp *Space) Transitions(f Field) []Transition {
	var out []Transition
	for _, st := range sp.states {
		from := st
		sp.transitions(st, f, func(to State, rate float64, kind Kind) {
			out = append(out, Transition{From: from, To: to, Rate: rate, Kind: kind})
		})
	}
	return out
}

// uniformizationHeadroom keeps every row of the uniformized chain with a
// positive self-loop, which guarantees aperiodicity and damps power
// iteration oscillation.
const uniformizationHeadroom = 1.1

// BuildChain uniformizes the rates under field f into a stochastic chain
// over sp's states.
func (sp *Space) BuildChain(f Field) (*markov.Sparse, error) {
	n := sp.Len()
	rates := make([][]struct {
		to   int
		rate float64
	}, n)
	maxRow := 0.0
	for k, st := range sp.states {
		total := 0.0
		sp.transitions(st, f, func(to State, rate float64, _ Kind) {
			idx, ok := sp.index[to]
			if !ok {
				return
			}
			rates[k] = append(rates[k], struct {
				to   int
				rate float64
			}{idx, rate})
			total += rate
		})
		if total > maxRow {
			maxRow = total
		}
	}
	if maxRow == 0 {
		return nil, fmt.Errorf("degreemc: chain has no transitions")
	}
	w := maxRow * uniformizationHeadroom
	chain := markov.NewSparse(n)
	for k, row := range rates {
		for _, e := range row {
			chain.Add(k, e.to, e.rate/w)
		}
	}
	if err := chain.CloseRows(); err != nil {
		return nil, err
	}
	return chain, nil
}
