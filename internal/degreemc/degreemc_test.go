package degreemc

import (
	"math"
	"testing"

	"sendforget/internal/analysis"
	"sendforget/internal/markov"
	"sendforget/internal/stats"
)

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name string
		par  Params
		ok   bool
	}{
		{"valid", Params{S: 12, DL: 2}, true},
		{"paper fig 6.3", Params{S: 40, DL: 18, Loss: 0.05}, true},
		{"odd s", Params{S: 13, DL: 2}, false},
		{"s too small", Params{S: 4, DL: 0}, false},
		{"dL odd", Params{S: 12, DL: 3}, false},
		{"dL too big", Params{S: 12, DL: 8}, false},
		{"loss 1", Params{S: 12, DL: 2, Loss: 1}, false},
		{"negative loss", Params{S: 12, DL: 2, Loss: -0.1}, false},
		{"cap below s", Params{S: 12, DL: 2, SumCap: 6}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSpace(tt.par)
			if (err == nil) != tt.ok {
				t.Errorf("NewSpace(%+v) error = %v, want ok=%v", tt.par, err, tt.ok)
			}
		})
	}
}

func TestSpaceEnumeration(t *testing.T) {
	sp, err := NewSpace(Params{S: 8, DL: 2, SumCap: 12})
	if err != nil {
		t.Fatal(err)
	}
	// d in {2,4,6,8}; i in 0..(12-d)/2: 6+5+4+3 = 18 states.
	if sp.Len() != 18 {
		t.Fatalf("Len = %d, want 18", sp.Len())
	}
	for _, st := range sp.States() {
		if st.Out%2 != 0 || st.Out < 2 || st.Out > 8 {
			t.Errorf("invalid outdegree in state %+v", st)
		}
		if st.SumDegree() > 12 || st.In < 0 {
			t.Errorf("invalid state %+v", st)
		}
		idx, ok := sp.Index(st)
		if !ok || sp.States()[idx] != st {
			t.Errorf("index roundtrip broken for %+v", st)
		}
	}
	if _, ok := sp.Index(State{Out: 3, In: 0}); ok {
		t.Error("odd state indexed")
	}
	if _, ok := sp.Index(State{Out: 2, In: 99}); ok {
		t.Error("over-cap state indexed")
	}
}

func TestDeriveField(t *testing.T) {
	sp, err := NewSpace(Params{S: 8, DL: 2, SumCap: 24})
	if err != nil {
		t.Fatal(err)
	}
	rho := make([]float64, sp.Len())
	// Point mass at (4, 2): senders all have outdegree 4, nobody full.
	k, ok := sp.Index(State{Out: 4, In: 2})
	if !ok {
		t.Fatal("state missing")
	}
	rho[k] = 1
	f, err := sp.DeriveField(rho)
	if err != nil {
		t.Fatal(err)
	}
	if f.Gap != 3 {
		t.Errorf("Gap = %v, want 3 (= d-1)", f.Gap)
	}
	if f.PDup != 0 {
		t.Errorf("PDup = %v, want 0 (out != dL)", f.PDup)
	}
	if f.PFull != 0 {
		t.Errorf("PFull = %v, want 0", f.PFull)
	}
	// Point mass at (8, 1): everyone full.
	rho = make([]float64, sp.Len())
	k, _ = sp.Index(State{Out: 8, In: 1})
	rho[k] = 1
	f, err = sp.DeriveField(rho)
	if err != nil {
		t.Fatal(err)
	}
	if f.PFull != 1 {
		t.Errorf("PFull = %v, want 1", f.PFull)
	}
	// Point mass at threshold (2, 1): all senders duplicate.
	rho = make([]float64, sp.Len())
	k, _ = sp.Index(State{Out: 2, In: 1})
	rho[k] = 1
	f, err = sp.DeriveField(rho)
	if err != nil {
		t.Fatal(err)
	}
	if f.PDup != 1 {
		t.Errorf("PDup = %v, want 1 (out == dL)", f.PDup)
	}
	if _, err := sp.DeriveField(rho[:3]); err == nil {
		t.Error("accepted wrong-length rho")
	}
}

func TestChainIsStochasticAndErgodic(t *testing.T) {
	sp, err := NewSpace(Params{S: 8, DL: 2, Loss: 0.05, SumCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	f := Field{PFull: 0.05, Gap: 4, PDup: 0.1}
	chain, err := sp.BuildChain(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := markov.Validate(chain); err != nil {
		t.Fatal(err)
	}
	if !markov.IsErgodic(chain) {
		t.Error("degree chain not ergodic under positive loss and mixing field")
	}
}

func TestTransitionsSumDegreeOnManifold(t *testing.T) {
	// With loss=0, dL=0, and PFull=0, transitions out of states on the
	// Lemma 6.2 manifold (sum degree <= s, so no view can be full while
	// holding in-edges) preserve the sum degree: initiator (d-2, i+1),
	// target (d+2, i-1), payload self-loops. States off the manifold (a
	// full view with in-edges) legitimately shed in-edges via deletions.
	sp, err := NewSpace(Params{S: 12, DL: 0, Loss: 0})
	if err != nil {
		t.Fatal(err)
	}
	f := Field{PFull: 0, Gap: 4, PDup: 0}
	for _, tr := range sp.Transitions(f) {
		if tr.From.SumDegree() <= 12 && tr.From.SumDegree() != tr.To.SumDegree() {
			t.Fatalf("on-manifold lossless transition %+v -> %+v changes sum degree", tr.From, tr.To)
		}
		if tr.Kind == Atomic && tr.From.SumDegree() != tr.To.SumDegree() {
			t.Fatalf("atomic transition %+v -> %+v changes sum degree", tr.From, tr.To)
		}
	}
}

func TestTransitionsKindsUnderLoss(t *testing.T) {
	sp, err := NewSpace(Params{S: 12, DL: 2, Loss: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	f := Field{PFull: 0.05, Gap: 4, PDup: 0.1}
	var atomic, nonAtomic int
	for _, tr := range sp.Transitions(f) {
		switch tr.Kind {
		case Atomic:
			atomic++
			// Atomic transitions preserve the sum degree.
			if tr.From.SumDegree() != tr.To.SumDegree() {
				t.Fatalf("atomic transition %+v -> %+v changes sum degree", tr.From, tr.To)
			}
		case NonAtomic:
			nonAtomic++
		}
		if tr.Rate <= 0 {
			t.Fatalf("non-positive rate in %+v", tr)
		}
	}
	if atomic == 0 || nonAtomic == 0 {
		t.Errorf("expected both kinds: atomic=%d nonAtomic=%d", atomic, nonAtomic)
	}
}

func TestSolveLemma63MeanOnManifold(t *testing.T) {
	// No loss, dL=0, initial sum degree dm on the manifold: the stationary
	// means must be dm/3 (Lemma 6.3). Use a small dm for speed.
	par := Params{S: 24, DL: 0}
	res, err := Solve(par, SolveOptions{InitOut: 8, InitIn: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanOut()-8) > 0.15 {
		t.Errorf("mean outdegree = %v, want dm/3 = 8", res.MeanOut())
	}
	if math.Abs(res.MeanIn()-8) > 0.15 {
		t.Errorf("mean indegree = %v, want dm/3 = 8", res.MeanIn())
	}
	// The stationary distribution must stay on the ds = 24 manifold.
	offManifold := 0.0
	for k, st := range res.Space.States() {
		if st.SumDegree() != 24 {
			offManifold += res.Pi[k]
		}
	}
	if offManifold > 1e-6 {
		t.Errorf("probability off the sum-degree manifold: %v", offManifold)
	}
	if res.DupProb != 0 {
		t.Errorf("DupProb = %v on lossless dL=0 manifold", res.DupProb)
	}
}

func TestSolveMatchesAnalyticalApproximation(t *testing.T) {
	// Figure 6.1 (scaled down for test speed): the degree-MC outdegree
	// distribution should be close in shape to the Eq. 6.1 approximation.
	par := Params{S: 24, DL: 0}
	res, err := Solve(par, SolveOptions{InitOut: 8, InitIn: 8})
	if err != nil {
		t.Fatal(err)
	}
	anal, err := analysis.OutdegreeDist(24)
	if err != nil {
		t.Fatal(err)
	}
	got := res.OutDist
	if tv := stats.TotalVariation(got, anal); tv > 0.12 {
		t.Errorf("TV(markov, analytical) = %v, want <= 0.12", tv)
	}
	// Means agree tightly.
	if math.Abs(stats.DistMean(got)-stats.DistMean(anal)) > 0.3 {
		t.Errorf("means differ: markov %v analytical %v", stats.DistMean(got), stats.DistMean(anal))
	}
}

func TestSolveLemma64OutdegreeDecreasesWithLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("degree MC solve at s=16 in short mode")
	}
	par0 := Params{S: 16, DL: 6}
	par5 := Params{S: 16, DL: 6, Loss: 0.05}
	par10 := Params{S: 16, DL: 6, Loss: 0.10}
	r0, err := Solve(par0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Solve(par5, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Solve(par10, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(r0.MeanOut() > r5.MeanOut() && r5.MeanOut() > r10.MeanOut()) {
		t.Errorf("expected outdegree decreasing in loss: %v, %v, %v",
			r0.MeanOut(), r5.MeanOut(), r10.MeanOut())
	}
	// Outdegree stays strictly above dL even under heavy loss (Section
	// 6.4: "it stays significantly above dL").
	if r10.MeanOut() <= float64(par10.DL)+0.5 {
		t.Errorf("mean outdegree %v collapsed to dL=%d", r10.MeanOut(), par10.DL)
	}
}

func TestSolveLemma67DuplicationBracket(t *testing.T) {
	if testing.Short() {
		t.Skip("degree MC solve in short mode")
	}
	// In steady state: dup = l + del (Lemma 6.6), hence l <= dup and, with
	// delta the lossless duplication probability, dup <= l + delta for
	// the thresholds chosen by the Section 6.3 rule. Use a configuration
	// with comfortable slack.
	l := 0.05
	res, err := Solve(Params{S: 16, DL: 6, Loss: l}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DupProb < l-1e-3 {
		t.Errorf("DupProb %v below loss rate %v (violates Lemma 6.6)", res.DupProb, l)
	}
	// Lemma 6.6 exactly: dup = l*(stay) + del ... verify the balance
	// dup ~ l + del within modeling tolerance.
	if math.Abs(res.DupProb-(l+res.DelProb)) > 0.02 {
		t.Errorf("dup %v vs l+del %v: Lemma 6.6 balance violated", res.DupProb, l+res.DelProb)
	}
}

func TestSolveRejectsBadInit(t *testing.T) {
	if _, err := Solve(Params{S: 12, DL: 2}, SolveOptions{InitOut: 3, InitIn: 1}); err == nil {
		t.Error("accepted odd initial outdegree")
	}
	if _, err := Solve(Params{S: 12, DL: 2}, SolveOptions{InitOut: 2, InitIn: 500}); err == nil {
		t.Error("accepted initial state above cap")
	}
}

func TestTransientJoinerIntegration(t *testing.T) {
	// A joiner starts at (dL, 0) in a steady-state environment (Section
	// 6.5). Its expected outdegree and indegree must rise monotonically
	// (within numerical wiggle) toward the steady-state means.
	par := Params{S: 16, DL: 6, Loss: 0.02}
	res, err := Solve(par, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	traj, err := res.Space.Transient(res.Field, State{Out: par.DL, In: 0}, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 21 {
		t.Fatalf("trajectory has %d points, want 21", len(traj))
	}
	if traj[0].MeanOut != float64(par.DL) || traj[0].MeanIn != 0 {
		t.Fatalf("start point = %+v, want (dL, 0)", traj[0])
	}
	last := traj[len(traj)-1]
	if last.MeanIn < 0.7*res.MeanIn() {
		t.Errorf("indegree after 200 rounds = %v, want near steady %v", last.MeanIn, res.MeanIn())
	}
	if last.MeanOut < 0.8*res.MeanOut() {
		t.Errorf("outdegree after 200 rounds = %v, want near steady %v", last.MeanOut, res.MeanOut())
	}
	// Broad monotonicity: indegree never drops by more than noise.
	for i := 1; i < len(traj); i++ {
		if traj[i].MeanIn < traj[i-1].MeanIn-0.2 {
			t.Errorf("indegree dipped at %v: %v -> %v", traj[i].Round, traj[i-1].MeanIn, traj[i].MeanIn)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	sp, err := NewSpace(Params{S: 12, DL: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := Field{Gap: 4}
	if _, err := sp.Transient(f, State{Out: 2, In: 0}, -1, 5); err == nil {
		t.Error("accepted negative rounds")
	}
	if _, err := sp.Transient(f, State{Out: 2, In: 0}, 10, 0); err == nil {
		t.Error("accepted zero samples")
	}
	if _, err := sp.Transient(f, State{Out: 3, In: 0}, 10, 5); err == nil {
		t.Error("accepted invalid start state")
	}
}

func TestSumCapInsensitivity(t *testing.T) {
	// The paper: "We verified that the bound does not affect our results by
	// recomputing part of the results with higher bounds." Reproduce that
	// verification: the stationary marginals with the default 3s cap and a
	// 4s cap must agree.
	if testing.Short() {
		t.Skip("two solves in short mode")
	}
	par3 := Params{S: 16, DL: 6, Loss: 0.05}
	par4 := Params{S: 16, DL: 6, Loss: 0.05, SumCap: 4 * 16}
	r3, err := Solve(par3, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Solve(par4, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// At s=16 a little mass sits near the 3s boundary (the paper's s >= 40
	// pushes it further out); "does not affect our results" means the
	// marginals agree to well under a percent.
	if tv := stats.TotalVariation(r3.OutDist, r4.OutDist); tv > 0.01 {
		t.Errorf("outdegree dist sensitive to sum cap: TV %v", tv)
	}
	if tv := stats.TotalVariation(r3.InDist, r4.InDist); tv > 0.01 {
		t.Errorf("indegree dist sensitive to sum cap: TV %v", tv)
	}
	if math.Abs(r3.MeanIn()-r4.MeanIn()) > 0.1 {
		t.Errorf("mean indegree sensitive to cap: %v vs %v", r3.MeanIn(), r4.MeanIn())
	}
}
