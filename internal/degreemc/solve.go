package degreemc

import (
	"fmt"
	"sync"

	"sendforget/internal/markov"
	"sendforget/internal/stats"
)

// SolveOptions tune the fixed-point computation. The zero value selects
// defaults suitable for the paper's parameter ranges.
type SolveOptions struct {
	// InitOut/InitIn seed the first population distribution with a point
	// mass. Both zero selects (dL+s)/2 rounded to even, with matching
	// indegree (sum degree 3d as in Section 6.1's initialization).
	InitOut, InitIn int
	// InnerTol is the power-iteration total-variation tolerance
	// (default 1e-11).
	InnerTol float64
	// InnerMaxIter bounds power iterations per outer round (default 400000).
	InnerMaxIter int
	// OuterTol is the fixed-point tolerance on successive stationary
	// distributions (default 1e-9).
	OuterTol float64
	// OuterMaxIter bounds fixed-point rounds (default 200).
	OuterMaxIter int
	// Damping is the mixing weight of the new stationary distribution into
	// the running iterate, in (0, 1]. The undamped iteration (1.0) can
	// oscillate between two field regimes; the default 0.5 collapses the
	// 2-cycle onto the physical fixed point.
	Damping float64
}

func (o SolveOptions) withDefaults(par Params) SolveOptions {
	if o.InitOut == 0 && o.InitIn == 0 {
		d := (par.DL + par.S) / 2
		if d%2 != 0 {
			d--
		}
		if d < par.DL {
			d = par.DL
		}
		o.InitOut = d
		o.InitIn = d
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-11
	}
	if o.InnerMaxIter == 0 {
		o.InnerMaxIter = 400000
	}
	if o.OuterTol == 0 {
		o.OuterTol = 1e-9
	}
	if o.OuterMaxIter == 0 {
		o.OuterMaxIter = 200
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	return o
}

// Result is the solved steady-state degree behaviour of the tagged node.
type Result struct {
	Space *Space
	// Pi is the stationary distribution over Space.States().
	Pi []float64
	// Field holds the mean-field quantities at the fixed point.
	Field Field
	// OutDist[d] is the stationary P(outdegree = d), d in 0..s.
	OutDist []float64
	// InDist[i] is the stationary P(indegree = i).
	InDist []float64
	// OuterIterations counts fixed-point rounds used.
	OuterIterations int
	// DupProb is the steady-state probability that an active initiation
	// duplicates (Lemma 6.7 bounds it by l + delta from above and l from
	// below).
	DupProb float64
	// DelProb is the steady-state probability that an active initiation
	// leads to a deletion (delivered to a full view).
	DelProb float64
}

// MeanOut returns the expected outdegree dE.
func (r *Result) MeanOut() float64 { return stats.DistMean(r.OutDist) }

// MeanIn returns the expected indegree Din.
func (r *Result) MeanIn() float64 { return stats.DistMean(r.InDist) }

// StdOut returns the outdegree standard deviation.
func (r *Result) StdOut() float64 { return stats.DistStdDev(r.OutDist) }

// StdIn returns the indegree standard deviation.
func (r *Result) StdIn() float64 { return stats.DistStdDev(r.InDist) }

// solveKey identifies one fully-normalized solve: Params plus defaulted
// SolveOptions. Both are flat comparable structs.
type solveKey struct {
	par  Params
	opts SolveOptions
}

// solveEntry is one memoized solve; once protects the single computation.
type solveEntry struct {
	once sync.Once
	res  *Result
	err  error
}

var solveCache struct {
	mu sync.Mutex
	m  map[solveKey]*solveEntry
}

// ResetSolveCache drops all memoized solves. Benchmarks that want to time
// the fixed-point computation itself call it between iterations.
func ResetSolveCache() {
	solveCache.mu.Lock()
	solveCache.m = nil
	solveCache.mu.Unlock()
}

// Solve runs the fixed-point iteration of Section 6.2 and returns the
// steady-state result.
//
// Results are memoized per (Params, SolveOptions): the experiment runners
// solve identical chains many times (tab6.3 and fig6.1 share the dm=90
// manifold solve; the ablation grids repeat interior points), and a repeat
// call returns a copy of the cached fixed point. The cache is safe for
// concurrent use — parameter sweeps fan solves out across goroutines — and
// a concurrent duplicate blocks on the first computation instead of
// re-solving. The returned Result is a private copy; callers may mutate its
// distribution slices freely. The shared Space is immutable after
// construction.
func Solve(par Params, opts SolveOptions) (*Result, error) {
	if err := par.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(par)
	if opts.Damping <= 0 || opts.Damping > 1 {
		return nil, fmt.Errorf("degreemc: damping %v outside (0, 1]", opts.Damping)
	}
	key := solveKey{par: par, opts: opts}
	solveCache.mu.Lock()
	if solveCache.m == nil {
		solveCache.m = make(map[solveKey]*solveEntry)
	}
	e, ok := solveCache.m[key]
	if !ok {
		e = &solveEntry{}
		solveCache.m[key] = e
	}
	solveCache.mu.Unlock()
	e.once.Do(func() { e.res, e.err = solve(par, opts) })
	if e.err != nil {
		return nil, e.err
	}
	return e.res.clone(), nil
}

// clone copies the result's mutable slices; Space is shared (immutable).
func (r *Result) clone() *Result {
	c := *r
	c.Pi = append([]float64(nil), r.Pi...)
	c.OutDist = append([]float64(nil), r.OutDist...)
	c.InDist = append([]float64(nil), r.InDist...)
	return &c
}

// solve is the uncached fixed-point iteration. opts must be defaulted.
func solve(par Params, opts SolveOptions) (*Result, error) {
	sp, err := NewSpace(par)
	if err != nil {
		return nil, err
	}
	init := State{Out: opts.InitOut, In: opts.InitIn}
	k0, ok := sp.Index(init)
	if !ok {
		return nil, fmt.Errorf("degreemc: initial state %+v outside state space", init)
	}
	rho := make([]float64, sp.Len())
	rho[k0] = 1

	// The sparsity pattern is field-independent: build the CSR chain once
	// and rewrite its weights each round.
	tmpl, err := sp.newChainTemplate()
	if err != nil {
		return nil, err
	}
	var field Field
	for outer := 1; outer <= opts.OuterMaxIter; outer++ {
		field, err = sp.DeriveField(rho)
		if err != nil {
			return nil, err
		}
		if err := tmpl.rewrite(sp, field); err != nil {
			return nil, err
		}
		stat, _, err := markov.Stationary(tmpl.csr, rho, opts.InnerTol, opts.InnerMaxIter)
		if err != nil {
			return nil, fmt.Errorf("degreemc: outer round %d: %w", outer, err)
		}
		// The residual is the distance of the iterate from its image; the
		// damped update shrinks oscillation while sharing the fixed point.
		if markov.TV(rho, stat) < opts.OuterTol {
			return sp.buildResult(par, stat, outer)
		}
		for k := range rho {
			rho[k] = (1-opts.Damping)*rho[k] + opts.Damping*stat[k]
		}
	}
	return nil, fmt.Errorf("degreemc: fixed point did not converge in %d rounds", opts.OuterMaxIter)
}

// buildResult assembles marginals and steady-state event probabilities.
func (sp *Space) buildResult(par Params, pi []float64, outer int) (*Result, error) {
	field, err := sp.DeriveField(pi)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Space:           sp,
		Pi:              pi,
		Field:           field,
		OutDist:         make([]float64, par.S+1),
		OuterIterations: outer,
	}
	maxIn := 0
	for _, st := range sp.states {
		if st.In > maxIn {
			maxIn = st.In
		}
	}
	r.InDist = make([]float64, maxIn+1)
	// Event probabilities are activity-weighted: an active initiation by a
	// node at outdegree d occurs at rate d(d-1).
	var actW, dupW float64
	for k, st := range sp.states {
		p := pi[k]
		r.OutDist[st.Out] += p
		r.InDist[st.In] += p
		w := p * float64(st.Out*(st.Out-1))
		actW += w
		if st.Out == par.DL {
			dupW += w
		}
	}
	if actW > 0 {
		r.DupProb = dupW / actW
		// A deletion happens when a delivered message finds a full view.
		r.DelProb = (1 - par.Loss) * field.PFull
	}
	return r, nil
}
