package degreemc

import (
	"fmt"

	"sendforget/internal/markov"
)

// chainTemplate is the reusable CSR form of the degree MC. The sparsity
// pattern of the chain does not depend on the mean-field values — only the
// edge weights do — so the fixed-point iteration builds the structure once
// and rewrites the weights in place every outer round, instead of
// re-running the adjacency-list construction, dedup, and uniformization
// allocation each time.
type chainTemplate struct {
	csr *markov.CSR
	// self[k] is the slot index (within row k) of the self-loop entry that
	// absorbs the uniformization remainder.
	self []int
	// totals is scratch for per-row rate sums between the two rewrite passes.
	totals []float64
}

// templateProbe is a mean-field point with every probability strictly inside
// (0, 1), so that every structurally possible transition has a positive rate
// and appears in the union pattern. Real fields can only zero a subset of
// these rates (they share the Params, hence the loss rate), never add edges.
var templateProbe = Field{PFull: 0.5, Gap: 1, PDup: 0.5}

// newChainTemplate enumerates the union transition pattern of sp (plus a
// reserved self-loop per row) and finalizes it into CSR form.
func (sp *Space) newChainTemplate() (*chainTemplate, error) {
	n := sp.Len()
	s := markov.NewSparse(n)
	for k, st := range sp.states {
		sp.transitions(st, templateProbe, func(to State, rate float64, _ Kind) {
			if idx, ok := sp.index[to]; ok {
				s.Add(k, idx, rate)
			}
		})
		s.Add(k, k, 1) // reserve the self-loop slot
	}
	t := &chainTemplate{
		csr:    s.Finalize(),
		self:   make([]int, n),
		totals: make([]float64, n),
	}
	for k := 0; k < n; k++ {
		cols, _ := t.csr.Row(k)
		t.self[k] = -1
		for slot, c := range cols {
			if int(c) == k {
				t.self[k] = slot
				break
			}
		}
		if t.self[k] < 0 {
			return nil, fmt.Errorf("degreemc: row %d lost its self-loop slot", k)
		}
	}
	return t, nil
}

// rewrite recomputes the uniformized transition probabilities for field f
// into the template's weight slots. It mirrors BuildChain: raw rates are
// accumulated per edge, the uniformization constant is the maximum row total
// times the headroom, and each row's missing mass becomes its self-loop.
func (t *chainTemplate) rewrite(sp *Space, f Field) error {
	maxRow := 0.0
	var missing bool
	for k, st := range sp.states {
		cols, probs := t.csr.Row(k)
		for i := range probs {
			probs[i] = 0
		}
		total := 0.0
		sp.transitions(st, f, func(to State, rate float64, _ Kind) {
			idx, ok := sp.index[to]
			if !ok {
				return
			}
			slot := findCol(cols, int32(idx))
			if slot < 0 {
				missing = true
				return
			}
			probs[slot] += rate
			total += rate
		})
		t.totals[k] = total
		if total > maxRow {
			maxRow = total
		}
	}
	if missing {
		return fmt.Errorf("degreemc: field emitted a transition outside the template pattern")
	}
	if maxRow == 0 {
		return fmt.Errorf("degreemc: chain has no transitions")
	}
	w := maxRow * uniformizationHeadroom
	for k := range t.totals {
		_, probs := t.csr.Row(k)
		for i := range probs {
			probs[i] /= w
		}
		probs[t.self[k]] += 1 - t.totals[k]/w
	}
	return nil
}

// findCol locates col in a sorted row by binary search.
func findCol(cols []int32, col int32) int {
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if cols[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == col {
		return lo
	}
	return -1
}
