package degreemc

import (
	"fmt"
	"sync"
	"testing"

	"sendforget/internal/markov"
)

// TestTemplateRewriteMatchesBuildChain checks that rewriting the CSR template
// for a field produces the same stochastic chain BuildChain constructs from
// scratch, including on the lossless manifold where many rates vanish.
func TestTemplateRewriteMatchesBuildChain(t *testing.T) {
	for _, par := range []Params{
		{S: 12, DL: 6, Loss: 0},
		{S: 12, DL: 6, Loss: 0.15},
		{S: 14, DL: 4, Loss: 0.4},
	} {
		sp, err := NewSpace(par)
		if err != nil {
			t.Fatal(err)
		}
		tmpl, err := sp.newChainTemplate()
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []Field{
			{PFull: 0.3, Gap: 2.5, PDup: 0.1},
			{PFull: 0, Gap: 4, PDup: 0},
			{PFull: 1, Gap: 0.5, PDup: 0.9},
		} {
			chain, err := sp.BuildChain(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := tmpl.rewrite(sp, f); err != nil {
				t.Fatal(err)
			}
			if err := markov.Validate(tmpl.csr); err != nil {
				t.Fatalf("par %+v field %+v: rewritten template invalid: %v", par, f, err)
			}
			for k := 0; k < sp.Len(); k++ {
				want := map[int]float64{}
				chain.ForEach(k, func(col int, p float64) { want[col] += p })
				got := map[int]float64{}
				tmpl.csr.ForEach(k, func(col int, p float64) { got[col] += p })
				for col, p := range want {
					q := got[col]
					if diff := p - q; diff > 1e-12 || diff < -1e-12 {
						t.Fatalf("par %+v field %+v row %d col %d: template %v chain %v", par, f, k, col, q, p)
					}
					delete(got, col)
				}
				for col, q := range got {
					if q > 1e-12 {
						t.Fatalf("par %+v field %+v row %d: template has extra mass %v at col %d", par, f, k, q, col)
					}
				}
			}
		}
	}
}

// TestSolveCacheDeterministic checks that repeated Solve calls return
// bitwise-identical results and that mutating a returned Result cannot
// corrupt the cache.
func TestSolveCacheDeterministic(t *testing.T) {
	ResetSolveCache()
	par := Params{S: 14, DL: 6, Loss: 0.1}
	r1, err := Solve(par, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(par, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Pi) != len(r2.Pi) {
		t.Fatalf("Pi lengths differ: %d vs %d", len(r1.Pi), len(r2.Pi))
	}
	for k := range r1.Pi {
		if r1.Pi[k] != r2.Pi[k] {
			t.Fatalf("cached Pi differs at %d: %x vs %x", k, r1.Pi[k], r2.Pi[k])
		}
	}
	if r1.Field != r2.Field || r1.OuterIterations != r2.OuterIterations {
		t.Fatalf("cached metadata differs: %+v vs %+v", r1, r2)
	}
	// Clobber the first result; a fresh call must be unaffected.
	for k := range r1.Pi {
		r1.Pi[k] = -1
	}
	r1.OutDist[0] = 99
	r1.InDist[0] = 99
	r3, err := Solve(par, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range r2.Pi {
		if r2.Pi[k] != r3.Pi[k] {
			t.Fatalf("cache corrupted by caller mutation at %d", k)
		}
	}
	if r3.OutDist[0] == 99 || r3.InDist[0] == 99 {
		t.Fatal("cache shares marginal slices with callers")
	}
}

// TestSolveConcurrent exercises the cache under concurrent access: identical
// and distinct keys solved from many goroutines must all agree with a
// sequential reference. Run with -race to check the synchronization.
func TestSolveConcurrent(t *testing.T) {
	ResetSolveCache()
	pars := []Params{
		{S: 12, DL: 6, Loss: 0},
		{S: 12, DL: 6, Loss: 0.1},
		{S: 14, DL: 4, Loss: 0.2},
	}
	want := make([]*Result, len(pars))
	for i, par := range pars {
		r, err := Solve(par, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	ResetSolveCache()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		for i, par := range pars {
			wg.Add(1)
			go func(i int, par Params) {
				defer wg.Done()
				r, err := Solve(par, SolveOptions{})
				if err != nil {
					errs <- err
					return
				}
				for k := range r.Pi {
					if r.Pi[k] != want[i].Pi[k] {
						errs <- fmt.Errorf("concurrent Solve(%+v) diverged from sequential reference at state %d", par, k)
						return
					}
				}
			}(i, par)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
