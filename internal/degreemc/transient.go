package degreemc

import (
	"fmt"
	"math"

	"sendforget/internal/markov"
)

// TransientPoint is one sample of the transient degree evolution.
type TransientPoint struct {
	Round   float64
	MeanOut float64
	MeanIn  float64
}

// buildChainScaled uniformizes like BuildChain and additionally returns the
// real-time scale: how many protocol rounds one chain step spans.
//
// A raw transition rate r (as emitted by transitions, with the common
// 1/(s(s-1)) dropped) means the event fires with probability r/(n s(s-1))
// per global action, i.e. r/(s(s-1)) per round of n actions. Uniformization
// divides all rates by w, so one chain step advances s(s-1)/w rounds —
// independent of the state, which is what makes the time change exact.
func (sp *Space) buildChainScaled(f Field) (*markov.Sparse, float64, error) {
	n := sp.Len()
	type edge struct {
		to   int
		rate float64
	}
	rates := make([][]edge, n)
	maxRow := 0.0
	for k, st := range sp.states {
		total := 0.0
		sp.transitions(st, f, func(to State, rate float64, _ Kind) {
			idx, ok := sp.index[to]
			if !ok {
				return
			}
			rates[k] = append(rates[k], edge{idx, rate})
			total += rate
		})
		if total > maxRow {
			maxRow = total
		}
	}
	if maxRow == 0 {
		return nil, 0, fmt.Errorf("degreemc: chain has no transitions")
	}
	w := maxRow * uniformizationHeadroom
	chain := markov.NewSparse(n)
	for k, row := range rates {
		for _, e := range row {
			chain.Add(k, e.to, e.rate/w)
		}
	}
	if err := chain.CloseRows(); err != nil {
		return nil, 0, err
	}
	roundsPerStep := float64(sp.par.S*(sp.par.S-1)) / w
	return chain, roundsPerStep, nil
}

// Transient evolves a point mass at from under the chain with field f and
// returns samples+1 trajectory points spanning [0, maxRounds] — the exact
// expected degree evolution of, e.g., a joiner starting at (dL, 0)
// (Section 6.5). The field should come from a converged Solve so the
// environment is the steady state the joiner integrates into.
func (sp *Space) Transient(f Field, from State, maxRounds float64, samples int) ([]TransientPoint, error) {
	if maxRounds <= 0 || samples < 1 {
		return nil, fmt.Errorf("degreemc: invalid transient request maxRounds=%v samples=%d", maxRounds, samples)
	}
	k0, ok := sp.Index(from)
	if !ok {
		return nil, fmt.Errorf("degreemc: transient start %+v outside state space", from)
	}
	chain, roundsPerStep, err := sp.buildChainScaled(f)
	if err != nil {
		return nil, err
	}
	dist := make([]float64, sp.Len())
	dist[k0] = 1
	out := make([]TransientPoint, 0, samples+1)
	record := func(round float64) {
		mo, mi := 0.0, 0.0
		for k, p := range dist {
			mo += p * float64(sp.states[k].Out)
			mi += p * float64(sp.states[k].In)
		}
		out = append(out, TransientPoint{Round: round, MeanOut: mo, MeanIn: mi})
	}
	record(0)
	stepsDone := 0
	for i := 1; i <= samples; i++ {
		targetRound := maxRounds * float64(i) / float64(samples)
		targetSteps := int(math.Round(targetRound / roundsPerStep))
		for stepsDone < targetSteps {
			dist = markov.Step(chain, dist)
			stepsDone++
		}
		record(targetRound)
	}
	return out, nil
}
