// Package driver is the engine-agnostic transmission discipline shared by
// every execution substrate: the sequential engine, the goroutine-per-node
// cluster, and the sharded tick engine all route messages through one
// Router, so the fault-then-liveness rule, the delay-queue clock, and the
// traffic ledger are implemented exactly once (PR 3 unified the counting
// semantics across three hand-kept copies; this package deletes the
// copies).
//
// The discipline, per message: Sends is incremented first, then the fault
// stack rules — drop (model, per-link, or partition), park in the delay
// queue, or pass — and a passing message faces the liveness check (a
// departed destination is a dead letter, per the paper: "every message sent
// to this node causes its id to be deleted from the sender's view") before
// counting as a delivery. Parked messages re-enter at drain time, where
// liveness is resolved again (a destination that left while the message was
// in flight dead-letters) but the fault stack is not re-consulted.
//
// The package also owns the churn bookkeeping the substrates duplicated:
// collision-free per-incarnation seed derivation (Roster) and the circulant
// bootstrap topology (Circulant).
package driver

import (
	"container/heap"

	"sendforget/internal/faults"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

// Ledger is the unified traffic ledger (the cross-substrate counting
// semantics documented on metrics.Traffic): every routed message counts
// under Sends first and then lands in exactly one of Losses, DeadLetters,
// or Deliveries, possibly after a stay in the delay queue (Delayed). Only
// this package writes the fields; substrates read snapshots through
// Router.Ledger or Router.Traffic. A Router is single-owner state: each
// substrate confines its router to one goroutine (or one barrier phase) at
// a time, a contract the sharedguard and shardconfine analyzers enforce on
// every access rather than one left to reviewer memory.
type Ledger struct {
	Sends       int // messages routed (including replies)
	Losses      int // messages dropped by the fault layer (all conditions)
	Deliveries  int // messages delivered to live destinations
	DeadLetters int // messages addressed to departed destinations

	LinkLosses     int // subset of Losses: per-link override models
	PartitionDrops int // subset of Losses: active partitions
	Delayed        int // messages that entered the delay queue
}

// Traffic converts the ledger to the substrate-neutral metrics shape.
func (l Ledger) Traffic() metrics.Traffic {
	return metrics.Traffic{
		Sends:          l.Sends,
		Losses:         l.Losses,
		Deliveries:     l.Deliveries,
		DeadLetters:    l.DeadLetters,
		LinkLosses:     l.LinkLosses,
		PartitionDrops: l.PartitionDrops,
		Delayed:        l.Delayed,
	}
}

// Outcome is the router's per-message ruling.
type Outcome uint8

const (
	// Delivered: the message passed the fault stack and the destination is
	// live; the ledger counted a delivery and the caller performs it.
	Delivered Outcome = iota
	// Dropped: the fault stack dropped the message.
	Dropped
	// Parked: the message entered the delay queue; it will surface from
	// Due after the assigned number of Tick calls.
	Parked
	// DeadLetter: the destination is not live.
	DeadLetter
)

// Held is one message surfaced from the delay queue by Due. Msg.IDs is a
// copy owned by the router's queue entry; callers may retain it until the
// next Due call.
type Held struct {
	To  peer.ID
	Msg protocol.Message
}

// parked is one delay-queue entry.
type parked struct {
	due int // clock value at which the message is deliverable
	seq int // enqueue order, for deterministic equal-due drains
	to  peer.ID
	msg protocol.Message
}

// parkedQueue is a min-heap on (due, seq).
type parkedQueue []parked

func (q parkedQueue) Len() int { return len(q) }
func (q parkedQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}
func (q parkedQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *parkedQueue) Push(x any)   { *q = append(*q, x.(parked)) }
func (q *parkedQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Router rules on messages for one substrate. It is not safe for concurrent
// use: each substrate serializes access under its own exclusivity regime
// (the engine is single-threaded, the network holds its mutex, the sharded
// engine holds its gate).
type Router struct {
	cond  *faults.Conditions // fault-injection path (when non-nil)
	model loss.Model         // legacy plain-loss path (when cond is nil)
	rng   *rng.RNG
	live  func(peer.ID) bool

	ledger  Ledger
	clock   int
	seq     int
	pending parkedQueue
}

// NewRouter builds a router ruling through a fault-injection stack. The rng
// must be the substrate's own decision stream — the router draws from it in
// call order, so substrates that interleave other draws on the same stream
// (the sequential engine) keep their exact historical draw sequence. live
// reports whether a destination can currently receive; it is called
// synchronously under whatever serialization the caller holds.
func NewRouter(cond *faults.Conditions, r *rng.RNG, live func(peer.ID) bool) *Router {
	return &Router{cond: cond, rng: r, live: live}
}

// NewRouterModel builds a router ruling through a plain loss model — the
// sequential engine's legacy path, including destination-aware models.
func NewRouterModel(m loss.Model, r *rng.RNG, live func(peer.ID) bool) *Router {
	return &Router{model: m, rng: r, live: live}
}

// Route rules on one message addressed to to, consulting the fault stack
// with a per-message decision. Msg.IDs is copied only if the message parks
// (delay-queue entries outlive the caller's buffers); the steady-state
// paths never allocate.
//
//vet:hotpath
func (rt *Router) Route(to peer.ID, msg protocol.Message) Outcome {
	if rt.cond != nil {
		return rt.ruleVerdict(rt.cond.Decide(msg.From, to, rt.rng), to, msg)
	}
	rt.ledger.Sends++
	lost := false
	if dm, destAware := rt.model.(loss.DestinationModel); destAware {
		lost = dm.LostTo(to, rt.rng)
	} else {
		lost = rt.model.Lost(rt.rng)
	}
	if lost {
		rt.ledger.Losses++
		return Dropped
	}
	return rt.deliverable(to)
}

// RouteIn is Route under an open fault-stack session — the sharded engine's
// bulk route pass locks the stack once per pass instead of once per
// message. The caller owns the session; the router only draws a verdict
// from it.
//
//vet:hotpath
func (rt *Router) RouteIn(ses *faults.Session, to peer.ID, msg protocol.Message) Outcome {
	return rt.ruleVerdict(ses.Decide(msg.From, to, rt.rng), to, msg)
}

// ruleVerdict counts the attempt and applies a fault verdict: drop (with
// subset accounting), park, or fall through to the liveness check.
func (rt *Router) ruleVerdict(v faults.Verdict, to peer.ID, msg protocol.Message) Outcome {
	rt.ledger.Sends++
	if v.Drop != faults.DropNone {
		rt.ledger.Losses++
		switch v.Drop {
		case faults.DropLink:
			rt.ledger.LinkLosses++
		case faults.DropPartition:
			rt.ledger.PartitionDrops++
		}
		return Dropped
	}
	if v.Delay > 0 {
		rt.ledger.Delayed++
		rt.seq++
		//lint:allow hotalloc delay-queue entries outlive the caller's arena; parking is off the zero-alloc steady state
		ids := make([]peer.ID, len(msg.IDs))
		copy(ids, msg.IDs)
		msg.IDs = ids
		//lint:allow hotalloc heap.Push boxes the parked entry; only delayed messages pay it
		heap.Push(&rt.pending, parked{due: rt.clock + v.Delay, seq: rt.seq, to: to, msg: msg})
		return Parked
	}
	return rt.deliverable(to)
}

// deliverable is the liveness half of the discipline: dead letter or
// delivery, counted exactly once.
func (rt *Router) deliverable(to peer.ID) Outcome {
	if !rt.live(to) {
		rt.ledger.DeadLetters++
		return DeadLetter
	}
	rt.ledger.Deliveries++
	return Delivered
}

// Tick advances the delay-queue clock one round.
func (rt *Router) Tick() { rt.clock++ }

// Due pops the next delayed message due by the current clock, in (due,
// enqueue) order; ok is false when nothing further is due. The returned
// message has not been accounted beyond Delayed: the caller resolves it
// with Deliverable at drain time.
func (rt *Router) Due() (Held, bool) {
	if len(rt.pending) == 0 || rt.pending[0].due > rt.clock {
		return Held{}, false
	}
	d := heap.Pop(&rt.pending).(parked)
	return Held{To: d.to, Msg: d.msg}, true
}

// Deliverable resolves drain-time liveness for a message surfaced by Due,
// counting the dead letter or the delivery. The fault stack is not
// re-consulted: the message already passed it when it parked.
func (rt *Router) Deliverable(to peer.ID) bool {
	return rt.deliverable(to) == Delivered
}

// Pending returns the number of messages parked in the delay queue.
func (rt *Router) Pending() int { return len(rt.pending) }

// Ledger returns a snapshot of the traffic ledger.
func (rt *Router) Ledger() Ledger { return rt.ledger }

// Traffic returns the ledger in the substrate-neutral metrics shape.
func (rt *Router) Traffic() metrics.Traffic { return rt.ledger.Traffic() }

// Roster tracks per-node incarnations and derives each activation's RNG
// seed — the collision-free splitmix derivation both cluster flavors
// previously kept privately (the old additive scheme made a rejoining node
// reuse another node's initial stream; see PR 3).
type Roster struct {
	seed         int64
	incarnations []int32
}

// NewRoster builds a roster for n nodes over the substrate seed.
func NewRoster(seed int64, n int) *Roster {
	return &Roster{seed: seed, incarnations: make([]int32, n)}
}

// SeedFor derives node u's RNG seed for its current incarnation.
func (ro *Roster) SeedFor(u peer.ID) int64 {
	return rng.DeriveSeed(ro.seed, int64(u), int64(ro.incarnations[u]))
}

// Bump advances node u's incarnation; the next SeedFor draws a fresh
// stream. Substrates call it on every rejoin.
func (ro *Roster) Bump(u peer.ID) { ro.incarnations[u]++ }

// Circulant fills dst with node u's bootstrap seeds in the circulant graph
// over an n-node universe — u points at u+1, ..., u+len(dst) (mod n), the
// weakly connected, degree-regular initial overlay Section 6.1 assumes.
func Circulant(u peer.ID, n int, dst []peer.ID) {
	for k := range dst {
		dst[k] = peer.ID((int(u) + k + 1) % n)
	}
}
