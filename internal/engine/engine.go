// Package engine is the sequential discrete-event simulator realizing the
// paper's analysis model (Section 5): "a central entity repeatedly selects a
// random node, invokes its InitiateAction method, and waits for the
// completion of the receive by the receiving node (in case a message was
// sent)".
//
// Each Step picks an active node uniformly at random (Proposition 5.2),
// runs its initiate step, subjects every emitted message — including replies
// of bidirectional baselines — to the loss model, and runs the receive steps
// of delivered messages. A Round is n such steps, n the number of active
// nodes: "the period of time during which each node is expected to initiate
// exactly one action" (Section 6.5).
//
// Fault decisions, delay-queue mechanics, and traffic accounting live in
// the shared internal/driver router; the engine contributes only its
// scheduling discipline and the reply-chain walk.
package engine

import (
	"fmt"

	"sendforget/internal/driver"
	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Counters aggregates transport-level events across a run, with the unified
// cross-substrate semantics documented on metrics.Traffic: every emitted
// message counts under Sends first and then lands in exactly one of Losses,
// DeadLetters, or Deliveries (possibly after a stay in the delay queue).
type Counters struct {
	Steps       int // initiate steps executed
	Sends       int // messages emitted (including replies)
	Losses      int // messages dropped by the fault layer (all conditions)
	Deliveries  int // messages delivered to active nodes
	DeadLetters int // messages addressed to departed nodes

	LinkLosses     int // subset of Losses: per-link override models
	PartitionDrops int // subset of Losses: active partitions
	Delayed        int // messages that entered the delay queue
}

// LossRate returns the empirical loss fraction over all sends.
func (c Counters) LossRate() float64 {
	if c.Sends == 0 {
		return 0
	}
	return float64(c.Losses) / float64(c.Sends)
}

// Engine drives one protocol instance. Not safe for concurrent use.
type Engine struct {
	proto  protocol.Protocol
	cond   *faults.Conditions // fault-injection stack (nil = plain loss model)
	r      *rng.RNG
	router *driver.Router
	active []peer.ID // scheduling pool
	idx    map[peer.ID]int
	steps  int

	// OnStep, when non-nil, runs after every step with the step index.
	// Metrics collectors hook here.
	OnStep func(step int)
	// OnAction, when non-nil, receives a structured event per step —
	// tracing and fine-grained measurement hook.
	OnAction func(ev ActionEvent)
}

// ActionEvent describes one protocol step for observers.
type ActionEvent struct {
	// Step is the 1-based step index.
	Step int
	// Initiator is the node whose action ran.
	Initiator peer.ID
	// Sent reports whether the action emitted a message (false = self-loop).
	Sent bool
	// To is the first message's destination (valid when Sent).
	To peer.ID
	// Lost reports whether any message of the action was dropped by the
	// loss model; DeadLetters counts messages to departed nodes; Delivered
	// counts successful deliveries (greater than one for reply chains).
	Lost        bool
	DeadLetters int
	Delivered   int
}

// New builds an engine over proto with the given loss model and randomness.
// All nodes the protocol reports active join the scheduling pool.
func New(proto protocol.Protocol, lm loss.Model, r *rng.RNG) (*Engine, error) {
	if lm == nil {
		return nil, fmt.Errorf("engine: nil dependency")
	}
	return build(proto, lm, nil, r)
}

// NewWithConditions builds an engine whose transmissions pass through a
// fault-injection stack (burst loss, per-link overrides, partitions, delay)
// instead of a plain loss model — the same decision logic the in-memory
// runtime network applies, so cross-substrate comparisons see identical
// network behavior. The conditions instance must be dedicated to this
// engine: stateful models advance on every decision.
func NewWithConditions(proto protocol.Protocol, cond *faults.Conditions, r *rng.RNG) (*Engine, error) {
	if cond == nil {
		return nil, fmt.Errorf("engine: nil dependency")
	}
	return build(proto, nil, cond, r)
}

func build(proto protocol.Protocol, lm loss.Model, cond *faults.Conditions, r *rng.RNG) (*Engine, error) {
	if proto == nil || r == nil {
		return nil, fmt.Errorf("engine: nil dependency")
	}
	e := &Engine{proto: proto, cond: cond, r: r, idx: make(map[peer.ID]int)}
	// The router shares the engine's RNG: protocol draws and fault decisions
	// interleave on one stream, preserving the engine's historical draw
	// sequence (seed-calibrated tests depend on it).
	live := func(id peer.ID) bool { _, ok := e.idx[id]; return ok }
	if cond != nil {
		e.router = driver.NewRouter(cond, r, live)
	} else {
		e.router = driver.NewRouterModel(lm, r, live)
	}
	churner, isChurner := proto.(protocol.Churner)
	for u := 0; u < proto.N(); u++ {
		id := peer.ID(u)
		if !isChurner || churner.Active(id) {
			e.addActive(id)
		}
	}
	if len(e.active) == 0 {
		return nil, fmt.Errorf("engine: protocol has no active nodes")
	}
	return e, nil
}

// Conditions returns the fault-injection stack, nil when the engine was
// built over a plain loss model.
func (e *Engine) Conditions() *faults.Conditions { return e.cond }

// Protocol returns the driven protocol.
func (e *Engine) Protocol() protocol.Protocol { return e.proto }

// Counters returns a copy of the transport counters.
func (e *Engine) Counters() Counters {
	l := e.router.Ledger()
	return Counters{
		Steps:          e.steps,
		Sends:          l.Sends,
		Losses:         l.Losses,
		Deliveries:     l.Deliveries,
		DeadLetters:    l.DeadLetters,
		LinkLosses:     l.LinkLosses,
		PartitionDrops: l.PartitionDrops,
		Delayed:        l.Delayed,
	}
}

// Traffic reports the transport counters in the substrate-neutral shape
// shared with the concurrent runtime's Cluster.
func (e *Engine) Traffic() metrics.Traffic { return e.router.Traffic() }

// ActiveCount returns the number of schedulable nodes.
func (e *Engine) ActiveCount() int { return len(e.active) }

// Step executes one protocol action by a uniformly random active node.
func (e *Engine) Step() {
	u := e.active[e.r.Intn(len(e.active))]
	e.StepAt(u)
}

// StepAt executes one protocol action initiated by u. Experiments measuring
// a specific node's behaviour (Section 6.5 joins) use it directly.
func (e *Engine) StepAt(u peer.ID) {
	e.steps++
	ev := ActionEvent{Step: e.steps, Initiator: u}
	to, msg, ok := e.proto.Initiate(u, e.r)
	if ok {
		ev.Sent = true
		ev.To = to
		e.transmit(to, msg, &ev)
	}
	if e.OnStep != nil {
		e.OnStep(e.steps)
	}
	if e.OnAction != nil {
		e.OnAction(ev)
	}
}

// transmit routes msg through the shared driver and delivers it, following
// reply chains (each reply is again subject to the fault layer). With a
// plain loss model, destination-aware models (loss.DestinationModel)
// receive the target so nonuniform loss can be simulated; with conditions,
// messages may additionally be cut by partitions or parked in the delay
// queue until a later round.
func (e *Engine) transmit(to peer.ID, msg protocol.Message, ev *ActionEvent) {
	for {
		switch e.router.Route(to, msg) {
		case driver.Dropped:
			ev.Lost = true
			return
		case driver.Parked:
			return
		case driver.DeadLetter:
			ev.DeadLetters++
			return
		}
		ev.Delivered++
		reply, replyTo, hasReply := e.proto.Deliver(to, msg, e.r)
		if !hasReply {
			return
		}
		to, msg = replyTo, reply
	}
}

// Round executes one round: the delay queue delivers what came due, then as
// many steps as there are active nodes run. Rounds are the delay-queue
// clock; Step/StepAt called outside Round never advance it.
func (e *Engine) Round() {
	e.router.Tick()
	e.drainDue()
	for i, n := 0, len(e.active); i < n; i++ {
		e.Step()
	}
}

// PendingDelayed returns the number of messages parked in the delay queue.
func (e *Engine) PendingDelayed() int { return e.router.Pending() }

// DrainDelayed advances the delay-queue clock without running any protocol
// steps until the queue is empty, delivering everything in flight. Runs end
// with it so the traffic identity Sends = Losses + Deliveries + DeadLetters
// holds on the final counters. Replies generated by drained deliveries are
// subject to the fault layer and may be re-delayed; the loop runs until
// those settle too.
func (e *Engine) DrainDelayed() {
	for e.router.Pending() > 0 {
		e.router.Tick()
		e.drainDue()
	}
}

// drainDue delivers every delayed message due by the current round, in
// (due, enqueue) order. Routing is resolved at drain time (a destination
// that left while the message was in flight is a dead letter), and replies
// re-enter transmit, so they face the fault layer like any send. OnAction
// does not fire for these deliveries: they belong to no initiate step.
func (e *Engine) drainDue() {
	for {
		d, ok := e.router.Due()
		if !ok {
			return
		}
		if !e.router.Deliverable(d.To) {
			continue
		}
		var ev ActionEvent // counters only; not reported
		if reply, replyTo, hasReply := e.proto.Deliver(d.To, d.Msg, e.r); hasReply {
			e.transmit(replyTo, reply, &ev)
		}
	}
}

// Run executes the given number of rounds.
func (e *Engine) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		e.Round()
	}
}

// Snapshot returns the current membership graph.
func (e *Engine) Snapshot() *graph.Graph {
	return graph.FromViews(e.Views())
}

// Views collects per-node views (nil for departed nodes). Callers must
// treat the views as read-only.
func (e *Engine) Views() []*view.View {
	out := make([]*view.View, e.proto.N())
	for u := 0; u < e.proto.N(); u++ {
		out[u] = e.proto.View(peer.ID(u))
	}
	return out
}

// Join activates node u with the given seed view and adds it to the
// scheduling pool. The protocol must implement protocol.Churner.
func (e *Engine) Join(u peer.ID, seeds []peer.ID) error {
	churner, ok := e.proto.(protocol.Churner)
	if !ok {
		return fmt.Errorf("engine: protocol %q does not support churn", e.proto.Name())
	}
	if err := churner.Join(u, seeds); err != nil {
		return err
	}
	e.addActive(u)
	return nil
}

// Leave removes node u from the protocol and the scheduling pool.
func (e *Engine) Leave(u peer.ID) error {
	churner, ok := e.proto.(protocol.Churner)
	if !ok {
		return fmt.Errorf("engine: protocol %q does not support churn", e.proto.Name())
	}
	churner.Leave(u)
	e.removeActive(u)
	return nil
}

func (e *Engine) addActive(u peer.ID) {
	if _, ok := e.idx[u]; ok {
		return
	}
	e.idx[u] = len(e.active)
	e.active = append(e.active, u)
}

func (e *Engine) removeActive(u peer.ID) {
	i, ok := e.idx[u]
	if !ok {
		return
	}
	last := len(e.active) - 1
	e.active[i] = e.active[last]
	e.idx[e.active[i]] = i
	e.active = e.active[:last]
	delete(e.idx, u)
}
