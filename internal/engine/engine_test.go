package engine

import (
	"math"
	"testing"

	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

func newSF(t *testing.T, n int) *sendforget.Protocol {
	t.Helper()
	p, err := sendforget.New(sendforget.Config{N: n, S: 12, DL: 4, InitDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	p := newSF(t, 10)
	r := rng.New(1)
	if _, err := New(nil, loss.None{}, r); err == nil {
		t.Error("accepted nil protocol")
	}
	if _, err := New(p, nil, r); err == nil {
		t.Error("accepted nil loss model")
	}
	if _, err := New(p, loss.None{}, nil); err == nil {
		t.Error("accepted nil rng")
	}
	e, err := New(p, loss.None{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveCount() != 10 {
		t.Errorf("ActiveCount = %d, want 10", e.ActiveCount())
	}
	if e.Protocol() != p {
		t.Error("Protocol() does not return the driven protocol")
	}
}

func TestNewExcludesDepartedNodes(t *testing.T) {
	p := newSF(t, 10)
	p.Leave(3)
	e, err := New(p, loss.None{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveCount() != 9 {
		t.Errorf("ActiveCount = %d, want 9", e.ActiveCount())
	}
}

func TestNewRejectsEmptyPool(t *testing.T) {
	p := newSF(t, 8)
	for u := 0; u < 8; u++ {
		p.Leave(peer.ID(u))
	}
	if _, err := New(p, loss.None{}, rng.New(1)); err == nil {
		t.Error("accepted protocol with no active nodes")
	}
}

func TestRoundStepAccounting(t *testing.T) {
	p := newSF(t, 25)
	e, err := New(p, loss.None{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(4)
	c := e.Counters()
	if c.Steps != 100 {
		t.Errorf("Steps after 4 rounds of 25 = %d, want 100", c.Steps)
	}
	if c.Sends != c.Deliveries+c.Losses+c.DeadLetters {
		t.Errorf("send accounting broken: %+v", c)
	}
	if c.Losses != 0 {
		t.Errorf("lossless run recorded %d losses", c.Losses)
	}
}

func TestOnStepHook(t *testing.T) {
	p := newSF(t, 10)
	e, err := New(p, loss.None{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	e.OnStep = func(step int) { got = append(got, step) }
	e.Run(1)
	if len(got) != 10 {
		t.Fatalf("hook fired %d times, want 10", len(got))
	}
	for i, s := range got {
		if s != i+1 {
			t.Fatalf("hook sequence %v", got)
		}
	}
}

func TestEmpiricalLossRate(t *testing.T) {
	p := newSF(t, 50)
	e, err := New(p, loss.MustUniform(0.1), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(400)
	c := e.Counters()
	if c.Sends < 1000 {
		t.Fatalf("too few sends (%d) for a rate estimate", c.Sends)
	}
	if math.Abs(c.LossRate()-0.1) > 0.02 {
		t.Errorf("empirical loss rate %v, want ~0.1", c.LossRate())
	}
}

func TestLossRateEmptyCounters(t *testing.T) {
	var c Counters
	if c.LossRate() != 0 {
		t.Errorf("LossRate on zero counters = %v", c.LossRate())
	}
}

func TestInvariantsAfterLossyRun(t *testing.T) {
	p := newSF(t, 60)
	e, err := New(p, loss.MustUniform(0.05), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g := e.Snapshot()
	if !g.WeaklyConnected() {
		t.Errorf("graph disconnected after moderate-loss run: %d components", g.ComponentCount())
	}
}

func TestChurnThroughEngine(t *testing.T) {
	p := newSF(t, 20)
	e, err := New(p, loss.None{}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(7); err != nil {
		t.Fatal(err)
	}
	if e.ActiveCount() != 19 {
		t.Errorf("ActiveCount after leave = %d, want 19", e.ActiveCount())
	}
	e.Run(50)
	// The departed id must decay out of all views (Lemma 6.10 dynamics;
	// 50 rounds at these parameters is ample for n=20).
	g := e.Snapshot()
	if inst := g.IDInstances(7); inst > 2 {
		t.Errorf("departed id still has %d instances after 50 rounds", inst)
	}
	if err := e.Join(7, []peer.ID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if e.ActiveCount() != 20 {
		t.Errorf("ActiveCount after join = %d, want 20", e.ActiveCount())
	}
	e.Run(20)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Double leave is harmless.
	if err := e.Leave(7); err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(7); err != nil {
		t.Fatal(err)
	}
	if e.ActiveCount() != 19 {
		t.Errorf("ActiveCount after double leave = %d, want 19", e.ActiveCount())
	}
}

func TestDeadLetters(t *testing.T) {
	p := newSF(t, 10)
	e, err := New(p, loss.None{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(0); err != nil {
		t.Fatal(err)
	}
	e.Run(200)
	if e.Counters().DeadLetters == 0 {
		t.Error("no dead letters recorded despite messages to the departed node")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleReplyChainsThroughLoss(t *testing.T) {
	p, err := shuffle.New(shuffle.Config{N: 30, S: 10, InitDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p, loss.MustUniform(0.2), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot().NumEdges()
	e.Run(300)
	after := e.Snapshot().NumEdges()
	if after >= before {
		t.Errorf("shuffle under 20%% loss did not lose ids: %d -> %d", before, after)
	}
	c := e.Counters()
	if c.Deliveries == 0 || c.Losses == 0 {
		t.Errorf("expected both deliveries and losses: %+v", c)
	}
	// Replies mean more sends than steps that emitted a request.
	if c.Sends <= c.Steps-p.Counters().SelfLoops {
		t.Errorf("no replies counted: sends=%d steps=%d", c.Sends, c.Steps)
	}
}

func TestPushPullStableUnderLoss(t *testing.T) {
	p, err := pushpull.New(pushpull.Config{N: 30, S: 10})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p, loss.MustUniform(0.2), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot().NumEdges()
	e.Run(300)
	after := e.Snapshot().NumEdges()
	if after < before {
		t.Errorf("push-pull lost ids under loss: %d -> %d", before, after)
	}
}

func TestChurnUnsupportedProtocol(t *testing.T) {
	// A minimal protocol without Churner support.
	p := newSF(t, 10)
	e, err := New(nonChurner{p}, loss.None{}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(1); err == nil {
		t.Error("Leave accepted on non-churner protocol")
	}
	if err := e.Join(1, []peer.ID{0}); err == nil {
		t.Error("Join accepted on non-churner protocol")
	}
}

// nonChurner forwards only the core Protocol methods, hiding the Churner
// interface of the wrapped protocol.
type nonChurner struct{ p *sendforget.Protocol }

func (nc nonChurner) Name() string { return nc.p.Name() }
func (nc nonChurner) N() int       { return nc.p.N() }
func (nc nonChurner) View(u peer.ID) *view.View {
	return nc.p.View(u)
}
func (nc nonChurner) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	return nc.p.Initiate(u, r)
}
func (nc nonChurner) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	return nc.p.Deliver(u, msg, r)
}

func TestOnActionEvents(t *testing.T) {
	p := newSF(t, 20)
	e, err := New(p, loss.MustUniform(0.3), rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	var events []ActionEvent
	e.OnAction = func(ev ActionEvent) { events = append(events, ev) }
	e.Run(30)
	if len(events) != 600 {
		t.Fatalf("events = %d, want 600", len(events))
	}
	sent, lost, selfLoops, delivered := 0, 0, 0, 0
	for i, ev := range events {
		if ev.Step != i+1 {
			t.Fatalf("event %d has step %d", i, ev.Step)
		}
		if !ev.Sent {
			selfLoops++
			if ev.Lost || ev.Delivered > 0 {
				t.Fatalf("self-loop event with transport outcomes: %+v", ev)
			}
			continue
		}
		sent++
		if ev.Lost {
			lost++
		}
		delivered += ev.Delivered
	}
	c := e.Counters()
	if sent != c.Sends {
		t.Errorf("event sends %d != counter %d", sent, c.Sends)
	}
	if lost != c.Losses {
		t.Errorf("event losses %d != counter %d", lost, c.Losses)
	}
	if delivered != c.Deliveries {
		t.Errorf("event deliveries %d != counter %d", delivered, c.Deliveries)
	}
	if selfLoops == 0 || lost == 0 || delivered == 0 {
		t.Errorf("expected a mix of outcomes: self=%d lost=%d delivered=%d", selfLoops, lost, delivered)
	}
}
