// Package equivalence is the cross-substrate harness behind Proposition
// 5.2: the three execution backends behind runtime.Substrate (the
// sequential discrete-event engine, the goroutine-per-node cluster, and
// the sharded tick engine) drive the same per-node step cores, so — up to
// scheduling randomness — they must induce statistically matching
// overlays. The harness builds each backend through runtime.New from the
// same core factory (hence the same circulant bootstrap topology) under
// the same loss model, drives all of them with one identical round loop,
// checks the protocol's per-view invariant on every resulting view, and
// summarizes each overlay's in-degree distribution so tests can assert the
// substrates agree pairwise (small Kolmogorov-Smirnov distance, close mean
// degrees).
//
// All runs are fully deterministic: every backend is seeded and ticked
// manually round by round (no timers, no goroutine scheduling influence on
// protocol state — the sharded engine is bit-reproducible for any worker
// count by construction).
package equivalence

import (
	"fmt"

	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/stats"
	"sendforget/internal/view"
)

// Config describes one cross-substrate comparison run.
type Config struct {
	// N is the number of nodes, Rounds the number of gossip rounds (each
	// round is one initiated action per node on both substrates).
	N, Rounds int
	// Loss is the uniform message loss rate applied on both substrates,
	// ignored when NewConditions is set.
	Loss float64
	// NewConditions, when non-nil, builds the fault-injection stack for
	// one substrate. It is called once per substrate: stateful conditions
	// (burst models, delay queues) must not be shared between the two
	// runs, or the engine's draws would perturb the cluster's channel
	// state and vice versa.
	NewConditions func() (*faults.Conditions, error)
	// Seed drives both substrates (with distinct derived streams).
	Seed int64
	// InitDegree is the circulant bootstrap outdegree, shared by all
	// substrates (runtime.New wires the same initial overlay everywhere).
	InitDegree int
	// NewCore builds one fresh step core per node, on every substrate.
	NewCore protocol.CoreFactory
	// ShardedWorkers bounds the sharded substrate's worker pool (0 selects
	// the engine's default). The sharded engine is bit-reproducible for any
	// worker count, so this only affects wall-clock time.
	ShardedWorkers int
}

// Substrate summarizes one substrate's final overlay.
type Substrate struct {
	Views   []*view.View
	Traffic metrics.Traffic
	// InDegreePMF[k] is the fraction of nodes with in-degree k.
	InDegreePMF []float64
	MeanOut     float64
	MeanIn      float64
	SelfEdges   int
}

// Result groups the three substrate summaries with their pairwise
// comparison stats.
type Result struct {
	Engine  Substrate
	Cluster Substrate
	Sharded Substrate
	// KS is the Kolmogorov-Smirnov distance between the engine's and the
	// cluster's in-degree distributions (the original two-substrate
	// comparison; the name predates the third substrate).
	KS float64
	// KSEngineSharded and KSClusterSharded are the distances pairing the
	// sharded tick engine with each of the other substrates.
	KSEngineSharded  float64
	KSClusterSharded float64
}

// Run executes the comparison. Beyond building the summaries it validates,
// on every substrate, the protocol's own per-view invariant (via a fresh
// probe core's CheckView) and the hard view-size bound.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("equivalence: need n >= 2 and rounds >= 1")
	}
	if cfg.NewCore == nil {
		return nil, fmt.Errorf("equivalence: a core factory is required")
	}

	// newConditions builds one substrate's fault stack: the configured
	// factory, or the paper's uniform loss from the plain rate. Called once
	// per substrate — stateful conditions (burst models, delay queues) must
	// not be shared between runs.
	newConditions := cfg.NewConditions
	if newConditions == nil {
		newConditions = func() (*faults.Conditions, error) {
			lm, err := loss.NewUniform(cfg.Loss)
			if err != nil {
				return nil, err
			}
			return faults.New(lm)
		}
	}

	// The three backends differ only in construction: engine kind and seed
	// stream (each substrate gets a distinct derived stream so none replays
	// another's randomness). The drive loop below is identical for all.
	backends := []struct {
		kind runtime.EngineKind
		seed int64
	}{
		{runtime.EngineSeq, cfg.Seed},
		{runtime.EngineCluster, rng.DeriveSeed(cfg.Seed, 1)},
		{runtime.EngineSharded, rng.DeriveSeed(cfg.Seed, 2)},
	}
	summaries := make([]*Substrate, len(backends))
	for i, b := range backends {
		cond, err := newConditions()
		if err != nil {
			return nil, err
		}
		sub, err := runtime.New(runtime.Config{
			Engine:     b.kind,
			N:          cfg.N,
			NewCore:    cfg.NewCore,
			InitDegree: cfg.InitDegree,
			Conditions: cond,
			Workers:    cfg.ShardedWorkers,
			Seed:       b.seed,
		})
		if err != nil {
			return nil, fmt.Errorf("equivalence: %s: %w", b.kind, err)
		}
		for r := 0; r < cfg.Rounds; r++ {
			sub.TickRound()
		}
		// Flush the delay queue (no further protocol steps) so the traffic
		// identity Sends = Losses + Deliveries + DeadLetters holds on the
		// final counters.
		sub.DrainDelayed()
		err = sub.CheckInvariants()
		if err == nil {
			summaries[i], err = summarize(cfg, sub.Views(), sub.Traffic())
		}
		sub.Close()
		if err != nil {
			return nil, fmt.Errorf("equivalence: %s substrate: %w", b.kind, err)
		}
	}
	engSub, clSub, shSub := summaries[0], summaries[1], summaries[2]

	return &Result{
		Engine:           *engSub,
		Cluster:          *clSub,
		Sharded:          *shSub,
		KS:               stats.KSDistance(engSub.InDegreePMF, clSub.InDegreePMF),
		KSEngineSharded:  stats.KSDistance(engSub.InDegreePMF, shSub.InDegreePMF),
		KSClusterSharded: stats.KSDistance(clSub.InDegreePMF, shSub.InDegreePMF),
	}, nil
}

// summarize validates every view against a fresh probe core and computes the
// overlay statistics.
func summarize(cfg Config, views []*view.View, tr metrics.Traffic) (*Substrate, error) {
	probe, err := cfg.NewCore()
	if err != nil {
		return nil, err
	}
	s := probe.ViewSize()
	for u, v := range views {
		if v == nil {
			continue
		}
		if err := probe.CheckView(v); err != nil {
			return nil, fmt.Errorf("node %d: %w", u, err)
		}
		if v.Outdegree() > s {
			return nil, fmt.Errorf("node %d: outdegree %d exceeds view size %d", u, v.Outdegree(), s)
		}
	}
	g := graph.FromViews(views)
	deg := metrics.Degrees(g, nil)
	pmf := make([]float64, deg.MaxIn+1)
	for u := 0; u < g.N(); u++ {
		pmf[g.Indegree(peer.ID(u))]++
	}
	for k := range pmf {
		pmf[k] /= float64(g.N())
	}
	return &Substrate{
		Views:       views,
		Traffic:     tr,
		InDegreePMF: pmf,
		MeanOut:     deg.MeanOut,
		MeanIn:      deg.MeanIn,
		SelfEdges:   g.SelfEdges(),
	}, nil
}
