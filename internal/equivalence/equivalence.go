// Package equivalence is the cross-substrate harness behind Proposition
// 5.2: the sequential discrete-event engine (internal/engine), the
// concurrent runtime cluster (internal/runtime.Cluster), and the sharded
// tick engine (internal/runtime.ShardedCluster) drive the same per-node
// step cores, so — up to scheduling randomness — they must induce
// statistically matching overlays. The harness runs one protocol on all
// three substrates from the same circulant bootstrap topology under the
// same loss model, checks the protocol's per-view invariant on every
// resulting view, and summarizes each overlay's in-degree distribution so
// tests can assert the substrates agree pairwise (small Kolmogorov-Smirnov
// distance, close mean degrees).
//
// All runs are fully deterministic: the engine is seeded, and both cluster
// flavors are ticked manually round by round (no timers, no goroutine
// scheduling influence on protocol state — the sharded engine is
// bit-reproducible for any worker count by construction).
package equivalence

import (
	"fmt"

	"sendforget/internal/engine"
	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/runtime"
	"sendforget/internal/stats"
	"sendforget/internal/view"
)

// Config describes one cross-substrate comparison run.
type Config struct {
	// N is the number of nodes, Rounds the number of gossip rounds (each
	// round is one initiated action per node on both substrates).
	N, Rounds int
	// Loss is the uniform message loss rate applied on both substrates,
	// ignored when NewConditions is set.
	Loss float64
	// NewConditions, when non-nil, builds the fault-injection stack for
	// one substrate. It is called once per substrate: stateful conditions
	// (burst models, delay queues) must not be shared between the two
	// runs, or the engine's draws would perturb the cluster's channel
	// state and vice versa.
	NewConditions func() (*faults.Conditions, error)
	// Seed drives both substrates (with distinct derived streams).
	Seed int64
	// InitDegree is the circulant bootstrap outdegree. It must match the
	// initial topology NewProtocol builds so the substrates start from the
	// same overlay.
	InitDegree int
	// NewProtocol builds the sequential substrate's protocol instance.
	NewProtocol func() (protocol.Protocol, error)
	// NewCore builds one fresh step core per concurrent runtime node.
	NewCore protocol.CoreFactory
	// ShardedWorkers bounds the sharded substrate's worker pool (0 selects
	// the engine's default). The sharded engine is bit-reproducible for any
	// worker count, so this only affects wall-clock time.
	ShardedWorkers int
}

// Substrate summarizes one substrate's final overlay.
type Substrate struct {
	Views   []*view.View
	Traffic metrics.Traffic
	// InDegreePMF[k] is the fraction of nodes with in-degree k.
	InDegreePMF []float64
	MeanOut     float64
	MeanIn      float64
	SelfEdges   int
}

// Result groups the three substrate summaries with their pairwise
// comparison stats.
type Result struct {
	Engine  Substrate
	Cluster Substrate
	Sharded Substrate
	// KS is the Kolmogorov-Smirnov distance between the engine's and the
	// cluster's in-degree distributions (the original two-substrate
	// comparison; the name predates the third substrate).
	KS float64
	// KSEngineSharded and KSClusterSharded are the distances pairing the
	// sharded tick engine with each of the other substrates.
	KSEngineSharded  float64
	KSClusterSharded float64
}

// Run executes the comparison. Beyond building the summaries it validates,
// on both substrates, the protocol's own per-view invariant (via a fresh
// probe core's CheckView) and the hard view-size bound.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("equivalence: need n >= 2 and rounds >= 1")
	}
	if cfg.NewProtocol == nil || cfg.NewCore == nil {
		return nil, fmt.Errorf("equivalence: both substrate constructors are required")
	}

	// newConditions builds one substrate's fault stack: the configured
	// factory, or the paper's uniform loss from the plain rate.
	newConditions := cfg.NewConditions
	if newConditions == nil {
		newConditions = func() (*faults.Conditions, error) {
			lm, err := loss.NewUniform(cfg.Loss)
			if err != nil {
				return nil, err
			}
			return faults.New(lm)
		}
	}

	// Sequential substrate.
	proto, err := cfg.NewProtocol()
	if err != nil {
		return nil, fmt.Errorf("equivalence: engine protocol: %w", err)
	}
	engCond, err := newConditions()
	if err != nil {
		return nil, err
	}
	e, err := engine.NewWithConditions(proto, engCond, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	e.Run(cfg.Rounds)
	// Flush the delay queue (no further protocol steps) so the traffic
	// identity Sends = Losses + Deliveries + DeadLetters holds on the
	// final counters.
	e.DrainDelayed()
	engSub, err := summarize(cfg, e.Views(), e.Traffic())
	if err != nil {
		return nil, fmt.Errorf("equivalence: engine substrate: %w", err)
	}

	// Concurrent substrate, ticked manually for determinism.
	clCond, err := newConditions()
	if err != nil {
		return nil, err
	}
	cl, err := runtime.NewCluster(runtime.ClusterConfig{
		N:          cfg.N,
		NewCore:    cfg.NewCore,
		InitDegree: cfg.InitDegree,
		Conditions: clCond,
		Seed:       rng.DeriveSeed(cfg.Seed, 1),
	})
	if err != nil {
		return nil, fmt.Errorf("equivalence: cluster: %w", err)
	}
	for i := 0; i < cfg.Rounds; i++ {
		cl.TickRound()
	}
	for cl.Network().Pending() > 0 {
		cl.Network().Advance()
	}
	if err := cl.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("equivalence: cluster substrate: %w", err)
	}
	clSub, err := summarize(cfg, cl.Views(), cl.Traffic())
	if err != nil {
		return nil, fmt.Errorf("equivalence: cluster substrate: %w", err)
	}

	// Sharded substrate, same manual round discipline. Its seed stream is
	// derived with a different tweak than the cluster's so the two do not
	// replay each other's randomness.
	shCond, err := newConditions()
	if err != nil {
		return nil, err
	}
	sh, err := runtime.NewSharded(runtime.ShardedConfig{
		N:          cfg.N,
		NewCore:    cfg.NewCore,
		InitDegree: cfg.InitDegree,
		Conditions: shCond,
		Workers:    cfg.ShardedWorkers,
		Seed:       rng.DeriveSeed(cfg.Seed, 2),
	})
	if err != nil {
		return nil, fmt.Errorf("equivalence: sharded cluster: %w", err)
	}
	defer sh.Close()
	for i := 0; i < cfg.Rounds; i++ {
		sh.TickRound()
	}
	sh.DrainDelayed()
	if err := sh.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("equivalence: sharded substrate: %w", err)
	}
	shSub, err := summarize(cfg, sh.Views(), sh.Traffic())
	if err != nil {
		return nil, fmt.Errorf("equivalence: sharded substrate: %w", err)
	}

	return &Result{
		Engine:           *engSub,
		Cluster:          *clSub,
		Sharded:          *shSub,
		KS:               stats.KSDistance(engSub.InDegreePMF, clSub.InDegreePMF),
		KSEngineSharded:  stats.KSDistance(engSub.InDegreePMF, shSub.InDegreePMF),
		KSClusterSharded: stats.KSDistance(clSub.InDegreePMF, shSub.InDegreePMF),
	}, nil
}

// summarize validates every view against a fresh probe core and computes the
// overlay statistics.
func summarize(cfg Config, views []*view.View, tr metrics.Traffic) (*Substrate, error) {
	probe, err := cfg.NewCore()
	if err != nil {
		return nil, err
	}
	s := probe.ViewSize()
	for u, v := range views {
		if v == nil {
			continue
		}
		if err := probe.CheckView(v); err != nil {
			return nil, fmt.Errorf("node %d: %w", u, err)
		}
		if v.Outdegree() > s {
			return nil, fmt.Errorf("node %d: outdegree %d exceeds view size %d", u, v.Outdegree(), s)
		}
	}
	g := graph.FromViews(views)
	deg := metrics.Degrees(g, nil)
	pmf := make([]float64, deg.MaxIn+1)
	for u := 0; u < g.N(); u++ {
		pmf[g.Indegree(peer.ID(u))]++
	}
	for k := range pmf {
		pmf[k] /= float64(g.N())
	}
	return &Substrate{
		Views:       views,
		Traffic:     tr,
		InDegreePMF: pmf,
		MeanOut:     deg.MeanOut,
		MeanIn:      deg.MeanIn,
		SelfEdges:   g.SelfEdges(),
	}, nil
}
