package equivalence

import (
	"testing"

	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/stats"
)

// A case pairs one protocol's two substrate constructors with a matched
// bootstrap topology.
type equivCase struct {
	name       string
	n, rounds  int
	lossRate   float64
	initDegree int
	newProto   func(n, initDegree int) (protocol.Protocol, error)
	newCore    protocol.CoreFactory
}

func cases() []equivCase {
	const n = 60
	return []equivCase{
		{
			name: "sendforget", n: n, rounds: 150, lossRate: 0.05, initDegree: 8,
			newProto: func(n, d int) (protocol.Protocol, error) {
				return sendforget.New(sendforget.Config{N: n, S: 12, DL: 4, InitDegree: d})
			},
			newCore: func() (protocol.StepCore, error) { return sendforget.NewCore(12, 4) },
		},
		{
			name: "sfopt", n: n, rounds: 150, lossRate: 0.05, initDegree: 8,
			newProto: func(n, d int) (protocol.Protocol, error) {
				return sfopt.New(sfopt.Options{N: n, S: 12, DL: 4, InitDegree: d, ReplaceWhenFull: true, Undelete: true})
			},
			newCore: func() (protocol.StepCore, error) {
				return sfopt.NewCore(sfopt.Options{S: 12, DL: 4, ReplaceWhenFull: true, Undelete: true})
			},
		},
		{
			name: "shuffle", n: n, rounds: 80, lossRate: 0.02, initDegree: 5,
			newProto: func(n, d int) (protocol.Protocol, error) {
				return shuffle.New(shuffle.Config{N: n, S: 10, InitDegree: d})
			},
			newCore: func() (protocol.StepCore, error) { return shuffle.NewCore(10) },
		},
		{
			name: "flipper", n: n, rounds: 80, lossRate: 0.02, initDegree: 5,
			newProto: func(n, d int) (protocol.Protocol, error) {
				return flipper.New(flipper.Config{N: n, S: 10, Degree: d})
			},
			newCore: func() (protocol.StepCore, error) { return flipper.NewCore(10) },
		},
		{
			name: "pushpull", n: n, rounds: 100, lossRate: 0.05, initDegree: 5,
			newProto: func(n, d int) (protocol.Protocol, error) {
				return pushpull.New(pushpull.Config{N: n, S: 10, InitDegree: d})
			},
			newCore: func() (protocol.StepCore, error) { return pushpull.NewCore(10) },
		},
	}
}

// TestSubstrateEquivalence is the Proposition 5.2 check for every protocol:
// the sequential engine and the manually-ticked concurrent cluster, run from
// the same bootstrap topology under the same loss rate, must produce
// overlays with statistically matching in-degree distributions and mean
// outdegrees. Results are pooled over several seeds to suppress the
// per-run sampling noise of a 60-node system.
func TestSubstrateEquivalence(t *testing.T) {
	seeds := []int64{11, 29, 47, 83}
	for _, tc := range cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var engPMF, clPMF []float64
			var engOut, clOut, engIn, clIn float64
			for _, seed := range seeds {
				res, err := Run(Config{
					N:          tc.n,
					Rounds:     tc.rounds,
					Loss:       tc.lossRate,
					Seed:       seed,
					InitDegree: tc.initDegree,
					NewProtocol: func() (protocol.Protocol, error) {
						return tc.newProto(tc.n, tc.initDegree)
					},
					NewCore: tc.newCore,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				engPMF = accumulate(engPMF, res.Engine.InDegreePMF)
				clPMF = accumulate(clPMF, res.Cluster.InDegreePMF)
				engOut += res.Engine.MeanOut
				clOut += res.Cluster.MeanOut
				engIn += res.Engine.MeanIn
				clIn += res.Cluster.MeanIn
			}
			k := float64(len(seeds))
			engOut, clOut, engIn, clIn = engOut/k, clOut/k, engIn/k, clIn/k
			scale(engPMF, 1/k)
			scale(clPMF, 1/k)

			ks := stats.KSDistance(engPMF, clPMF)
			t.Logf("meanOut engine=%.2f cluster=%.2f, meanIn engine=%.2f cluster=%.2f, KS=%.3f",
				engOut, clOut, engIn, clIn, ks)
			if ks > 0.15 {
				t.Errorf("in-degree KS distance %.3f between substrates exceeds 0.15", ks)
			}
			if d := relDiff(engOut, clOut); d > 0.10 {
				t.Errorf("mean outdegree differs by %.1f%% (engine %.2f, cluster %.2f)", d*100, engOut, clOut)
			}
			if d := relDiff(engIn, clIn); d > 0.10 {
				t.Errorf("mean indegree differs by %.1f%% (engine %.2f, cluster %.2f)", d*100, engIn, clIn)
			}
		})
	}
}

// TestRunDeterminism pins that the harness is reproducible: same config,
// same result.
func TestRunDeterminism(t *testing.T) {
	tc := cases()[0]
	cfg := Config{
		N: tc.n, Rounds: 50, Loss: tc.lossRate, Seed: 5, InitDegree: tc.initDegree,
		NewProtocol: func() (protocol.Protocol, error) { return tc.newProto(tc.n, tc.initDegree) },
		NewCore:     tc.newCore,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.KS != b.KS || a.Engine.Traffic != b.Engine.Traffic || a.Cluster.Traffic != b.Cluster.Traffic {
		t.Errorf("two identical runs diverged: %+v vs %+v", a, b)
	}
	if a.Engine.Traffic.Sends == 0 || a.Cluster.Traffic.Sends == 0 {
		t.Error("a substrate reported no traffic")
	}
}

// TestRunValidation covers the harness's own error paths.
func TestRunValidation(t *testing.T) {
	tc := cases()[0]
	good := Config{
		N: tc.n, Rounds: 10, Seed: 1, InitDegree: tc.initDegree,
		NewProtocol: func() (protocol.Protocol, error) { return tc.newProto(tc.n, tc.initDegree) },
		NewCore:     tc.newCore,
	}
	bad := good
	bad.N = 1
	if _, err := Run(bad); err == nil {
		t.Error("accepted n=1")
	}
	bad = good
	bad.NewCore = nil
	if _, err := Run(bad); err == nil {
		t.Error("accepted nil core factory")
	}
	bad = good
	bad.NewProtocol = nil
	if _, err := Run(bad); err == nil {
		t.Error("accepted nil protocol constructor")
	}
	bad = good
	bad.Loss = 2
	if _, err := Run(bad); err == nil {
		t.Error("accepted loss > 1")
	}
}

// accumulate adds q into p element-wise, growing p as needed.
func accumulate(p, q []float64) []float64 {
	if len(q) > len(p) {
		p = append(p, make([]float64, len(q)-len(p))...)
	}
	for i, v := range q {
		p[i] += v
	}
	return p
}

func scale(p []float64, f float64) {
	for i := range p {
		p[i] *= f
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		m = 1
	}
	return d / m
}
