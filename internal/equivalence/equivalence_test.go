package equivalence

import (
	"testing"

	"sendforget/internal/faults"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/stats"
)

// A case is one protocol's core factory with a matched bootstrap topology;
// every substrate is built from the same factory through runtime.New.
type equivCase struct {
	name       string
	n, rounds  int
	lossRate   float64
	initDegree int
	newCore    protocol.CoreFactory
}

func cases() []equivCase {
	const n = 60
	return []equivCase{
		{
			name: "sendforget", n: n, rounds: 150, lossRate: 0.05, initDegree: 8,
			newCore: func() (protocol.StepCore, error) { return sendforget.NewCore(12, 4) },
		},
		{
			name: "sfopt", n: n, rounds: 150, lossRate: 0.05, initDegree: 8,
			newCore: func() (protocol.StepCore, error) {
				return sfopt.NewCore(sfopt.Options{S: 12, DL: 4, ReplaceWhenFull: true, Undelete: true})
			},
		},
		{
			name: "shuffle", n: n, rounds: 80, lossRate: 0.02, initDegree: 5,
			newCore: func() (protocol.StepCore, error) { return shuffle.NewCore(10) },
		},
		{
			name: "flipper", n: n, rounds: 80, lossRate: 0.02, initDegree: 5,
			newCore: func() (protocol.StepCore, error) { return flipper.NewCore(10) },
		},
		{
			name: "pushpull", n: n, rounds: 100, lossRate: 0.05, initDegree: 5,
			newCore: func() (protocol.StepCore, error) { return pushpull.NewCore(10) },
		},
	}
}

// TestSubstrateEquivalence is the Proposition 5.2 check for every protocol:
// the sequential engine, the manually-ticked concurrent cluster, and the
// sharded tick engine, run from the same bootstrap topology under the same
// loss rate, must produce overlays with pairwise statistically matching
// in-degree distributions and mean outdegrees. Results are pooled over
// several seeds to suppress the per-run sampling noise of a 60-node system.
func TestSubstrateEquivalence(t *testing.T) {
	seeds := []int64{11, 29, 47, 83}
	for _, tc := range cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var engPMF, clPMF, shPMF []float64
			var engOut, clOut, shOut, engIn, clIn, shIn float64
			for _, seed := range seeds {
				res, err := Run(Config{
					N:          tc.n,
					Rounds:     tc.rounds,
					Loss:       tc.lossRate,
					Seed:       seed,
					InitDegree: tc.initDegree,
					NewCore:    tc.newCore,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				engPMF = accumulate(engPMF, res.Engine.InDegreePMF)
				clPMF = accumulate(clPMF, res.Cluster.InDegreePMF)
				shPMF = accumulate(shPMF, res.Sharded.InDegreePMF)
				engOut += res.Engine.MeanOut
				clOut += res.Cluster.MeanOut
				shOut += res.Sharded.MeanOut
				engIn += res.Engine.MeanIn
				clIn += res.Cluster.MeanIn
				shIn += res.Sharded.MeanIn
			}
			k := float64(len(seeds))
			engOut, clOut, shOut = engOut/k, clOut/k, shOut/k
			engIn, clIn, shIn = engIn/k, clIn/k, shIn/k
			scale(engPMF, 1/k)
			scale(clPMF, 1/k)
			scale(shPMF, 1/k)

			pairs := []struct {
				name                 string
				aPMF                 []float64
				bPMF                 []float64
				aOut, bOut, aIn, bIn float64
			}{
				{"engine/cluster", engPMF, clPMF, engOut, clOut, engIn, clIn},
				{"engine/sharded", engPMF, shPMF, engOut, shOut, engIn, shIn},
				{"cluster/sharded", clPMF, shPMF, clOut, shOut, clIn, shIn},
			}
			for _, p := range pairs {
				ks := stats.KSDistance(p.aPMF, p.bPMF)
				t.Logf("%s: meanOut %.2f vs %.2f, meanIn %.2f vs %.2f, KS=%.3f",
					p.name, p.aOut, p.bOut, p.aIn, p.bIn, ks)
				if ks > 0.15 {
					t.Errorf("%s: in-degree KS distance %.3f exceeds 0.15", p.name, ks)
				}
				if d := relDiff(p.aOut, p.bOut); d > 0.10 {
					t.Errorf("%s: mean outdegree differs by %.1f%% (%.2f vs %.2f)", p.name, d*100, p.aOut, p.bOut)
				}
				if d := relDiff(p.aIn, p.bIn); d > 0.10 {
					t.Errorf("%s: mean indegree differs by %.1f%% (%.2f vs %.2f)", p.name, d*100, p.aIn, p.bIn)
				}
			}
		})
	}
}

// TestRunDeterminism pins that the harness is reproducible: same config,
// same result.
func TestRunDeterminism(t *testing.T) {
	tc := cases()[0]
	cfg := Config{
		N: tc.n, Rounds: 50, Loss: tc.lossRate, Seed: 5, InitDegree: tc.initDegree,
		NewCore: tc.newCore,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.KS != b.KS || a.KSEngineSharded != b.KSEngineSharded ||
		a.Engine.Traffic != b.Engine.Traffic || a.Cluster.Traffic != b.Cluster.Traffic ||
		a.Sharded.Traffic != b.Sharded.Traffic {
		t.Errorf("two identical runs diverged: %+v vs %+v", a, b)
	}
	if a.Engine.Traffic.Sends == 0 || a.Cluster.Traffic.Sends == 0 || a.Sharded.Traffic.Sends == 0 {
		t.Error("a substrate reported no traffic")
	}
}

// TestRunValidation covers the harness's own error paths.
func TestRunValidation(t *testing.T) {
	tc := cases()[0]
	good := Config{
		N: tc.n, Rounds: 10, Seed: 1, InitDegree: tc.initDegree,
		NewCore: tc.newCore,
	}
	bad := good
	bad.N = 1
	if _, err := Run(bad); err == nil {
		t.Error("accepted n=1")
	}
	bad = good
	bad.NewCore = nil
	if _, err := Run(bad); err == nil {
		t.Error("accepted nil core factory")
	}
	bad = good
	bad.InitDegree = tc.n
	if _, err := Run(bad); err == nil {
		t.Error("accepted init degree >= n")
	}
	bad = good
	bad.Loss = 2
	if _, err := Run(bad); err == nil {
		t.Error("accepted loss > 1")
	}
}

// accumulate adds q into p element-wise, growing p as needed.
func accumulate(p, q []float64) []float64 {
	if len(q) > len(p) {
		p = append(p, make([]float64, len(q)-len(p))...)
	}
	for i, v := range q {
		p[i] += v
	}
	return p
}

func scale(p []float64, f float64) {
	for i := range p {
		p[i] *= f
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		m = 1
	}
	return d / m
}

// TestTrafficExactEqualityLossless is the accounting half of Proposition
// 5.2: with no faults configured, both substrates must produce *identical*
// Traffic counters — not statistically close, equal. Push-pull with a full
// bootstrap view is the vehicle: keep-on-send views never lose entries, so
// with InitDegree == S no initiation ever self-loops and every substrate
// sends exactly n messages per round regardless of scheduling.
func TestTrafficExactEqualityLossless(t *testing.T) {
	const (
		n      = 40
		s      = 10
		rounds = 50
	)
	res, err := Run(Config{
		N: n, Rounds: rounds, Loss: 0, Seed: 7, InitDegree: s,
		NewCore: func() (protocol.StepCore, error) { return pushpull.NewCore(s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.Traffic != res.Cluster.Traffic || res.Engine.Traffic != res.Sharded.Traffic {
		t.Errorf("lossless traffic differs across substrates:\n engine  %+v\n cluster %+v\n sharded %+v",
			res.Engine.Traffic, res.Cluster.Traffic, res.Sharded.Traffic)
	}
	want := n * rounds
	if res.Engine.Traffic.Sends != want {
		t.Errorf("engine sends = %d, want exactly n*rounds = %d", res.Engine.Traffic.Sends, want)
	}
	for _, sub := range []struct {
		name string
		tr   metrics.Traffic
	}{{"engine", res.Engine.Traffic}, {"cluster", res.Cluster.Traffic}, {"sharded", res.Sharded.Traffic}} {
		if sub.tr.Losses != 0 || sub.tr.DeadLetters != 0 || sub.tr.Delayed != 0 {
			t.Errorf("%s: lossless run had losses/dead letters/delays: %+v", sub.name, sub.tr)
		}
		if sub.tr.Deliveries != sub.tr.Sends {
			t.Errorf("%s: deliveries %d != sends %d at loss 0", sub.name, sub.tr.Deliveries, sub.tr.Sends)
		}
	}
}

// TestTrafficConservationIdentity checks, for a protocol whose send count is
// schedule-dependent (S&F self-loops on empty slots), that each substrate
// still satisfies the exact conservation identity and that the two agree on
// volume within scheduling noise.
func TestTrafficConservationIdentity(t *testing.T) {
	const n = 60
	res, err := Run(Config{
		N: n, Rounds: 150, Loss: 0, Seed: 11, InitDegree: 8,
		NewCore: func() (protocol.StepCore, error) { return sendforget.NewCore(12, 4) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		tr   metrics.Traffic
	}{{"engine", res.Engine.Traffic}, {"cluster", res.Cluster.Traffic}, {"sharded", res.Sharded.Traffic}} {
		if sub.tr.Sends != sub.tr.Losses+sub.tr.Deliveries+sub.tr.DeadLetters {
			t.Errorf("%s: conservation identity violated: %+v", sub.name, sub.tr)
		}
		if sub.tr.Losses != 0 || sub.tr.DeadLetters != 0 {
			t.Errorf("%s: lossless full-membership run lost messages: %+v", sub.name, sub.tr)
		}
	}
	// Both cluster flavors tick every node once per round, so their volumes
	// differ only by seed noise (unlike the engine's sampling offset below).
	c, s := float64(res.Cluster.Traffic.Sends), float64(res.Sharded.Traffic.Sends)
	if diff := (c - s) / c; diff > 0.05 || diff < -0.05 {
		t.Errorf("cluster and sharded send volumes diverge beyond noise: %v vs %v", c, s)
	}
	// The volumes differ systematically, not just by noise: the cluster
	// ticks every node exactly once per round while the engine schedules n
	// uniformly random actions (with replacement), which shifts how often a
	// node initiates on an empty view and self-loops instead of sending.
	// Across seeds the cluster sends ~6-18% more; the band covers that
	// offset plus seed noise.
	e, c := float64(res.Engine.Traffic.Sends), float64(res.Cluster.Traffic.Sends)
	if diff := (e - c) / e; diff > 0.05 || diff < -0.25 {
		t.Errorf("send volumes diverge beyond scheduling offset + noise: engine %v cluster %v", e, c)
	}
}

// TestTrafficUnderBurstLoss reruns the S&F comparison under Gilbert-Elliott
// burst loss injected through Config.NewConditions: the identity must stay
// exact per substrate, and both observed loss rates must sit near the
// model's stationary rate.
func TestTrafficUnderBurstLoss(t *testing.T) {
	const (
		n    = 60
		rate = 0.2
	)
	res, err := Run(Config{
		N: n, Rounds: 150, Seed: 19, InitDegree: 8,
		NewConditions: func() (*faults.Conditions, error) {
			gem, err := loss.BurstyWithRate(rate, 4)
			if err != nil {
				return nil, err
			}
			return faults.New(gem)
		},
		NewCore: func() (protocol.StepCore, error) { return sendforget.NewCore(12, 4) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		tr   metrics.Traffic
	}{{"engine", res.Engine.Traffic}, {"cluster", res.Cluster.Traffic}, {"sharded", res.Sharded.Traffic}} {
		if sub.tr.Sends != sub.tr.Losses+sub.tr.Deliveries+sub.tr.DeadLetters {
			t.Errorf("%s: conservation identity violated under burst loss: %+v", sub.name, sub.tr)
		}
		got := float64(sub.tr.Losses) / float64(sub.tr.Sends)
		if got < rate-0.06 || got > rate+0.06 {
			t.Errorf("%s: observed loss rate %.3f far from stationary rate %.2f", sub.name, got, rate)
		}
	}
	el := float64(res.Engine.Traffic.Losses) / float64(res.Engine.Traffic.Sends)
	cl := float64(res.Cluster.Traffic.Losses) / float64(res.Cluster.Traffic.Sends)
	if d := el - cl; d > 0.05 || d < -0.05 {
		t.Errorf("substrates disagree on burst loss rate: engine %.3f cluster %.3f", el, cl)
	}
}

// TestTrafficUnderDelay checks that jittered delivery delay keeps the
// conservation identity exact after the harness drains both delay queues.
func TestTrafficUnderDelay(t *testing.T) {
	const n = 40
	res, err := Run(Config{
		N: n, Rounds: 80, Seed: 23, InitDegree: 8,
		NewConditions: func() (*faults.Conditions, error) {
			cond := faults.Lossless()
			if err := cond.SetDelay(faults.Delay{Fixed: 1, Jitter: 2}); err != nil {
				return nil, err
			}
			return cond, nil
		},
		NewCore: func() (protocol.StepCore, error) { return sendforget.NewCore(12, 4) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		tr   metrics.Traffic
	}{{"engine", res.Engine.Traffic}, {"cluster", res.Cluster.Traffic}, {"sharded", res.Sharded.Traffic}} {
		if sub.tr.Delayed == 0 {
			t.Errorf("%s: delay of 1..3 rounds delayed nothing", sub.name)
		}
		if sub.tr.Sends != sub.tr.Losses+sub.tr.Deliveries+sub.tr.DeadLetters {
			t.Errorf("%s: conservation identity violated after drain: %+v", sub.name, sub.tr)
		}
	}
}
