package experiments

import (
	"fmt"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sfopt"
	"sendforget/internal/rng"
)

// AblationOptParams configures the Section 5 optimizations ablation.
type AblationOptParams struct {
	N, S, DL int
	Loss     float64
	Rounds   int
	Seed     int64
}

func (p *AblationOptParams) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.Rounds == 0 {
		p.Rounds = 400
	}
	if p.Seed == 0 {
		p.Seed = 53
	}
}

// AblationOpt measures what each of the paper's Section 5 optimizations
// (undeletion, replace-when-full, larger batches) buys and costs relative
// to the analyzed baseline, under identical loss.
func AblationOpt(p AblationOptParams) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "abl3",
		Title:  "Section 5 optimizations: undeletion, replace-when-full, batching",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g rounds=%d", p.N, p.S, p.DL, p.Loss, p.Rounds),
	}
	variants := []struct {
		name string
		opts sfopt.Options
	}{
		{"baseline", sfopt.Options{N: p.N, S: p.S, DL: p.DL}},
		{"undelete", sfopt.Options{N: p.N, S: p.S, DL: p.DL, Undelete: true}},
		{"replace-when-full", sfopt.Options{N: p.N, S: p.S, DL: p.DL, ReplaceWhenFull: true}},
		{"batch-4", sfopt.Options{N: p.N, S: p.S, DL: p.DL, BatchK: 4}},
		{"all-three", sfopt.Options{N: p.N, S: p.S, DL: p.DL, Undelete: true, ReplaceWhenFull: true, BatchK: 4}},
	}
	t := Table{Columns: []string{
		"variant", "edges/node", "mean out", "indeg var", "components",
		"ids moved/send", "dup", "undel", "del", "repl",
	}}
	rows, err := Sweep(len(variants), sweepWorkers, func(i int) ([]string, error) {
		v := variants[i]
		proto, err := sfopt.New(v.opts)
		if err != nil {
			return nil, err
		}
		e, err := engine.New(proto, loss.MustUniform(p.Loss), rng.New(rng.DeriveSeed(p.Seed, int64(i))))
		if err != nil {
			return nil, err
		}
		e.Run(p.Rounds)
		if err := proto.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		g := e.Snapshot()
		deg := metrics.Degrees(g, nil)
		c := proto.Counters()
		perSend := 0.0
		if c.Sends > 0 {
			perSend = float64(c.Stored+c.Replaced) / float64(c.Sends)
		}
		return []string{v.name,
			f2(float64(g.NumEdges()) / float64(p.N)),
			f2(deg.MeanOut), f2(deg.VarIn), d(g.ComponentCount()),
			f2(perSend),
			d(c.Duplications), d(c.Undeletions), d(c.Deleted), d(c.Replaced),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"undeletion replaces duplication-style compensation with graveyard restores, trading correlated copies for slightly stale ids",
		"replace-when-full converts deletions into replacements, keeping views pinned at s like push-pull does",
		"batch-4 moves twice the ids per message: same mixing for half the messages, at the cost of a higher self-loop rate (all 4 selected slots must be occupied)",
	)
	return r, nil
}

// AblationNonuniformParams configures the nonuniform-loss ablation.
type AblationNonuniformParams struct {
	N, S, DL  int
	LossyRate float64 // inbound loss of the afflicted half
	Rounds    int
	Seed      int64
}

func (p *AblationNonuniformParams) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.LossyRate == 0 {
		p.LossyRate = 0.2
	}
	if p.Rounds == 0 {
		p.Rounds = 400
	}
	if p.Seed == 0 {
		p.Seed = 54
	}
}

// AblationNonuniform probes the paper's uniform-loss assumption (Section 4:
// "While nonuniform loss occurs in practice [33], it is more difficult to
// model and analyze"): half the nodes suffer heavy inbound loss, half none,
// and the per-group degree statistics show how far uniformity degrades.
func AblationNonuniform(p AblationNonuniformParams) (*Report, error) {
	p.setDefaults()
	rates := make(map[peer.ID]float64, p.N/2)
	var lossyGroup, cleanGroup []peer.ID
	for u := 0; u < p.N; u++ {
		if u%2 == 0 {
			rates[peer.ID(u)] = p.LossyRate
			lossyGroup = append(lossyGroup, peer.ID(u))
		} else {
			cleanGroup = append(cleanGroup, peer.ID(u))
		}
	}
	lm, err := loss.NewPerDest(0, rates)
	if err != nil {
		return nil, err
	}
	proto, err := sfopt.New(sfopt.Options{N: p.N, S: p.S, DL: p.DL})
	if err != nil {
		return nil, err
	}
	e, err := engine.New(proto, lm, rng.New(p.Seed))
	if err != nil {
		return nil, err
	}
	e.Run(p.Rounds)
	g := e.Snapshot()
	lossyDeg := metrics.Degrees(g, lossyGroup)
	cleanDeg := metrics.Degrees(g, cleanGroup)

	r := &Report{
		ID:    "abl4",
		Title: "Nonuniform loss (extension): half the nodes with lossy inbound links",
		Params: fmt.Sprintf("n=%d s=%d dL=%d lossy-inbound=%g rounds=%d",
			p.N, p.S, p.DL, p.LossyRate, p.Rounds),
	}
	t := Table{Columns: []string{"group", "mean out", "mean in", "indeg var"}}
	t.AddRow("lossy inbound", f2(lossyDeg.MeanOut), f2(lossyDeg.MeanIn), f2(lossyDeg.VarIn))
	t.AddRow("clean inbound", f2(cleanDeg.MeanOut), f2(cleanDeg.MeanIn), f2(cleanDeg.VarIn))
	r.Tables = append(r.Tables, t)

	// Representation skew: total instances of lossy-group ids vs clean.
	lossyIDs, cleanIDs := 0, 0
	for _, u := range lossyGroup {
		lossyIDs += g.IDInstances(u)
	}
	for _, u := range cleanGroup {
		cleanIDs += g.IDInstances(u)
	}
	t2 := Table{Columns: []string{"quantity", "value"}}
	t2.AddRow("components", d(g.ComponentCount()))
	t2.AddRow("lossy-group id instances / node", f2(float64(lossyIDs)/float64(len(lossyGroup))))
	t2.AddRow("clean-group id instances / node", f2(float64(cleanIDs)/float64(len(cleanGroup))))
	skew := 0.0
	if cleanIDs > 0 {
		skew = float64(lossyIDs) / float64(cleanIDs)
	}
	t2.AddRow("representation ratio (lossy/clean)", f4(skew))
	r.Tables = append(r.Tables, t2)
	r.Notes = append(r.Notes,
		"inbound loss starves a node's view refills, lowering its outdegree; its id still spreads through its own sends, so representation skews far less than the loss asymmetry",
		"the overlay stays connected: duplication compensates per-id, not per-link",
	)
	return r, nil
}
