package experiments

import (
	"fmt"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/flipper"
	"sendforget/internal/protocol/pushpull"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/protocol/shuffle"
	"sendforget/internal/rng"
)

// BaselinesParams configures the Section 3.1 baseline comparison.
type BaselinesParams struct {
	N, S       int
	DL         int // S&F duplication threshold
	Loss       float64
	Rounds     int
	Checkpoint int
	Seed       int64
}

func (p *BaselinesParams) setDefaults() {
	if p.N == 0 {
		p.N = 500
	}
	if p.S == 0 {
		p.S = 20
	}
	if p.DL == 0 {
		p.DL = 8
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.Rounds == 0 {
		p.Rounds = 400
	}
	if p.Checkpoint == 0 {
		p.Checkpoint = 50
	}
	if p.Seed == 0 {
		p.Seed = 31
	}
}

// Baselines reproduces the Section 3.1 taxonomy claims head-to-head under
// identical loss: delete-on-send shuffle gradually loses ids; keep-on-send
// push-pull is loss-immune but spatially dependent; S&F holds its edge
// population with bounded dependence.
func Baselines(p BaselinesParams) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "base1",
		Title:  "S&F vs shuffle (delete-on-send) vs push-pull (keep-on-send) under loss",
		Params: fmt.Sprintf("n=%d s=%d dL(S&F)=%d l=%g rounds=%d", p.N, p.S, p.DL, p.Loss, p.Rounds),
	}
	initDeg := p.S / 2
	build := func(name string) (protocol.Protocol, error) {
		switch name {
		case "send&forget":
			return sendforget.New(sendforget.Config{N: p.N, S: p.S, DL: p.DL, InitDegree: initDeg})
		case "shuffle":
			return shuffle.New(shuffle.Config{N: p.N, S: p.S, InitDegree: initDeg})
		case "flipper":
			return flipper.New(flipper.Config{N: p.N, S: p.S, Degree: initDeg})
		case "push-pull":
			return pushpull.New(pushpull.Config{N: p.N, S: p.S, InitDegree: initDeg})
		default:
			return nil, fmt.Errorf("unknown protocol %q", name)
		}
	}
	names := []string{"send&forget", "shuffle", "flipper", "push-pull"}

	edges := Table{Title: "Edges per node over time", Columns: []string{"round"}}
	for _, n := range names {
		edges.Columns = append(edges.Columns, n)
	}
	finals := Table{
		Title:   "Final state",
		Columns: []string{"protocol", "edges/node", "components", "self+dup fraction", "indegree var"},
	}

	checkpoints := p.Rounds/p.Checkpoint + 1
	series := make([][]float64, len(names))
	for i, name := range names {
		proto, err := build(name)
		if err != nil {
			return nil, err
		}
		e, err := engine.New(proto, loss.MustUniform(p.Loss), rng.New(rng.DeriveSeed(p.Seed, int64(i))))
		if err != nil {
			return nil, err
		}
		series[i] = make([]float64, 0, checkpoints)
		for c := 0; c < checkpoints; c++ {
			if c > 0 {
				e.Run(p.Checkpoint)
			}
			g := e.Snapshot()
			series[i] = append(series[i], float64(g.NumEdges())/float64(p.N))
		}
		g := e.Snapshot()
		sd := metrics.MeasureSpatialDependence(g)
		deg := metrics.Degrees(g, nil)
		finals.AddRow(name,
			f2(float64(g.NumEdges())/float64(p.N)),
			d(g.ComponentCount()),
			f4(sd.DependentFraction()),
			f2(deg.VarIn),
		)
	}
	for c := 0; c < checkpoints; c++ {
		row := []string{d(c * p.Checkpoint)}
		for i := range names {
			row = append(row, f2(series[i][c]))
		}
		edges.AddRow(row...)
	}
	r.Tables = append(r.Tables, edges, finals)
	r.Notes = append(r.Notes,
		"shuffle's and flipper's id populations decay toward collapse (Section 3.1: delete-on-send protocols 'are unable to withstand message loss')",
		"push-pull never loses ids but accumulates visible dependence (duplicates/self-edges)",
		"S&F stabilizes: duplications replace exactly the ids that loss destroys (Lemma 6.6)",
	)
	return r, nil
}

// AblationBurstParams configures the burst-loss ablation.
type AblationBurstParams struct {
	N, S, DL  int
	Rate      float64
	BurstLens []float64
	Rounds    int
	Seed      int64
}

func (p *AblationBurstParams) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 18
	}
	if p.Rate == 0 {
		p.Rate = 0.05
	}
	if p.BurstLens == nil {
		p.BurstLens = []float64{1, 10, 50}
	}
	if p.Rounds == 0 {
		p.Rounds = 300
	}
	if p.Seed == 0 {
		p.Seed = 11
	}
}

// AblationBurst compares S&F under uniform i.i.d. loss (the paper's model)
// against Gilbert-Elliott bursty loss at the same average rate — probing how
// far the paper's i.i.d. assumption carries.
func AblationBurst(p AblationBurstParams) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "abl1",
		Title:  "Uniform vs bursty loss at equal average rate (extension)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d rate=%g rounds=%d", p.N, p.S, p.DL, p.Rate, p.Rounds),
	}
	t := Table{Columns: []string{"loss model", "measured loss", "edges/node", "mean out", "indegree var", "components", "alpha"}}
	// The uniform reference plus one bursty variant per burst length, each a
	// self-contained run with the seed the historical sequential loop used.
	type burstVariant struct {
		name  string
		model func() (loss.Model, error)
		seed  int64
	}
	variants := []burstVariant{{
		name:  "uniform",
		model: func() (loss.Model, error) { return loss.MustUniform(p.Rate), nil },
		seed:  p.Seed,
	}}
	for i, bl := range p.BurstLens {
		if bl <= 1 {
			continue
		}
		bl := bl
		variants = append(variants, burstVariant{
			name:  fmt.Sprintf("bursty(len=%g)", bl),
			model: func() (loss.Model, error) { return loss.BurstyWithRate(p.Rate, bl) },
			seed:  rng.DeriveSeed(p.Seed, 1, int64(i)),
		})
	}
	rows, err := Sweep(len(variants), sweepWorkers, func(k int) ([]string, error) {
		v := variants[k]
		lm, err := v.model()
		if err != nil {
			return nil, err
		}
		proto, err := sendforget.New(sendforget.Config{N: p.N, S: p.S, DL: p.DL, TrackDependence: true})
		if err != nil {
			return nil, err
		}
		e, err := engine.New(proto, lm, rng.New(v.seed))
		if err != nil {
			return nil, err
		}
		e.Run(p.Rounds)
		g := e.Snapshot()
		deg := metrics.Degrees(g, nil)
		return []string{v.name,
			f4(e.Counters().LossRate()),
			f2(float64(g.NumEdges()) / float64(p.N)),
			f2(deg.MeanOut),
			f2(deg.VarIn),
			d(g.ComponentCount()),
			f4(proto.DependenceStats().Alpha()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"at equal average rates, S&F's steady state is nearly insensitive to burstiness: duplication reacts to the average id-destruction rate, not its correlation structure",
	)
	return r, nil
}

// AblationDLParams configures the duplication-threshold sweep.
type AblationDLParams struct {
	N, S   int
	Loss   float64
	DLs    []int
	Rounds int
	Seed   int64
}

func (p *AblationDLParams) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.DLs == nil {
		p.DLs = []int{0, 6, 12, 18, 24, 30, 34}
	}
	if p.Rounds == 0 {
		p.Rounds = 400
	}
	if p.Seed == 0 {
		p.Seed = 12
	}
}

// AblationDL sweeps the duplication threshold dL at fixed loss, exposing
// the design tradeoff of Section 5: dL = 0 lets the id population decay
// (like shuffle), large dL pins outdegrees and increases dependence.
func AblationDL(p AblationDLParams) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "abl2",
		Title:  "Duplication threshold sweep (design-choice ablation)",
		Params: fmt.Sprintf("n=%d s=%d l=%g rounds=%d", p.N, p.S, p.Loss, p.Rounds),
	}
	t := Table{Columns: []string{"dL", "edges/node", "mean out", "mean in", "alpha", "components", "dup prob"}}
	// Filter first but keep the original index of each surviving point: its
	// seed derives from (p.Seed, index), and preserving the index keeps the
	// report identical to the sequential loop.
	type dlPoint struct{ i, dl int }
	var pts []dlPoint
	for i, dl := range p.DLs {
		if dl <= p.S-6 {
			pts = append(pts, dlPoint{i: i, dl: dl})
		}
	}
	rows, err := Sweep(len(pts), sweepWorkers, func(k int) ([]string, error) {
		i, dl := pts[k].i, pts[k].dl
		initDeg := p.S / 2
		if initDeg < dl {
			initDeg = dl
		}
		proto, err := sendforget.New(sendforget.Config{
			N: p.N, S: p.S, DL: dl, InitDegree: initDeg, TrackDependence: true,
		})
		if err != nil {
			return nil, err
		}
		e, err := engine.New(proto, loss.MustUniform(p.Loss), rng.New(rng.DeriveSeed(p.Seed, int64(i))))
		if err != nil {
			return nil, err
		}
		e.Run(p.Rounds)
		g := e.Snapshot()
		deg := metrics.Degrees(g, nil)
		c := proto.Counters()
		dup := 0.0
		if c.Sends > 0 {
			dup = float64(c.Duplications) / float64(c.Sends)
		}
		return []string{d(dl),
			f2(float64(g.NumEdges()) / float64(p.N)),
			f2(deg.MeanOut), f2(deg.MeanIn),
			f4(proto.DependenceStats().Alpha()),
			d(g.ComponentCount()),
			f4(dup),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"dL=0 disables duplication: under loss the edge population decays and the overlay fragments (Section 5: 'node outdegrees would gradually decrease, until eventually all nodes become isolated')",
		"moderate dL stabilizes the population at slightly reduced independence; dL near s forces frequent duplication and lowers alpha",
	)
	return r, nil
}
