package experiments

import (
	"fmt"

	"sendforget/internal/churn"
	"sendforget/internal/rng"
)

// ChurnParams configures the sustained-churn experiment.
type ChurnParams struct {
	N, S, DL int
	Loss     float64
	Rates    []float64 // symmetric join/leave probability per round
	Rounds   int
	Seed     int64
}

func (p *ChurnParams) setDefaults() {
	if p.N == 0 {
		p.N = 300
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.Loss == 0 {
		p.Loss = 0.02
	}
	if p.Rates == nil {
		p.Rates = []float64{0, 0.1, 0.25, 0.5}
	}
	if p.Rounds == 0 {
		p.Rounds = 400
	}
	if p.Seed == 0 {
		p.Seed = 88
	}
}

// Churn1 extends the paper's churn-ceases analysis to *sustained* churn:
// joins and leaves keep firing while the protocol runs under loss. The
// paper's properties are stated for the post-churn steady state (Section
// 2); this experiment quantifies how much slack the protocol actually has —
// live-node connectivity, degree health, and the stale-id fraction at
// increasing churn rates.
func Churn1(p ChurnParams) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "churn1",
		Title:  "Sustained churn (extension): property persistence while churn never ceases",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g rounds=%d", p.N, p.S, p.DL, p.Loss, p.Rounds),
	}
	t := Table{Columns: []string{
		"churn rate", "joins", "leaves", "final live",
		"max live components", "final mean out (live)", "final stale fraction",
	}}
	for i, rate := range p.Rates {
		e, _, err := newSFEngine(p.N, p.S, p.DL, 0, p.Loss, 80, rng.DeriveSeed(p.Seed, int64(i)), false)
		if err != nil {
			return nil, err
		}
		cfg := churn.WorkloadConfig{
			JoinProb:  rate,
			LeaveProb: rate,
			MinLive:   p.N / 4,
		}
		stats, err := churn.RunWorkload(e, cfg, p.Rounds, 50, rng.New(rng.DeriveSeed(p.Seed, 100, int64(i))))
		if err != nil {
			return nil, err
		}
		maxComps := 0
		for _, s := range stats.Samples {
			if s.LiveComponents > maxComps {
				maxComps = s.LiveComponents
			}
		}
		last := stats.Samples[len(stats.Samples)-1]
		t.AddRow(
			fmt.Sprintf("%.2f", rate),
			d(stats.Joins), d(stats.Leaves), d(last.Live),
			d(maxComps), f2(last.MeanOutLive), f4(last.StaleFraction),
		)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the live overlay stays connected at churn rates far beyond what the analysis covers; stale ids grow with the leave rate but decay per Lemma 6.10",
		"joiners copy a live node's view (Section 5's join rule), so stale entries propagate into fresh views and the stale fraction exceeds the naive injection/decay balance",
	)
	return r, nil
}
