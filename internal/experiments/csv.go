package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CSV renders the table as RFC-4180 CSV (header row first).
func (t *Table) CSV() (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(t.Columns); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return b.String(), nil
}

// WriteCSV writes every table of the report into dir as
// <id>_<k>_<slug>.csv, creating dir if needed. External plotting tools
// regenerate the paper's figures from these files.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create %s: %w", dir, err)
	}
	for k, t := range r.Tables {
		data, err := t.CSV()
		if err != nil {
			return fmt.Errorf("experiments: render table %d of %s: %w", k, r.ID, err)
		}
		name := fmt.Sprintf("%s_%d_%s.csv", slug(r.ID), k, slug(t.Title))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			return fmt.Errorf("experiments: write %s: %w", name, err)
		}
	}
	return nil
}

// slug sanitizes a string into a filename fragment.
func slug(s string) string {
	if s == "" {
		return "table"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '.', r == '-', r == '/':
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if len(out) > 48 {
		out = out[:48]
	}
	if out == "" {
		return "table"
	}
	return out
}
