package experiments

import (
	"sync/atomic"

	"sendforget/internal/runtime"
)

// substrateEngine selects the execution backend for the experiments that
// drive a cluster through the unified Substrate interface (loss-stress
// today). Commands set it once at startup from their -engine flag; the
// default keeps the historical cluster-backed artifacts byte-stable.
var substrateEngine atomic.Value // holds a runtime.EngineKind

// SetEngine selects the execution backend for substrate-driven experiments.
// Call it before Run; the empty kind restores the default (cluster).
func SetEngine(k runtime.EngineKind) { substrateEngine.Store(k) }

// SubstrateEngine returns the currently selected backend kind,
// runtime.EngineCluster when none was set.
func SubstrateEngine() runtime.EngineKind {
	if k, ok := substrateEngine.Load().(runtime.EngineKind); ok && k != "" {
		return k
	}
	return runtime.EngineCluster
}
