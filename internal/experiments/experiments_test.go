package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
	rep := &Report{ID: "x", Title: "y", Params: "p", Tables: []Table{tab}, Notes: []string{"n1"}}
	if s := rep.String(); !strings.Contains(s, "=== x: y ===") || !strings.Contains(s, "note: n1") {
		t.Errorf("rendered report missing content:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if f(1.23456) != "1.235" {
		t.Errorf("f = %q", f(1.23456))
	}
	if f2(1.005) == "" || f4(0.12345) != "0.1235" {
		t.Error("fixed formatters broken")
	}
	if d(42) != "42" {
		t.Errorf("d = %q", d(42))
	}
	if pm(1.23, 0.456) != "1.2 ± 0.5" {
		t.Errorf("pm = %q", pm(1.23, 0.456))
	}
}

func TestFig61Small(t *testing.T) {
	r, err := Fig61(Fig61Params{S: 24, Stride: 4, SimN: 200, SimRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig6.1" || len(r.Tables) != 3 {
		t.Fatalf("report shape: id=%q tables=%d", r.ID, len(r.Tables))
	}
	// The moments table must show means near dm/3 = 8.
	moments := r.Tables[2]
	foundMarkov := false
	for _, row := range moments.Rows {
		if row[0] == "out markov" {
			foundMarkov = true
			mean, err := strconv.ParseFloat(row[1], 64)
			if err != nil || mean < 7.5 || mean > 8.5 {
				t.Errorf("markov mean out = %q, want ~8", row[1])
			}
		}
	}
	if !foundMarkov {
		t.Error("moments table missing markov row")
	}
}

func TestFig62(t *testing.T) {
	r, err := Fig62(Fig62Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(r.Tables))
	}
	structure := r.Tables[0]
	want := map[string]string{
		"isolated state (0,0) in space": "false",
		"chain irreducible":             "true",
		"chain ergodic":                 "true",
	}
	for _, row := range structure.Rows {
		if expect, ok := want[row[0]]; ok && row[1] != expect {
			t.Errorf("%s = %s, want %s", row[0], row[1], expect)
		}
	}
	if len(r.Tables[1].Rows) == 0 {
		t.Error("no example transitions listed")
	}
}

func TestTab63SmallScale(t *testing.T) {
	// Scaled-down rule: dHat=10, delta=0.01 — just verify structure and
	// bracketing (dL < dHat < s).
	r, err := Tab63(Tab63Params{DHat: 10, Delta: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows[1:] { // skip the paper row
		dl, err1 := strconv.Atoi(row[1])
		s, err2 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if !(dl < 10 && 10 < s) {
			t.Errorf("%s thresholds (%d, %d) do not bracket dHat=10", row[0], dl, s)
		}
		if dl%2 != 0 || s%2 != 0 {
			t.Errorf("%s thresholds (%d, %d) not even", row[0], dl, s)
		}
	}
}

func TestFig63Small(t *testing.T) {
	r, err := Fig63(Fig63Params{S: 16, DL: 6, LossRates: []float64{0, 0.05}, Stride: 4, SimN: 200, SimRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(r.Tables))
	}
	moments := r.Tables[0]
	if len(moments.Rows) != 2 {
		t.Fatalf("moment rows = %d, want 2", len(moments.Rows))
	}
	// Outdegree decreases with loss (Lemma 6.4): compare the "outdegree"
	// column's means.
	parseMean := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
		if err != nil {
			t.Fatalf("unparseable mean %q", cell)
		}
		return v
	}
	if m0, m5 := parseMean(moments.Rows[0][2]), parseMean(moments.Rows[1][2]); m0 <= m5 {
		t.Errorf("outdegree did not decrease with loss: %v <= %v", m0, m5)
	}
}

func TestFig64Small(t *testing.T) {
	r, err := Fig64(Fig64Params{
		N: 80, S: 12, DL: 4, LossRates: []float64{0, 0.05},
		Rounds: 100, Leavers: 2, Checkpoint: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Columns) != 5 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// First row is round 0: bound and sim both 1.
	first := tab.Rows[0]
	if first[1] != "1.0000" || first[2] != "1.0000" {
		t.Errorf("round-0 row = %v", first)
	}
	// Simulation must decay below the bound by the last checkpoint.
	last := tab.Rows[len(tab.Rows)-1]
	bound, _ := strconv.ParseFloat(last[1], 64)
	sim, _ := strconv.ParseFloat(last[2], 64)
	if sim > bound+0.1 {
		t.Errorf("simulated survival %v far above bound %v", sim, bound)
	}
}

func TestCor614Small(t *testing.T) {
	r, err := Cor614(Cor614Params{N: 100, S: 12, DL: 6, Joiners: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		got, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("unparseable indegree %q", row[3])
		}
		if got == 0 {
			t.Errorf("joiner %s acquired no in-neighbors", row[0])
		}
	}
}

func TestLem66Small(t *testing.T) {
	r, err := Lem66(Lem66Params{N: 120, S: 16, DL: 6, Losses: []float64{0, 0.05}, Rounds: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	for _, row := range tab.Rows {
		gap, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("unparseable gap %q", row[4])
		}
		if gap > 0.03 || gap < -0.03 {
			t.Errorf("loss %s: dup - (l+del) = %v, want ~0 (Lemma 6.6)", row[0], gap)
		}
	}
}

func TestLem76Small(t *testing.T) {
	// SampleEvery must exceed the ~s^2/d-round entry lifetime or the
	// chi-square cells correlate; 48 rounds is ~2.7 lifetimes here.
	r, err := Lem76(Lem76Params{N: 60, S: 12, DL: 4, Samples: 150, SampleEvery: 48, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	rejected := 0
	for _, row := range tab.Rows {
		if row[5] == "true" {
			rejected++
		}
	}
	// At the 1% level, occasional rejection can happen by chance with
	// correlated samples; all three observers rejecting means failure.
	if rejected == len(tab.Rows) {
		t.Errorf("uniformity rejected for all observers:\n%s", tab.String())
	}
}

func TestLem79Small(t *testing.T) {
	r, err := Lem79(Lem79Params{N: 150, S: 16, DL: 6, Losses: []float64{0, 0.05}, Rounds: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("alpha bound violated at loss %s:\n%s", row[0], r.Tables[0].String())
		}
	}
}

func TestTab74(t *testing.T) {
	r, err := Tab74(Tab74Params{})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	// Find the paper's cell: rate 0.010, eps=1e-30 -> 26.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "0.010" && row[len(row)-1] == "26" {
			found = true
		}
	}
	if !found {
		t.Errorf("paper cell (1%%, 1e-30) -> 26 not reproduced:\n%s", tab.String())
	}
}

func TestLem715Small(t *testing.T) {
	r, err := Lem715(Lem715Params{Ns: []int{60, 120}, S: 12, DL: 4, MaxRounds: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		forget, err := strconv.Atoi(row[2])
		if err != nil || forget <= 0 {
			t.Errorf("invalid forget rounds %q", row[2])
		}
	}
}

func TestBaselinesSmall(t *testing.T) {
	r, err := Baselines(BaselinesParams{N: 150, S: 12, DL: 4, Loss: 0.1, Rounds: 200, Checkpoint: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	edges := r.Tables[0]
	first := edges.Rows[0]
	last := edges.Rows[len(edges.Rows)-1]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable %q", s)
		}
		return v
	}
	// Column order: round, send&forget, shuffle, flipper, push-pull.
	sfStart, sfEnd := parse(first[1]), parse(last[1])
	shStart, shEnd := parse(first[2]), parse(last[2])
	flStart, flEnd := parse(first[3]), parse(last[3])
	ppStart, ppEnd := parse(first[4]), parse(last[4])
	if shEnd > shStart/2 {
		t.Errorf("shuffle did not decay under loss: %v -> %v", shStart, shEnd)
	}
	if flEnd > flStart/2 {
		t.Errorf("flipper did not decay under loss: %v -> %v", flStart, flEnd)
	}
	if sfEnd < sfStart/2 {
		t.Errorf("S&F collapsed under loss: %v -> %v", sfStart, sfEnd)
	}
	if ppEnd < ppStart {
		t.Errorf("push-pull lost ids: %v -> %v", ppStart, ppEnd)
	}
}

func TestAblationBurstSmall(t *testing.T) {
	r, err := AblationBurst(AblationBurstParams{N: 120, S: 16, DL: 6, Rate: 0.05, BurstLens: []float64{1, 10}, Rounds: 150, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (uniform + bursty(10))", len(tab.Rows))
	}
	// Mean outdegree under bursty loss stays within 20% of uniform.
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	u, b := parse(tab.Rows[0][3]), parse(tab.Rows[1][3])
	if u == 0 || b == 0 || b < 0.8*u || b > 1.2*u {
		t.Errorf("bursty mean out %v far from uniform %v", b, u)
	}
}

func TestAblationDLSmall(t *testing.T) {
	r, err := AblationDL(AblationDLParams{N: 120, S: 16, Loss: 0.1, DLs: []int{0, 6, 10}, Rounds: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(s, 64)
		return v
	}
	// dL=0 decays; dL=6 holds its population.
	if e0, e6 := parse(tab.Rows[0][1]), parse(tab.Rows[1][1]); e0 >= e6/2 {
		t.Errorf("dL=0 edges/node %v did not decay vs dL=6 %v", e0, e6)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d ids, want 21: %v", len(ids), ids)
	}
	if _, err := Run("no-such-id"); err == nil {
		t.Error("Run accepted unknown id")
	}
	// Run the two cheapest registry entries end to end.
	for _, id := range []string{"fig6.2", "tab7.4"} {
		r, err := Run(id)
		if err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
		if r.ID != id {
			t.Errorf("Run(%s) returned report id %q", id, r.ID)
		}
	}
}

func TestLem75Small(t *testing.T) {
	r, err := Lem75(Lem75Params{N: 3, S: 6, DL: 2, Loss: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 4 {
		t.Fatalf("tables = %d, want 4", len(r.Tables))
	}
	lossy := r.Tables[2]
	for _, row := range lossy.Rows {
		switch row[0] {
		case "strongly connected (Lemma 7.1)", "ergodic (Lemma 7.2)":
			if row[1] != "true" {
				t.Errorf("%s = %s, want true", row[0], row[1])
			}
		}
	}
	// Edge probabilities table: off-diagonal cells of each row must agree.
	et := r.Tables[3]
	for _, row := range et.Rows {
		var vals []string
		for i, cell := range row[1:] {
			if i+1 == len(row)-1 && false {
				continue
			}
			if len(cell) > 6 && cell[:6] == "(self)" {
				continue
			}
			vals = append(vals, cell)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				t.Errorf("edge probabilities differ in row %v", row)
			}
		}
	}
}

func TestAblationOptSmall(t *testing.T) {
	r, err := AblationOpt(AblationOptParams{N: 120, S: 12, DL: 4, Loss: 0.05, Rounds: 150, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 variants", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable %q", s)
		}
		return v
	}
	// batch-4 moves more ids per send than baseline.
	var base, batch float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "baseline":
			base = parse(row[5])
		case "batch-4":
			batch = parse(row[5])
		}
	}
	if batch <= base {
		t.Errorf("batch-4 ids/send %v <= baseline %v", batch, base)
	}
	// replace-when-full has zero deletions.
	for _, row := range tab.Rows {
		if row[0] == "replace-when-full" && row[8] != "0" {
			t.Errorf("replace-when-full deleted %s ids", row[8])
		}
	}
}

func TestAblationNonuniformSmall(t *testing.T) {
	r, err := AblationNonuniform(AblationNonuniformParams{N: 150, S: 12, DL: 4, LossyRate: 0.3, Rounds: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(r.Tables))
	}
	groups := r.Tables[0]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable %q", s)
		}
		return v
	}
	lossyOut := parse(groups.Rows[0][1])
	cleanOut := parse(groups.Rows[1][1])
	if lossyOut >= cleanOut {
		t.Errorf("lossy-inbound group outdegree %v not below clean %v", lossyOut, cleanOut)
	}
	// Connectivity must survive.
	for _, row := range r.Tables[1].Rows {
		if row[0] == "components" && row[1] != "1" {
			t.Errorf("overlay fragmented under nonuniform loss: %s components", row[1])
		}
	}
}

func TestChurn1Small(t *testing.T) {
	r, err := Churn1(ChurnParams{N: 100, S: 12, DL: 4, Loss: 0.02, Rates: []float64{0, 0.3}, Rounds: 150, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	// Zero-rate row: no events, fully live, one component.
	zero := tab.Rows[0]
	if zero[1] != "0" || zero[2] != "0" || zero[3] != "100" {
		t.Errorf("zero-churn row = %v", zero)
	}
	// Churned row: events fired and the live overlay held together.
	churned := tab.Rows[1]
	if churned[1] == "0" || churned[2] == "0" {
		t.Errorf("churn did not fire: %v", churned)
	}
	comps, err := strconv.Atoi(churned[4])
	if err != nil || comps > 3 {
		t.Errorf("max live components = %v", churned[4])
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Title: "My Table", Columns: []string{"a", "b"}}
	tab.AddRow("1", "x,y")
	got, err := tab.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "a,b\n") || !strings.Contains(got, `"x,y"`) {
		t.Errorf("CSV = %q", got)
	}
}

func TestReportWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tab := Table{Title: "Edges per node", Columns: []string{"round", "v"}}
	tab.AddRow("0", "1.5")
	rep := &Report{ID: "fig6.3", Tables: []Table{tab, {Title: "", Columns: []string{"x"}}}}
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("wrote %d files, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "fig6-3_") || !strings.HasSuffix(e.Name(), ".csv") {
			t.Errorf("unexpected file name %q", e.Name())
		}
	}
}

func TestSlug(t *testing.T) {
	tests := []struct{ in, want string }{
		{"fig6.3", "fig6-3"},
		{"Edges per node over time", "edges-per-node-over-time"},
		{"", "table"},
		{"###", "table"},
	}
	for _, tt := range tests {
		if got := slug(tt.in); got != tt.want {
			t.Errorf("slug(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLem78Small(t *testing.T) {
	r, err := Lem78(Lem78Params{N: 150, S: 12, DL: 4, Loss: 0.05, Rounds: 300, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	vals := map[string]string{}
	for _, row := range tab.Rows {
		vals[row[0]] = row[1]
	}
	retAll, err := strconv.ParseFloat(vals["return probability (all created)"], 64)
	if err != nil {
		t.Fatalf("unparseable return probability %q", vals["return probability (all created)"])
	}
	if retAll > 0.5 {
		t.Errorf("return probability %v exceeds the Lemma 7.8 bound 0.5", retAll)
	}
	beta, err := strconv.ParseFloat(vals["self-edge fraction (beta)"], 64)
	if err != nil {
		t.Fatal(err)
	}
	if beta > 1.0/6.0 {
		t.Errorf("beta %v exceeds the Lemma 7.9 allowance 1/6", beta)
	}
	created, _ := strconv.Atoi(vals["dependent instances created"])
	if created < 100 {
		t.Errorf("too few duplications (%d) for a meaningful estimate", created)
	}
}

func TestRW1Small(t *testing.T) {
	r, err := RW1(RW1Params{N: 120, S: 12, DL: 4, Loss: 0.1, WalkLengths: []int{2, 8}, Trials: 5000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("unparseable %q", s)
		}
		return v
	}
	for _, row := range tab.Rows {
		rate, theory := parse(row[1]), parse(row[2])
		// Empirical success rate tracks (1-l)^k within sampling noise.
		if rate < theory-0.03 || rate > theory+0.03 {
			t.Errorf("k=%s: rate %v vs theory %v", row[0], rate, theory)
		}
	}
	// Exponential decay: k=8 rate well below k=2 rate.
	if r2, r8 := parse(tab.Rows[0][1]), parse(tab.Rows[1][1]); r8 >= r2 {
		t.Errorf("success rate did not decay with walk length: %v -> %v", r2, r8)
	}
}

func TestLossStressSmall(t *testing.T) {
	p := LossStressParams{N: 40, S: 12, DL: 4, InitDegree: 6, Rounds: 60, LeaveAt: 15, FaultAt: 20, HealAt: 40, Rate: 0.05, Seed: 9}
	r, err := LossStress(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("tables = %d, want traffic + overlay", len(r.Tables))
	}
	traffic := r.Tables[0]
	if len(traffic.Rows) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(traffic.Rows))
	}
	byName := map[string][]string{}
	for _, row := range traffic.Rows {
		byName[row[0]] = row
	}
	if row := byName["partition-heal"]; row[4] == "0" {
		t.Error("partition scenario counted no partition drops")
	}
	if row := byName["delay-jitter"]; row[5] == "0" {
		t.Error("delay scenario delayed nothing")
	}
	if row := byName["uniform"]; row[4] != "0" || row[5] != "0" {
		t.Errorf("uniform scenario has fault-specific drops: %v", row)
	}
	// Determinism: same params, identical rendered report.
	r2, err := LossStress(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Tables {
		if r.Tables[i].String() != r2.Tables[i].String() {
			t.Errorf("table %d not deterministic:\n%s\nvs\n%s", i, r.Tables[i].String(), r2.Tables[i].String())
		}
	}
}
