package experiments

import (
	"fmt"
	"math"

	"sendforget/internal/analysis"
	"sendforget/internal/degreemc"
	"sendforget/internal/markov"
	"sendforget/internal/metrics"
	"sendforget/internal/rng"
	"sendforget/internal/stats"
)

// mathSqrt aliases math.Sqrt for the table builders.
func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// Fig61Params configures the Figure 6.1 reproduction.
type Fig61Params struct {
	// S is the view size (paper: 90); DL = 0, loss = 0, ds(u) = S for all u.
	S int
	// Stride selects every Stride-th degree for the table (default 6).
	Stride int
	// SimN adds a live lossless Monte-Carlo cross-check with SimN nodes
	// initialized on the ds(u) = S manifold (negative disables; 0 selects
	// the default 1500).
	SimN      int
	SimRounds int
	Seed      int64
}

func (p *Fig61Params) setDefaults() {
	if p.S == 0 {
		p.S = 90
	}
	if p.Stride == 0 {
		p.Stride = 6
	}
	if p.SimN == 0 {
		p.SimN = 1500
	}
	if p.SimN < 0 {
		p.SimN = 0
	}
	if p.SimRounds == 0 {
		p.SimRounds = 300
	}
	if p.Seed == 0 {
		p.Seed = 61
	}
}

// Fig61 reproduces Figure 6.1: S&F node degree distributions (analytical
// approximation of Eq. 6.1 and exact from the degree MC) against binomial
// distributions with the same expectation, for s=90, dL=0, l=0, ds(u)=90.
func Fig61(p Fig61Params) (*Report, error) {
	p.setDefaults()
	dm := p.S
	res, err := degreemc.Solve(
		degreemc.Params{S: p.S, DL: 0},
		degreemc.SolveOptions{InitOut: dm / 3, InitIn: dm / 3},
	)
	if err != nil {
		return nil, err
	}
	anal, err := analysis.OutdegreeDist(dm)
	if err != nil {
		return nil, err
	}
	analIn, err := analysis.IndegreeDist(dm)
	if err != nil {
		return nil, err
	}
	meanOut := stats.DistMean(res.OutDist)
	binOut := stats.BinomialDist(dm, meanOut/float64(dm))
	meanIn := stats.DistMean(res.InDist)
	binIn := stats.BinomialDist(dm, meanIn/float64(dm))

	r := &Report{
		ID:     "fig6.1",
		Title:  "S&F degree distributions vs binomial (analytical and degree MC)",
		Params: fmt.Sprintf("s=%d dL=0 l=0 ds(u)=%d, n >> s", p.S, dm),
	}
	outT := Table{
		Title:   "Outdegree distribution",
		Columns: []string{"degree", "binomial", "analytical", "markov"},
	}
	for deg := 0; deg <= dm; deg += p.Stride {
		outT.AddRow(d(deg), f4(binOut[deg]), f4(anal[deg]), f4(res.OutDist[deg]))
	}
	r.Tables = append(r.Tables, outT)

	inT := Table{
		Title:   "Indegree distribution",
		Columns: []string{"degree", "binomial", "analytical", "markov"},
	}
	maxIn := len(res.InDist) - 1
	// Indegrees concentrate, so sample twice as densely as the outdegree
	// table — but never with a zero step (Stride 1 would otherwise loop
	// forever).
	inStride := p.Stride / 2
	if inStride < 1 {
		inStride = 1
	}
	for deg := 0; deg <= maxIn && deg <= dm; deg += inStride {
		bi := 0.0
		if deg < len(binIn) {
			bi = binIn[deg]
		}
		ai := 0.0
		if deg < len(analIn) {
			ai = analIn[deg]
		}
		inT.AddRow(d(deg), f4(bi), f4(ai), f4(res.InDist[deg]))
	}
	r.Tables = append(r.Tables, inT)

	sumT := Table{
		Title:   "Moments",
		Columns: []string{"distribution", "mean", "stddev"},
	}
	sumT.AddRow("out binomial", f2(stats.DistMean(binOut)), f2(stats.DistStdDev(binOut)))
	sumT.AddRow("out analytical", f2(stats.DistMean(anal)), f2(stats.DistStdDev(anal)))
	sumT.AddRow("out markov", f2(meanOut), f2(res.StdOut()))
	sumT.AddRow("in binomial", f2(stats.DistMean(binIn)), f2(stats.DistStdDev(binIn)))
	sumT.AddRow("in analytical", f2(stats.DistMean(analIn)), f2(stats.DistStdDev(analIn)))
	sumT.AddRow("in markov", f2(meanIn), f2(res.StdIn()))
	if p.SimN > 0 {
		// Live lossless protocol run on the ds(u) = dm manifold: the
		// circulant bootstrap with InitDegree = dm/3 gives every node sum
		// degree exactly dm, the initialization Section 6.1 assumes.
		e, _, err := newSFEngine(p.SimN, p.S, 0, dm/3, 0, 0, p.Seed, false)
		if err != nil {
			return nil, err
		}
		e.Run(p.SimRounds)
		deg := metrics.Degrees(e.Snapshot(), nil)
		sumT.AddRow("out simulation", f2(deg.MeanOut), f2(mathSqrt(deg.VarOut)))
		sumT.AddRow("in simulation", f2(deg.MeanIn), f2(mathSqrt(deg.VarIn)))
	}
	r.Tables = append(r.Tables, sumT)

	r.Notes = append(r.Notes,
		fmt.Sprintf("TV(markov, analytical) outdegree = %s (the paper: 'similar form and variance')", f4(stats.TotalVariation(res.OutDist, anal))),
		fmt.Sprintf("Lemma 6.3 check: mean out %s, mean in %s, both should be dm/3 = %d", f2(meanOut), f2(meanIn), dm/3),
		"indegree variance is far below the binomial's (the figure's key visual feature); outdegree variance is comparable to (slightly above) the binomial's — confirmed by the live simulation, which matches the degree MC to two decimals",
	)
	return r, nil
}

// Fig62Params configures the Figure 6.2 reproduction.
type Fig62Params struct {
	// S/DL/Loss select a small chain for enumeration (defaults 8/2/0.05).
	S, DL  int
	Loss   float64
	SumCap int
}

func (p *Fig62Params) setDefaults() {
	if p.S == 0 {
		p.S, p.DL = 8, 2
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.SumCap == 0 {
		p.SumCap = 2 * p.S
	}
}

// Fig62 reproduces the structure of Figure 6.2: the degree MC's reachable
// states, its solid (atomic-action) and dashed (loss/duplication/deletion)
// transitions, and the unreachability of the isolated state.
func Fig62(p Fig62Params) (*Report, error) {
	p.setDefaults()
	sp, err := degreemc.NewSpace(degreemc.Params{S: p.S, DL: p.DL, Loss: p.Loss, SumCap: p.SumCap})
	if err != nil {
		return nil, err
	}
	// A representative mixing field; the structure (which edges exist) is
	// what the figure shows, not the exact weights.
	field := degreemc.Field{PFull: 0.05, Gap: float64(p.S) / 2, PDup: 0.1}
	trs := sp.Transitions(field)
	atomic, nonAtomic := 0, 0
	for _, tr := range trs {
		if tr.Kind == degreemc.Atomic {
			atomic++
		} else {
			nonAtomic++
		}
	}
	chain, err := sp.BuildChain(field)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "fig6.2",
		Title:  "Degree MC structure: reachable states, solid vs dashed transitions",
		Params: fmt.Sprintf("s=%d dL=%d l=%g sumCap=%d", p.S, p.DL, p.Loss, p.SumCap),
	}
	t := Table{Title: "Chain structure", Columns: []string{"quantity", "value"}}
	t.AddRow("states", d(sp.Len()))
	t.AddRow("solid transitions (atomic actions)", d(atomic))
	t.AddRow("dashed transitions (loss/dup/del)", d(nonAtomic))
	t.AddRow("isolated state (0,0) in space", fmt.Sprintf("%v", hasIsolated(sp)))
	t.AddRow("chain irreducible", fmt.Sprintf("%v", markov.IsIrreducible(chain)))
	t.AddRow("chain ergodic", fmt.Sprintf("%v", markov.IsErgodic(chain)))
	r.Tables = append(r.Tables, t)

	// Example transitions out of a mid-range state, as drawn in the figure.
	ref := degreemc.State{Out: p.DL + 2, In: 2}
	ex := Table{
		Title:   fmt.Sprintf("Transitions out of %+v", ref),
		Columns: []string{"to", "rate", "kind"},
	}
	for _, tr := range trs {
		if tr.From == ref {
			kind := "solid (atomic)"
			if tr.Kind == degreemc.NonAtomic {
				kind = "dashed (loss/dup/del)"
			}
			ex.AddRow(fmt.Sprintf("(%d,%d)", tr.To.Out, tr.To.In), f(tr.Rate), kind)
		}
	}
	r.Tables = append(r.Tables, ex)
	r.Notes = append(r.Notes,
		"dL > 0 excludes the isolated (0,0) state from the space entirely, matching the figure's disconnected light circle",
	)
	return r, nil
}

func hasIsolated(sp *degreemc.Space) bool {
	_, ok := sp.Index(degreemc.State{Out: 0, In: 0})
	return ok
}

// Tab63Params configures the threshold-selection reproduction.
type Tab63Params struct {
	// DHat is the desired lossless expected outdegree (paper: 30).
	DHat int
	// Delta is the duplication/deletion probability budget (paper: 0.01).
	Delta float64
}

func (p *Tab63Params) setDefaults() {
	if p.DHat == 0 {
		p.DHat = 30
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
}

// Tab63 reproduces the Section 6.3 worked example: dHat=30, delta=0.01
// should give dL=18 and s=40.
func Tab63(p Tab63Params) (*Report, error) {
	p.setDefaults()
	dlA, sA, err := analysis.Thresholds(p.DHat, p.Delta)
	if err != nil {
		return nil, err
	}
	// Exact distribution from the degree MC on the dm = 3*dHat manifold.
	dm := 3 * p.DHat
	res, err := degreemc.Solve(
		degreemc.Params{S: dm, DL: 0},
		degreemc.SolveOptions{InitOut: p.DHat, InitIn: p.DHat},
	)
	if err != nil {
		return nil, err
	}
	dlM, sM, err := analysis.ThresholdsFromDist(res.OutDist, p.DHat, p.Delta)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "tab6.3",
		Title:  "Threshold selection rule of Section 6.3",
		Params: fmt.Sprintf("dHat=%d delta=%g", p.DHat, p.Delta),
	}
	t := Table{Columns: []string{"source", "dL", "s"}}
	t.AddRow("paper (Section 6.3)", "18", "40")
	t.AddRow("analytical Eq. 6.1", d(dlA), d(sA))
	t.AddRow("degree MC", d(dlM), d(sM))
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the lower threshold matches the paper exactly; the upper threshold lands within 1-2 even steps of the paper's 40 — the tail mass near d=40 sits close to delta, so small distributional differences move the discrete cutoff",
	)
	return r, nil
}

// Fig63Params configures the Figure 6.3 reproduction.
type Fig63Params struct {
	S, DL     int
	LossRates []float64
	Stride    int
	// SimN enables a Monte-Carlo cross-check column: a live simulation of
	// SimN nodes per loss rate (0 disables; the default 1500 enables it).
	SimN      int
	SimRounds int
	Seed      int64
}

func (p *Fig63Params) setDefaults() {
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 18
	}
	if p.LossRates == nil {
		p.LossRates = []float64{0, 0.01, 0.05, 0.1}
	}
	if p.Stride == 0 {
		p.Stride = 4
	}
	if p.SimN == 0 {
		p.SimN = 1500
	}
	if p.SimN < 0 {
		p.SimN = 0 // explicit opt-out
	}
	if p.SimRounds == 0 {
		p.SimRounds = 300
	}
	if p.Seed == 0 {
		p.Seed = 63
	}
}

// Fig63 reproduces Figure 6.3: in/outdegree distributions from the degree
// MC for several loss rates at dL=18, s=40, with the paper's reported
// average indegrees 28±3.4, 27±3.6, 24±4.1, 23±4.3.
func Fig63(p Fig63Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "fig6.3",
		Title:  "Degree distributions under loss (degree MC)",
		Params: fmt.Sprintf("s=%d dL=%d loss=%v", p.S, p.DL, p.LossRates),
	}
	moments := Table{
		Title:   "Moments per loss rate",
		Columns: []string{"loss", "indegree (MC)", "outdegree (MC)", "indegree (sim)", "outdegree (sim)", "dup prob", "del prob", "l + del"},
	}
	inCurves := Table{Title: "Indegree distribution", Columns: []string{"degree"}}
	outCurves := Table{Title: "Outdegree distribution", Columns: []string{"degree"}}
	// Each loss rate is an independent solve + simulation: fan them out to
	// the worker pool, seeding each simulation from its input index so the
	// assembled report is identical to the sequential one.
	type lossPoint struct {
		res           *degreemc.Result
		simIn, simOut string
	}
	points, err := Sweep(len(p.LossRates), sweepWorkers, func(li int) (lossPoint, error) {
		l := p.LossRates[li]
		res, err := degreemc.Solve(degreemc.Params{S: p.S, DL: p.DL, Loss: l}, degreemc.SolveOptions{})
		if err != nil {
			return lossPoint{}, fmt.Errorf("loss %v: %w", l, err)
		}
		pt := lossPoint{res: res, simIn: "-", simOut: "-"}
		if p.SimN > 0 {
			e, _, err := newSFEngine(p.SimN, p.S, p.DL, 0, l, 0, rng.DeriveSeed(p.Seed, int64(li)), false)
			if err != nil {
				return lossPoint{}, err
			}
			e.Run(p.SimRounds)
			deg := metrics.Degrees(e.Snapshot(), nil)
			pt.simIn = pm(deg.MeanIn, mathSqrt(deg.VarIn))
			pt.simOut = pm(deg.MeanOut, mathSqrt(deg.VarOut))
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	var results []*degreemc.Result
	for li, pt := range points {
		l := p.LossRates[li]
		results = append(results, pt.res)
		moments.AddRow(
			fmt.Sprintf("%.2f", l),
			pm(pt.res.MeanIn(), pt.res.StdIn()),
			pm(pt.res.MeanOut(), pt.res.StdOut()),
			pt.simIn, pt.simOut,
			f4(pt.res.DupProb), f4(pt.res.DelProb), f4(l+pt.res.DelProb),
		)
		inCurves.Columns = append(inCurves.Columns, fmt.Sprintf("l=%.2f", l))
		outCurves.Columns = append(outCurves.Columns, fmt.Sprintf("l=%.2f", l))
	}
	maxIn := 0
	for _, res := range results {
		if len(res.InDist) > maxIn {
			maxIn = len(res.InDist)
		}
	}
	for deg := 0; deg < maxIn; deg += p.Stride {
		row := []string{d(deg)}
		for _, res := range results {
			v := 0.0
			if deg < len(res.InDist) {
				v = res.InDist[deg]
			}
			row = append(row, f4(v))
		}
		inCurves.AddRow(row...)
	}
	for deg := p.DL; deg <= p.S; deg += 2 {
		row := []string{d(deg)}
		for _, res := range results {
			row = append(row, f4(res.OutDist[deg]))
		}
		outCurves.AddRow(row...)
	}
	r.Tables = append(r.Tables, moments, inCurves, outCurves)
	r.Notes = append(r.Notes,
		"paper reports average indegrees 28±3.4, 27±3.6, 24±4.1, 23±4.3 for l=0, 0.01, 0.05, 0.1",
		"Lemma 6.4: expected outdegree decreases with loss yet stays well above dL",
		"Lemma 6.6: dup prob tracks l + del prob; Observation 6.5: del prob decreases with loss",
	)
	return r, nil
}
