package experiments

import (
	"fmt"

	"sendforget/internal/analysis"
	"sendforget/internal/globalmc"
	"sendforget/internal/markov"
)

// Lem75Params configures the exact global-chain reproduction.
type Lem75Params struct {
	N, S, DL int
	Loss     float64
}

func (p *Lem75Params) setDefaults() {
	if p.N == 0 {
		p.N = 3
	}
	if p.S == 0 {
		p.S = 6
	}
	if p.Loss == 0 {
		p.Loss = 0.1
	}
	// DL defaults to 2 for the lossy chain (keeps degrees off the floor);
	// the lossless manifold chain always uses dL = 0 per Section 7.2.
	if p.DL == 0 {
		p.DL = 2
	}
}

// Lem75 materializes the exact global Markov chain of Section 7 for a tiny
// system and checks Lemmas 7.1, 7.2, 7.5, and 7.6 against it: strong
// connectivity under loss, ergodicity, the structure of the stationary
// distribution on the lossless sum-degree manifold, and exact uniformity of
// edge probabilities.
func Lem75(p Lem75Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "lem7.5",
		Title:  "Exact global MC: Lemmas 7.1/7.2/7.5/7.6 on an enumerated state space",
		Params: fmt.Sprintf("n=%d s=%d dL(lossy)=%d l=%g", p.N, p.S, p.DL, p.Loss),
	}

	// Lossless manifold chain (Section 7.2: dL = 0, constant sum degrees).
	manifold, err := globalmc.Build(globalmc.Params{N: p.N, S: p.S, DL: 0, Loss: 0}, globalmc.Circulant(p.N, 2))
	if err != nil {
		return nil, err
	}
	piM, err := manifold.Stationary(1e-13, 5000000)
	if err != nil {
		return nil, err
	}
	uniform := make([]float64, manifold.Len())
	for i := range uniform {
		uniform[i] = 1 / float64(manifold.Len())
	}
	// Attribute the deviation from uniformity to duplicate entries.
	dupMean := map[int]float64{}
	dupCount := map[int]int{}
	maxDup := 0
	for i, st := range manifold.States() {
		dup := 0
		for u := range st.Mult {
			for v, m := range st.Mult[u] {
				if int(m) > 1 {
					dup += int(m) - 1
				}
				if u == v {
					dup += int(m)
				}
			}
		}
		dupMean[dup] += piM[i]
		dupCount[dup]++
		if dup > maxDup {
			maxDup = dup
		}
	}
	mt := Table{
		Title:   "Lossless manifold chain (dL=0, ds const — Lemma 7.5 regime)",
		Columns: []string{"quantity", "value"},
	}
	mt.AddRow("reachable states", d(manifold.Len()))
	mt.AddRow("ergodic", fmt.Sprintf("%v", markov.IsErgodic(manifold.MC())))
	mt.AddRow("TV(stationary, uniform)", f4(markov.TV(piM, uniform)))
	r.Tables = append(r.Tables, mt)

	dt := Table{
		Title:   "Stationary mass by duplicate/self-edge overflow",
		Columns: []string{"dup entries", "states", "mean pi", "uniform would be"},
	}
	for dup := 0; dup <= maxDup; dup++ {
		if dupCount[dup] == 0 {
			continue
		}
		dt.AddRow(d(dup), d(dupCount[dup]), f4(dupMean[dup]/float64(dupCount[dup])), f4(1/float64(manifold.Len())))
	}
	r.Tables = append(r.Tables, dt)

	// Lossy chain (Lemmas 7.1, 7.2, 7.6).
	lossy, err := globalmc.Build(globalmc.Params{N: p.N, S: p.S, DL: p.DL, Loss: p.Loss}, globalmc.Circulant(p.N, 2))
	if err != nil {
		return nil, err
	}
	piL, err := lossy.Stationary(1e-11, 5000000)
	if err != nil {
		return nil, err
	}
	lt := Table{
		Title:   fmt.Sprintf("Lossy chain (dL=%d, l=%g)", p.DL, p.Loss),
		Columns: []string{"quantity", "value"},
	}
	lt.AddRow("reachable states", d(lossy.Len()))
	lt.AddRow("strongly connected (Lemma 7.1)", fmt.Sprintf("%v", markov.IsIrreducible(lossy.MC())))
	lt.AddRow("ergodic (Lemma 7.2)", fmt.Sprintf("%v", markov.IsErgodic(lossy.MC())))
	lt.AddRow("avg partition-bound mass clipped per state", f(lossy.PartitionClipped/float64(lossy.Len())))
	// Exact mixing rate: the spectral gap gives the true relaxation time
	// of the global chain, against which the Lemma 7.15 conductance-based
	// bound can be judged. One chain step is one protocol action.
	if l2, relax, err := markov.SpectralGap(lossy.MC(), piL, 1e-8, 200000); err == nil {
		lt.AddRow("lambda2 (exact)", f4(l2))
		lt.AddRow("relaxation time (actions)", f2(relax))
		dE := 0.0
		for i, st := range lossy.States() {
			for u := 0; u < p.N; u++ {
				dE += piL[i] * float64(st.Outdegree(u))
			}
		}
		dE /= float64(p.N)
		if tau, err := analysis.TemporalIndependenceBound(p.N, p.S, dE, 1, 0.01); err == nil {
			lt.AddRow("Lemma 7.15 tau bound (actions, alpha=1)", f(tau))
		}
	}
	r.Tables = append(r.Tables, lt)

	et := Table{
		Title:   "P(v in u.lv) under the stationary distribution (Lemma 7.6)",
		Columns: []string{"u \\ v"},
	}
	for v := 0; v < p.N; v++ {
		et.Columns = append(et.Columns, fmt.Sprintf("n%d", v))
	}
	for u := 0; u < p.N; u++ {
		row := []string{fmt.Sprintf("n%d", u)}
		for v := 0; v < p.N; v++ {
			if v == u {
				row = append(row, "(self) "+f4(lossy.EdgeProbability(piL, u, v)))
			} else {
				row = append(row, f4(lossy.EdgeProbability(piL, u, v)))
			}
		}
		et.AddRow(row...)
	}
	r.Tables = append(r.Tables, et)

	r.Notes = append(r.Notes,
		"Lemma 7.6 holds exactly: all off-diagonal edge probabilities coincide to solver precision",
		"Lemma 7.5's uniformity holds modulo duplicate entries: the duplicate-free state is modal and stationary mass decays with duplicate overflow — the reversibility pairing of Lemma 7.3 is exact only for multiplicity-one entries, which dominate when n >> s (at n=3 every view collides constantly)",
	)
	return r, nil
}
