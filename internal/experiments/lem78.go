package experiments

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// Lem78Params configures the return-probability experiment.
type Lem78Params struct {
	N, S, DL int
	Loss     float64
	Rounds   int
	Seed     int64
}

func (p *Lem78Params) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.Rounds == 0 {
		p.Rounds = 600
	}
	if p.Seed == 0 {
		p.Seed = 78
	}
}

// instance is one id occurrence with full provenance — the unit the proof
// of Lemma 7.8 reasons about. Instances keep their identity as they move
// between views as message payloads.
type instance struct {
	id       peer.ID
	dep      bool
	creator  peer.ID // node whose duplication created this instance
	watching bool    // still counted toward the return probability
}

// instanceSim is an id-instance-level S&F simulator: identical dynamics to
// the protocol, but every entry is a tracked object. It exists solely to
// measure provenance statistics (Lemmas 7.8/7.9 ingredients) that the slot
// representation cannot express.
type instanceSim struct {
	s, dl int
	loss  float64
	views [][]*instance
	r     *rng.RNG

	created      int // dependent instances born from duplications
	returned     int // of those, ones that re-entered their creator's view
	resolvedDied int // watched instances that died without returning
}

func newInstanceSim(p Lem78Params) *instanceSim {
	sim := &instanceSim{
		s: p.S, dl: p.DL, loss: p.Loss,
		views: make([][]*instance, p.N),
		r:     rng.New(p.Seed),
	}
	initDeg := (p.DL + p.S) / 2
	if initDeg%2 != 0 {
		initDeg--
	}
	for u := range sim.views {
		for k := 1; k <= initDeg; k++ {
			sim.views[u] = append(sim.views[u], &instance{
				id: peer.ID((u + k) % p.N), creator: peer.Nil,
			})
		}
	}
	return sim
}

// step runs one S&F action at node u over tracked instances.
func (sim *instanceSim) step(u int) {
	d := len(sim.views[u])
	// P(both selected slots nonempty) = d(d-1) / (s(s-1)).
	if d < 2 || !sim.r.Bernoulli(float64(d*(d-1))/float64(sim.s*(sim.s-1))) {
		return
	}
	a, b := sim.r.Pair(d)
	target := sim.views[u][a]
	payload := sim.views[u][b]
	dup := d <= sim.dl
	if !dup {
		// Remove the two selected instances; the pointers captured above
		// keep the roles, so only index order matters (higher first).
		hi, lo := a, b
		if hi < lo {
			hi, lo = lo, hi
		}
		sim.remove(u, hi)
		sim.remove(u, lo)
	}
	dest := int(target.id)
	if !dup {
		// The target instance is consumed by addressing the message.
		sim.die(target)
	}
	if sim.r.Bernoulli(sim.loss) {
		if !dup {
			sim.die(payload)
		}
		return
	}
	if len(sim.views[dest]) >= sim.s {
		if !dup {
			sim.die(payload)
		}
		return
	}
	// Receiver stores the sender's id and the payload.
	sender := &instance{id: peer.ID(u), creator: peer.Nil}
	var moved *instance
	if dup {
		// Both stored copies are fresh dependent instances created by the
		// duplication at u.
		sender.dep, sender.creator, sender.watching = true, peer.ID(u), true
		moved = &instance{id: payload.id, dep: true, creator: peer.ID(u), watching: true}
		sim.created += 2
	} else {
		// The payload instance moves; per Figure 7.1 it becomes
		// independent when sent without duplication (its watch for a
		// return continues until it dies).
		moved = payload
		moved.dep = false
	}
	sim.place(dest, sender)
	sim.place(dest, moved)
}

// place appends inst to node w's view, detecting returns to the creator.
func (sim *instanceSim) place(w int, inst *instance) {
	if inst.watching && inst.creator == peer.ID(w) {
		sim.returned++
		inst.watching = false
	}
	sim.views[w] = append(sim.views[w], inst)
}

// remove deletes index i from u's view without preserving order.
func (sim *instanceSim) remove(u, i int) {
	v := sim.views[u]
	v[i] = v[len(v)-1]
	sim.views[u] = v[:len(v)-1]
}

// die resolves a watched instance that was destroyed before returning.
func (sim *instanceSim) die(inst *instance) {
	if inst.watching {
		inst.watching = false
		sim.resolvedDied++
	}
}

// Lem78 measures the probability that a dependent instance created by a
// duplication at node u later re-enters u's view — the quantity Lemma 7.8
// bounds by 1/2 ("the id is more likely to travel away from u than to
// return"). The bound is deliberately crude; the measured probability is
// far smaller, which is why Lemma 7.9's final constant has slack.
func Lem78(p Lem78Params) (*Report, error) {
	p.setDefaults()
	sim := newInstanceSim(p)
	for round := 0; round < p.Rounds; round++ {
		for k := 0; k < p.N; k++ {
			sim.step(sim.r.Intn(p.N))
		}
	}
	if sim.created == 0 {
		return nil, fmt.Errorf("lem7.8: no duplications occurred; raise loss or lower dL")
	}
	resolved := sim.returned + sim.resolvedDied
	retProb := float64(sim.returned) / float64(sim.created)
	retProbResolved := 0.0
	if resolved > 0 {
		retProbResolved = float64(sim.returned) / float64(resolved)
	}
	// Self-edge fraction among all entries (the beta <= 1/6 ingredient of
	// Lemma 7.9 under Assumption 7.7).
	entries, selfEdges, depEntries := 0, 0, 0
	for u, view := range sim.views {
		for _, inst := range view {
			entries++
			if int(inst.id) == u {
				selfEdges++
			}
			if inst.dep {
				depEntries++
			}
		}
	}
	r := &Report{
		ID:     "lem7.8",
		Title:  "Return probability of dependent entries (instance-level simulation)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g rounds=%d", p.N, p.S, p.DL, p.Loss, p.Rounds),
	}
	t := Table{Columns: []string{"quantity", "value"}}
	t.AddRow("dependent instances created", d(sim.created))
	t.AddRow("returned to creator", d(sim.returned))
	t.AddRow("died without returning", d(sim.resolvedDied))
	t.AddRow("return probability (all created)", f4(retProb))
	t.AddRow("return probability (resolved only)", f4(retProbResolved))
	t.AddRow("Lemma 7.8 bound", "0.5000")
	t.AddRow("self-edge fraction (beta)", f4(float64(selfEdges)/float64(entries)))
	t.AddRow("Lemma 7.9 beta bound", "0.1667")
	t.AddRow("dependent entry fraction", f4(float64(depEntries)/float64(entries)))
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the measured return probability sits far below the crude 1/2 bound: a dependent id almost always diffuses away",
		"beta, the self-edge fraction, is likewise far below the 1/6 the proof allows",
	)
	return r, nil
}
