package experiments

import (
	"fmt"

	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/runtime"
)

// LossStressParams configures the fault-injection stress run.
type LossStressParams struct {
	// N nodes, view size S, don't-forget floor DL, bootstrap degree
	// InitDegree.
	N, S, DL, InitDegree int
	// Rounds is the total round count; LeaveAt is the round at which the
	// tracked leaver departs; FaultAt..HealAt brackets the partition (and
	// the burst scenarios' observation window).
	Rounds, LeaveAt, FaultAt, HealAt int
	// Rate is the uniform baseline loss rate; the burst scenarios match its
	// stationary rate with BurstLen-long bursts.
	Rate     float64
	BurstLen float64
	Seed     int64
}

func (p *LossStressParams) setDefaults() {
	if p.N == 0 {
		p.N = 120
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.InitDegree == 0 {
		p.InitDegree = 8
	}
	if p.Rounds == 0 {
		p.Rounds = 240
	}
	if p.LeaveAt == 0 {
		p.LeaveAt = 60
	}
	if p.FaultAt == 0 {
		p.FaultAt = 80
	}
	if p.HealAt == 0 {
		p.HealAt = 160
	}
	if p.Rate == 0 {
		p.Rate = 0.05
	}
	if p.BurstLen == 0 {
		p.BurstLen = 8
	}
	if p.Seed == 0 {
		p.Seed = 65
	}
}

// lossScenario is one network condition under which the S&F cluster is
// re-run from scratch.
type lossScenario struct {
	name string
	// newConditions builds a dedicated fault stack (stateful models must
	// not be shared across scenarios).
	newConditions func(p LossStressParams) (*faults.Conditions, error)
	// partition when set splits the cluster in two halves during
	// [FaultAt, HealAt).
	partition bool
}

func lossScenarios() []lossScenario {
	return []lossScenario{
		{
			name: "uniform",
			newConditions: func(p LossStressParams) (*faults.Conditions, error) {
				return faults.FromRate(p.Rate)
			},
		},
		{
			name: "burst-matched",
			newConditions: func(p LossStressParams) (*faults.Conditions, error) {
				gem, err := loss.BurstyWithRate(p.Rate, p.BurstLen)
				if err != nil {
					return nil, err
				}
				return faults.New(gem)
			},
		},
		{
			name: "burst-heavy",
			newConditions: func(p LossStressParams) (*faults.Conditions, error) {
				gem, err := loss.BurstyWithRate(4*p.Rate, p.BurstLen)
				if err != nil {
					return nil, err
				}
				return faults.New(gem)
			},
		},
		{
			name: "partition-heal",
			newConditions: func(p LossStressParams) (*faults.Conditions, error) {
				return faults.Lossless(), nil
			},
			partition: true,
		},
		{
			name: "delay-jitter",
			newConditions: func(p LossStressParams) (*faults.Conditions, error) {
				cond := faults.Lossless()
				if err := cond.SetDelay(faults.Delay{Fixed: 1, Jitter: 2}); err != nil {
					return nil, err
				}
				return cond, nil
			},
		},
	}
}

// lossStressPoint is one scenario's measured outcome.
type lossStressPoint struct {
	name                 string
	sends, losses        int
	partitionDrops       int
	delayed, deadLetters int
	lossRate             float64
	compMid, compEnd     int
	meanOut, meanIn      float64
	leaverMid, leaverEnd int
}

// LossStress stresses the paper's uniform-i.i.d.-loss assumption (Section 4)
// on the concurrent substrate: the same S&F cluster is re-run under uniform
// loss, Gilbert-Elliott burst loss at the matched stationary rate, a heavier
// burst regime, a healed two-way partition, and jittered delivery delay.
// Each run removes one node mid-way and tracks the fig6.4-style decay of its
// id instances alongside degree/connectivity and the extended traffic
// counters.
func LossStress(p LossStressParams) (*Report, error) {
	p.setDefaults()
	if !(p.LeaveAt < p.FaultAt && p.FaultAt < p.HealAt && p.HealAt < p.Rounds) {
		return nil, fmt.Errorf("experiments: need LeaveAt < FaultAt < HealAt < Rounds, got %d/%d/%d/%d",
			p.LeaveAt, p.FaultAt, p.HealAt, p.Rounds)
	}
	scenarios := lossScenarios()
	points, err := Sweep(len(scenarios), sweepWorkers, func(i int) (lossStressPoint, error) {
		return runLossScenario(p, scenarios[i])
	})
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:    "loss-stress",
		Title: "Fault-injection stress: S&F degree/connectivity beyond uniform i.i.d. loss",
		Params: fmt.Sprintf("n=%d s=%d dL=%d init=%d rounds=%d leaveAt=%d fault=[%d,%d) rate=%g burstLen=%g",
			p.N, p.S, p.DL, p.InitDegree, p.Rounds, p.LeaveAt, p.FaultAt, p.HealAt, p.Rate, p.BurstLen),
	}
	traffic := Table{
		Title:   "Traffic accounting (Sends = Losses + Deliveries + DeadLetters after drain)",
		Columns: []string{"scenario", "sends", "losses", "loss rate", "partition drops", "delayed", "dead letters"},
	}
	overlay := Table{
		Title:   fmt.Sprintf("Overlay health (mid = round %d, end = round %d after drain)", p.HealAt, p.Rounds),
		Columns: []string{"scenario", "components mid", "components end", "mean out", "mean in", "leaver ids mid", "leaver ids end"},
	}
	for _, pt := range points {
		traffic.AddRow(pt.name, d(pt.sends), d(pt.losses), f4(pt.lossRate), d(pt.partitionDrops), d(pt.delayed), d(pt.deadLetters))
		overlay.AddRow(pt.name, d(pt.compMid), d(pt.compEnd), f2(pt.meanOut), f2(pt.meanIn), d(pt.leaverMid), d(pt.leaverEnd))
	}
	r.Tables = append(r.Tables, traffic, overlay)
	r.Notes = append(r.Notes,
		"burst loss at the matched stationary rate behaves like uniform loss in the aggregate — M1-M5 degrade with the rate, not the correlation structure",
		"the partition never fragments either half internally; whether the halves reconnect after Heal depends on how many cross-partition ids survive the outage (S&F has no rejoin mechanism)",
		"delay with jitter reorders messages but loses nothing: the overlay matches the lossless baseline once the delay queue drains",
		"the leaver's id decays toward zero in every scenario (Lemma 6.10); loss only accelerates it",
	)
	return r, nil
}

// runLossScenario executes one deterministic cluster run under the given
// conditions. The cluster is ticked manually; no wall-clock timers touch
// protocol state.
func runLossScenario(p LossStressParams, sc lossScenario) (lossStressPoint, error) {
	cond, err := sc.newConditions(p)
	if err != nil {
		return lossStressPoint{}, err
	}
	cl, err := runtime.New(runtime.Config{
		Engine: SubstrateEngine(),
		N:      p.N,
		NewCore: func() (protocol.StepCore, error) {
			return sendforget.NewCore(p.S, p.DL)
		},
		InitDegree: p.InitDegree,
		Conditions: cond,
		Seed:       p.Seed,
	})
	if err != nil {
		return lossStressPoint{}, err
	}
	defer cl.Close()
	leaver := peer.ID(p.N - 1)
	var halves [2][]peer.ID
	live := make([]peer.ID, 0, p.N-1)
	for u := 0; u < p.N; u++ {
		halves[u%2] = append(halves[u%2], peer.ID(u))
		if peer.ID(u) != leaver {
			live = append(live, peer.ID(u))
		}
	}
	pt := lossStressPoint{name: sc.name}
	var mid *graph.Graph
	for round := 0; round < p.Rounds; round++ {
		if round == p.LeaveAt {
			cl.RemoveNode(leaver)
		}
		if sc.partition && round == p.FaultAt {
			cl.Conditions().Partition(halves[0], halves[1])
		}
		if round == p.HealAt {
			// Snapshot before healing: this is the overlay under the fault.
			mid = cl.Snapshot()
			if sc.partition {
				cl.Conditions().Heal()
			}
		}
		cl.TickRound()
	}
	cl.DrainDelayed()
	if err := cl.CheckInvariants(); err != nil {
		return lossStressPoint{}, fmt.Errorf("%s: %w", sc.name, err)
	}
	end := cl.Snapshot()
	tr := cl.Traffic()
	if tr.Sends != tr.Losses+tr.Deliveries+tr.DeadLetters {
		return lossStressPoint{}, fmt.Errorf("%s: traffic identity violated: %+v", sc.name, tr)
	}
	pt.sends = tr.Sends
	pt.losses = tr.Losses
	pt.partitionDrops = tr.PartitionDrops
	pt.delayed = tr.Delayed
	pt.deadLetters = tr.DeadLetters
	if tr.Sends > 0 {
		pt.lossRate = float64(tr.Losses) / float64(tr.Sends)
	}
	pt.compMid = mid.InducedComponents(live)
	pt.compEnd = end.InducedComponents(live)
	pt.leaverMid = mid.IDInstances(leaver)
	pt.leaverEnd = end.IDInstances(leaver)
	for _, u := range live {
		pt.meanOut += float64(end.Outdegree(u))
		pt.meanIn += float64(end.Indegree(u))
	}
	pt.meanOut /= float64(len(live))
	pt.meanIn /= float64(len(live))
	return pt, nil
}
