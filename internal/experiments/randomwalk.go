package experiments

import (
	"fmt"
	"math"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// RW1Params configures the random-walk comparison.
type RW1Params struct {
	N, S, DL    int
	Loss        float64
	WalkLengths []int
	Trials      int
	Seed        int64
}

func (p *RW1Params) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.Loss == 0 {
		p.Loss = 0.05
	}
	if p.WalkLengths == nil {
		p.WalkLengths = []int{2, 4, 8, 16, 32}
	}
	if p.Trials == 0 {
		p.Trials = 20000
	}
	if p.Seed == 0 {
		p.Seed = 91
	}
}

// RW1 quantifies the Section 3.1 argument against random-walk sampling:
// "since a single RW involves multiple id exchange steps, the probability
// of a successful RW under message loss degrades exponentially with the
// length of the random walk". Walks run over a steady-state S&F overlay
// with per-hop loss; the success probability must track (1-l)^k, while the
// gossip protocol's own local operations involve exactly one message each,
// whatever the system size.
func RW1(p RW1Params) (*Report, error) {
	p.setDefaults()
	e, proto, err := newSFEngine(p.N, p.S, p.DL, 0, p.Loss, 150, p.Seed, false)
	if err != nil {
		return nil, err
	}
	_ = e
	r := &Report{
		ID:     "rw1",
		Title:  "Random-walk sampling vs gossip under loss (Section 3.1)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g trials=%d", p.N, p.S, p.DL, p.Loss, p.Trials),
	}
	t := Table{Columns: []string{
		"walk length k", "success rate", "(1-l)^k", "messages per sample", "gossip: msgs per action",
	}}
	walker := rng.New(rng.DeriveSeed(p.Seed, 1))
	for _, k := range p.WalkLengths {
		successes := 0
		messages := 0
		for trial := 0; trial < p.Trials; trial++ {
			node := peer.ID(walker.Intn(p.N))
			ok := true
			for hop := 0; hop < k; hop++ {
				messages++
				if walker.Bernoulli(p.Loss) {
					ok = false
					break
				}
				view := proto.View(node)
				if view == nil {
					ok = false
					break
				}
				ids := view.IDs()
				if len(ids) == 0 {
					ok = false
					break
				}
				node = ids[walker.Intn(len(ids))]
			}
			if ok {
				successes++
			}
		}
		rate := float64(successes) / float64(p.Trials)
		t.AddRow(
			d(k),
			f4(rate),
			f4(math.Pow(1-p.Loss, float64(k))),
			f2(float64(messages)/float64(p.Trials)),
			"1",
		)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"a random walk long enough to mix (k ~ log n or more) fails a constant fraction of the time at realistic loss, and the failure probability compounds exponentially",
		"every S&F action is a single unacknowledged message: loss costs a bounded per-action probability (compensated by duplication), never a compounded one",
		"the walks above also assume the walker can detect hop failure; a real RW protocol cannot (the paper's point about bookkeeping), so these success rates are optimistic",
	)
	return r, nil
}
