package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// Runner executes one experiment with its default parameters.
type Runner func() (*Report, error)

var registry struct {
	once sync.Once
	m    map[string]Runner
	ids  []string
}

// Registry maps experiment ids (as listed in DESIGN.md) to default-parameter
// runners. cmd/sfexperiments iterates it. The map is built once and shared;
// callers must not mutate it.
func Registry() map[string]Runner {
	registry.once.Do(buildRegistry)
	return registry.m
}

func buildRegistry() {
	registry.m = map[string]Runner{
		"fig6.1":      func() (*Report, error) { return Fig61(Fig61Params{}) },
		"fig6.2":      func() (*Report, error) { return Fig62(Fig62Params{}) },
		"tab6.3":      func() (*Report, error) { return Tab63(Tab63Params{}) },
		"fig6.3":      func() (*Report, error) { return Fig63(Fig63Params{}) },
		"fig6.4":      func() (*Report, error) { return Fig64(Fig64Params{}) },
		"cor6.14":     func() (*Report, error) { return Cor614(Cor614Params{}) },
		"lem6.6":      func() (*Report, error) { return Lem66(Lem66Params{}) },
		"lem7.5":      func() (*Report, error) { return Lem75(Lem75Params{}) },
		"lem7.6":      func() (*Report, error) { return Lem76(Lem76Params{}) },
		"lem7.8":      func() (*Report, error) { return Lem78(Lem78Params{}) },
		"lem7.9":      func() (*Report, error) { return Lem79(Lem79Params{}) },
		"tab7.4":      func() (*Report, error) { return Tab74(Tab74Params{}) },
		"lem7.15":     func() (*Report, error) { return Lem715(Lem715Params{}) },
		"base1":       func() (*Report, error) { return Baselines(BaselinesParams{}) },
		"rw1":         func() (*Report, error) { return RW1(RW1Params{}) },
		"churn1":      func() (*Report, error) { return Churn1(ChurnParams{}) },
		"abl1":        func() (*Report, error) { return AblationBurst(AblationBurstParams{}) },
		"abl2":        func() (*Report, error) { return AblationDL(AblationDLParams{}) },
		"abl3":        func() (*Report, error) { return AblationOpt(AblationOptParams{}) },
		"abl4":        func() (*Report, error) { return AblationNonuniform(AblationNonuniformParams{}) },
		"loss-stress": func() (*Report, error) { return LossStress(LossStressParams{}) },
	}
	registry.ids = make([]string, 0, len(registry.m))
	for id := range registry.m {
		registry.ids = append(registry.ids, id)
	}
	sort.Strings(registry.ids)
}

// IDs returns the registered experiment ids in sorted order. The slice is a
// copy; callers may reorder it.
func IDs() []string {
	registry.once.Do(buildRegistry)
	return append([]string(nil), registry.ids...)
}

// Run executes the experiment with the given id.
func Run(id string) (*Report, error) {
	runner, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return runner()
}
