// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 6 and 7), plus the baseline comparison motivated by
// Section 3.1 and two ablations. Each runner returns a Report with the same
// rows/series the paper presents; DESIGN.md maps experiment ids to paper
// artifacts and EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"strings"
)

// Report is the result of one experiment run.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "fig6.3").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Params records the parameters used, for the experiment log.
	Params string
	// Tables hold the regenerated rows/series.
	Tables []Table
	// Notes carry conclusions and paper-versus-measured commentary.
	Notes []string
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the whole report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Params != "" {
		fmt.Fprintf(&b, "params: %s\n", r.Params)
	}
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(x float64) string { return fmt.Sprintf("%.4g", x) }

// f2 formats with fixed 2 decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f4 formats with fixed 4 decimals.
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// d formats an int.
func d(x int) string { return fmt.Sprintf("%d", x) }

// pm formats "mean ± std".
func pm(mean, std float64) string { return fmt.Sprintf("%.1f ± %.1f", mean, std) }
