package experiments

import (
	"fmt"

	"sendforget/internal/analysis"
	"sendforget/internal/churn"
	"sendforget/internal/degreemc"
	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

// newSFEngine builds a warmed-up S&F engine for the simulation experiments.
func newSFEngine(n, s, dl, initDeg int, l float64, warmRounds int, seed int64, trackDeps bool) (*engine.Engine, *sendforget.Protocol, error) {
	p, err := sendforget.New(sendforget.Config{
		N: n, S: s, DL: dl, InitDegree: initDeg, TrackDependence: trackDeps,
	})
	if err != nil {
		return nil, nil, err
	}
	e, err := engine.New(p, loss.MustUniform(l), rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	e.Run(warmRounds)
	return e, p, nil
}

// Fig64Params configures the Figure 6.4 reproduction.
type Fig64Params struct {
	N, S, DL   int
	Delta      float64
	LossRates  []float64
	Rounds     int
	Leavers    int
	Checkpoint int
	Seed       int64
}

func (p *Fig64Params) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 18
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
	if p.LossRates == nil {
		p.LossRates = []float64{0, 0.01, 0.05, 0.1}
	}
	if p.Rounds == 0 {
		p.Rounds = 500
	}
	if p.Leavers == 0 {
		p.Leavers = 5
	}
	if p.Checkpoint == 0 {
		p.Checkpoint = 50
	}
	if p.Seed == 0 {
		p.Seed = 64
	}
}

// Fig64 reproduces Figure 6.4: the Lemma 6.10 upper bound on the
// probability that an id instance of a left/failed node remains in the
// system, as a function of rounds since the departure, for several loss
// rates — together with the decay measured in simulation, which must stay
// below the bound.
func Fig64(p Fig64Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "fig6.4",
		Title:  "Departed-node id decay: Lemma 6.10 bound vs simulation",
		Params: fmt.Sprintf("n=%d s=%d dL=%d delta=%g rounds=%d leavers=%d", p.N, p.S, p.DL, p.Delta, p.Rounds, p.Leavers),
	}
	t := Table{Columns: []string{"round"}}
	type curve struct {
		bound    []float64
		measured []float64
	}
	var curves []curve
	for li, l := range p.LossRates {
		bound, err := analysis.SurvivalBound(l, p.Delta, p.DL, p.S, p.Rounds)
		if err != nil {
			return nil, err
		}
		measured := make([]float64, p.Rounds+1)
		for leaver := 0; leaver < p.Leavers; leaver++ {
			e, _, err := newSFEngine(p.N, p.S, p.DL, 0, l, 60, rng.DeriveSeed(p.Seed, int64(li), int64(leaver)), false)
			if err != nil {
				return nil, err
			}
			trace, err := churn.TrackLeaverDecay(e, peer.ID(leaver), p.Rounds)
			if err != nil {
				return nil, err
			}
			for i := range measured {
				measured[i] += trace.Remaining[i] / float64(p.Leavers)
			}
		}
		curves = append(curves, curve{bound: bound, measured: measured})
		t.Columns = append(t.Columns,
			fmt.Sprintf("bound l=%.2f", l), fmt.Sprintf("sim l=%.2f", l))
	}
	for round := 0; round <= p.Rounds; round += p.Checkpoint {
		row := []string{d(round)}
		for _, c := range curves {
			row = append(row, f4(c.bound[round]), f4(c.measured[round]))
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	hl, err := analysis.HalfLife(p.LossRates[0], p.Delta, p.DL, p.S)
	if err == nil {
		r.Notes = append(r.Notes, fmt.Sprintf("bound half-life at l=%g: %d rounds (paper: 'after merely 70 rounds, fewer than 50%% ... remain')", p.LossRates[0], hl))
	}
	r.Notes = append(r.Notes,
		"the bound is conservative: the simulated decay is faster (Lemma 6.9 lower-bounds the per-round removal probability with dL)",
		"the decay rate is almost unaffected by loss, as the figure shows",
	)
	return r, nil
}

// Cor614Params configures the joiner-integration reproduction.
type Cor614Params struct {
	N, S, DL int
	Loss     float64
	Delta    float64
	Joiners  int
	Seed     int64
}

func (p *Cor614Params) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 20 // s/dL = 2 as in the corollary
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
	if p.Joiners == 0 {
		p.Joiners = 5
	}
	if p.Seed == 0 {
		p.Seed = 614
	}
}

// Cor614 reproduces Corollary 6.14: with s/dL = 2 and l+delta << 1, a newly
// joined node is expected to create at least Din/4 instances of its id
// within 2s rounds.
func Cor614(p Cor614Params) (*Report, error) {
	p.setDefaults()
	rounds := 2 * p.S
	r := &Report{
		ID:    "cor6.14",
		Title: "Joiner integration: >= Din/4 id instances within 2s rounds",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g joiners=%d rounds=%d",
			p.N, p.S, p.DL, p.Loss, p.Joiners, rounds),
	}
	t := Table{Columns: []string{"joiner", "Din (steady)", "bound Din/4", "indegree @2s rounds", "outdegree @2s rounds"}}
	met := 0
	for j := 0; j < p.Joiners; j++ {
		e, proto, err := newSFEngine(p.N, p.S, p.DL, 0, p.Loss, 60, rng.DeriveSeed(p.Seed, int64(j)), false)
		if err != nil {
			return nil, err
		}
		u := peer.ID(j)
		if err := e.Leave(u); err != nil {
			return nil, err
		}
		e.Run(200) // flush the id completely
		din := metrics.Degrees(e.Snapshot(), nil).MeanIn * float64(p.N) / float64(p.N-1)
		// Seeds: copy a live node's view prefix, per Section 5's join rule.
		seedView := proto.View(peer.ID(p.N - 1 - j))
		seeds := seedView.IDs()
		if len(seeds) > p.DL {
			seeds = seeds[:p.DL]
		}
		trace, err := churn.TrackJoinerIntegration(e, u, seeds, rounds)
		if err != nil {
			return nil, err
		}
		bound := din / 4
		got := trace.Indegree[rounds]
		if float64(got) >= bound {
			met++
		}
		t.AddRow(d(j), f2(din), f2(bound), d(got), d(trace.Outdegree[rounds]))
	}
	r.Tables = append(r.Tables, t)

	// Exact expected integration curve from the degree MC: evolve a point
	// mass at the joiner's start state (dL, 0) in the steady-state field.
	res, err := degreemc.Solve(degreemc.Params{S: p.S, DL: p.DL, Loss: p.Loss}, degreemc.SolveOptions{})
	if err != nil {
		return nil, err
	}
	traj, err := res.Space.Transient(res.Field, degreemc.State{Out: p.DL, In: 0}, float64(rounds), 8)
	if err != nil {
		return nil, err
	}
	exact := Table{
		Title:   "Exact expected joiner degrees (degree-MC transient from (dL, 0))",
		Columns: []string{"round", "E[outdegree]", "E[indegree]"},
	}
	for _, pt := range traj {
		exact.AddRow(f2(pt.Round), f2(pt.MeanOut), f2(pt.MeanIn))
	}
	r.Tables = append(r.Tables, exact)

	r.Notes = append(r.Notes,
		fmt.Sprintf("%d/%d joiners met the Din/4 bound at 2s rounds (the corollary is an expectation bound)", met, p.Joiners),
		"after acquiring ~Din/4 in-neighbors the joiner receives messages and its outdegree rises above dL, ending its duplication regime",
		fmt.Sprintf("the exact chain predicts E[indegree] = %s at 2s rounds vs the Din/4 bound %s — the corollary's factor-4 slack is visible", f2(traj[len(traj)-1].MeanIn), f2(res.MeanIn()/4)),
	)
	return r, nil
}

// Lem66Params configures the duplication/deletion balance experiment.
type Lem66Params struct {
	N, S, DL int
	Delta    float64
	Losses   []float64
	Rounds   int
	Seed     int64
}

func (p *Lem66Params) setDefaults() {
	if p.N == 0 {
		p.N = 500
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 18
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
	if p.Losses == nil {
		p.Losses = []float64{0, 0.01, 0.05, 0.1}
	}
	if p.Rounds == 0 {
		p.Rounds = 300
	}
	if p.Seed == 0 {
		p.Seed = 66
	}
}

// Lem66 verifies Lemmas 6.6-6.7 in simulation: in the steady state the
// duplication probability equals the loss rate plus the deletion
// probability, and lies in [l, l+delta].
func Lem66(p Lem66Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "lem6.6",
		Title:  "Steady-state duplication/deletion balance (Lemmas 6.6-6.7)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d rounds=%d", p.N, p.S, p.DL, p.Rounds),
	}
	t := Table{Columns: []string{"loss l", "dup prob", "del prob", "l + del", "dup - (l+del)", "in [l, l+delta]?"}}
	for i, l := range p.Losses {
		e, proto, err := newSFEngine(p.N, p.S, p.DL, 0, l, 100, rng.DeriveSeed(p.Seed, int64(i)), false)
		if err != nil {
			return nil, err
		}
		// Measure over a fresh window after the warm-up.
		before := proto.Counters()
		e.Run(p.Rounds)
		after := proto.Counters()
		sends := after.Sends - before.Sends
		if sends == 0 {
			return nil, fmt.Errorf("no sends measured at l=%v", l)
		}
		dup := float64(after.Duplications-before.Duplications) / float64(sends)
		del := float64(after.Deletions-before.Deletions) / float64(sends)
		inBracket := dup >= l-0.01 && dup <= l+p.Delta+0.01
		t.AddRow(fmt.Sprintf("%.2f", l), f4(dup), f4(del), f4(l+del), f4(dup-(l+del)), fmt.Sprintf("%v", inBracket))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"Lemma 6.6: dup = l + del in steady state (edge conservation)",
		"Lemma 6.7: l <= dup <= l + delta; Observation 6.5: del decreases with l",
	)
	return r, nil
}
