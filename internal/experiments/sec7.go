package experiments

import (
	"fmt"
	"math"

	"sendforget/internal/analysis"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// Lem76Params configures the uniformity experiment.
type Lem76Params struct {
	N, S, DL    int
	Loss        float64
	Samples     int
	SampleEvery int // rounds between samples (decorrelation gap)
	Seed        int64
}

func (p *Lem76Params) setDefaults() {
	if p.N == 0 {
		p.N = 150
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.Samples == 0 {
		p.Samples = 300
	}
	if p.SampleEvery == 0 {
		// Views forget their past within O(s log n) rounds (Property M5);
		// sampling denser than that correlates the chi-square cells and
		// inflates the statistic.
		p.SampleEvery = 4 * p.S
	}
	if p.Seed == 0 {
		p.Seed = 76
	}
}

// Lem76 verifies Lemma 7.6 (Property M3, uniformity) in simulation: in the
// steady state every id v != u appears in u's view with equal probability.
// The chi-square test over time-decorrelated samples must not reject
// uniformity, while a deliberately skewed reference must be rejected.
func Lem76(p Lem76Params) (*Report, error) {
	p.setDefaults()
	e, proto, err := newSFEngine(p.N, p.S, p.DL, 0, p.Loss, 100, p.Seed, false)
	if err != nil {
		return nil, err
	}
	observers := []peer.ID{0, peer.ID(p.N / 2), peer.ID(p.N - 1)}
	counters := make([]*metrics.OccupancyCounter, len(observers))
	for i, u := range observers {
		counters[i] = metrics.NewOccupancyCounter(u, p.N)
	}
	for s := 0; s < p.Samples; s++ {
		e.Run(p.SampleEvery)
		for i, u := range observers {
			counters[i].Sample(proto.View(u))
		}
	}
	r := &Report{
		ID:     "lem7.6",
		Title:  "Uniformity of view membership (Property M3, Lemma 7.6)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d l=%g samples=%d every %d rounds", p.N, p.S, p.DL, p.Loss, p.Samples, p.SampleEvery),
	}
	t := Table{Columns: []string{"observer", "samples", "chi2 stat", "df", "p-value", "uniformity rejected at 1%?"}}
	for i, u := range observers {
		stat, pv, err := counters[i].UniformityTest()
		if err != nil {
			return nil, err
		}
		t.AddRow(u.String(), d(counters[i].Samples()), f2(stat), d(p.N-2), f4(pv), fmt.Sprintf("%v", pv < 0.01))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"time-adjacent samples are correlated; the sampling gap decorrelates them (temporal independence, Section 7.5)",
		"a p-value above 0.01 means the uniform hypothesis stands",
	)
	return r, nil
}

// Lem79Params configures the spatial-independence experiment.
type Lem79Params struct {
	N, S, DL int
	Delta    float64
	Losses   []float64
	Rounds   int
	Seed     int64
}

func (p *Lem79Params) setDefaults() {
	if p.N == 0 {
		p.N = 400
	}
	if p.S == 0 {
		p.S = 40
	}
	if p.DL == 0 {
		p.DL = 18
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
	if p.Losses == nil {
		p.Losses = []float64{0, 0.01, 0.05, 0.1}
	}
	if p.Rounds == 0 {
		p.Rounds = 300
	}
	if p.Seed == 0 {
		p.Seed = 79
	}
}

// Lem79 verifies Lemma 7.9 (Property M4, spatial independence) in
// simulation: the fraction of independent view entries alpha stays at or
// above 1 - 2(l+delta). Dependence is measured with the protocol's
// per-entry duplication tags plus the Section 2 labeling rules (self-edges
// and same-view duplicates).
//
// Two calibrations align the finite simulation with the paper's asymptotic
// claim: delta is the protocol's *measured* lossless duplication
// probability for the chosen (s, dL) — the paper defines delta exactly so —
// and the self-edge/duplicate counts that even perfect i.i.d. views would
// show at finite n (the 1/n terms the paper neglects) are subtracted.
func Lem79(p Lem79Params) (*Report, error) {
	p.setDefaults()
	// Calibrate delta: lossless run, measured duplication probability.
	e0, proto0, err := newSFEngine(p.N, p.S, p.DL, 0, 0, 100, p.Seed, true)
	if err != nil {
		return nil, err
	}
	e0.Run(p.Rounds)
	c0 := proto0.Counters()
	deltaHat := p.Delta
	if c0.Sends > 0 {
		if m := float64(c0.Duplications) / float64(c0.Sends); m > deltaHat {
			deltaHat = m
		}
	}
	r := &Report{
		ID:    "lem7.9",
		Title: "Spatial independence: measured alpha vs 1 - 2(l+delta)",
		Params: fmt.Sprintf("n=%d s=%d dL=%d delta(measured lossless dup)=%s rounds=%d",
			p.N, p.S, p.DL, f4(deltaHat), p.Rounds),
	}
	t := Table{Columns: []string{"loss l", "alpha bound", "alpha raw", "alpha adj (iid-corrected)", "tagged", "self+dup", "iid-expected self+dup", "entries", "bound holds?"}}
	for i, l := range p.Losses {
		e, proto, err := newSFEngine(p.N, p.S, p.DL, 0, l, 100, rng.DeriveSeed(p.Seed, 1, int64(i)), true)
		if err != nil {
			return nil, err
		}
		e.Run(p.Rounds)
		st := proto.DependenceStats()
		bound, err := analysis.AlphaLowerBound(l, deltaHat)
		if err != nil {
			return nil, err
		}
		iidSelf, iidDup := metrics.IIDDependenceBaseline(e.Views(), p.N)
		excess := float64(st.Dependent) - iidSelf - iidDup
		if excess < 0 {
			excess = 0
		}
		alphaAdj := 1.0
		if st.Entries > 0 {
			alphaAdj = 1 - excess/float64(st.Entries)
		}
		t.AddRow(fmt.Sprintf("%.2f", l), f4(bound), f4(st.Alpha()), f4(alphaAdj),
			d(st.Tagged), d(st.SelfEdges+st.Duplicates), f2(iidSelf+iidDup), d(st.Entries),
			fmt.Sprintf("%v", alphaAdj >= bound-0.02))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"the paper: dependencies 'grow about twice as fast as the loss rate'; with loss ~1% the vast majority of entries stay independent",
		"alpha raw counts every self-edge and duplicate; alpha adj subtracts the 1/n-rate self-edges and duplicates that i.i.d. uniform views would exhibit (the paper's n >> s analysis neglects them)",
	)
	return r, nil
}

// Tab74Params configures the connectivity-threshold table.
type Tab74Params struct {
	Rates []float64 // l = delta values
	Eps   []float64
}

func (p *Tab74Params) setDefaults() {
	if p.Rates == nil {
		p.Rates = []float64{0.005, 0.01, 0.05}
	}
	if p.Eps == nil {
		p.Eps = []float64{1e-10, 1e-20, 1e-30}
	}
}

// Tab74 reproduces the Section 7.4 connectivity condition: the minimal dL
// guaranteeing at most eps probability of fewer than three independent
// out-neighbors, modeling independent ids as Binomial(dL, alpha). The
// paper's example: l = delta = 1%, eps = 1e-30 requires dL >= 26.
func Tab74(p Tab74Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:    "tab7.4",
		Title: "Minimal dL for weak connectivity w.h.p. (Section 7.4)",
	}
	t := Table{Columns: []string{"l = delta"}}
	for _, eps := range p.Eps {
		t.Columns = append(t.Columns, fmt.Sprintf("eps=%.0e", eps))
	}
	for _, rate := range p.Rates {
		row := []string{fmt.Sprintf("%.3f", rate)}
		for _, eps := range p.Eps {
			dl, err := analysis.ConnectivityMinDL(rate, rate, eps)
			if err != nil {
				return nil, err
			}
			row = append(row, d(dl))
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes, "paper example: l = delta = 1%, eps = 1e-30 -> dL = 26")
	return r, nil
}

// Lem715Params configures the temporal-independence experiment.
type Lem715Params struct {
	Ns        []int
	S, DL     int
	Loss      float64
	MaxRounds int
	// Threshold is the overlap excess over the independence baseline at
	// which views count as having forgotten the reference state.
	Threshold float64
	Seed      int64
}

func (p *Lem715Params) setDefaults() {
	if p.Ns == nil {
		p.Ns = []int{100, 200, 400}
	}
	if p.S == 0 {
		p.S = 16
	}
	if p.DL == 0 {
		p.DL = 6
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 400
	}
	if p.Threshold == 0 {
		p.Threshold = 0.05
	}
	if p.Seed == 0 {
		p.Seed = 715
	}
}

// Lem715 verifies Property M5 (temporal independence, Lemma 7.15) in
// simulation: starting from a steady state, the overlap between current and
// reference views decays to the i.i.d. baseline within O(s log n) rounds
// (the paper's bound counts O(n s log n) transformations, i.e. O(s log n)
// actions per node), and the analytical tau bound grows as O(n s log n).
func Lem715(p Lem715Params) (*Report, error) {
	p.setDefaults()
	r := &Report{
		ID:     "lem7.15",
		Title:  "Temporal independence: overlap decay and the tau bound",
		Params: fmt.Sprintf("s=%d dL=%d l=%g threshold=baseline+%g", p.S, p.DL, p.Loss, p.Threshold),
	}
	t := Table{Columns: []string{"n", "baseline overlap", "rounds to forget", "rounds / (s log n)", "tau bound (actions/node)"}}
	alphaBound, err := analysis.AlphaLowerBound(p.Loss, 0.01)
	if err != nil {
		return nil, err
	}
	for i, n := range p.Ns {
		e, _, err := newSFEngine(n, p.S, p.DL, 0, p.Loss, 100, rng.DeriveSeed(p.Seed, int64(i)), false)
		if err != nil {
			return nil, err
		}
		tracker := metrics.NewTemporalTracker(e.Views())
		baseline := tracker.IndependenceBaseline(n)
		forgetAt := -1
		for round := 1; round <= p.MaxRounds; round++ {
			e.Round()
			if tracker.Overlap(e.Views()) <= baseline+p.Threshold {
				forgetAt = round
				break
			}
		}
		if forgetAt < 0 {
			return nil, fmt.Errorf("n=%d: views did not forget within %d rounds", n, p.MaxRounds)
		}
		scale := float64(forgetAt) / (float64(p.S) * math.Log(float64(n)))
		dE := float64(p.DL+p.S) / 2
		tau, err := analysis.TemporalIndependenceBound(n, p.S, dE, alphaBound, 0.01)
		if err != nil {
			return nil, err
		}
		perNode, err := analysis.ActionsPerNode(tau, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), f4(baseline), d(forgetAt), f2(scale), f(perNode))
	}
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		"'rounds / (s log n)' should be roughly constant across n if the O(s log n)-actions-per-node scaling holds",
		"the analytical tau bound is loose (conductance-based); the simulation forgets far faster",
	)
	return r, nil
}
