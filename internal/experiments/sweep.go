package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sweepWorkers bounds the worker pool used by Sweep callers in this package
// (0 selects GOMAXPROCS). It is a package variable so determinism tests can
// pin specific pool sizes.
var sweepWorkers = 0

// Sweep evaluates task(0..n-1) on a pool of at most workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results in input order.
// Tasks must be independent; the experiment runners give each task its own
// RNG seeded rng.DeriveSeed(seed, index), so the per-point results — and therefore the
// assembled report — are byte-identical however many workers ran them. If
// several tasks fail, the error of the lowest index wins, matching what a
// sequential loop would have returned first.
func Sweep[T any](n, workers int, task func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			var err error
			if results[i], err = task(i); err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
