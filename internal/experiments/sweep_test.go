package experiments

import (
	"errors"
	"fmt"
	"testing"
)

func TestSweepOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := Sweep(9, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Sweep(8, workers, func(i int) (int, error) {
			if i >= 3 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3's error", workers, err)
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(0, 4, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || got != nil {
		t.Fatalf("Sweep(0) = %v, %v", got, err)
	}
}

// withSweepWorkers pins the package worker pool size for one test body.
func withSweepWorkers(t *testing.T, workers int, fn func()) {
	t.Helper()
	old := sweepWorkers
	sweepWorkers = workers
	defer func() { sweepWorkers = old }()
	fn()
}

// TestFig63ParallelDeterministic renders the Figure 6.3 report with a
// single-worker and a multi-worker sweep and requires byte-identical text:
// per-point seeds derive from the input index, so the worker schedule must
// not leak into the output.
func TestFig63ParallelDeterministic(t *testing.T) {
	params := Fig63Params{
		S: 12, DL: 4,
		LossRates: []float64{0, 0.05, 0.1},
		SimN:      120, SimRounds: 40,
	}
	render := func() string {
		r, err := Fig63(params)
		if err != nil {
			t.Fatal(err)
		}
		return r.String()
	}
	var seq, par string
	withSweepWorkers(t, 1, func() { seq = render() })
	withSweepWorkers(t, 4, func() { par = render() })
	if seq != par {
		t.Fatalf("fig6.3 report differs between 1 and 4 sweep workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

// TestAblationDLParallelDeterministic covers the filtered sweep: points
// skipped by the dL <= s-6 guard must keep their original-index seeds.
func TestAblationDLParallelDeterministic(t *testing.T) {
	params := AblationDLParams{
		N: 120, S: 16,
		DLs:    []int{0, 4, 8, 14}, // 14 > 16-6 is filtered out
		Rounds: 60,
	}
	render := func() string {
		r, err := AblationDL(params)
		if err != nil {
			t.Fatal(err)
		}
		return r.String()
	}
	var seq, par string
	withSweepWorkers(t, 1, func() { seq = render() })
	withSweepWorkers(t, 3, func() { par = render() })
	if seq != par {
		t.Fatalf("abl2 report differs between 1 and 3 sweep workers:\n--- workers=1 ---\n%s\n--- workers=3 ---\n%s", seq, par)
	}
}

// TestFig61StrideOne is the regression test for the indegree-table loop: a
// Stride of 1 used to floor the indegree step to 0 and hang forever.
func TestFig61StrideOne(t *testing.T) {
	r, err := Fig61(Fig61Params{S: 12, Stride: 1, SimN: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) < 2 {
		t.Fatalf("fig6.1 produced %d tables, want at least 2", len(r.Tables))
	}
	inT := r.Tables[1]
	if len(inT.Rows) == 0 {
		t.Fatal("indegree table is empty")
	}
	if len(inT.Rows) > 13 {
		t.Fatalf("indegree table has %d rows for s=12, want at most 13", len(inT.Rows))
	}
}
