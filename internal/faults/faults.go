// Package faults is the composable network-condition layer shared by the
// two execution substrates: the in-memory transport.Network of the
// concurrent runtime and the sequential engine both consult one Conditions
// instance per run, so fault injection behaves identically — decision order,
// RNG draws, and counters — no matter which substrate carries the traffic.
//
// The paper's analysis (Section 4) assumes uniform i.i.d. loss. Conditions
// generalizes that single knob into the failure modes real deployments see
// and related systems are evaluated against (Cyclon under burst loss,
// HyParView under partitions): a stateful base loss model (e.g.
// Gilbert-Elliott bursts), per-link asymmetric loss overrides, dynamic
// partitions with healing, and fixed/jittered delivery delay that reorders
// messages. Each condition reports its own counter so experiments can
// attribute every dropped or late message to the condition that caused it.
package faults

import (
	"fmt"
	"sync"

	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// Drop identifies which condition dropped a message.
type Drop uint8

// Drop reasons.
const (
	// DropNone means the message survived every condition.
	DropNone Drop = iota
	// DropModel is a drop by the base loss model (the paper's l).
	DropModel
	// DropLink is a drop by a per-link override model.
	DropLink
	// DropPartition is a structural drop across an active partition.
	DropPartition
)

func (d Drop) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropModel:
		return "model"
	case DropLink:
		return "link"
	case DropPartition:
		return "partition"
	}
	return fmt.Sprintf("drop(%d)", uint8(d))
}

// Verdict is the fate of one message: dropped for a reason, or delivered
// after Delay rounds (0 = immediately).
type Verdict struct {
	Drop  Drop
	Delay int
}

// Link is a directed sender-receiver pair for asymmetric overrides.
type Link struct {
	From, To peer.ID
}

// Delay configures delivery latency in substrate rounds: every surviving
// message is held for Fixed rounds plus a uniform jitter in [0, Jitter].
// Jitter > 0 reorders messages (a later send can outrun an earlier one),
// which is exactly the nonatomicity Section 4.1's step model permits.
type Delay struct {
	Fixed  int
	Jitter int
}

// Counters tallies per-condition events. ModelDrops + LinkDrops +
// PartitionDrops is the total loss the substrate reports as Traffic.Losses.
type Counters struct {
	// Decisions counts Decide calls (one per attempted transmission).
	Decisions int
	// ModelDrops counts drops by the base loss model.
	ModelDrops int
	// LinkDrops counts drops by per-link override models.
	LinkDrops int
	// PartitionDrops counts drops across an active partition.
	PartitionDrops int
	// Delayed counts messages assigned a nonzero delivery delay.
	Delayed int
	// Partitions and Heals count topology changes.
	Partitions int
	Heals      int
}

// Drops returns the total number of dropped messages.
func (c Counters) Drops() int { return c.ModelDrops + c.LinkDrops + c.PartitionDrops }

// Conditions is a composable network-condition stack. The zero value is not
// usable; construct with New or Lossless. Safe for concurrent use: the
// runtime's network consults it from handler goroutines while tests
// partition and heal it.
//
// Decision order is fixed and substrate-independent: partition check
// (structural, no RNG draw), then the per-link override model if one is
// registered for the (from, to) link, otherwise the base model, then delay
// assignment (one extra draw only when Jitter > 0). Keeping the draw
// sequence identical on both substrates is what makes seeded cross-substrate
// comparisons meaningful.
type Conditions struct {
	mu    sync.Mutex
	base  loss.Model
	links map[Link]loss.Model
	group map[peer.ID]int // nil when healed
	delay Delay
	c     Counters
}

// New builds a condition stack over the given base loss model.
func New(base loss.Model) (*Conditions, error) {
	if base == nil {
		return nil, fmt.Errorf("faults: nil base loss model")
	}
	return &Conditions{base: base}, nil
}

// Lossless returns a condition stack whose base model never drops — the
// starting point for pure partition/delay scenarios.
func Lossless() *Conditions {
	return &Conditions{base: loss.None{}}
}

// FromRate builds a condition stack over a uniform i.i.d. base model — the
// paper's loss setting, used when a plain rate is all the caller configures.
func FromRate(rate float64) (*Conditions, error) {
	m, err := loss.NewUniform(rate)
	if err != nil {
		return nil, err
	}
	return New(m)
}

// Base returns the base loss model.
func (c *Conditions) Base() loss.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base
}

// SetBase swaps the base loss model live — the management API's loss-reload
// path. Per-link overrides, partitions, delay, and all counters are
// untouched; only the base model changes, taking effect on the next
// decision. Swapping a stateful model resets its state by construction (the
// caller built a fresh model), which is the intended semantics of a reload.
func (c *Conditions) SetBase(m loss.Model) error {
	if m == nil {
		return fmt.Errorf("faults: nil base loss model")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.base = m
	return nil
}

// SetRate is SetBase with a fresh uniform i.i.d. model at the given rate —
// the paper's single loss knob, reloadable at runtime.
func (c *Conditions) SetRate(rate float64) error {
	m, err := loss.NewUniform(rate)
	if err != nil {
		return err
	}
	return c.SetBase(m)
}

// Rate returns the base model's long-run loss rate (link overrides and
// partitions add to the realized rate; experiments read the realized rate
// from the traffic counters instead).
func (c *Conditions) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Rate()
}

// SetLinkLoss installs (or, with a nil model, removes) a loss override for
// the directed link from -> to. Overridden links bypass the base model
// entirely, so asymmetric and per-destination scenarios compose with any
// base model.
func (c *Conditions) SetLinkLoss(from, to peer.ID, m loss.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m == nil {
		delete(c.links, Link{From: from, To: to})
		return
	}
	if c.links == nil {
		c.links = make(map[Link]loss.Model)
	}
	c.links[Link{From: from, To: to}] = m
}

// SetDelay configures delivery delay; Delay{} disables it.
func (c *Conditions) SetDelay(d Delay) error {
	if d.Fixed < 0 || d.Jitter < 0 {
		return fmt.Errorf("faults: negative delay %+v", d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
	return nil
}

// Partition splits the network into the given groups: messages between
// different groups (or touching a node listed in no group — such nodes form
// one implicit leftover group) are dropped until Heal. Replaces any active
// partition.
func (c *Conditions) Partition(groups ...[]peer.ID) {
	g := make(map[peer.ID]int)
	for i, members := range groups {
		for _, id := range members {
			g[id] = i
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.group = g
	c.c.Partitions++
}

// Heal removes the active partition.
func (c *Conditions) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.group != nil {
		c.group = nil
		c.c.Heals++
	}
}

// Partitioned reports whether an active partition separates from and to.
func (c *Conditions) Partitioned(from, to peer.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.separated(from, to)
}

// separated implements the partition check. Callers hold c.mu.
func (c *Conditions) separated(from, to peer.ID) bool {
	if c.group == nil {
		return false
	}
	ga, aok := c.group[from]
	gb, bok := c.group[to]
	if !aok {
		ga = -1
	}
	if !bok {
		gb = -1
	}
	return ga != gb
}

// Decide rules on one attempted transmission from -> to, advancing any
// stateful models and drawing from r in the documented order. The caller
// supplies its own RNG so each substrate keeps its deterministic stream.
func (c *Conditions) Decide(from, to peer.ID, r *rng.RNG) Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decideLocked(from, to, r)
}

// decideLocked implements the decision order. Callers hold c.mu.
func (c *Conditions) decideLocked(from, to peer.ID, r *rng.RNG) Verdict {
	c.c.Decisions++
	if c.separated(from, to) {
		c.c.PartitionDrops++
		return Verdict{Drop: DropPartition}
	}
	if m, ok := c.links[Link{From: from, To: to}]; ok {
		if lostTo(m, to, r) {
			c.c.LinkDrops++
			return Verdict{Drop: DropLink}
		}
	} else if lostTo(c.base, to, r) {
		c.c.ModelDrops++
		return Verdict{Drop: DropModel}
	}
	d := c.delay.Fixed
	if c.delay.Jitter > 0 {
		d += r.Intn(c.delay.Jitter + 1)
	}
	if d > 0 {
		c.c.Delayed++
	}
	return Verdict{Delay: d}
}

// A Session is a single-owner decision pass over the stack: Begin acquires
// the lock once and Close releases it, so a routing loop ruling on tens of
// thousands of messages per round pays the synchronization cost once
// instead of per message. Begin also pre-resolves the base model's
// destination-aware interface and notes whether any link overrides or an
// active partition exist, so the common uniform-loss configuration decides
// each message with one model call and a couple of branches.
//
// While a session is open every other Conditions method blocks; the owner
// must Close before calling them. Session.Decide draws from r in exactly
// the order the method form does, so seeded decision streams are unchanged.
type Session struct {
	c      *Conditions
	dest   loss.DestinationModel // base pre-asserted, nil if not destination-aware
	simple bool                  // no link overrides and no active partition
}

// Begin opens a decision session, holding the stack's lock until Close.
func (c *Conditions) Begin() Session {
	c.mu.Lock()
	dm, _ := c.base.(loss.DestinationModel)
	return Session{c: c, dest: dm, simple: len(c.links) == 0 && c.group == nil}
}

// Decide is Conditions.Decide without the per-call lock; see Begin.
func (s *Session) Decide(from, to peer.ID, r *rng.RNG) Verdict {
	c := s.c
	if !s.simple {
		return c.decideLocked(from, to, r)
	}
	c.c.Decisions++
	var lost bool
	if s.dest != nil {
		lost = s.dest.LostTo(to, r)
	} else {
		lost = c.base.Lost(r)
	}
	if lost {
		c.c.ModelDrops++
		return Verdict{Drop: DropModel}
	}
	d := c.delay.Fixed
	if c.delay.Jitter > 0 {
		d += r.Intn(c.delay.Jitter + 1)
	}
	if d > 0 {
		c.c.Delayed++
	}
	return Verdict{Delay: d}
}

// Close ends the session, releasing the stack.
func (s *Session) Close() { s.c.mu.Unlock() }

// lostTo consults a model, routing through the destination-aware interface
// when the model implements it (loss.PerDest keeps working under the
// condition stack exactly as it did under the engine's direct path).
func lostTo(m loss.Model, to peer.ID, r *rng.RNG) bool {
	if dm, ok := m.(loss.DestinationModel); ok {
		return dm.LostTo(to, r)
	}
	return m.Lost(r)
}

// Counters returns a snapshot of the per-condition counters.
func (c *Conditions) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// String names the stack for experiment logs.
func (c *Conditions) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := fmt.Sprintf("faults(base=%s", c.base)
	if len(c.links) > 0 {
		s += fmt.Sprintf(", links=%d", len(c.links))
	}
	if c.group != nil {
		s += ", partitioned"
	}
	if c.delay != (Delay{}) {
		s += fmt.Sprintf(", delay=%d+U[0,%d]", c.delay.Fixed, c.delay.Jitter)
	}
	return s + ")"
}
