package faults

import (
	"sync"
	"testing"

	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("accepted nil base model")
	}
	if _, err := FromRate(1.5); err == nil {
		t.Error("accepted rate > 1")
	}
	c := Lossless()
	if c.Rate() != 0 {
		t.Errorf("lossless rate = %v", c.Rate())
	}
}

func TestDecideBaseModel(t *testing.T) {
	c, err := FromRate(1) // always drop
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if v := c.Decide(0, 1, r); v.Drop != DropModel {
		t.Errorf("verdict = %+v, want model drop", v)
	}
	got := c.Counters()
	if got.Decisions != 1 || got.ModelDrops != 1 || got.Drops() != 1 {
		t.Errorf("counters = %+v", got)
	}
}

func TestLinkOverrideBypassesBase(t *testing.T) {
	// Base always drops; the overridden link never does, and vice versa.
	c, err := FromRate(1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLinkLoss(0, 1, loss.None{})
	c.SetLinkLoss(2, 3, loss.MustUniform(1))
	r := rng.New(2)
	if v := c.Decide(0, 1, r); v.Drop != DropNone {
		t.Errorf("overridden lossless link dropped: %+v", v)
	}
	// The override is directed: the reverse link uses the base model.
	if v := c.Decide(1, 0, r); v.Drop != DropModel {
		t.Errorf("reverse link verdict = %+v, want model drop", v)
	}
	if v := c.Decide(2, 3, r); v.Drop != DropLink {
		t.Errorf("lossy link verdict = %+v, want link drop", v)
	}
	got := c.Counters()
	if got.LinkDrops != 1 || got.ModelDrops != 1 {
		t.Errorf("counters = %+v", got)
	}
	// Removing the override restores the base model.
	c.SetLinkLoss(0, 1, nil)
	if v := c.Decide(0, 1, r); v.Drop != DropModel {
		t.Errorf("removed override verdict = %+v, want model drop", v)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	c := Lossless()
	r := rng.New(3)
	c.Partition([]peer.ID{0, 1}, []peer.ID{2, 3})
	cases := []struct {
		from, to peer.ID
		cut      bool
	}{
		{0, 1, false}, // same group
		{0, 2, true},  // across groups
		{3, 1, true},
		{0, 9, true}, // 9 is in no group: implicit leftover group
		{9, 8, false},
	}
	for _, tc := range cases {
		if got := c.Partitioned(tc.from, tc.to); got != tc.cut {
			t.Errorf("Partitioned(%v, %v) = %v, want %v", tc.from, tc.to, got, tc.cut)
		}
		wantDrop := DropNone
		if tc.cut {
			wantDrop = DropPartition
		}
		if v := c.Decide(tc.from, tc.to, r); v.Drop != wantDrop {
			t.Errorf("Decide(%v, %v) = %+v, want drop %v", tc.from, tc.to, v, wantDrop)
		}
	}
	c.Heal()
	c.Heal() // idempotent: only one heal counted
	if c.Partitioned(0, 2) {
		t.Error("still partitioned after Heal")
	}
	if v := c.Decide(0, 2, r); v.Drop != DropNone {
		t.Errorf("post-heal verdict = %+v", v)
	}
	got := c.Counters()
	if got.Partitions != 1 || got.Heals != 1 {
		t.Errorf("counters = %+v", got)
	}
}

func TestDelayAndJitter(t *testing.T) {
	c := Lossless()
	if err := c.SetDelay(Delay{Fixed: -1}); err == nil {
		t.Error("accepted negative delay")
	}
	if err := c.SetDelay(Delay{Fixed: 2, Jitter: 3}); err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		v := c.Decide(0, 1, r)
		if v.Drop != DropNone {
			t.Fatalf("lossless stack dropped: %+v", v)
		}
		if v.Delay < 2 || v.Delay > 5 {
			t.Fatalf("delay %d outside [2, 5]", v.Delay)
		}
		seen[v.Delay] = true
	}
	if len(seen) != 4 {
		t.Errorf("jitter produced delays %v, want all of 2..5", seen)
	}
	if got := c.Counters().Delayed; got != 200 {
		t.Errorf("Delayed = %d, want 200", got)
	}
	// Disabling restores immediate delivery.
	if err := c.SetDelay(Delay{}); err != nil {
		t.Fatal(err)
	}
	if v := c.Decide(0, 1, r); v.Delay != 0 {
		t.Errorf("delay %d after disable", v.Delay)
	}
}

func TestGilbertElliottBaseBursts(t *testing.T) {
	ge, err := loss.BurstyWithRate(0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ge)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	drops, runs, inRun := 0, 0, false
	const trials = 20000
	for i := 0; i < trials; i++ {
		if c.Decide(0, 1, r).Drop == DropModel {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	rate := float64(drops) / trials
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("empirical burst loss rate %.3f, want ~0.2", rate)
	}
	meanBurst := float64(drops) / float64(runs)
	if meanBurst < 3 || meanBurst > 5 {
		t.Errorf("mean burst length %.2f, want ~4", meanBurst)
	}
}

func TestDestinationAwareBase(t *testing.T) {
	pd, err := loss.NewPerDest(0, map[peer.ID]float64{7: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(pd)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	if v := c.Decide(0, 7, r); v.Drop != DropModel {
		t.Errorf("per-dest lossy destination survived: %+v", v)
	}
	if v := c.Decide(0, 1, r); v.Drop != DropNone {
		t.Errorf("per-dest clean destination dropped: %+v", v)
	}
}

func TestConcurrentDecideAndRepartition(t *testing.T) {
	// The runtime decides from handler goroutines while a test partitions
	// and heals: must be race-free (run under -race).
	c := Lossless()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.New(int64(w + 1))
			for i := 0; i < 2000; i++ {
				c.Decide(peer.ID(i%8), peer.ID((i+1)%8), r)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Partition([]peer.ID{0, 1, 2, 3}, []peer.ID{4, 5, 6, 7})
			c.Heal()
		}
	}()
	wg.Wait()
	if got := c.Counters().Decisions; got != 8000 {
		t.Errorf("Decisions = %d, want 8000", got)
	}
}

func TestSetRateLiveReload(t *testing.T) {
	c, err := FromRate(0) // never drop
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if v := c.Decide(0, 1, r); v.Drop != DropNone {
		t.Errorf("verdict before reload = %+v, want delivery", v)
	}
	// Reload to certain loss: the next decision must drop, and the
	// counters accumulated so far must survive the swap.
	if err := c.SetRate(1); err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(); got != 1 {
		t.Errorf("Rate after reload = %v, want 1", got)
	}
	if v := c.Decide(0, 1, r); v.Drop != DropModel {
		t.Errorf("verdict after reload = %+v, want model drop", v)
	}
	got := c.Counters()
	if got.Decisions != 2 || got.ModelDrops != 1 {
		t.Errorf("counters after reload = %+v", got)
	}
	if err := c.SetRate(1.5); err == nil {
		t.Error("accepted rate > 1")
	}
	if err := c.SetBase(nil); err == nil {
		t.Error("accepted nil base model")
	}
	// Link overrides survive a base reload.
	m, err := loss.NewUniform(0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLinkLoss(0, 1, m)
	if err := c.SetRate(1); err != nil {
		t.Fatal(err)
	}
	if v := c.Decide(0, 1, r); v.Drop != DropNone {
		t.Errorf("override link after reload = %+v, want delivery", v)
	}
}
