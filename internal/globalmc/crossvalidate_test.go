package globalmc

import (
	"testing"

	"sendforget/internal/engine"
	"sendforget/internal/loss"
	"sendforget/internal/markov"
	"sendforget/internal/peer"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/rng"
)

// TestSimulatorMatchesExactStationary is the strongest consistency check in
// the repository: the sequential engine driving the real protocol
// implementation at n=3 must visit membership-graph states with the
// frequencies of the exact chain's stationary distribution. Any divergence
// between the protocol code and the transition enumeration (duplication
// rule, deletion rule, pair-selection probabilities) shows up here — in
// particular it independently confirms the non-uniform stationary
// distribution on the lossless manifold (the duplicate-multiplicity effect
// documented at Lemma 7.5).
func TestSimulatorMatchesExactStationary(t *testing.T) {
	const (
		n  = 3
		s  = 6
		dl = 0
	)
	chain, err := Build(Params{N: n, S: s, DL: dl, Loss: 0}, Circulant(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.Stationary(1e-12, 5000000)
	if err != nil {
		t.Fatal(err)
	}

	proto, err := sendforget.New(sendforget.Config{N: n, S: s, DL: dl, InitDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(proto, loss.None{}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	// Burn in, then sample state occupancy after every step.
	e.Run(200)
	const samples = 500000
	occupancy := make([]float64, chain.Len())
	unknown := 0
	current := NewState(n)
	for k := 0; k < samples; k++ {
		e.Step()
		for u := 0; u < n; u++ {
			row := current.Mult[u]
			for v := range row {
				row[v] = 0
			}
			if lv := proto.View(peer.ID(u)); lv != nil {
				for _, id := range lv.IDs() {
					row[id]++
				}
			}
		}
		if idx, ok := chain.Index(current); ok {
			occupancy[idx]++
		} else {
			unknown++
		}
	}
	// Lossless manifold dynamics cannot leave the enumerated set.
	if unknown > 0 {
		t.Fatalf("simulator visited %d samples outside the enumerated chain", unknown)
	}
	for i := range occupancy {
		occupancy[i] /= samples
	}
	if tv := markov.TV(occupancy, pi); tv > 0.02 {
		t.Errorf("TV(simulated occupancy, exact stationary) = %v, want <= 0.02", tv)
	}
	// The duplicate-free state must sit at (or tie for, within sampling
	// noise) the top of the simulated occupancy — the exact distribution
	// has several states sharing the maximum probability.
	maxOcc, dupFreeOcc := 0.0, -1.0
	for i, st := range chain.States() {
		if occupancy[i] > maxOcc {
			maxOcc = occupancy[i]
		}
		if duplicateOverflow(st) == 0 {
			dupFreeOcc = occupancy[i]
		}
	}
	if dupFreeOcc < 0 {
		t.Fatal("no duplicate-free state enumerated")
	}
	if dupFreeOcc < 0.9*maxOcc {
		t.Errorf("duplicate-free state occupancy %v well below max %v", dupFreeOcc, maxOcc)
	}
}
