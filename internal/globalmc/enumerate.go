package globalmc

// AllV0States enumerates the paper's V0 (Section 7.1): every weakly
// connected membership graph in which all node outdegrees are even and
// within [dL, s-2]. Lemma A.3 proves that under positive loss every state
// of V0 is reachable from every other; combined with BFS reachability from
// a single initial state this gives an exact, exhaustive check of the
// lemma for tiny systems.
func AllV0States(par Params) []State {
	n := par.N
	maxOut := par.S - 2
	// Enumerate per-node views: all multiplicity vectors over n ids with
	// even total in [dL, s-2].
	var viewChoices [][]uint8
	var build func(vec []uint8, idx, total int)
	build = func(vec []uint8, idx, total int) {
		if total > maxOut {
			return
		}
		if idx == n {
			if total >= par.DL && total%2 == 0 {
				c := make([]uint8, n)
				copy(c, vec)
				viewChoices = append(viewChoices, c)
			}
			return
		}
		for m := 0; m+total <= maxOut; m++ {
			vec[idx] = uint8(m)
			build(vec, idx+1, total+m)
		}
		vec[idx] = 0
	}
	build(make([]uint8, n), 0, 0)

	// Cartesian product over nodes, keeping weakly connected states.
	var out []State
	current := NewState(n)
	var assign func(u int)
	assign = func(u int) {
		if u == n {
			if current.weaklyConnected() {
				out = append(out, current.clone())
			}
			return
		}
		for _, vc := range viewChoices {
			copy(current.Mult[u], vc)
			assign(u + 1)
		}
	}
	assign(0)
	return out
}

// Contains reports whether the chain's reachable set includes st.
func (c *Chain) Contains(st State) bool {
	_, ok := c.index[st.key()]
	return ok
}

// Index returns the state's index in States(), if present.
func (c *Chain) Index(st State) (int, bool) {
	i, ok := c.index[st.key()]
	return i, ok
}
