// Package globalmc builds the *exact* global Markov chain of Section 7.1 —
// the chain G(s, dL, l) whose states are entire membership graphs and whose
// transitions are S&F actions — for systems small enough to enumerate.
//
// The paper analyzes this chain abstractly (Lemmas 7.1-7.6); here it is
// materialized: states are enumerated by breadth-first closure from an
// initial membership graph, transition probabilities follow Proposition 5.2
// (each ordered pair of view slots of each node is equally likely), loss
// branches each action, and — as in the paper — transitions into partitioned
// membership graphs are replaced by self-loops ("Since partitioned states
// are excluded from G, we replace the edges leading to them from states in
// G by self-loops").
//
// With the chain in hand, the paper's structural lemmas become checkable
// facts: Lemma 7.1 (strong connectivity for 0 < l < 1), Lemma 7.2 (unique
// stationary distribution), Lemma 7.5 (uniform stationary distribution over
// the lossless sum-degree manifold), and Lemma 7.6 (every id v != u equally
// likely to appear in u's view).
package globalmc

import (
	"fmt"

	"sendforget/internal/graph"
	"sendforget/internal/markov"
	"sendforget/internal/peer"
)

// Params parameterizes the global chain. Unlike the protocol Config, S and
// DL are only required to be even and consistent (the s >= 6, dL <= s-6
// constraints in the paper serve the reachability *proof*, not the chain's
// definition), because exact enumeration is only feasible for tiny systems.
type Params struct {
	// N is the number of nodes (enumeration is exponential in N; 3 or 4).
	N int
	// S is the view size (even, >= 2).
	S int
	// DL is the duplication threshold (even, 0 <= DL < S).
	DL int
	// Loss is the uniform message loss rate in [0, 1).
	Loss float64
	// KeepPartitioned includes partitioned membership graphs as ordinary
	// states instead of redirecting transitions into them to self-loops.
	// The paper's chain excludes them (Section 7.1); the physical protocol
	// can genuinely reach them, so cross-validation against a live
	// simulator uses the unclipped chain.
	KeepPartitioned bool
}

func (p Params) validate() error {
	if p.N < 2 || p.N > 5 {
		return fmt.Errorf("globalmc: n must be in [2, 5] for exact enumeration, got %d", p.N)
	}
	if p.S < 2 || p.S%2 != 0 {
		return fmt.Errorf("globalmc: s must be even >= 2, got %d", p.S)
	}
	if p.DL < 0 || p.DL >= p.S || p.DL%2 != 0 {
		return fmt.Errorf("globalmc: dL must be even in [0, s), got %d", p.DL)
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("globalmc: loss must be in [0, 1), got %v", p.Loss)
	}
	return nil
}

// State is a full membership graph: Mult[u][v] is the multiplicity of v in
// u's view (v may equal u: self-edges arise when a node's own id is gossiped
// back to it). Slot positions are irrelevant to the chain because S&F
// selects slots uniformly; the multiset determines all probabilities.
type State struct {
	Mult [][]uint8
}

// NewState returns an empty n-node state.
func NewState(n int) State {
	m := make([][]uint8, n)
	for u := range m {
		m[u] = make([]uint8, n)
	}
	return State{Mult: m}
}

// Circulant returns the initial state where node u's view holds
// u+1, ..., u+d (mod n) — the same bootstrap the protocol uses.
func Circulant(n, d int) State {
	st := NewState(n)
	for u := 0; u < n; u++ {
		for k := 1; k <= d; k++ {
			st.Mult[u][(u+k)%n]++
		}
	}
	return st
}

// clone deep-copies the state.
func (st State) clone() State {
	c := NewState(len(st.Mult))
	for u := range st.Mult {
		copy(c.Mult[u], st.Mult[u])
	}
	return c
}

// key encodes the state for map lookup.
func (st State) key() string {
	n := len(st.Mult)
	b := make([]byte, 0, n*n)
	for _, row := range st.Mult {
		b = append(b, row...)
	}
	return string(b)
}

// Outdegree returns d(u).
func (st State) Outdegree(u int) int {
	d := 0
	for _, m := range st.Mult[u] {
		d += int(m)
	}
	return d
}

// SumDegrees returns the sum-degree vector (Definition 6.1).
func (st State) SumDegrees() []int {
	n := len(st.Mult)
	out := make([]int, n)
	for u := 0; u < n; u++ {
		out[u] = st.Outdegree(u)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			out[v] += 2 * int(st.Mult[u][v])
		}
	}
	return out
}

// Graph converts the state to a membership multigraph.
func (st State) Graph() *graph.Graph {
	n := len(st.Mult)
	var edges [][2]peer.ID
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for k := 0; k < int(st.Mult[u][v]); k++ {
				edges = append(edges, [2]peer.ID{peer.ID(u), peer.ID(v)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// weaklyConnected reports whether the membership graph is weakly connected;
// partitioned states are excluded from the chain per Section 7.1. It runs a
// small union-find directly on the multiplicity matrix — this check runs
// once per enumerated transition outcome, so it must not allocate a full
// graph.
func (st State) weaklyConnected() bool {
	n := len(st.Mult)
	if n == 0 {
		return true
	}
	var parent [5]int // Params caps N at 5
	for i := 0; i < n; i++ {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || st.Mult[u][v] == 0 {
				continue
			}
			ru, rv := find(u), find(v)
			if ru != rv {
				parent[ru] = rv
				comps--
			}
		}
	}
	return comps == 1
}

// Chain is the materialized global MC.
type Chain struct {
	par    Params
	states []State
	index  map[string]int
	mc     *markov.Sparse
	// PartitionClipped counts transition probability mass redirected to
	// self-loops because the target state was partitioned.
	PartitionClipped float64
}

// Build enumerates the reachable state space from the initial state and
// assembles the transition matrix. The initial state must be weakly
// connected.
func Build(par Params, initial State) (*Chain, error) {
	if err := par.validate(); err != nil {
		return nil, err
	}
	if len(initial.Mult) != par.N {
		return nil, fmt.Errorf("globalmc: initial state has %d nodes, want %d", len(initial.Mult), par.N)
	}
	for u := 0; u < par.N; u++ {
		if d := initial.Outdegree(u); d > par.S || d%2 != 0 {
			return nil, fmt.Errorf("globalmc: initial outdegree of node %d is %d (s=%d)", u, d, par.S)
		}
	}
	if !initial.weaklyConnected() {
		return nil, fmt.Errorf("globalmc: initial state is not weakly connected")
	}
	c := &Chain{par: par, index: make(map[string]int)}
	c.add(initial)
	// BFS closure: process states in discovery order; transitions append
	// new states to c.states.
	type row struct {
		from int
		to   map[int]float64
		self float64
	}
	var rows []row
	for i := 0; i < len(c.states); i++ {
		r := row{from: i, to: make(map[int]float64)}
		c.transitions(c.states[i], func(next State, p float64) {
			if !par.KeepPartitioned && !next.weaklyConnected() {
				c.PartitionClipped += p
				r.self += p
				return
			}
			j := c.add(next)
			if j == i {
				r.self += p
			} else {
				r.to[j] += p
			}
		}, func(selfLoop float64) {
			r.self += selfLoop
		})
		rows = append(rows, r)
	}
	c.mc = markov.NewSparse(len(c.states))
	for _, r := range rows {
		for j, p := range r.to {
			c.mc.Add(r.from, j, p)
		}
		if r.self > 0 {
			c.mc.Add(r.from, r.from, r.self)
		}
	}
	if err := markov.Validate(c.mc); err != nil {
		return nil, fmt.Errorf("globalmc: assembled chain invalid: %w", err)
	}
	return c, nil
}

// add interns a state and returns its index.
func (c *Chain) add(st State) int {
	k := st.key()
	if i, ok := c.index[k]; ok {
		return i
	}
	i := len(c.states)
	c.index[k] = i
	c.states = append(c.states, st.clone())
	return i
}

// transitions enumerates the outcome distribution of one uniformly random
// S&F action from st. emit receives state-changing outcomes; selfLoop
// receives the aggregated probability of outcomes that leave st unchanged.
func (c *Chain) transitions(st State, emit func(State, float64), selfLoop func(float64)) {
	par := c.par
	n := par.N
	s := par.S
	pairTotal := float64(s * (s - 1))
	loopMass := 0.0
	for u := 0; u < n; u++ {
		pNode := 1.0 / float64(n)
		d := st.Outdegree(u)
		empties := s - d
		// P(at least one selected slot empty): ordered pairs where slot i
		// or slot j is empty.
		emptyPairs := float64(empties*(s-1) + d*empties)
		loopMass += pNode * emptyPairs / pairTotal
		if d < 2 {
			continue
		}
		dup := d <= par.DL
		for a := 0; a < n; a++ { // target id (first selected slot)
			ma := int(st.Mult[u][a])
			if ma == 0 {
				continue
			}
			for b := 0; b < n; b++ { // payload id (second selected slot)
				mb := int(st.Mult[u][b])
				if b == a {
					mb--
				}
				if mb <= 0 {
					continue
				}
				pPair := pNode * float64(ma*mb) / pairTotal
				// Sender step: clear unless duplication.
				base := st
				if !dup {
					base = st.clone()
					base.Mult[u][a]--
					base.Mult[u][b]--
				}
				// Lost branch.
				if par.Loss > 0 {
					c.emitOrLoop(st, base, pPair*par.Loss, emit, &loopMass)
				}
				// Delivered branch: receiver a gets [u, b].
				pDel := pPair * (1 - par.Loss)
				if pDel > 0 {
					recv := base.clone()
					if recv.Outdegree(a) >= s {
						// Full view: deletion; state is base.
						c.emitOrLoop(st, base, pDel, emit, &loopMass)
					} else {
						recv.Mult[a][u]++
						recv.Mult[a][b]++
						c.emitOrLoop(st, recv, pDel, emit, &loopMass)
					}
				}
			}
		}
	}
	selfLoop(loopMass)
}

// emitOrLoop routes an outcome either to emit or, if it equals the origin
// state, into the self-loop mass.
func (c *Chain) emitOrLoop(origin, next State, p float64, emit func(State, float64), loopMass *float64) {
	if p <= 0 {
		return
	}
	if next.key() == origin.key() {
		*loopMass += p
		return
	}
	emit(next, p)
}

// Len returns the number of reachable (non-partitioned) states.
func (c *Chain) Len() int { return len(c.states) }

// States returns the state list (do not mutate).
func (c *Chain) States() []State { return c.states }

// MC returns the transition chain.
func (c *Chain) MC() *markov.Sparse { return c.mc }

// Stationary computes the chain's stationary distribution.
func (c *Chain) Stationary(tol float64, maxIter int) ([]float64, error) {
	pi, _, err := markov.Stationary(c.mc, nil, tol, maxIter)
	return pi, err
}

// EdgeProbability returns P(v in u.lv) under the distribution pi —
// the quantity Lemma 7.6 proves equal for all v != u.
func (c *Chain) EdgeProbability(pi []float64, u, v int) float64 {
	p := 0.0
	for i, st := range c.states {
		if st.Mult[u][v] > 0 {
			p += pi[i]
		}
	}
	return p
}

// ManifoldStates returns the indices of states whose sum-degree vector
// equals want — the subchain G_ds of Section 7.2.
func (c *Chain) ManifoldStates(want []int) []int {
	var out []int
	for i, st := range c.states {
		ds := st.SumDegrees()
		match := len(ds) == len(want)
		for k := range want {
			if !match || ds[k] != want[k] {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}
