package globalmc

import (
	"math"
	"testing"

	"sendforget/internal/markov"
)

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name string
		par  Params
		ok   bool
	}{
		{"valid", Params{N: 3, S: 6, DL: 0}, true},
		{"valid with loss", Params{N: 3, S: 6, DL: 2, Loss: 0.1}, true},
		{"n too large", Params{N: 6, S: 6, DL: 0}, false},
		{"n too small", Params{N: 1, S: 6, DL: 0}, false},
		{"odd s", Params{N: 3, S: 5, DL: 0}, false},
		{"odd dL", Params{N: 3, S: 6, DL: 1}, false},
		{"dL >= s", Params{N: 3, S: 6, DL: 6}, false},
		{"loss 1", Params{N: 3, S: 6, DL: 0, Loss: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			par := tt.par
			if tt.ok {
				// Keep the valid cases cheap: validation happens before
				// enumeration, so a lossless tiny chain suffices.
				par.Loss = 0
			}
			_, err := Build(par, Circulant(par.N, 2))
			if (err == nil) != tt.ok {
				t.Errorf("Build(%+v) error = %v, want ok=%v", par, err, tt.ok)
			}
		})
	}
}

func TestCirculant(t *testing.T) {
	st := Circulant(3, 2)
	for u := 0; u < 3; u++ {
		if d := st.Outdegree(u); d != 2 {
			t.Errorf("node %d outdegree = %d, want 2", u, d)
		}
	}
	ds := st.SumDegrees()
	for u, v := range ds {
		if v != 6 {
			t.Errorf("node %d sum degree = %d, want 6", u, v)
		}
	}
	if !st.weaklyConnected() {
		t.Error("circulant not weakly connected")
	}
}

func TestBuildRejectsBadInitial(t *testing.T) {
	par := Params{N: 3, S: 6, DL: 0}
	if _, err := Build(par, Circulant(4, 2)); err == nil {
		t.Error("accepted wrong node count")
	}
	// Odd outdegree.
	st := NewState(3)
	st.Mult[0][1] = 1
	st.Mult[1][0] = 2
	st.Mult[2][0] = 2
	if _, err := Build(par, st); err == nil {
		t.Error("accepted odd outdegree")
	}
	// Disconnected initial state: self-edges only on node 2.
	st2 := NewState(3)
	st2.Mult[0][1] = 2
	st2.Mult[1][0] = 2
	st2.Mult[2][2] = 2
	if _, err := Build(par, st2); err == nil {
		t.Error("accepted partitioned initial state")
	}
}

func TestLemma71StrongConnectivityUnderLoss(t *testing.T) {
	// 0 < l < 1: the global chain is strongly connected (Lemma 7.1).
	chain, err := Build(Params{N: 3, S: 6, DL: 2, Loss: 0.1}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() < 10 {
		t.Fatalf("suspiciously small state space: %d", chain.Len())
	}
	if !markov.IsIrreducible(chain.MC()) {
		t.Error("global chain with 0 < l < 1 is not strongly connected (Lemma 7.1)")
	}
	if !markov.IsErgodic(chain.MC()) {
		t.Error("global chain not ergodic (Lemma 7.2 premise)")
	}
}

// duplicateOverflow counts the dependence-bearing entries of a state: the
// multiplicity overflow of same-view duplicates plus all self-edges —
// exactly the entries the paper's Section 2 labeling discounts.
func duplicateOverflow(st State) int {
	dup := 0
	for u := range st.Mult {
		for v, m := range st.Mult[u] {
			if int(m) > 1 {
				dup += int(m) - 1
			}
			if u == v {
				dup += int(m)
			}
		}
	}
	return dup
}

func TestLemma75UniformityModuloDuplicates(t *testing.T) {
	// Lemma 7.5 states that with no loss and constant sum degrees the
	// stationary distribution is uniform over all reachable states. Its
	// proof (Lemma 7.3) pairs each transformation with a reverse
	// transformation of equal probability — a pairing that is exact only
	// when view entries have multiplicity one: with a duplicate id, two
	// forward entry-pair choices map to a single reverse choice. The paper
	// works in the n >> s regime where duplicates are O(s/n) rare and
	// explicitly discounts them as dependencies (Section 2). Exact
	// enumeration at n=3 makes the effect visible; what must hold exactly
	// is that the chain preserves the manifold (Lemma 6.2), is ergodic on
	// it, and that the deviation from uniformity is *attributable to
	// duplicates*: the duplicate-free state is modal, and probability
	// decays with the duplicate count.
	chain, err := Build(Params{N: 3, S: 6, DL: 0, Loss: 0}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// The lossless manifold chain preserves sum degrees (Lemma 6.2).
	for _, st := range chain.States() {
		for u, ds := range st.SumDegrees() {
			if ds != 6 {
				t.Fatalf("state off manifold: node %d sum degree %d", u, ds)
			}
		}
	}
	if !markov.IsErgodic(chain.MC()) {
		t.Fatal("lossless manifold chain not ergodic")
	}
	pi, err := chain.Stationary(1e-13, 5000000)
	if err != nil {
		t.Fatal(err)
	}
	// Group stationary mass by duplicate overflow.
	maxPi := make(map[int]float64)
	meanPi := make(map[int]float64)
	counts := make(map[int]int)
	globalMax, globalMaxDup := 0.0, -1
	for i, st := range chain.States() {
		dup := duplicateOverflow(st)
		if pi[i] > maxPi[dup] {
			maxPi[dup] = pi[i]
		}
		meanPi[dup] += pi[i]
		counts[dup]++
		if pi[i] > globalMax {
			globalMax, globalMaxDup = pi[i], dup
		}
	}
	for dup := range meanPi {
		meanPi[dup] /= float64(counts[dup])
	}
	if globalMaxDup != 0 {
		t.Errorf("modal state has duplicate overflow %d, want 0 (duplicate-free)", globalMaxDup)
	}
	// Mean probability must decrease with duplicate count.
	prev := meanPi[0]
	for dup := 1; dup <= 4; dup++ {
		if counts[dup] == 0 {
			continue
		}
		if meanPi[dup] >= prev {
			t.Errorf("mean pi did not decay with duplicates: dup=%d mean %v >= %v", dup, meanPi[dup], prev)
		}
		prev = meanPi[dup]
	}
}

func TestLemma76UniformEdgeProbability(t *testing.T) {
	// In the steady state, every v != u appears in u's view with equal
	// probability (Lemma 7.6). Check all (u, v) pairs under loss.
	chain, err := Build(Params{N: 3, S: 6, DL: 2, Loss: 0.1}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.Stationary(1e-11, 2000000)
	if err != nil {
		t.Fatal(err)
	}
	var probs []float64
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if v == u {
				continue
			}
			probs = append(probs, chain.EdgeProbability(pi, u, v))
		}
	}
	for i := 1; i < len(probs); i++ {
		if math.Abs(probs[i]-probs[0]) > 1e-6 {
			t.Fatalf("edge probabilities not uniform: %v", probs)
		}
	}
	if probs[0] <= 0 || probs[0] >= 1 {
		t.Fatalf("degenerate edge probability %v", probs[0])
	}
}

func TestPartitionedStatesClipped(t *testing.T) {
	// With dL=0 and loss, views can decay; transitions into partitioned
	// membership graphs must be redirected to self-loops, and no reachable
	// state may be partitioned.
	chain, err := Build(Params{N: 3, S: 6, DL: 0, Loss: 0.3}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range chain.States() {
		if !st.weaklyConnected() {
			t.Fatalf("state %d is partitioned", i)
		}
	}
	if chain.PartitionClipped == 0 {
		t.Error("expected some partition-bound probability mass to be clipped at dL=0 under loss")
	}
	if err := markov.Validate(chain.MC()); err != nil {
		t.Fatal(err)
	}
}

func TestManifoldStates(t *testing.T) {
	chain, err := Build(Params{N: 3, S: 6, DL: 0, Loss: 0}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	manifold := chain.ManifoldStates([]int{6, 6, 6})
	if len(manifold) != chain.Len() {
		t.Errorf("manifold has %d of %d states; lossless chain should stay on it", len(manifold), chain.Len())
	}
	if got := chain.ManifoldStates([]int{2, 2, 2}); len(got) != 0 {
		t.Errorf("unexpected states on foreign manifold: %d", len(got))
	}
}

func TestSelfEdgesAriseAndAreCounted(t *testing.T) {
	// Under loss with duplication, an id can travel back to its owner,
	// creating self-edges; the enumeration must include such states.
	chain, err := Build(Params{N: 3, S: 6, DL: 2, Loss: 0.1}, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range chain.States() {
		for u := 0; u < 3; u++ {
			if st.Mult[u][u] > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no state with a self-edge was enumerated")
	}
}

func TestTransitionProbabilityConservation(t *testing.T) {
	// Every row of the assembled chain must sum to exactly 1 (Validate is
	// called in Build; this asserts it independently on a lossy chain).
	chain, err := Build(Params{N: 4, S: 4, DL: 0, Loss: 0.2}, Circulant(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := markov.Validate(chain.MC()); err != nil {
		t.Fatal(err)
	}
	if chain.Len() < 50 {
		t.Errorf("n=4 chain suspiciously small: %d states", chain.Len())
	}
}

func TestLemmaA3AllV0StatesReachable(t *testing.T) {
	// Lemma A.3: for 0 < l < 1, every weakly connected state with even
	// outdegrees in [dL, s-2] (the set V0) is reachable from every other.
	// Exhaustive check at n=3, s=6, dL=2: enumerate V0 and verify the BFS
	// closure from the circulant start covers all of it, and that the
	// chain is strongly connected (so "from every other" follows).
	par := Params{N: 3, S: 6, DL: 2, Loss: 0.1}
	chain, err := Build(par, Circulant(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	v0 := AllV0States(par)
	if len(v0) < 50 {
		t.Fatalf("suspiciously small V0: %d states", len(v0))
	}
	missing := 0
	for _, st := range v0 {
		if !chain.Contains(st) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d V0 states unreachable from the circulant start (Lemma A.3)", missing, len(v0))
	}
	if !markov.IsIrreducible(chain.MC()) {
		t.Error("chain not strongly connected")
	}
}

func TestAllV0StatesRespectConstraints(t *testing.T) {
	par := Params{N: 3, S: 6, DL: 2, Loss: 0.1}
	for _, st := range AllV0States(par) {
		for u := 0; u < par.N; u++ {
			d := st.Outdegree(u)
			if d%2 != 0 || d < par.DL || d > par.S-2 {
				t.Fatalf("V0 state with invalid outdegree %d at node %d", d, u)
			}
		}
		if !st.weaklyConnected() {
			t.Fatal("V0 state not weakly connected")
		}
	}
}
