// Package graph models the membership graph of Section 4: a directed
// multigraph G = (V, E) whose vertices are nodes and whose edge multiset
// contains (u, v) with the multiplicity of v in u.lv.
//
// The package provides the structural queries the analysis needs — in- and
// outdegrees, sum degrees, weak connectivity, self-edge and parallel-edge
// counts, and degree histograms — over either a live snapshot of protocol
// views or a standalone edge multiset built by tests.
package graph

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/view"
)

// Graph is an immutable snapshot of a membership graph over nodes 0..n-1.
type Graph struct {
	n   int
	out [][]peer.ID // out[u] = multiset of out-neighbors, in slot order
	in  []int       // in[u]  = indegree din(u)
}

// FromViews snapshots the membership graph induced by views; views[u] is
// node u's local view (nil views denote departed nodes with no out-edges).
func FromViews(views []*view.View) *Graph {
	g := &Graph{
		n:   len(views),
		out: make([][]peer.ID, len(views)),
		in:  make([]int, len(views)),
	}
	for u, v := range views {
		if v == nil {
			continue
		}
		g.out[u] = v.IDs()
		for _, w := range g.out[u] {
			if int(w) >= 0 && int(w) < g.n {
				g.in[w]++
			}
		}
	}
	return g
}

// FromEdges builds a graph over n nodes from an explicit edge multiset.
// It panics if an endpoint is out of range.
func FromEdges(n int, edges [][2]peer.ID) *Graph {
	g := &Graph{n: n, out: make([][]peer.ID, n), in: make([]int, n)}
	for _, e := range edges {
		u, v := e[0], e[1]
		if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
			panic(fmt.Sprintf("graph: edge (%v,%v) out of range n=%d", u, v, n))
		}
		g.out[u] = append(g.out[u], v)
		g.in[v]++
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the total number of edges (with multiplicity).
func (g *Graph) NumEdges() int {
	m := 0
	for _, adj := range g.out {
		m += len(adj)
	}
	return m
}

// Outdegree returns d(u).
func (g *Graph) Outdegree(u peer.ID) int { return len(g.out[u]) }

// Indegree returns din(u).
func (g *Graph) Indegree(u peer.ID) int { return g.in[u] }

// SumDegree returns ds(u) = d(u) + 2*din(u) (Definition 6.1).
func (g *Graph) SumDegree(u peer.ID) int { return len(g.out[u]) + 2*g.in[u] }

// OutNeighbors returns u's out-neighbor multiset in slot order. The caller
// must not mutate the returned slice.
func (g *Graph) OutNeighbors(u peer.ID) []peer.ID { return g.out[u] }

// InNeighbors returns the set of nodes having u in their views, ascending.
func (g *Graph) InNeighbors(u peer.ID) []peer.ID {
	var out []peer.ID
	for x := 0; x < g.n; x++ {
		for _, w := range g.out[x] {
			if w == u {
				out = append(out, peer.ID(x))
				break
			}
		}
	}
	return out
}

// SelfEdges returns the number of entries u.lv[i] = u summed over all nodes.
// The paper conservatively labels all self-edges dependent.
func (g *Graph) SelfEdges() int {
	c := 0
	for u, adj := range g.out {
		for _, w := range adj {
			if int(w) == u {
				c++
			}
		}
	}
	return c
}

// DuplicateEntries returns the number of redundant same-view duplicates:
// for each node and each distinct id with multiplicity m >= 2 in its view,
// m-1 entries count as duplicates ("all but one of these edges are
// considered dependent").
func (g *Graph) DuplicateEntries() int {
	c := 0
	counts := make(map[peer.ID]int)
	for _, adj := range g.out {
		clear(counts)
		for _, w := range adj {
			counts[w]++
		}
		for _, m := range counts {
			if m > 1 {
				c += m - 1
			}
		}
	}
	return c
}

// WeaklyConnected reports whether the graph, viewed as undirected, has a
// single connected component spanning all n vertices. Isolated vertices make
// the graph disconnected (for n > 1).
func (g *Graph) WeaklyConnected() bool { return g.ComponentCount() <= 1 }

// ComponentCount returns the number of weakly connected components,
// computed with a union-find over the undirected support of the edge set.
func (g *Graph) ComponentCount() int {
	if g.n == 0 {
		return 0
	}
	uf := newUnionFind(g.n)
	for u, adj := range g.out {
		for _, w := range adj {
			uf.union(u, int(w))
		}
	}
	return uf.components()
}

// InducedComponents returns the number of weakly connected components of
// the subgraph induced by members: only edges with both endpoints in the
// member set count, and only members count as vertices. Churn experiments
// use it to check connectivity among live nodes while stale ids of departed
// nodes still linger in views.
func (g *Graph) InducedComponents(members []peer.ID) int {
	if len(members) == 0 {
		return 0
	}
	idx := make(map[peer.ID]int, len(members))
	for i, u := range members {
		idx[u] = i
	}
	uf := newUnionFind(len(members))
	for i, u := range members {
		for _, w := range g.out[u] {
			if j, ok := idx[w]; ok {
				uf.union(i, j)
			}
		}
	}
	return uf.components()
}

// StaleEdges returns the number of view entries pointing outside the member
// set — the lingering ids of departed nodes (Section 6.5).
func (g *Graph) StaleEdges(members []peer.ID) int {
	member := make(map[peer.ID]bool, len(members))
	for _, u := range members {
		member[u] = true
	}
	stale := 0
	for _, u := range members {
		for _, w := range g.out[u] {
			if !member[w] {
				stale++
			}
		}
	}
	return stale
}

// DegreeHistograms returns histograms of out- and indegrees: hOut[d] is the
// number of nodes with outdegree d, and similarly hIn.
func (g *Graph) DegreeHistograms() (hOut, hIn map[int]int) {
	hOut, hIn = make(map[int]int), make(map[int]int)
	for u := 0; u < g.n; u++ {
		hOut[len(g.out[u])]++
		hIn[g.in[u]]++
	}
	return hOut, hIn
}

// Multiplicity returns the multiplicity of edge (u, v).
func (g *Graph) Multiplicity(u, v peer.ID) int {
	m := 0
	for _, w := range g.out[u] {
		if w == v {
			m++
		}
	}
	return m
}

// IDInstances returns the total number of entries holding id across all
// views — the "instances of u's id in the system" of Section 6.5.
func (g *Graph) IDInstances(id peer.ID) int { return g.in[id] }

// unionFind is a weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
	comps  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n), comps: n}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.comps--
}

func (uf *unionFind) components() int { return uf.comps }
