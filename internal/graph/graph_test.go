package graph

import (
	"testing"
	"testing/quick"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

func TestFromEdgesDegrees(t *testing.T) {
	// 0 -> 1, 0 -> 2, 2 -> 1, 1 -> 1 (self-edge), 0 -> 1 (parallel).
	g := FromEdges(3, [][2]peer.ID{{0, 1}, {0, 2}, {2, 1}, {1, 1}, {0, 1}})
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	tests := []struct {
		u       peer.ID
		out, in int
		sum     int
	}{
		{0, 3, 0, 3},
		{1, 1, 4, 9},
		{2, 1, 1, 3},
	}
	for _, tt := range tests {
		if got := g.Outdegree(tt.u); got != tt.out {
			t.Errorf("Outdegree(%v) = %d, want %d", tt.u, got, tt.out)
		}
		if got := g.Indegree(tt.u); got != tt.in {
			t.Errorf("Indegree(%v) = %d, want %d", tt.u, got, tt.in)
		}
		if got := g.SumDegree(tt.u); got != tt.sum {
			t.Errorf("SumDegree(%v) = %d, want %d", tt.u, got, tt.sum)
		}
	}
	if got := g.SelfEdges(); got != 1 {
		t.Errorf("SelfEdges = %d, want 1", got)
	}
	if got := g.Multiplicity(0, 1); got != 2 {
		t.Errorf("Multiplicity(0,1) = %d, want 2", got)
	}
	if got := g.DuplicateEntries(); got != 1 {
		t.Errorf("DuplicateEntries = %d, want 1 (the parallel 0->1)", got)
	}
	if got := g.IDInstances(1); got != 4 {
		t.Errorf("IDInstances(1) = %d, want 4", got)
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromEdges with out-of-range endpoint did not panic")
		}
	}()
	FromEdges(2, [][2]peer.ID{{0, 2}})
}

func TestFromViews(t *testing.T) {
	v0 := view.New(4)
	v0.Set(0, 1)
	v0.Set(1, 2)
	v1 := view.New(4)
	v1.Set(3, 2)
	v2 := view.New(4)
	g := FromViews([]*view.View{v0, v1, v2})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Indegree(2) != 2 {
		t.Errorf("Indegree(2) = %d, want 2", g.Indegree(2))
	}
	if g.Outdegree(2) != 0 {
		t.Errorf("Outdegree(2) = %d, want 0", g.Outdegree(2))
	}
}

func TestFromViewsNilView(t *testing.T) {
	v0 := view.New(2)
	v0.Set(0, 1)
	g := FromViews([]*view.View{v0, nil})
	if g.Outdegree(1) != 0 {
		t.Errorf("departed node outdegree = %d, want 0", g.Outdegree(1))
	}
	if g.Indegree(1) != 1 {
		t.Errorf("departed node indegree = %d, want 1 (stale id)", g.Indegree(1))
	}
}

func TestInOutNeighbors(t *testing.T) {
	g := FromEdges(4, [][2]peer.ID{{0, 2}, {1, 2}, {2, 3}, {0, 2}})
	in := g.InNeighbors(2)
	if len(in) != 2 || in[0] != 0 || in[1] != 1 {
		t.Errorf("InNeighbors(2) = %v, want [n0 n1]", in)
	}
	out := g.OutNeighbors(0)
	if len(out) != 2 {
		t.Errorf("OutNeighbors(0) = %v, want two entries", out)
	}
}

func TestConnectivity(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]peer.ID
		comps int
		conn  bool
	}{
		{"empty graph", 0, nil, 0, true},
		{"single vertex no edges", 1, nil, 1, true},
		{"two isolated", 2, nil, 2, false},
		{"directed chain is weakly connected", 3, [][2]peer.ID{{0, 1}, {2, 1}}, 1, true},
		{"two components", 4, [][2]peer.ID{{0, 1}, {2, 3}}, 2, false},
		{"self edge only leaves others isolated", 3, [][2]peer.ID{{0, 0}}, 3, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := FromEdges(tt.n, tt.edges)
			if got := g.ComponentCount(); got != tt.comps {
				t.Errorf("ComponentCount = %d, want %d", got, tt.comps)
			}
			if got := g.WeaklyConnected(); got != tt.conn {
				t.Errorf("WeaklyConnected = %v, want %v", got, tt.conn)
			}
		})
	}
}

func TestDegreeHistograms(t *testing.T) {
	g := FromEdges(3, [][2]peer.ID{{0, 1}, {0, 2}, {1, 2}})
	hOut, hIn := g.DegreeHistograms()
	if hOut[2] != 1 || hOut[1] != 1 || hOut[0] != 1 {
		t.Errorf("out histogram = %v", hOut)
	}
	if hIn[0] != 1 || hIn[1] != 1 || hIn[2] != 1 {
		t.Errorf("in histogram = %v", hIn)
	}
}

func TestQuickHandshake(t *testing.T) {
	// Property: sum of outdegrees == sum of indegrees == edge count, for
	// random graphs.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw % 64)
		r := rng.New(seed)
		edges := make([][2]peer.ID, m)
		for i := range edges {
			edges[i] = [2]peer.ID{peer.ID(r.Intn(n)), peer.ID(r.Intn(n))}
		}
		g := FromEdges(n, edges)
		sumOut, sumIn := 0, 0
		for u := 0; u < n; u++ {
			sumOut += g.Outdegree(peer.ID(u))
			sumIn += g.Indegree(peer.ID(u))
		}
		return sumOut == m && sumIn == m && g.NumEdges() == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsNeverExceedN(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%15) + 1
		m := int(mRaw % 40)
		r := rng.New(seed)
		edges := make([][2]peer.ID, m)
		for i := range edges {
			edges[i] = [2]peer.ID{peer.ID(r.Intn(n)), peer.ID(r.Intn(n))}
		}
		g := FromEdges(n, edges)
		c := g.ComponentCount()
		return c >= 1 && c <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInducedComponents(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated among members; edge to non-member 4 ignored.
	g := FromEdges(5, [][2]peer.ID{{0, 1}, {1, 2}, {3, 4}})
	if got := g.InducedComponents([]peer.ID{0, 1, 2, 3}); got != 2 {
		t.Errorf("InducedComponents = %d, want 2 ({0,1,2} and {3})", got)
	}
	if got := g.InducedComponents([]peer.ID{0, 1, 2}); got != 1 {
		t.Errorf("InducedComponents = %d, want 1", got)
	}
	if got := g.InducedComponents(nil); got != 0 {
		t.Errorf("InducedComponents(nil) = %d, want 0", got)
	}
	if got := g.InducedComponents([]peer.ID{3}); got != 1 {
		t.Errorf("single member = %d, want 1", got)
	}
}

func TestStaleEdges(t *testing.T) {
	g := FromEdges(5, [][2]peer.ID{{0, 1}, {0, 4}, {1, 4}, {1, 2}})
	// Members {0,1,2}: edges to 4 are stale.
	if got := g.StaleEdges([]peer.ID{0, 1, 2}); got != 2 {
		t.Errorf("StaleEdges = %d, want 2", got)
	}
	if got := g.StaleEdges([]peer.ID{0, 1, 2, 4}); got != 0 {
		t.Errorf("StaleEdges with all members = %d, want 0", got)
	}
	if got := g.StaleEdges(nil); got != 0 {
		t.Errorf("StaleEdges(nil) = %d, want 0", got)
	}
}
