// Package loss implements the message-loss models of Section 4.
//
// The paper analyzes uniform i.i.d. loss: "a message is lost with
// probability l, identical for all messages, and independent of other
// messages". Uniform is therefore the model every experiment uses. The
// package also provides a Gilbert-Elliott bursty model as an extension
// ablation (the paper notes nonuniform loss occurs in practice but is harder
// to analyze) and a deterministic script model for tests.
package loss

import (
	"fmt"

	"sendforget/internal/rng"
)

// Model decides the fate of each sent message. Implementations may be
// stateful (burst models); they are not safe for concurrent use unless
// documented otherwise.
type Model interface {
	// Lost reports whether the next message is dropped.
	Lost(r *rng.RNG) bool
	// Rate returns the long-run average loss probability.
	Rate() float64
	// String names the model for experiment logs.
	String() string
}

// None never drops messages. It is the l = 0 setting of the paper.
type None struct{}

// Lost always reports false.
func (None) Lost(*rng.RNG) bool { return false }

// Rate returns 0.
func (None) Rate() float64 { return 0 }

func (None) String() string { return "none" }

// Uniform drops each message independently with probability P — the paper's
// uniform i.i.d. loss model.
type Uniform struct {
	P float64
}

// NewUniform returns a Uniform model, validating 0 <= p <= 1.
func NewUniform(p float64) (Uniform, error) {
	if p < 0 || p > 1 {
		return Uniform{}, fmt.Errorf("loss: probability %v outside [0,1]", p)
	}
	return Uniform{P: p}, nil
}

// MustUniform is NewUniform that panics on invalid p; for tests and
// experiment tables with constant parameters.
func MustUniform(p float64) Uniform {
	m, err := NewUniform(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Lost drops the message with probability P.
func (u Uniform) Lost(r *rng.RNG) bool { return r.Bernoulli(u.P) }

// Rate returns P.
func (u Uniform) Rate() float64 { return u.P }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%.3g)", u.P) }

// GilbertElliott is a two-state Markov burst-loss model: a Good state with
// loss PGood and a Bad state with loss PBad, with per-message transition
// probabilities GoodToBad and BadToGood. It extends the paper's model to
// correlated loss for the burst-loss ablation.
type GilbertElliott struct {
	PGood, PBad          float64
	GoodToBad, BadToGood float64
	bad                  bool // current state
}

// NewGilbertElliott validates the parameters and returns a model starting in
// the Good state.
func NewGilbertElliott(pGood, pBad, goodToBad, badToGood float64) (*GilbertElliott, error) {
	for _, p := range []float64{pGood, pBad, goodToBad, badToGood} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("loss: parameter %v outside [0,1]", p)
		}
	}
	if goodToBad+badToGood == 0 {
		return nil, fmt.Errorf("loss: degenerate chain with no transitions")
	}
	return &GilbertElliott{PGood: pGood, PBad: pBad, GoodToBad: goodToBad, BadToGood: badToGood}, nil
}

// BurstyWithRate builds a Gilbert-Elliott model whose stationary average
// loss rate equals rate, concentrated in bursts: the Bad state always drops
// (PBad = 1), the Good state never drops, and the expected burst length is
// burstLen messages. Used by the abl1 experiment to compare bursty and
// uniform loss at equal average rates.
func BurstyWithRate(rate float64, burstLen float64) (*GilbertElliott, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("loss: bursty rate %v outside (0,1)", rate)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("loss: burst length %v < 1", burstLen)
	}
	// Stationary P(bad) = g2b / (g2b + b2g) must equal rate, and mean burst
	// length 1/b2g must equal burstLen.
	b2g := 1 / burstLen
	g2b := rate * b2g / (1 - rate)
	if g2b > 1 {
		return nil, fmt.Errorf("loss: rate %v with burst length %v needs transition probability > 1", rate, burstLen)
	}
	return NewGilbertElliott(0, 1, g2b, b2g)
}

// Lost advances the channel state and drops according to the current state.
func (g *GilbertElliott) Lost(r *rng.RNG) bool {
	if g.bad {
		if r.Bernoulli(g.BadToGood) {
			g.bad = false
		}
	} else {
		if r.Bernoulli(g.GoodToBad) {
			g.bad = true
		}
	}
	p := g.PGood
	if g.bad {
		p = g.PBad
	}
	return r.Bernoulli(p)
}

// Rate returns the stationary average loss rate of the two-state chain.
func (g *GilbertElliott) Rate() float64 {
	pBad := g.GoodToBad / (g.GoodToBad + g.BadToGood)
	return (1-pBad)*g.PGood + pBad*g.PBad
}

func (g *GilbertElliott) String() string {
	return fmt.Sprintf("gilbert-elliott(rate=%.3g)", g.Rate())
}

// Script replays a fixed drop sequence; once exhausted it stops dropping.
// It exists so protocol tests can force specific loss patterns.
type Script struct {
	Drops []bool
	next  int
}

// Lost pops the next scripted outcome.
func (s *Script) Lost(*rng.RNG) bool {
	if s.next >= len(s.Drops) {
		return false
	}
	d := s.Drops[s.next]
	s.next++
	return d
}

// Rate returns the fraction of drops in the script.
func (s *Script) Rate() float64 {
	if len(s.Drops) == 0 {
		return 0
	}
	n := 0
	for _, d := range s.Drops {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(s.Drops))
}

func (s *Script) String() string { return fmt.Sprintf("script(%d)", len(s.Drops)) }
