package loss

import (
	"math"
	"testing"

	"sendforget/internal/rng"
)

func TestNoneNeverDrops(t *testing.T) {
	r := rng.New(1)
	m := None{}
	for i := 0; i < 1000; i++ {
		if m.Lost(r) {
			t.Fatal("None dropped a message")
		}
	}
	if m.Rate() != 0 {
		t.Errorf("None.Rate = %v, want 0", m.Rate())
	}
}

func TestNewUniformValidates(t *testing.T) {
	if _, err := NewUniform(-0.1); err == nil {
		t.Error("NewUniform(-0.1) accepted")
	}
	if _, err := NewUniform(1.1); err == nil {
		t.Error("NewUniform(1.1) accepted")
	}
	m, err := NewUniform(0.25)
	if err != nil {
		t.Fatalf("NewUniform(0.25) rejected: %v", err)
	}
	if m.Rate() != 0.25 {
		t.Errorf("Rate = %v, want 0.25", m.Rate())
	}
}

func TestMustUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustUniform(2) did not panic")
		}
	}()
	MustUniform(2)
}

func TestUniformEmpiricalRate(t *testing.T) {
	r := rng.New(2)
	m := MustUniform(0.05)
	const trials = 200000
	drops := 0
	for i := 0; i < trials; i++ {
		if m.Lost(r) {
			drops++
		}
	}
	rate := float64(drops) / trials
	// 5-sigma band for Binomial(2e5, 0.05): +-0.0024.
	if math.Abs(rate-0.05) > 0.0024 {
		t.Errorf("empirical rate %v deviates from 0.05 beyond 5 sigma", rate)
	}
}

func TestUniformBoundaries(t *testing.T) {
	r := rng.New(3)
	always := MustUniform(1)
	never := MustUniform(0)
	for i := 0; i < 100; i++ {
		if !always.Lost(r) {
			t.Fatal("Uniform(1) delivered a message")
		}
		if never.Lost(r) {
			t.Fatal("Uniform(0) dropped a message")
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(0, 1.5, 0.1, 0.1); err == nil {
		t.Error("accepted PBad > 1")
	}
	if _, err := NewGilbertElliott(0, 1, 0, 0); err == nil {
		t.Error("accepted degenerate chain")
	}
}

func TestBurstyWithRateStationary(t *testing.T) {
	m, err := BurstyWithRate(0.05, 10)
	if err != nil {
		t.Fatalf("BurstyWithRate: %v", err)
	}
	if math.Abs(m.Rate()-0.05) > 1e-12 {
		t.Errorf("declared Rate = %v, want 0.05", m.Rate())
	}
	r := rng.New(4)
	const trials = 400000
	drops := 0
	for i := 0; i < trials; i++ {
		if m.Lost(r) {
			drops++
		}
	}
	rate := float64(drops) / trials
	// Correlated samples widen the band; allow 20% relative error.
	if math.Abs(rate-0.05) > 0.01 {
		t.Errorf("empirical bursty rate %v, want ~0.05", rate)
	}
}

func TestBurstyWithRateProducesBursts(t *testing.T) {
	m, err := BurstyWithRate(0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	// Measure the mean run length of consecutive drops; it should be well
	// above 1 (a uniform model at 5% has mean run length ~1.05).
	const trials = 400000
	runs, dropped := 0, 0
	inRun := false
	for i := 0; i < trials; i++ {
		if m.Lost(r) {
			dropped++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	meanRun := float64(dropped) / float64(runs)
	if meanRun < 5 {
		t.Errorf("mean burst length %v, want >= 5 (configured 10)", meanRun)
	}
}

func TestBurstyWithRateValidation(t *testing.T) {
	if _, err := BurstyWithRate(0, 10); err == nil {
		t.Error("accepted rate 0")
	}
	if _, err := BurstyWithRate(1, 10); err == nil {
		t.Error("accepted rate 1")
	}
	if _, err := BurstyWithRate(0.5, 0.5); err == nil {
		t.Error("accepted burst length < 1")
	}
	if _, err := BurstyWithRate(0.99, 1); err == nil {
		t.Error("accepted infeasible rate/burst combination")
	}
}

func TestScript(t *testing.T) {
	s := &Script{Drops: []bool{true, false, true}}
	r := rng.New(6)
	got := []bool{s.Lost(r), s.Lost(r), s.Lost(r), s.Lost(r), s.Lost(r)}
	want := []bool{true, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Script outcomes = %v, want %v", got, want)
		}
	}
	if r := s.Rate(); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("Script.Rate = %v, want 2/3", r)
	}
	empty := &Script{}
	if empty.Rate() != 0 {
		t.Errorf("empty Script.Rate = %v, want 0", empty.Rate())
	}
}

func TestStringers(t *testing.T) {
	if None.String(None{}) != "none" {
		t.Error("None.String wrong")
	}
	if MustUniform(0.01).String() != "uniform(0.01)" {
		t.Errorf("Uniform.String = %q", MustUniform(0.01).String())
	}
	m, _ := BurstyWithRate(0.05, 10)
	if m.String() == "" {
		t.Error("GilbertElliott.String empty")
	}
	if (&Script{}).String() == "" {
		t.Error("Script.String empty")
	}
}
