package loss

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/rng"
)

// DestinationModel is an optional extension of Model for nonuniform loss:
// the drop probability may depend on the message destination. The paper
// restricts its analysis to uniform loss but notes that "nonuniform loss
// occurs in practice [33]"; the abl4 experiment probes how far S&F's
// properties survive it.
type DestinationModel interface {
	Model
	// LostTo reports whether the next message addressed to dst is dropped.
	LostTo(dst peer.ID, r *rng.RNG) bool
}

// PerDest drops messages with a per-destination probability, falling back
// to Default for unlisted destinations.
type PerDest struct {
	Default float64
	Rates   map[peer.ID]float64
}

// NewPerDest validates the rates.
func NewPerDest(def float64, rates map[peer.ID]float64) (*PerDest, error) {
	if def < 0 || def > 1 {
		return nil, fmt.Errorf("loss: default rate %v outside [0,1]", def)
	}
	for id, p := range rates {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("loss: rate %v for %v outside [0,1]", p, id)
		}
	}
	return &PerDest{Default: def, Rates: rates}, nil
}

// rateFor returns the drop probability for dst.
func (m *PerDest) rateFor(dst peer.ID) float64 {
	if p, ok := m.Rates[dst]; ok {
		return p
	}
	return m.Default
}

// LostTo implements DestinationModel.
func (m *PerDest) LostTo(dst peer.ID, r *rng.RNG) bool {
	return r.Bernoulli(m.rateFor(dst))
}

// Lost implements Model using the default rate (used only by callers that
// do not know the destination).
func (m *PerDest) Lost(r *rng.RNG) bool { return r.Bernoulli(m.Default) }

// Rate returns the unweighted average of the configured rates. The sum
// runs over destinations in sorted order so the reported average is
// bit-identical across runs (float addition in map-iteration order is not).
func (m *PerDest) Rate() float64 {
	if len(m.Rates) == 0 {
		return m.Default
	}
	dsts := make([]peer.ID, 0, len(m.Rates))
	for dst := range m.Rates {
		dsts = append(dsts, dst)
	}
	peer.Sort(dsts)
	s := 0.0
	for _, dst := range dsts {
		s += m.Rates[dst]
	}
	return s / float64(len(m.Rates))
}

func (m *PerDest) String() string {
	return fmt.Sprintf("per-dest(default=%.3g, %d overrides)", m.Default, len(m.Rates))
}
