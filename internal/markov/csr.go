package markov

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Tunables of the chunked CSR step kernel. They are package variables so the
// determinism tests can shrink them; production code leaves the defaults.
// Results depend only on the chain size and the chunk geometry — never on
// the worker count — so a run is bit-for-bit reproducible on any machine.
var (
	// csrChunkRows is the preferred number of rows per accumulation chunk.
	csrChunkRows = 512
	// csrMaxChunks caps the number of chunks (and hence scratch buffers)
	// for very large chains; the chunk size grows instead.
	csrMaxChunks = 32
	// csrParallelMinRows is the chain size above which the chunked kernel
	// (and with it the worker pool) engages. Smaller chains take the plain
	// single-pass kernel: the merge overhead cannot pay for itself.
	csrParallelMinRows = 4096
	// csrWorkers overrides the worker count (0 selects GOMAXPROCS).
	csrWorkers = 0
)

// CSR is a compressed-sparse-row transition matrix: all entries live in two
// flat arrays indexed by rowPtr, giving the power-iteration kernel a linear,
// cache-friendly scan with no per-row slice headers. Build one by finalizing
// a Sparse. The structure (rowPtr, cols) is immutable; the probabilities may
// be rewritten in place via Row by builders that re-weight a fixed sparsity
// pattern (the degree-MC fixed point does this every outer round).
type CSR struct {
	n      int
	rowPtr []int32
	cols   []int32
	probs  []float64
}

// Finalize compacts s and converts it to CSR form. The Sparse remains valid
// and shares no memory with the result.
func (s *Sparse) Finalize() *CSR {
	s.Compact()
	n := len(s.rows)
	nnz := 0
	for _, row := range s.rows {
		nnz += len(row)
	}
	m := &CSR{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, 0, nnz),
		probs:  make([]float64, 0, nnz),
	}
	for i, row := range s.rows {
		m.rowPtr[i] = int32(len(m.cols))
		for _, e := range row {
			m.cols = append(m.cols, int32(e.col))
			m.probs = append(m.probs, e.p)
		}
	}
	m.rowPtr[n] = int32(len(m.cols))
	return m
}

// N returns the number of states.
func (m *CSR) N() int { return m.n }

// ForEach implements Chain, skipping zero-weight slots (a rewritten pattern
// may leave some edges at weight 0).
func (m *CSR) ForEach(row int, fn func(col int, p float64)) {
	for k := m.rowPtr[row]; k < m.rowPtr[row+1]; k++ {
		if m.probs[k] > 0 {
			fn(int(m.cols[k]), m.probs[k])
		}
	}
}

// Row exposes row i's column indices (sorted, do not mutate) and its weight
// slots (mutable). Builders that solve a family of chains over one sparsity
// pattern rewrite the weights in place instead of rebuilding the structure.
func (m *CSR) Row(i int) (cols []int32, probs []float64) {
	return m.cols[m.rowPtr[i]:m.rowPtr[i+1]], m.probs[m.rowPtr[i]:m.rowPtr[i+1]]
}

// rowsPerChunk returns the chunk height for an n-row chain: the preferred
// csrChunkRows, grown so that at most csrMaxChunks chunks exist. It depends
// only on n and the package tunables, which is what makes the chunked
// kernel's floating-point association reproducible.
func rowsPerChunk(n int) int {
	r := csrChunkRows
	if min := (n + csrMaxChunks - 1) / csrMaxChunks; r < min {
		r = min
	}
	if r < 1 {
		r = 1
	}
	return r
}

// csrScratch holds the per-chunk accumulation buffers of one step stream,
// plus each buffer's dirty column range from the previous step (so zeroing
// and merging cost O(bandwidth), not O(n), for banded chains like the
// degree MC). Each Stationary call owns its own scratch, so a CSR may be
// shared by concurrent solvers.
type csrScratch struct {
	bufs     [][]float64
	los, his []int // dirty (touched) column bounds per buffer
}

func (sc *csrScratch) ensure(chunks, n int) {
	for len(sc.bufs) < chunks {
		sc.bufs = append(sc.bufs, make([]float64, n))
		sc.los = append(sc.los, 0)
		sc.his = append(sc.his, 0)
	}
}

// accumRange adds the contributions of rows [lo, hi) to out (which is NOT
// zeroed here): out[col] += dist[i] * P[i, col]. It returns the touched
// column range [cl, ch) (cl >= ch means no column was touched), exploiting
// that each row's columns are sorted.
func (m *CSR) accumRange(lo, hi int, dist, out []float64) (cl, ch int) {
	cl, ch = m.n, 0
	rowPtr := m.rowPtr
	for i := lo; i < hi; i++ {
		p := dist[i]
		if p == 0 {
			continue
		}
		s, e := rowPtr[i], rowPtr[i+1]
		if s == e {
			continue
		}
		cols := m.cols[s:e]
		probs := m.probs[s:e:e]
		if c := int(cols[0]); c < cl {
			cl = c
		}
		if c := int(cols[len(cols)-1]) + 1; c > ch {
			ch = c
		}
		for k, c := range cols {
			out[c] += p * probs[k]
		}
	}
	return cl, ch
}

// accumPlain is accumRange without the touched-range bookkeeping — the
// kernel of the single-pass path, where no merge needs the bounds.
func (m *CSR) accumPlain(dist, out []float64) {
	rowPtr := m.rowPtr
	for i, p := range dist {
		if p == 0 {
			continue
		}
		s, e := rowPtr[i], rowPtr[i+1]
		cols := m.cols[s:e]
		probs := m.probs[s:e:e]
		for k, c := range cols {
			out[c] += p * probs[k]
		}
	}
}

// step computes out = dist * P. Chains below csrParallelMinRows take a plain
// single pass. Larger chains are sharded into fixed row chunks, each
// accumulated into its own buffer (concurrently when workers are available),
// and the buffers are merged in chunk order — a fixed association of
// floating-point additions, so the result is bit-identical whether 1 or 64
// workers ran the chunks. A chunk outside its dirty range contributes an
// exact +0, so skipping it in the merge cannot change any sum.
func (m *CSR) step(dist, out []float64, sc *csrScratch) {
	n := m.n
	if n < csrParallelMinRows {
		for j := range out {
			out[j] = 0
		}
		m.accumPlain(dist, out)
		return
	}
	chunkRows := rowsPerChunk(n)
	chunks := (n + chunkRows - 1) / chunkRows
	workers := csrWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	sc.ensure(chunks, n)
	fill := func(c int) {
		buf := sc.bufs[c]
		for j := sc.los[c]; j < sc.his[c]; j++ {
			buf[j] = 0
		}
		lo := c * chunkRows
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		sc.los[c], sc.his[c] = m.accumRange(lo, hi, dist, buf)
	}
	// merge computes out[a:b] by summing the chunk buffers in chunk order;
	// column ranges partition independent output slots, so splitting the
	// merge across workers cannot change any sum.
	merge := func(a, b int) {
		for j := a; j < b; j++ {
			out[j] = 0
		}
		for c := 0; c < chunks; c++ {
			lo, hi := sc.los[c], sc.his[c]
			if lo < a {
				lo = a
			}
			if hi > b {
				hi = b
			}
			buf := sc.bufs[c]
			for j := lo; j < hi; j++ {
				out[j] += buf[j]
			}
		}
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			fill(c)
		}
		merge(0, n)
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				fill(c)
			}
		}()
	}
	wg.Wait()
	colsPer := (n + workers - 1) / workers
	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		a := w * colsPer
		b := a + colsPer
		if b > n {
			b = n
		}
		if a >= b {
			break
		}
		mwg.Add(1)
		go func(a, b int) {
			defer mwg.Done()
			merge(a, b)
		}(a, b)
	}
	mwg.Wait()
}
