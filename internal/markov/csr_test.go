package markov

import (
	"runtime"
	"testing"

	"sendforget/internal/rng"
)

// buildDenseRows constructs an n-state chain whose rows each receive perRow
// Adds with many duplicate columns — the access pattern of the global-chain
// and degree-MC builders, which enumerate events independently and rely on
// Add to accumulate.
func buildDenseRows(n, perRow int, seed int64) *Sparse {
	r := rng.New(seed)
	s := NewSparse(n)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			// Half the column range: every other Add hits an existing entry.
			s.Add(i, r.Intn(n/2+1), 1/float64(2*perRow))
		}
	}
	return s
}

// randomChain builds a random stochastic Sparse chain with duplicate Adds
// sprinkled in, plus a normalized random distribution over its states.
func randomChain(r *rng.RNG, n int) (*Sparse, []float64) {
	s := NewSparse(n)
	for i := 0; i < n; i++ {
		entries := 1 + r.Intn(5)
		weights := make([]float64, entries)
		sum := 0.0
		for k := range weights {
			weights[k] = r.Float64() + 0.01
			sum += weights[k]
		}
		for k := range weights {
			col := r.Intn(n)
			p := weights[k] / sum
			if r.Bernoulli(0.3) {
				// Split the mass over two Adds to exercise accumulation.
				s.Add(i, col, p/2)
				s.Add(i, col, p-p/2)
			} else {
				s.Add(i, col, p)
			}
		}
	}
	dist := make([]float64, n)
	sum := 0.0
	for i := range dist {
		dist[i] = r.Float64()
		sum += dist[i]
	}
	for i := range dist {
		dist[i] /= sum
	}
	return s, dist
}

func TestFinalizeDedupAndSort(t *testing.T) {
	s := NewSparse(3)
	s.Add(0, 2, 0.25)
	s.Add(0, 1, 0.25)
	s.Add(0, 2, 0.25)
	s.Add(0, 0, 0.25)
	s.Add(1, 1, 1)
	s.Add(2, 0, 1)
	m := s.Finalize()
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
	cols, probs := m.Row(0)
	if len(cols) != 3 {
		t.Fatalf("row 0 has %d entries after dedup, want 3", len(cols))
	}
	wantCols := []int32{0, 1, 2}
	wantP := []float64{0.25, 0.25, 0.5}
	for k := range cols {
		if cols[k] != wantCols[k] || !almostEqual(probs[k], wantP[k], 1e-15) {
			t.Errorf("row 0 slot %d = (%d, %v), want (%d, %v)", k, cols[k], probs[k], wantCols[k], wantP[k])
		}
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
}

// TestCSRMatchesSparseStep is the property test: for random chains (with
// duplicate Adds), the finalized CSR and the original Sparse agree on Step.
func TestCSRMatchesSparseStep(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		s, dist := randomChain(r, n)
		m := s.Finalize()
		got := Step(m, dist)
		want := Step(s, dist)
		for j := range want {
			if !almostEqual(got[j], want[j], 1e-12) {
				t.Fatalf("trial %d: Step differs at %d: csr %v sparse %v", trial, j, got[j], want[j])
			}
		}
	}
}

// withChunkGeometry shrinks the chunk tunables so small test chains exercise
// the chunked kernel, restoring the defaults afterwards.
func withChunkGeometry(t *testing.T, chunkRows, minRows, workers int, fn func()) {
	t.Helper()
	oldChunk, oldMin, oldWorkers := csrChunkRows, csrParallelMinRows, csrWorkers
	csrChunkRows, csrParallelMinRows, csrWorkers = chunkRows, minRows, workers
	defer func() { csrChunkRows, csrParallelMinRows, csrWorkers = oldChunk, oldMin, oldWorkers }()
	fn()
}

// TestChunkedStepBitIdentical asserts the tentpole determinism guarantee:
// the chunked kernel produces bit-identical output with 1 worker and with
// many, because partial sums merge in fixed chunk order.
func TestChunkedStepBitIdentical(t *testing.T) {
	r := rng.New(7)
	s, dist := randomChain(r, 700)
	m := s.Finalize()
	outs := make([][]float64, 0, 3)
	for _, workers := range []int{1, 4, 7} {
		withChunkGeometry(t, 64, 128, workers, func() {
			out := make([]float64, m.N())
			sc := &csrScratch{}
			m.step(dist, out, sc)
			outs = append(outs, out)
		})
	}
	for w := 1; w < len(outs); w++ {
		for j := range outs[0] {
			if outs[0][j] != outs[w][j] {
				t.Fatalf("worker-count variant %d differs at %d: %x vs %x", w, j, outs[0][j], outs[w][j])
			}
		}
	}
}

// TestStationaryCSRParallelMatchesSequential runs the full power iteration
// through the chunked kernel with 1 and with several workers and requires a
// bit-identical stationary distribution.
func TestStationaryCSRParallelMatchesSequential(t *testing.T) {
	r := rng.New(21)
	s, _ := randomChain(r, 900)
	// Make the chain ergodic (cycle edges connect, self-loops deperiodize)
	// and renormalize each row to a distribution.
	for i := 0; i < s.N(); i++ {
		s.Add(i, (i+1)%s.N(), 0.05)
		s.Add(i, i, 0.05)
	}
	s.Compact()
	for i := range s.rows {
		sum := s.RowSum(i)
		for k := range s.rows[i] {
			s.rows[i][k].p /= sum
		}
	}
	m := s.Finalize()
	var seq, par []float64
	withChunkGeometry(t, 64, 128, 1, func() {
		pi, _, err := Stationary(m, nil, 1e-10, 100000)
		if err != nil {
			t.Fatal(err)
		}
		seq = pi
	})
	withChunkGeometry(t, 64, 128, 8, func() {
		pi, _, err := Stationary(m, nil, 1e-10, 100000)
		if err != nil {
			t.Fatal(err)
		}
		par = pi
	})
	for j := range seq {
		if seq[j] != par[j] {
			t.Fatalf("stationary differs at state %d: %x vs %x", j, seq[j], par[j])
		}
	}
}

// TestCSRRowRewrite checks the in-place weight rewrite path the degree-MC
// solver uses: zero the weights, write new ones, and step correctly.
func TestCSRRowRewrite(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 0, 0.5)
	s.Add(0, 1, 0.5)
	s.Add(1, 0, 0.5)
	s.Add(1, 1, 0.5)
	m := s.Finalize()
	// Rewrite to the (0.3, 0.6) two-state chain.
	_, p0 := m.Row(0)
	p0[0], p0[1] = 0.7, 0.3
	_, p1 := m.Row(1)
	p1[0], p1[1] = 0.6, 0.4
	pi, _, err := Stationary(m, nil, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 2.0/3.0, 1e-9) || !almostEqual(pi[1], 1.0/3.0, 1e-9) {
		t.Errorf("stationary after rewrite = %v, want [2/3 1/3]", pi)
	}
}

func TestRowsPerChunkDeterministic(t *testing.T) {
	// The chunk geometry must not depend on the machine.
	if g := runtime.GOMAXPROCS(0); g < 1 {
		t.Fatalf("GOMAXPROCS = %d", g)
	}
	if got := rowsPerChunk(100); got != csrChunkRows {
		t.Errorf("rowsPerChunk(100) = %d, want %d", got, csrChunkRows)
	}
	// Very large chains grow the chunk instead of the chunk count.
	n := csrChunkRows * csrMaxChunks * 3
	if got := rowsPerChunk(n); (n+got-1)/got > csrMaxChunks {
		t.Errorf("rowsPerChunk(%d) = %d exceeds csrMaxChunks chunks", n, got)
	}
}

func BenchmarkSparseChainBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := buildDenseRows(400, 400, 7)
		if err := s.CloseRows(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFinalize(b *testing.B) {
	s := buildDenseRows(400, 400, 7)
	if err := s.CloseRows(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Finalize()
	}
}

func benchmarkStep(b *testing.B, c Chain, n int) {
	b.Helper()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1 / float64(n)
	}
	out := make([]float64, n)
	step := newStepper(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(dist, out)
	}
}

func BenchmarkStepSparse(b *testing.B) {
	s, _ := randomChain(rng.New(3), 5000)
	benchmarkStep(b, s, 5000)
}

// BenchmarkStepCSR measures the plain (single-pass) CSR kernel.
func BenchmarkStepCSR(b *testing.B) {
	old := csrParallelMinRows
	csrParallelMinRows = 1 << 30
	defer func() { csrParallelMinRows = old }()
	s, _ := randomChain(rng.New(3), 5000)
	benchmarkStep(b, s.Finalize(), 5000)
}

// BenchmarkStepCSRChunked measures the chunked kernel on the same chain — a
// random (full-bandwidth) chain is its worst case, since every chunk's dirty
// range spans all columns.
func BenchmarkStepCSRChunked(b *testing.B) {
	old := csrParallelMinRows
	csrParallelMinRows = 1
	defer func() { csrParallelMinRows = old }()
	s, _ := randomChain(rng.New(3), 5000)
	benchmarkStep(b, s.Finalize(), 5000)
}
