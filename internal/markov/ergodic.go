package markov

import "fmt"

// IsIrreducible reports whether the chain's positive-transition graph is
// strongly connected (one SCC spanning all states) — condition (1) of the
// ergodic theorem quoted in Section 3.2 and the property Lemma 7.1 proves
// for the global S&F chain.
func IsIrreducible(c Chain) bool {
	n := c.N()
	if n == 0 {
		return false
	}
	return len(sccs(c)) == 1
}

// sccs returns the strongly connected components of the positive-transition
// graph, using an iterative Tarjan so large degree-MC state spaces cannot
// overflow the goroutine stack.
func sccs(c Chain) [][]int {
	n := c.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		order   = 0
		result  [][]int
		adj     = make([][]int, n)
		adjDone = make([]bool, n)
	)
	neighbors := func(u int) []int {
		if !adjDone[u] {
			c.ForEach(u, func(v int, _ float64) {
				adj[u] = append(adj[u], v)
			})
			adjDone[u] = true
		}
		return adj[u]
	}

	type frame struct {
		v  int
		ni int // next neighbor index to explore
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		index[root] = order
		low[root] = order
		order++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			ns := neighbors(f.v)
			if f.ni < len(ns) {
				w := ns[f.ni]
				f.ni++
				if index[w] == unvisited {
					index[w] = order
					low[w] = order
					order++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-order: pop.
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				result = append(result, comp)
			}
		}
	}
	return result
}

// Period returns the period of an irreducible chain: the gcd of the lengths
// of all directed cycles. A period of 1 means aperiodic — condition (2) of
// the ergodic theorem. It returns an error if the chain is not irreducible.
func Period(c Chain) (int, error) {
	if !IsIrreducible(c) {
		return 0, fmt.Errorf("markov: period undefined for reducible chain")
	}
	n := c.N()
	level := make([]int, n)
	seen := make([]bool, n)
	level[0] = 0
	seen[0] = true
	queue := []int{0}
	g := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		c.ForEach(u, func(v int, _ float64) {
			if !seen[v] {
				seen[v] = true
				level[v] = level[u] + 1
				queue = append(queue, v)
				return
			}
			d := level[u] + 1 - level[v]
			if d < 0 {
				d = -d
			}
			g = gcd(g, d)
		})
	}
	if g == 0 {
		// A strongly connected graph with >= 2 states always closes some
		// cycle; g == 0 can only happen for the single-state chain with a
		// self-loop, which has period 1.
		return 1, nil
	}
	return g, nil
}

// IsErgodic reports whether the chain is irreducible and aperiodic, i.e.
// has a unique stationary distribution reached from every start (the
// fundamental theorem quoted in Section 3.2).
func IsErgodic(c Chain) bool {
	if !IsIrreducible(c) {
		return false
	}
	p, err := Period(c)
	return err == nil && p == 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
