// Package markov provides the finite Markov chain machinery of Section 3.2:
// transition matrices (dense and sparse), stationary distributions by power
// iteration, and the ergodicity checks (irreducibility via strongly
// connected components, aperiodicity via the cycle-length gcd) that the
// paper's Lemmas 7.1-7.2 establish for the global S&F chain.
package markov

import (
	"fmt"
	"math"
	"slices"
)

// Chain is a row-stochastic transition structure over states 0..N()-1.
type Chain interface {
	// N returns the number of states.
	N() int
	// ForEach calls fn for every positive transition out of row.
	ForEach(row int, fn func(col int, p float64))
}

// Dense is a dense transition matrix. Use it for small chains (tests, the
// dependence MC of Figure 7.1); the degree MC uses Sparse.
type Dense struct {
	p [][]float64
}

// NewDense returns an n-state chain with all-zero transitions.
func NewDense(n int) *Dense {
	d := &Dense{p: make([][]float64, n)}
	for i := range d.p {
		d.p[i] = make([]float64, n)
	}
	return d
}

// N returns the number of states.
func (d *Dense) N() int { return len(d.p) }

// Set assigns P(i -> j) = p.
func (d *Dense) Set(i, j int, p float64) { d.p[i][j] = p }

// At returns P(i -> j).
func (d *Dense) At(i, j int) float64 { return d.p[i][j] }

// ForEach implements Chain.
func (d *Dense) ForEach(row int, fn func(col int, p float64)) {
	for j, p := range d.p[row] {
		if p > 0 {
			fn(j, p)
		}
	}
}

// Sparse stores per-row adjacency lists of positive transitions.
type Sparse struct {
	rows  [][]entry
	dirty bool
}

type entry struct {
	col int
	p   float64
}

// NewSparse returns an n-state chain with no transitions.
func NewSparse(n int) *Sparse {
	return &Sparse{rows: make([][]entry, n)}
}

// N returns the number of states.
func (s *Sparse) N() int { return len(s.rows) }

// Add accumulates probability p onto transition (i -> j). Multiple Adds to
// the same pair sum, which lets builders enumerate disjoint events
// independently. Add is O(1): duplicates are appended and merged later by
// Compact (called automatically by CloseRows and Finalize), so building a
// row of L entries costs O(L log L) total rather than the O(L^2) of a
// per-Add duplicate scan. Until then, ForEach may report the same column in
// several pieces; every numeric consumer in this package (Step, RowSum,
// Validate) accumulates and is unaffected.
func (s *Sparse) Add(i, j int, p float64) {
	if p == 0 {
		return
	}
	if p < 0 || math.IsNaN(p) {
		panic(fmt.Sprintf("markov: invalid transition probability %v", p))
	}
	if j < 0 || j >= len(s.rows) {
		panic(fmt.Sprintf("markov: column %d outside chain of %d states", j, len(s.rows)))
	}
	s.rows[i] = append(s.rows[i], entry{col: j, p: p})
	s.dirty = true
}

// Compact sorts every row by column and merges duplicate entries, restoring
// the one-entry-per-pair invariant after a sequence of Adds. It is
// idempotent and cheap when nothing was added since the last call. Rows are
// merged through a dense column accumulator, so a row built from L Adds over
// D distinct columns costs O(L + D log D) rather than the O(L^2) of the old
// per-Add duplicate scan.
func (s *Sparse) Compact() {
	if !s.dirty {
		return
	}
	var acc []float64
	var touched []int
	for i, row := range s.rows {
		if len(row) < 2 {
			continue
		}
		sorted := true
		for k := 1; k < len(row); k++ {
			if row[k].col <= row[k-1].col {
				sorted = false
				break
			}
		}
		if sorted {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(s.rows))
		}
		touched = touched[:0]
		for _, e := range row {
			if acc[e.col] == 0 {
				touched = append(touched, e.col)
			}
			acc[e.col] += e.p
		}
		slices.Sort(touched)
		row = row[:0]
		for _, c := range touched {
			row = append(row, entry{col: c, p: acc[c]})
			acc[c] = 0
		}
		s.rows[i] = row
	}
	s.dirty = false
}

// ForEach implements Chain. Before Compact/CloseRows/Finalize, a column that
// received several Adds is reported once per Add.
func (s *Sparse) ForEach(row int, fn func(col int, p float64)) {
	for _, e := range s.rows[row] {
		if e.p > 0 {
			fn(e.col, e.p)
		}
	}
}

// RowSum returns the total outgoing probability of row i.
func (s *Sparse) RowSum(i int) float64 {
	sum := 0.0
	for _, e := range s.rows[i] {
		sum += e.p
	}
	return sum
}

// CloseRows tops up each row's missing probability mass as a self-loop,
// making the chain stochastic. Builders that enumerate only the
// state-changing events call it once at the end (the remainder is exactly
// the chain's self-loop probability). It returns an error if any row
// already exceeds probability 1 beyond tolerance.
func (s *Sparse) CloseRows() error {
	const tol = 1e-9
	s.Compact()
	for i := range s.rows {
		sum := s.RowSum(i)
		if sum > 1+tol {
			return fmt.Errorf("markov: row %d has probability mass %v > 1", i, sum)
		}
		if rem := 1 - sum; rem > 0 {
			s.Add(i, i, rem)
		}
	}
	s.Compact()
	return nil
}

// Validate checks that every row of c sums to 1 within tolerance.
func Validate(c Chain) error {
	const tol = 1e-9
	for i := 0; i < c.N(); i++ {
		sum := 0.0
		bad := false
		c.ForEach(i, func(_ int, p float64) {
			sum += p
			if p < 0 || p > 1+tol {
				bad = true
			}
		})
		if bad || math.Abs(sum-1) > tol {
			return fmt.Errorf("markov: row %d sums to %v", i, sum)
		}
	}
	return nil
}

// Step advances a distribution one transition: out = dist * P.
func Step(c Chain, dist []float64) []float64 {
	out := make([]float64, c.N())
	newStepper(c)(dist, out)
	return out
}

// newStepper returns a reusable out = dist * P kernel for c. CSR chains get
// the chunked (and, above a size threshold, parallel) kernel with its scratch
// buffers allocated once; everything else falls back to stepInto.
func newStepper(c Chain) func(dist, out []float64) {
	if m, ok := c.(*CSR); ok {
		sc := &csrScratch{}
		return func(dist, out []float64) { m.step(dist, out, sc) }
	}
	return func(dist, out []float64) { stepInto(c, dist, out) }
}

// stepInto computes out = dist * P into a caller-provided buffer, zeroing
// it first; the power iteration reuses two buffers to avoid per-step
// allocation. Sparse and Dense chains get closure-free fast paths — the
// generic ForEach path allocates one closure per occupied row per step,
// which dominates the degree-MC solve otherwise.
func stepInto(c Chain, dist, out []float64) {
	for i := range out {
		out[i] = 0
	}
	switch cc := c.(type) {
	case *Sparse:
		for i, p := range dist {
			if p == 0 {
				continue
			}
			for _, e := range cc.rows[i] {
				out[e.col] += p * e.p
			}
		}
	case *CSR:
		cc.accumPlain(dist, out)
	case *Dense:
		for i, p := range dist {
			if p == 0 {
				continue
			}
			row := cc.p[i]
			for j, q := range row {
				out[j] += p * q
			}
		}
	default:
		for i, p := range dist {
			if p == 0 {
				continue
			}
			pi := p
			c.ForEach(i, func(j int, q float64) {
				out[j] += pi * q
			})
		}
	}
}

// Stationary computes the stationary distribution by power iteration from
// init (uniform if nil), stopping when successive distributions are within
// tol in total variation. It returns the distribution and the number of
// iterations used, or an error if maxIter is exhausted.
//
// CSR chains above the parallel size threshold shard each step's rows
// across a worker pool; the per-chunk partial sums are merged in a fixed
// order, so the result is bit-identical to a single-worker run.
func Stationary(c Chain, init []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := c.N()
	if n == 0 {
		return nil, 0, fmt.Errorf("markov: empty chain")
	}
	dist := make([]float64, n)
	if init == nil {
		for i := range dist {
			dist[i] = 1 / float64(n)
		}
	} else {
		if len(init) != n {
			return nil, 0, fmt.Errorf("markov: init length %d != states %d", len(init), n)
		}
		copy(dist, init)
	}
	next := make([]float64, n)
	step := newStepper(c)
	for iter := 1; iter <= maxIter; iter++ {
		step(dist, next)
		if TV(dist, next) < tol {
			return next, iter, nil
		}
		dist, next = next, dist
	}
	return nil, maxIter, fmt.Errorf("markov: power iteration did not converge in %d iterations", maxIter)
}

// TV returns the total-variation distance between two equal-length
// distributions.
func TV(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}
