package markov

import (
	"math"
	"testing"
	"testing/quick"

	"sendforget/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// twoState builds the classic two-state chain with P(0->1)=a, P(1->0)=b.
func twoState(a, b float64) *Dense {
	d := NewDense(2)
	d.Set(0, 0, 1-a)
	d.Set(0, 1, a)
	d.Set(1, 0, b)
	d.Set(1, 1, 1-b)
	return d
}

func TestValidate(t *testing.T) {
	d := twoState(0.3, 0.6)
	if err := Validate(d); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	bad := NewDense(2)
	bad.Set(0, 0, 0.5)
	bad.Set(1, 0, 1)
	if err := Validate(bad); err == nil {
		t.Error("row summing to 0.5 accepted")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// Stationary distribution of the (a,b) chain is (b, a)/(a+b).
	d := twoState(0.3, 0.6)
	pi, iters, err := Stationary(d, nil, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Errorf("iterations = %d", iters)
	}
	if !almostEqual(pi[0], 2.0/3.0, 1e-9) || !almostEqual(pi[1], 1.0/3.0, 1e-9) {
		t.Errorf("stationary = %v, want [2/3 1/3]", pi)
	}
}

func TestStationaryFixedPointProperty(t *testing.T) {
	d := twoState(0.25, 0.15)
	pi, _, err := Stationary(d, nil, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	next := Step(d, pi)
	if tv := TV(pi, next); tv > 1e-10 {
		t.Errorf("pi*P differs from pi by TV %v", tv)
	}
}

func TestStationaryCustomInit(t *testing.T) {
	d := twoState(0.5, 0.5)
	pi, _, err := Stationary(d, []float64{1, 0}, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 0.5, 1e-9) {
		t.Errorf("stationary = %v, want uniform", pi)
	}
	if _, _, err := Stationary(d, []float64{1}, 1e-12, 100); err == nil {
		t.Error("accepted init of wrong length")
	}
}

func TestStationaryNonConvergence(t *testing.T) {
	// The deterministic 2-cycle is periodic: power iteration from a point
	// mass never converges.
	d := NewDense(2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	if _, _, err := Stationary(d, []float64{1, 0}, 1e-12, 50); err == nil {
		t.Error("periodic chain converged from point mass")
	}
}

func TestStationaryEmptyChain(t *testing.T) {
	if _, _, err := Stationary(NewDense(0), nil, 1e-9, 10); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestSparseAddAccumulates(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 1, 0.2)
	s.Add(0, 1, 0.3)
	s.Add(0, 0, 0.5)
	s.Add(1, 0, 1)
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.RowSum(0), 1, 1e-12) {
		t.Errorf("RowSum(0) = %v", s.RowSum(0))
	}
	s.Compact()
	got := 0.0
	entries := 0
	s.ForEach(0, func(col int, p float64) {
		entries++
		if col == 1 {
			got = p
		}
	})
	if entries != 2 {
		t.Errorf("compacted row 0 has %d entries, want 2", entries)
	}
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("accumulated P(0->1) = %v, want 0.5", got)
	}
}

func TestSparseAddZeroIgnored(t *testing.T) {
	s := NewSparse(1)
	s.Add(0, 0, 0)
	count := 0
	s.ForEach(0, func(int, float64) { count++ })
	if count != 0 {
		t.Error("zero-probability transition stored")
	}
}

func TestSparseAddPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative probability accepted")
		}
	}()
	NewSparse(1).Add(0, 0, -0.1)
}

func TestCloseRows(t *testing.T) {
	s := NewSparse(2)
	s.Add(0, 1, 0.25)
	s.Add(1, 0, 1)
	if err := s.CloseRows(); err != nil {
		t.Fatal(err)
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	selfLoop := 0.0
	s.ForEach(0, func(col int, p float64) {
		if col == 0 {
			selfLoop = p
		}
	})
	if !almostEqual(selfLoop, 0.75, 1e-12) {
		t.Errorf("self-loop = %v, want 0.75", selfLoop)
	}
	over := NewSparse(1)
	over.Add(0, 0, 1.5)
	if err := over.CloseRows(); err == nil {
		t.Error("row mass > 1 accepted")
	}
}

func TestSparseStationaryMatchesDense(t *testing.T) {
	dense := twoState(0.3, 0.6)
	sparse := NewSparse(2)
	sparse.Add(0, 0, 0.7)
	sparse.Add(0, 1, 0.3)
	sparse.Add(1, 0, 0.6)
	sparse.Add(1, 1, 0.4)
	pd, _, err := Stationary(dense, nil, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := Stationary(sparse, nil, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if tv := TV(pd, ps); tv > 1e-9 {
		t.Errorf("dense and sparse stationary differ by %v", tv)
	}
}

func TestIsIrreducible(t *testing.T) {
	if !IsIrreducible(twoState(0.3, 0.6)) {
		t.Error("connected two-state chain reported reducible")
	}
	// Absorbing state: not irreducible.
	d := NewDense(2)
	d.Set(0, 1, 1)
	d.Set(1, 1, 1)
	if IsIrreducible(d) {
		t.Error("chain with absorbing state reported irreducible")
	}
	if IsIrreducible(NewDense(0)) {
		t.Error("empty chain reported irreducible")
	}
	// Two disjoint cycles.
	d4 := NewDense(4)
	d4.Set(0, 1, 1)
	d4.Set(1, 0, 1)
	d4.Set(2, 3, 1)
	d4.Set(3, 2, 1)
	if IsIrreducible(d4) {
		t.Error("disconnected chain reported irreducible")
	}
}

func TestPeriod(t *testing.T) {
	// Deterministic k-cycles have period k.
	for _, k := range []int{2, 3, 5} {
		d := NewDense(k)
		for i := 0; i < k; i++ {
			d.Set(i, (i+1)%k, 1)
		}
		p, err := Period(d)
		if err != nil {
			t.Fatalf("cycle %d: %v", k, err)
		}
		if p != k {
			t.Errorf("period of %d-cycle = %d", k, p)
		}
	}
	// A self-loop makes any irreducible chain aperiodic.
	d := NewDense(3)
	d.Set(0, 1, 0.5)
	d.Set(0, 0, 0.5)
	d.Set(1, 2, 1)
	d.Set(2, 0, 1)
	p, err := Period(d)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("period with self-loop = %d, want 1", p)
	}
	// Reducible chain: error.
	bad := NewDense(2)
	bad.Set(0, 0, 1)
	bad.Set(1, 1, 1)
	if _, err := Period(bad); err == nil {
		t.Error("Period accepted reducible chain")
	}
	// Single state with self-loop.
	one := NewDense(1)
	one.Set(0, 0, 1)
	p, err = Period(one)
	if err != nil || p != 1 {
		t.Errorf("single state period = %d, %v", p, err)
	}
}

func TestIsErgodic(t *testing.T) {
	if !IsErgodic(twoState(0.3, 0.6)) {
		t.Error("ergodic chain rejected")
	}
	cycle := NewDense(2)
	cycle.Set(0, 1, 1)
	cycle.Set(1, 0, 1)
	if IsErgodic(cycle) {
		t.Error("periodic chain reported ergodic")
	}
	red := NewDense(2)
	red.Set(0, 0, 1)
	red.Set(1, 1, 1)
	if IsErgodic(red) {
		t.Error("reducible chain reported ergodic")
	}
}

func TestErgodicTheoremEmpirically(t *testing.T) {
	// Random ergodic chains: power iteration from two different starting
	// distributions converges to the same stationary distribution.
	r := rng.New(42)
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(5)
		d := NewDense(n)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			sum := 0.0
			for j := range row {
				row[j] = r.Float64() + 0.01 // strictly positive: ergodic
				sum += row[j]
			}
			for j := range row {
				d.Set(i, j, row[j]/sum)
			}
		}
		if !IsErgodic(d) {
			t.Fatal("strictly positive chain not ergodic")
		}
		init1 := make([]float64, n)
		init1[0] = 1
		init2 := make([]float64, n)
		init2[n-1] = 1
		p1, _, err1 := Stationary(d, init1, 1e-12, 100000)
		p2, _, err2 := Stationary(d, init2, 1e-12, 100000)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if tv := TV(p1, p2); tv > 1e-8 {
			t.Errorf("trial %d: different starts gave TV %v", trial, tv)
		}
	}
}

func TestQuickStepPreservesMass(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := rng.New(seed)
		d := NewDense(n)
		for i := 0; i < n; i++ {
			sum := 0.0
			row := make([]float64, n)
			for j := range row {
				row[j] = r.Float64()
				sum += row[j]
			}
			for j := range row {
				d.Set(i, j, row[j]/sum)
			}
		}
		dist := make([]float64, n)
		dist[0] = 1
		next := Step(d, dist)
		mass := 0.0
		for _, p := range next {
			mass += p
		}
		return almostEqual(mass, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSpectralGapTwoState(t *testing.T) {
	// The (a, b) two-state chain has lambda2 = 1 - a - b exactly.
	for _, ab := range [][2]float64{{0.3, 0.6}, {0.1, 0.1}, {0.45, 0.45}} {
		a, b := ab[0], ab[1]
		d := twoState(a, b)
		pi, _, err := Stationary(d, nil, 1e-13, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		l2, relax, err := SpectralGap(d, pi, 1e-12, 100000)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Abs(1 - a - b)
		if math.Abs(l2-want) > 1e-8 {
			t.Errorf("a=%v b=%v: lambda2 = %v, want %v", a, b, l2, want)
		}
		if want < 1 && math.Abs(relax-1/(1-want)) > 1e-6*relax {
			t.Errorf("relaxation = %v, want %v", relax, 1/(1-want))
		}
	}
}

func TestSpectralGapImmediateForgetting(t *testing.T) {
	// A chain whose every row equals pi forgets in one step: lambda2 = 0.
	d := NewDense(3)
	for i := 0; i < 3; i++ {
		d.Set(i, 0, 0.5)
		d.Set(i, 1, 0.3)
		d.Set(i, 2, 0.2)
	}
	pi := []float64{0.5, 0.3, 0.2}
	l2, relax, err := SpectralGap(d, pi, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if l2 > 1e-9 || relax != 1 {
		t.Errorf("lambda2 = %v relaxation = %v, want 0 and 1", l2, relax)
	}
}

func TestSpectralGapValidation(t *testing.T) {
	d := twoState(0.3, 0.6)
	if _, _, err := SpectralGap(d, []float64{1}, 1e-9, 100); err == nil {
		t.Error("accepted wrong-length pi")
	}
	if _, _, err := SpectralGap(NewDense(1), []float64{1}, 1e-9, 100); err == nil {
		t.Error("accepted single-state chain")
	}
}
