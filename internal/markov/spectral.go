package markov

import (
	"fmt"
	"math"
)

// SpectralGap estimates the second-largest eigenvalue modulus of the chain
// and the derived relaxation time 1/(1-|lambda2|), by power iteration on
// the component orthogonal to the stationary distribution. Section 7.5
// reasons about mixing through conductance (Lemma 7.14); for chains small
// enough to hold in memory the spectral gap gives the exact asymptotic
// mixing rate to compare the bound against.
//
// pi must be the chain's stationary distribution. The estimate converges
// geometrically at rate |lambda3/lambda2|; maxIter bounds the work.
func SpectralGap(c Chain, pi []float64, tol float64, maxIter int) (lambda2 float64, relaxation float64, err error) {
	n := c.N()
	if n < 2 {
		return 0, 0, fmt.Errorf("markov: spectral gap needs >= 2 states")
	}
	if len(pi) != n {
		return 0, 0, fmt.Errorf("markov: pi length %d != states %d", len(pi), n)
	}
	// Start from a deterministic vector orthogonal to the all-ones left
	// null direction; project out pi repeatedly to stay in the subspace.
	v := make([]float64, n)
	for i := range v {
		// A fixed pseudo-random-ish pattern avoids symmetric blind spots.
		v[i] = math.Sin(float64(i+1) * 1.61803398875)
	}
	deflate(v, pi)
	if norm1(v) == 0 {
		return 0, 0, fmt.Errorf("markov: degenerate start vector")
	}
	scale(v, 1/norm1(v))
	next := make([]float64, n)
	step := newStepper(c)
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		step(v, next)
		deflate(next, pi)
		lambda := norm1(next)
		if lambda == 0 {
			// The orthogonal complement collapsed in one step: the chain
			// forgets everything immediately (lambda2 = 0).
			return 0, 1, nil
		}
		scale(next, 1/lambda)
		v, next = next, v
		if iter > 3 && math.Abs(lambda-prev) < tol {
			if lambda >= 1 {
				lambda = 1 - 1e-15
			}
			return lambda, 1 / (1 - lambda), nil
		}
		prev = lambda
	}
	return 0, 0, fmt.Errorf("markov: spectral gap estimate did not converge in %d iterations", maxIter)
}

// deflate removes the pi component: v <- v - (sum v)*pi. Left eigenvectors
// of eigenvalue 1 are spanned by pi; subtracting the total mass times pi
// keeps iteration in the complementary invariant subspace.
func deflate(v, pi []float64) {
	total := 0.0
	for _, x := range v {
		total += x
	}
	for i := range v {
		v[i] -= total * pi[i]
	}
}

func norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

func scale(v []float64, f float64) {
	for i := range v {
		v[i] *= f
	}
}
