// Prometheus text-format exposition for the substrate-neutral ledgers.
// The management daemon's /metrics endpoint writes through these helpers so
// every counter the simulators report — Traffic, node protocol events,
// fault-layer decisions — is scrapeable from a live node, with names fixed
// here in one place (README "Management API" documents them).
package metrics

import (
	"fmt"
	"io"
)

// PromWriter emits metrics in the Prometheus text exposition format
// (version 0.0.4): a HELP line, a TYPE line, and the sample per metric.
// Errors are sticky — callers write the whole family and check Err once.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w for exposition writing.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Counter emits a monotonically increasing sample. By convention the name
// carries the _total suffix.
func (p *PromWriter) Counter(name, help string, value int) {
	p.sample(name, "counter", help, fmt.Sprintf("%d", value))
}

// Gauge emits a point-in-time sample.
func (p *PromWriter) Gauge(name, help string, value float64) {
	p.sample(name, "gauge", help, fmt.Sprintf("%g", value))
}

func (p *PromWriter) sample(name, typ, help, value string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// WriteProm emits the traffic ledger as Prometheus counters under the given
// namespace (e.g. "sendforget" yields sendforget_traffic_sends_total ...).
// The emission order is fixed and the values are exactly the struct fields,
// so a scrape taken while the substrate is quiescent satisfies the same
// conservation identity Conserved checks.
func (t Traffic) WriteProm(p *PromWriter, ns string) {
	p.Counter(ns+"_traffic_sends_total", "Attempted transmissions, before loss, routing, or marshalling.", t.Sends)
	p.Counter(ns+"_traffic_losses_total", "Messages dropped by the fault layer.", t.Losses)
	p.Counter(ns+"_traffic_deliveries_total", "Messages handed to a live node's receive step.", t.Deliveries)
	p.Counter(ns+"_traffic_dead_letters_total", "Messages addressed to departed or unroutable nodes.", t.DeadLetters)
	p.Counter(ns+"_traffic_link_losses_total", "Losses attributed to per-link override models.", t.LinkLosses)
	p.Counter(ns+"_traffic_partition_drops_total", "Losses attributed to an active partition.", t.PartitionDrops)
	p.Counter(ns+"_traffic_delayed_total", "Messages routed through the delay queue.", t.Delayed)
}
