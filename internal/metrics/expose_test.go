package metrics

import (
	"strconv"
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("x_total", "a counter.", 42)
	p.Gauge("y", "a gauge.", 1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP x_total a counter.\n# TYPE x_total counter\nx_total 42\n" +
		"# HELP y a gauge.\n# TYPE y gauge\ny 1.5\n"
	if b.String() != want {
		t.Errorf("exposition = %q, want %q", b.String(), want)
	}
}

// failWriter errors after n bytes to exercise sticky errors.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, strconv.ErrRange
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, strconv.ErrRange
	}
	return n, nil
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(&failWriter{left: 10})
	p.Counter("x_total", "h", 1)
	p.Counter("y_total", "h", 2)
	if p.Err() == nil {
		t.Fatal("expected write error")
	}
}

// promValues parses "name value" sample lines (comments skipped).
func promValues(t *testing.T, text string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		out[name] = value
	}
	return out
}

func TestTrafficWriteProm(t *testing.T) {
	tr := Traffic{
		Sends: 100, Losses: 5, Deliveries: 90, DeadLetters: 5,
		LinkLosses: 2, PartitionDrops: 1, Delayed: 7,
	}
	var b strings.Builder
	p := NewPromWriter(&b)
	tr.WriteProm(p, "sendforget")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := promValues(t, b.String())
	want := map[string]string{
		"sendforget_traffic_sends_total":           "100",
		"sendforget_traffic_losses_total":          "5",
		"sendforget_traffic_deliveries_total":      "90",
		"sendforget_traffic_dead_letters_total":    "5",
		"sendforget_traffic_link_losses_total":     "2",
		"sendforget_traffic_partition_drops_total": "1",
		"sendforget_traffic_delayed_total":         "7",
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %q, want %q", name, got[name], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("emitted %d samples, want %d: %v", len(got), len(want), got)
	}
}
