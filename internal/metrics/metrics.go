// Package metrics measures the membership properties M1-M5 of Section 2 on
// live simulations: degree balance (M2), view uniformity (M3), spatial
// dependence (M4, complementing the protocol's own tracker), and temporal
// overlap decay (M5).
package metrics

import (
	"fmt"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/stats"
	"sendforget/internal/view"
)

// Traffic aggregates message-level transport events in a substrate-neutral
// shape: the sequential engine and the concurrent runtime cluster both
// report their counters through it, so experiments can compare loss behavior
// across substrates without caring which one produced the numbers.
//
// The counting semantics are identical on every substrate: Sends counts
// every attempted transmission, incremented before the fault layer, routing,
// or marshalling rules on the message; each attempt then lands in exactly
// one of Losses (dropped by the fault layer), DeadLetters (survived the
// fault layer but unroutable), or Deliveries (handed to a receive step) —
// immediately, or after a stay in the delay queue. So once the delay queue
// is drained, Sends = Losses + Deliveries + DeadLetters holds exactly.
type Traffic struct {
	// Sends counts attempted transmissions (including replies of
	// request/reply protocols), before loss, routing, or marshalling.
	Sends int
	// Losses counts messages dropped by the fault layer: the base loss
	// model plus the per-link and partition conditions broken out below.
	Losses int
	// Deliveries counts messages handed to a live node's receive step.
	Deliveries int
	// DeadLetters counts messages addressed to departed or unroutable nodes.
	DeadLetters int

	// LinkLosses is the subset of Losses dropped by per-link override
	// models (faults.Conditions.SetLinkLoss).
	LinkLosses int
	// PartitionDrops is the subset of Losses dropped by an active
	// partition (faults.Conditions.Partition).
	PartitionDrops int
	// Delayed counts messages routed through the delay queue; they are
	// additionally counted under Deliveries or DeadLetters when drained.
	Delayed int
}

// Conserved reports whether the traffic identity
// Sends = Losses + Deliveries + DeadLetters holds — true exactly when every
// attempted transmission has been accounted a final fate, i.e. after the
// substrate's delay queue has drained. Cross-substrate tests assert it on
// the engine, the cluster, and the sharded cluster alike.
func (t Traffic) Conserved() bool {
	return t.Sends == t.Losses+t.Deliveries+t.DeadLetters
}

// LossRate returns the empirical loss fraction over all sends.
func (t Traffic) LossRate() float64 {
	if t.Sends == 0 {
		return 0
	}
	return float64(t.Losses) / float64(t.Sends)
}

// DegreeStats summarizes the in/out degree balance of a membership graph
// (Property M2: bounded indegree variance).
type DegreeStats struct {
	MeanOut, VarOut float64
	MeanIn, VarIn   float64
	MinIn, MaxIn    int
}

// Degrees measures the degree balance of g over the given active node set
// (all nodes when active is nil).
func Degrees(g *graph.Graph, active []peer.ID) DegreeStats {
	var out, in stats.Accumulator
	minIn, maxIn := int(^uint(0)>>1), -1
	consider := func(u peer.ID) {
		out.Add(float64(g.Outdegree(u)))
		din := g.Indegree(u)
		in.Add(float64(din))
		if din < minIn {
			minIn = din
		}
		if din > maxIn {
			maxIn = din
		}
	}
	if active == nil {
		for u := 0; u < g.N(); u++ {
			consider(peer.ID(u))
		}
	} else {
		for _, u := range active {
			consider(u)
		}
	}
	if maxIn < 0 {
		minIn, maxIn = 0, 0
	}
	return DegreeStats{
		MeanOut: out.Mean(), VarOut: out.Variance(),
		MeanIn: in.Mean(), VarIn: in.Variance(),
		MinIn: minIn, MaxIn: maxIn,
	}
}

// OccupancyCounter accumulates, for a fixed observer node, how often each
// other node's id appears in the observer's view across samples — the
// estimator behind the Lemma 7.6 uniformity test (Property M3).
type OccupancyCounter struct {
	observer peer.ID
	n        int
	counts   []int
	samples  int
}

// NewOccupancyCounter creates a counter for the observer in an n-node
// system.
func NewOccupancyCounter(observer peer.ID, n int) *OccupancyCounter {
	return &OccupancyCounter{observer: observer, n: n, counts: make([]int, n)}
}

// Sample records the presence (0/1, not multiplicity) of each id in the
// observer's current view.
func (o *OccupancyCounter) Sample(v *view.View) {
	if v == nil {
		return
	}
	o.samples++
	seen := make(map[peer.ID]struct{})
	for _, id := range v.IDs() {
		if int(id) < 0 || int(id) >= o.n {
			continue
		}
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		o.counts[id]++
	}
}

// Samples returns the number of samples recorded.
func (o *OccupancyCounter) Samples() int { return o.samples }

// Counts returns presence counts for all ids except the observer's own
// (self-edges are dependent by definition and excluded from the uniformity
// claim, which is over v != u).
func (o *OccupancyCounter) Counts() []int {
	out := make([]int, 0, o.n-1)
	for id, c := range o.counts {
		if peer.ID(id) == o.observer {
			continue
		}
		out = append(out, c)
	}
	return out
}

// UniformityTest runs the chi-square test of the hypothesis that all ids
// v != observer are equally likely to appear in the observer's view. It
// returns the statistic and p-value; small p-values reject uniformity.
func (o *OccupancyCounter) UniformityTest() (stat, pValue float64, err error) {
	if o.samples == 0 {
		return 0, 0, fmt.Errorf("metrics: no samples recorded")
	}
	return stats.ChiSquareUniformTest(o.Counts())
}

// MultisetOverlap returns the size of the multiset intersection of the
// non-empty entries of two views — the raw ingredient of the temporal
// overlap measurement (Property M5).
func MultisetOverlap(a, b *view.View) int {
	if a == nil || b == nil {
		return 0
	}
	counts := make(map[peer.ID]int)
	for _, id := range a.IDs() {
		counts[id]++
	}
	overlap := 0
	for _, id := range b.IDs() {
		if counts[id] > 0 {
			counts[id]--
			overlap++
		}
	}
	return overlap
}

// TemporalTracker measures how quickly views forget a reference state: the
// overlap fraction between current views and a snapshot taken at
// construction time. Property M5 predicts decay to the independence
// baseline within O(s log n) actions per node.
type TemporalTracker struct {
	ref []*view.View
}

// NewTemporalTracker snapshots the reference views (deep copies).
func NewTemporalTracker(views []*view.View) *TemporalTracker {
	ref := make([]*view.View, len(views))
	for i, v := range views {
		if v != nil {
			ref[i] = v.Clone()
		}
	}
	return &TemporalTracker{ref: ref}
}

// Overlap returns the fraction of current non-empty entries that also
// appear (as a multiset) in the same node's reference view, in [0, 1].
func (tt *TemporalTracker) Overlap(views []*view.View) float64 {
	common, total := 0, 0
	for i, v := range views {
		if v == nil || i >= len(tt.ref) || tt.ref[i] == nil {
			continue
		}
		common += MultisetOverlap(tt.ref[i], v)
		total += v.Outdegree()
	}
	if total == 0 {
		return 0
	}
	return float64(common) / float64(total)
}

// IndependenceBaseline returns the expected overlap fraction if current
// views were i.i.d. uniform samples: each entry matches a reference entry
// with probability ~ dRef/n (dRef entries among n ids).
func (tt *TemporalTracker) IndependenceBaseline(n int) float64 {
	if n == 0 {
		return 0
	}
	var refDeg stats.Accumulator
	for _, v := range tt.ref {
		if v != nil {
			refDeg.Add(float64(v.Outdegree()))
		}
	}
	return refDeg.Mean() / float64(n)
}

// IIDDependenceBaseline returns the expected numbers of self-edges and
// same-view duplicates that perfectly i.i.d. uniform views of the observed
// sizes would exhibit: per view with d entries, d/n self-edges and about
// C(d,2)/n duplicate pairs. The paper's asymptotic analysis (n >> s)
// neglects these 1/n terms; finite-n measurements subtract them before
// comparing against the Lemma 7.9 bound.
func IIDDependenceBaseline(views []*view.View, n int) (self, dup float64) {
	if n == 0 {
		return 0, 0
	}
	for _, v := range views {
		if v == nil {
			continue
		}
		d := float64(v.Outdegree())
		self += d / float64(n)
		dup += d * (d - 1) / 2 / float64(n)
	}
	return self, dup
}

// SpatialDependence measures the graph-visible dependence markers of
// Section 2 — self-edges and same-view duplicates — as a fraction of all
// entries. The full Property M4 estimator additionally needs the protocol's
// duplication tags (sendforget.DependenceStats); this measurement is
// protocol-agnostic and is what the baseline comparison uses.
type SpatialDependence struct {
	Entries    int
	SelfEdges  int
	Duplicates int
}

// MeasureSpatialDependence inspects a graph snapshot.
func MeasureSpatialDependence(g *graph.Graph) SpatialDependence {
	return SpatialDependence{
		Entries:    g.NumEdges(),
		SelfEdges:  g.SelfEdges(),
		Duplicates: g.DuplicateEntries(),
	}
}

// DependentFraction returns (self-edges + duplicates) / entries.
func (sd SpatialDependence) DependentFraction() float64 {
	if sd.Entries == 0 {
		return 0
	}
	return float64(sd.SelfEdges+sd.Duplicates) / float64(sd.Entries)
}
