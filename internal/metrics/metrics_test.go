package metrics

import (
	"math"
	"testing"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/view"
)

func TestTrafficLossRate(t *testing.T) {
	tr := Traffic{Sends: 200, Losses: 10, Deliveries: 185, DeadLetters: 5}
	if got := tr.LossRate(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("LossRate = %v, want 0.05", got)
	}
	if got := (Traffic{}).LossRate(); got != 0 {
		t.Errorf("zero-traffic LossRate = %v, want 0", got)
	}
}

func TestDegrees(t *testing.T) {
	g := graph.FromEdges(3, [][2]peer.ID{{0, 1}, {0, 2}, {1, 2}})
	st := Degrees(g, nil)
	if math.Abs(st.MeanOut-1) > 1e-12 {
		t.Errorf("MeanOut = %v, want 1", st.MeanOut)
	}
	if math.Abs(st.MeanIn-1) > 1e-12 {
		t.Errorf("MeanIn = %v, want 1", st.MeanIn)
	}
	if st.MinIn != 0 || st.MaxIn != 2 {
		t.Errorf("MinIn/MaxIn = %d/%d, want 0/2", st.MinIn, st.MaxIn)
	}
	// Restricted to nodes 1 and 2.
	st = Degrees(g, []peer.ID{1, 2})
	if math.Abs(st.MeanIn-1.5) > 1e-12 {
		t.Errorf("restricted MeanIn = %v, want 1.5", st.MeanIn)
	}
	// Empty active set.
	st = Degrees(g, []peer.ID{})
	if st.MinIn != 0 || st.MaxIn != 0 {
		t.Errorf("empty set Min/Max = %d/%d", st.MinIn, st.MaxIn)
	}
}

func TestOccupancyCounter(t *testing.T) {
	oc := NewOccupancyCounter(0, 4)
	v := view.New(6)
	v.Set(0, 1)
	v.Set(1, 2)
	v.Set(2, 2) // duplicate: presence counts once
	v.Set(3, 0) // self id: counted internally, excluded from Counts
	oc.Sample(v)
	oc.Sample(nil) // ignored
	if oc.Samples() != 1 {
		t.Fatalf("Samples = %d, want 1", oc.Samples())
	}
	counts := oc.Counts()
	if len(counts) != 3 {
		t.Fatalf("Counts length = %d, want 3 (observer excluded)", len(counts))
	}
	// counts for ids 1, 2, 3.
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Errorf("Counts = %v, want [1 1 0]", counts)
	}
}

func TestOccupancyCounterIgnoresOutOfRange(t *testing.T) {
	oc := NewOccupancyCounter(0, 2)
	v := view.New(4)
	v.Set(0, 77) // out of range for n=2
	v.Set(1, 1)
	oc.Sample(v)
	counts := oc.Counts()
	if len(counts) != 1 || counts[0] != 1 {
		t.Errorf("Counts = %v, want [1]", counts)
	}
}

func TestUniformityTest(t *testing.T) {
	oc := NewOccupancyCounter(0, 5)
	if _, _, err := oc.UniformityTest(); err == nil {
		t.Error("UniformityTest accepted zero samples")
	}
	// Feed perfectly uniform presence.
	for k := 0; k < 100; k++ {
		v := view.New(8)
		v.Set(0, 1)
		v.Set(1, 2)
		v.Set(2, 3)
		v.Set(3, 4)
		oc.Sample(v)
	}
	stat, p, err := oc.UniformityTest()
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || p < 0.999 {
		t.Errorf("uniform presence: stat=%v p=%v", stat, p)
	}
}

func TestMultisetOverlap(t *testing.T) {
	a := view.New(4)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 2)
	b := view.New(4)
	b.Set(0, 2)
	b.Set(1, 2)
	b.Set(2, 2)
	// a has {1, 2, 2}, b has {2, 2, 2}: multiset intersection {2, 2}.
	if got := MultisetOverlap(a, b); got != 2 {
		t.Errorf("MultisetOverlap = %d, want 2", got)
	}
	if got := MultisetOverlap(nil, b); got != 0 {
		t.Errorf("nil overlap = %d, want 0", got)
	}
	if got := MultisetOverlap(a, view.New(4)); got != 0 {
		t.Errorf("empty overlap = %d, want 0", got)
	}
}

func TestTemporalTracker(t *testing.T) {
	v0 := view.New(4)
	v0.Set(0, 1)
	v0.Set(1, 2)
	v1 := view.New(4)
	v1.Set(0, 3)
	tt := NewTemporalTracker([]*view.View{v0, v1, nil})
	// Identical views: full overlap.
	if got := tt.Overlap([]*view.View{v0, v1, nil}); got != 1 {
		t.Errorf("self overlap = %v, want 1", got)
	}
	// Mutating the live view must not affect the snapshot.
	v0.Set(0, 9)
	got := tt.Overlap([]*view.View{v0, v1, nil})
	want := 2.0 / 3.0 // entries {9,2} and {3}: overlap {2} and {3} = 2 of 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("overlap after mutation = %v, want %v", got, want)
	}
	// Disjoint views: zero.
	w0 := view.New(4)
	w0.Set(0, 7)
	if got := tt.Overlap([]*view.View{w0, nil, nil}); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	// No entries at all.
	if got := tt.Overlap([]*view.View{nil, nil, nil}); got != 0 {
		t.Errorf("empty overlap = %v, want 0", got)
	}
}

func TestIndependenceBaseline(t *testing.T) {
	v0 := view.New(4)
	v0.Set(0, 1)
	v0.Set(1, 2)
	tt := NewTemporalTracker([]*view.View{v0})
	// Mean reference degree 2 over n=100 ids: baseline 0.02.
	if got := tt.IndependenceBaseline(100); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("baseline = %v, want 0.02", got)
	}
	if got := tt.IndependenceBaseline(0); got != 0 {
		t.Errorf("baseline n=0 = %v, want 0", got)
	}
}

func TestSpatialDependence(t *testing.T) {
	g := graph.FromEdges(3, [][2]peer.ID{{0, 0}, {0, 1}, {0, 1}, {2, 1}})
	sd := MeasureSpatialDependence(g)
	if sd.Entries != 4 || sd.SelfEdges != 1 || sd.Duplicates != 1 {
		t.Errorf("SpatialDependence = %+v", sd)
	}
	if math.Abs(sd.DependentFraction()-0.5) > 1e-12 {
		t.Errorf("DependentFraction = %v, want 0.5", sd.DependentFraction())
	}
	var empty SpatialDependence
	if empty.DependentFraction() != 0 {
		t.Error("empty DependentFraction != 0")
	}
}
