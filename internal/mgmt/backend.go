// Package mgmt is the control plane that promotes sfnode from a CLI into a
// production daemon: an HTTP/JSON management API (/join, /leave, /view,
// /health, /config) plus a Prometheus text /metrics exporter, served next to
// the gossip loop. The same API shape works for a single real UDP node and
// for an in-process -local cluster — the Backend interface is the seam — so
// operators and tests drive both through identical requests.
//
// The gossip protocols themselves need nothing but fire-and-forget
// datagrams (the paper's practicality claim); everything in this package is
// observation and lifecycle around them: the protocol layer has no
// dependency on mgmt and keeps working with the server switched off.
package mgmt

import (
	"fmt"
	"time"

	"sendforget/internal/faults"
	"sendforget/internal/metrics"
	"sendforget/internal/runtime"
)

// Info identifies what the daemon is running, for /health and /config.
type Info struct {
	// Mode is "udp" (one real node) or "local" (in-process cluster).
	Mode string `json:"mode"`
	// Protocol is the step-core name (sf, sfopt, shuffle, flipper, pushpull).
	Protocol string `json:"protocol"`
	// Engine is the -local execution backend (seq, cluster, sharded);
	// empty in UDP mode.
	Engine string `json:"engine,omitempty"`
	// N is the node universe size (1 in UDP mode).
	N int `json:"n"`
}

// NodeView is one node's current view: the occupied entries, in slot order.
type NodeView struct {
	ID   int   `json:"id"`
	View []int `json:"view"`
}

// JoinRequest admits a member. In local mode ID+Seeds activate a node slot
// (the paper's join rule: a joining node must know at least max(2, dL) live
// ids). In UDP mode ID+Addr add a peer to the transport directory — the
// bootstrap introduction; the gossip itself then spreads the address.
type JoinRequest struct {
	ID    *int   `json:"id"`
	Seeds []int  `json:"seeds,omitempty"`
	Addr  string `json:"addr,omitempty"`
}

// LeaveRequest removes a member. With an ID (local mode) that node departs
// — no protocol action, exactly the paper's leave semantics. Without an ID
// the daemon itself leaves: the backend drains in-flight messages, checks
// invariants, and the server signals the run loop to shut down.
type LeaveRequest struct {
	ID *int `json:"id,omitempty"`
}

// Config is the live-reloadable slice of the daemon's configuration, plus
// the read-only identity fields an operator wants alongside it.
type Config struct {
	Info
	S      int     `json:"s"`
	DL     int     `json:"dl"`
	Seed   int64   `json:"seed"`
	Period string  `json:"period"`
	Loss   float64 `json:"loss"`
}

// ConfigUpdate is a partial live reconfiguration: nil fields are untouched.
// Period retunes the gossip/tick cadence on any backend; Loss swaps the
// fault layer's base model (local mode only — a real network's loss is not
// ours to set).
type ConfigUpdate struct {
	Period *string  `json:"period,omitempty"`
	Loss   *float64 `json:"loss,omitempty"`
}

// Backend is the seam between the HTTP layer and the thing actually
// gossiping. Implementations must be safe for concurrent use: handlers run
// on server goroutines while the daemon's run loop ticks.
type Backend interface {
	// Info identifies the running configuration.
	Info() Info
	// Rounds returns the logical-time progress counter (ticked rounds in
	// local mode, initiated actions in UDP mode).
	Rounds() int64
	// Views snapshots the live views, ordered by node id.
	Views() []NodeView
	// Counters sums the node-level protocol ledger.
	Counters() runtime.NodeCounters
	// Traffic reports the transport ledger.
	Traffic() metrics.Traffic
	// FaultCounters reports the fault-layer ledger; ok is false when no
	// fault layer exists (UDP mode — the real network injects its own).
	FaultCounters() (c faults.Counters, ok bool)
	// Pending returns the number of messages parked in the delay queue.
	Pending() int
	// Join admits a member per JoinRequest.
	Join(req JoinRequest) error
	// Leave removes member id (local mode).
	Leave(id int) error
	// Drain delivers everything in flight and checks the per-view
	// invariants — the unified shutdown path runs it, and /leave without
	// an id runs it before requesting daemon shutdown.
	Drain() error
	// Config returns the current configuration.
	Config() Config
	// Reconfigure applies a live partial update.
	Reconfigure(upd ConfigUpdate) error
}

// parsePeriod validates a ConfigUpdate period string.
func parsePeriod(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("mgmt: bad period %q: %w", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("mgmt: period must be positive, got %v", d)
	}
	return d, nil
}
