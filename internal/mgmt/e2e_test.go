package mgmt

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/runtime"
	"sendforget/internal/view"
)

// TestE2E50NodeClusterViaAPI is the ROADMAP item 3 acceptance test: a
// 50-node in-process cluster driven entirely through the management API —
// join, leave, view queries, live config reload, drain — with /metrics
// matching the substrate's own ledgers exactly at the quiescent end.
func TestE2E50NodeClusterViaAPI(t *testing.T) {
	const n = 50
	sub, err := runtime.New(runtime.Config{
		Engine: runtime.EngineCluster,
		N:      n,
		NewCore: func() (protocol.StepCore, error) {
			return sendforget.NewCore(8, 2)
		},
		Loss: 0.05,
		Seed: 2026,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	backend, err := NewLocal(LocalOptions{
		Sub: sub, Protocol: "sf", Engine: "cluster", N: n, S: 8, DL: 2,
		Seed: 2026, Period: 100 * time.Millisecond, Loss: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Addr: "127.0.0.1:0", Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon run loop is simulated by ticking between API phases.
	rounds := func(k int) {
		for i := 0; i < k; i++ {
			backend.Tick()
		}
	}
	base := "http://" + srv.Addr()
	id := func(v int) *int { return &v }

	// Phase 1: health + warm-up.
	var h healthResponse
	getJSON(t, base+"/health", http.StatusOK, &h)
	if h.Status != "ok" || h.N != n {
		t.Fatalf("health = %+v", h)
	}
	rounds(30)

	// Phase 2: churn through the API — ten nodes leave, gossip continues,
	// they rejoin seeded by live members.
	for u := 10; u < 20; u++ {
		postJSON(t, base+"/leave", LeaveRequest{ID: id(u)}, http.StatusOK, nil)
	}
	var v viewResponse
	getJSON(t, base+"/view", http.StatusOK, &v)
	if v.Live != n-10 {
		t.Fatalf("live after leaves = %d, want %d", v.Live, n-10)
	}
	rounds(30)
	for u := 10; u < 20; u++ {
		postJSON(t, base+"/join", JoinRequest{ID: id(u), Seeds: []int{(u + 25) % n, (u + 26) % n}}, http.StatusOK, nil)
	}
	getJSON(t, base+"/view", http.StatusOK, &v)
	if v.Live != n {
		t.Fatalf("live after rejoins = %d, want %d", v.Live, n)
	}
	rounds(30)

	// Phase 3: live config reload — crank loss up, then back down; the
	// fault layer must follow immediately.
	for _, rate := range []float64{0.5, 0.05} {
		r := rate
		var cfg Config
		postJSON(t, base+"/config", ConfigUpdate{Loss: &r}, http.StatusOK, &cfg)
		if cfg.Loss != rate {
			t.Fatalf("loss after reload = %g, want %g", cfg.Loss, rate)
		}
		if got := sub.Conditions().Rate(); got != rate {
			t.Fatalf("conditions rate = %g, want %g", got, rate)
		}
		rounds(20)
	}
	period := "50ms"
	postJSON(t, base+"/config", ConfigUpdate{Period: &period}, http.StatusOK, nil)

	// Phase 4: drain via bare /leave — in-flight messages settle,
	// invariants are checked, shutdown is requested.
	postJSON(t, base+"/leave", LeaveRequest{}, http.StatusOK, nil)
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not request shutdown")
	}

	// The quiescent scrape must match the substrate's ledgers exactly.
	tr := sub.Traffic()
	if !tr.Conserved() {
		t.Fatalf("traffic identity violated after drain: %+v", tr)
	}
	if tr.Sends == 0 || tr.Losses == 0 || tr.Deliveries == 0 {
		t.Fatalf("implausibly quiet run: %+v", tr)
	}
	got := scrapeProm(t, base)
	fc, _ := backend.FaultCounters()
	want := map[string]int{
		"sendforget_traffic_sends_total":        tr.Sends,
		"sendforget_traffic_losses_total":       tr.Losses,
		"sendforget_traffic_deliveries_total":   tr.Deliveries,
		"sendforget_traffic_dead_letters_total": tr.DeadLetters,
		"sendforget_faults_decisions_total":     fc.Decisions,
		"sendforget_faults_model_drops_total":   fc.ModelDrops,
		"sendforget_pending_messages":           0,
	}
	for name, val := range want {
		if got[name] != fmt.Sprintf("%d", val) {
			t.Errorf("%s = %q, want %d", name, got[name], val)
		}
	}
	if fc.Drops() != tr.Losses {
		t.Errorf("fault drops %d != traffic losses %d", fc.Drops(), tr.Losses)
	}

	// The overlay survived all of it: connected, and every view invariant
	// holds (Drain checked them; check once more from the substrate side).
	if err := sub.CheckInvariants(); err != nil {
		t.Error(err)
	}
	views := sub.Views()
	if g := graph.FromViews(views); g.ComponentCount() != 1 {
		t.Errorf("overlay has %d components after churn, want 1", g.ComponentCount())
	}
	checkNoSelfLoops(t, views)

	// Full teardown; the -race run asserts no goroutine leaks past here.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Error(err)
	}
}

// checkNoSelfLoops asserts no node's view contains its own id (S&F repairs
// self-loops; after churn + drain none should persist in a healthy run).
func checkNoSelfLoops(t *testing.T, views []*view.View) {
	t.Helper()
	loops := 0
	for u, v := range views {
		if v == nil {
			continue
		}
		if v.Contains(peer.ID(u)) {
			loops++
		}
	}
	// Churn plants self-entries (a rejoined node can be handed an arc to
	// itself) and the S&F transformation repairs them one per tick, so a
	// recently churned overlay carries a few. They must stay a small
	// minority, not the norm.
	if n := len(views); loops*4 > n {
		t.Errorf("%d of %d nodes hold self-loops after drain", loops, n)
	}
}
