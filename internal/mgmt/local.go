package mgmt

import (
	"fmt"
	"sync"
	"time"

	"sendforget/internal/faults"
	"sendforget/internal/graph"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/runtime"
)

// LocalOptions parameterizes a Local backend over an in-process cluster.
type LocalOptions struct {
	// Sub is the substrate to manage. The backend becomes its single
	// owner: the daemon's run loop must tick through Local.Tick, never
	// Sub.TickRound directly, so HTTP-driven churn and config reloads
	// serialize against ticking on every engine (the seq and sharded
	// engines are not internally synchronized).
	Sub runtime.Substrate
	// Protocol, Engine, N, S, DL, Seed describe the running config.
	Protocol string
	Engine   string
	N        int
	S, DL    int
	Seed     int64
	// Period is the initial tick period.
	Period time.Duration
	// Loss is the initial base loss rate.
	Loss float64
	// OnPeriod, when non-nil, is called (outside the backend lock) after
	// a live period change so the daemon's run loop can retune its
	// ticker.
	OnPeriod func(time.Duration)
}

// Local adapts a runtime.Substrate to the management Backend. All substrate
// access is serialized under one mutex; see LocalOptions.Sub. The
// single-owner rule is load-bearing rather than advisory: sharedguard
// verifies that period, loss, and rounds are only ever touched under mu
// (or before the daemon goroutines exist), so a new HTTP handler that
// forgets the lock fails vet, not production.
type Local struct {
	opts LocalOptions

	mu     sync.Mutex
	period time.Duration
	loss   float64
	rounds int64
}

var _ Backend = (*Local)(nil)

// NewLocal builds the backend.
func NewLocal(opts LocalOptions) (*Local, error) {
	if opts.Sub == nil {
		return nil, fmt.Errorf("mgmt: nil substrate")
	}
	if opts.Period <= 0 {
		return nil, fmt.Errorf("mgmt: nonpositive period %v", opts.Period)
	}
	return &Local{opts: opts, period: opts.Period, loss: opts.Loss}, nil
}

// Tick drives one gossip round; the daemon's run loop calls it per period.
func (l *Local) Tick() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Sub.TickRound()
	l.rounds++
}

// Info identifies the running configuration.
func (l *Local) Info() Info {
	return Info{Mode: "local", Protocol: l.opts.Protocol, Engine: l.opts.Engine, N: l.opts.N}
}

// Rounds returns how many rounds Tick has driven.
func (l *Local) Rounds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rounds
}

// Views snapshots the live views, ordered by node id.
func (l *Local) Views() []NodeView {
	l.mu.Lock()
	defer l.mu.Unlock()
	views := l.opts.Sub.Views()
	out := make([]NodeView, 0, len(views))
	for id, v := range views {
		if v == nil {
			continue
		}
		ids := v.IDs()
		entries := make([]int, len(ids))
		for i, e := range ids {
			entries[i] = int(e)
		}
		out = append(out, NodeView{ID: id, View: entries})
	}
	return out
}

// Snapshot returns the membership graph under the backend lock, so the
// daemon's report loop can read overlay health without racing HTTP-driven
// churn.
func (l *Local) Snapshot() *graph.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Sub.Snapshot()
}

// Counters sums the node-level protocol ledger.
func (l *Local) Counters() runtime.NodeCounters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Sub.Counters()
}

// Traffic reports the transport ledger.
func (l *Local) Traffic() metrics.Traffic {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Sub.Traffic()
}

// FaultCounters reports the fault-layer ledger.
func (l *Local) FaultCounters() (faults.Counters, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Sub.Conditions().Counters(), true
}

// Pending returns the delay-queue depth.
func (l *Local) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Sub.Pending()
}

// Join activates a node slot with the given seed view.
func (l *Local) Join(req JoinRequest) error {
	if req.ID == nil {
		return fmt.Errorf("mgmt: join needs an id")
	}
	if len(req.Seeds) == 0 {
		return fmt.Errorf("mgmt: join needs seed ids (at least max(2, dL) live nodes)")
	}
	seeds := make([]peer.ID, len(req.Seeds))
	for i, s := range req.Seeds {
		if s == *req.ID {
			return fmt.Errorf("mgmt: node %d cannot seed its view with itself", s)
		}
		seeds[i] = peer.ID(s)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The daemon run loop drives rounds through Tick, so joined nodes are
	// picked up on the next round; no per-node timer to start.
	return l.opts.Sub.AddNode(peer.ID(*req.ID), seeds, false)
}

// Leave removes node id (no protocol action — the paper's leave).
func (l *Local) Leave(id int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < 0 || id >= l.opts.N {
		return fmt.Errorf("mgmt: node id %d outside cluster universe [0, %d)", id, l.opts.N)
	}
	views := l.opts.Sub.Views()
	if id >= len(views) || views[id] == nil {
		return fmt.Errorf("mgmt: node %d is not active", id)
	}
	l.opts.Sub.RemoveNode(peer.ID(id))
	return nil
}

// Drain delivers everything in flight, then checks every live node's view
// invariant — the traffic identity Sends = Losses + Deliveries + DeadLetters
// holds exactly on the counters scraped afterwards.
func (l *Local) Drain() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.opts.Sub.DrainDelayed()
	return l.opts.Sub.CheckInvariants()
}

// Config returns the current configuration.
func (l *Local) Config() Config {
	l.mu.Lock()
	period, loss := l.period, l.loss
	l.mu.Unlock()
	return Config{
		Info: l.Info(),
		S:    l.opts.S, DL: l.opts.DL, Seed: l.opts.Seed,
		Period: period.String(), Loss: loss,
	}
}

// Reconfigure applies a live partial update: period retunes the daemon's
// tick cadence (via OnPeriod), loss swaps the fault layer's base model.
// Validation is all-or-nothing: a bad field leaves the whole update
// unapplied.
func (l *Local) Reconfigure(upd ConfigUpdate) error {
	var period time.Duration
	if upd.Period != nil {
		d, err := parsePeriod(*upd.Period)
		if err != nil {
			return err
		}
		period = d
	}
	if upd.Loss != nil && (*upd.Loss < 0 || *upd.Loss > 1) {
		return fmt.Errorf("mgmt: loss rate %g outside [0, 1]", *upd.Loss)
	}
	l.mu.Lock()
	if upd.Loss != nil {
		if err := l.opts.Sub.Conditions().SetRate(*upd.Loss); err != nil {
			l.mu.Unlock()
			return err
		}
		l.loss = *upd.Loss
	}
	if upd.Period != nil {
		l.period = period
	}
	l.mu.Unlock()
	if upd.Period != nil && l.opts.OnPeriod != nil {
		l.opts.OnPeriod(period)
	}
	return nil
}
