package mgmt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"sendforget/internal/metrics"
)

// Options parameterizes a management server.
type Options struct {
	// Addr is the listen address (e.g. "127.0.0.1:8700"; port 0 picks a
	// free one, readable from Addr after Start).
	Addr string
	// Backend is the managed node or cluster.
	Backend Backend
	// Log receives structured request/lifecycle logs; nil discards them.
	Log *slog.Logger
}

// Server serves the management API and the /metrics exporter next to the
// gossip loop. Lifecycle: New, Start, then Shutdown (context-driven); a
// bare POST /leave additionally closes ShutdownRequested so the daemon's
// run loop can begin its own teardown.
type Server struct {
	backend Backend
	log     *slog.Logger

	srv *http.Server
	ln  net.Listener
	wg  sync.WaitGroup

	start        time.Time
	shutdownOnce sync.Once
	shutdownCh   chan struct{}
}

// New builds a server; Start makes it listen.
func New(o Options) (*Server, error) {
	if o.Backend == nil {
		return nil, fmt.Errorf("mgmt: nil backend")
	}
	if o.Addr == "" {
		return nil, fmt.Errorf("mgmt: empty listen address")
	}
	log := o.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		backend:    o.Backend,
		log:        log,
		shutdownCh: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.handleHealth)
	mux.HandleFunc("GET /view", s.handleView)
	mux.HandleFunc("GET /config", s.handleGetConfig)
	mux.HandleFunc("POST /config", s.handlePostConfig)
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("POST /leave", s.handleLeave)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.srv = &http.Server{
		Addr:              o.Addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// Start binds the listen address and launches the serve goroutine; Shutdown
// tears it down and waits for it.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.srv.Addr)
	if err != nil {
		return fmt.Errorf("mgmt: listen %q: %w", s.srv.Addr, err)
	}
	s.ln = ln
	//lint:allow detrand operational uptime for /health; never feeds protocol decisions
	s.start = time.Now()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("mgmt: serve", "err", err)
		}
	}()
	s.log.Info("mgmt: listening", "addr", ln.Addr().String())
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ShutdownRequested is closed when a bare POST /leave asks the daemon to
// exit; the run loop selects on it next to its signal context.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// RequestShutdown closes ShutdownRequested. Idempotent.
func (s *Server) RequestShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
}

// Shutdown stops accepting connections, waits for in-flight handlers up to
// the context deadline, then waits for the serve goroutine. Safe to call
// without Start (no-op) and more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ln == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	s.wg.Wait()
	return err
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("mgmt: encode response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeJSON strictly decodes the request body into v: unknown fields are
// rejected so operator typos (e.g. "perid") fail loudly instead of applying
// a partial update. An empty body decodes to the zero value.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("mgmt: bad request body: %w", err)
	}
	return nil
}

// healthResponse is the GET /health body.
type healthResponse struct {
	Status string `json:"status"`
	Info
	Rounds        int64   `json:"rounds"`
	Pending       int     `json:"pending"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:  "ok",
		Info:    s.backend.Info(),
		Rounds:  s.backend.Rounds(),
		Pending: s.backend.Pending(),
		//lint:allow detrand operational uptime for /health; never feeds protocol decisions
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// viewResponse is the GET /view body.
type viewResponse struct {
	N     int        `json:"n"`
	Live  int        `json:"live"`
	Views []NodeView `json:"views"`
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	views := s.backend.Views()
	live := len(views)
	if q := r.URL.Query().Get("id"); q != "" {
		var id int
		if _, err := fmt.Sscanf(q, "%d", &id); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("mgmt: bad id %q", q))
			return
		}
		filtered := views[:0:0]
		for _, v := range views {
			if v.ID == id {
				filtered = append(filtered, v)
			}
		}
		if len(filtered) == 0 {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("mgmt: node %d is not active", id))
			return
		}
		views = filtered
	}
	s.writeJSON(w, http.StatusOK, viewResponse{N: s.backend.Info().N, Live: live, Views: views})
}

func (s *Server) handleGetConfig(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.backend.Config())
}

func (s *Server) handlePostConfig(w http.ResponseWriter, r *http.Request) {
	var upd ConfigUpdate
	if err := decodeJSON(r, &upd); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.backend.Reconfigure(upd); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.log.Info("mgmt: config reloaded",
		"period", deref(upd.Period, "unchanged"), "loss", derefAny(upd.Loss, "unchanged"))
	s.writeJSON(w, http.StatusOK, s.backend.Config())
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.backend.Join(req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.log.Info("mgmt: join", "id", derefAny(req.ID, nil), "seeds", req.Seeds, "addr", req.Addr)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.ID != nil {
		if err := s.backend.Leave(*req.ID); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		s.log.Info("mgmt: leave", "id", *req.ID)
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	// Bare leave: the daemon itself departs. Drain in-flight messages and
	// check invariants while still serving, then hand the run loop the
	// shutdown signal; it owns the final teardown.
	if err := s.backend.Drain(); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.log.Info("mgmt: leave (daemon drain + shutdown requested)")
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	s.RequestShutdown()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := metrics.NewPromWriter(w)
	s.backend.Traffic().WriteProm(p, "sendforget")
	c := s.backend.Counters()
	p.Counter("sendforget_node_ticks_total", "Initiated protocol actions across live nodes.", c.Ticks)
	p.Counter("sendforget_node_sends_total", "Messages emitted by initiate steps.", c.Sends)
	p.Counter("sendforget_node_receives_total", "Messages handled by receive steps.", c.Receives)
	p.Counter("sendforget_node_replies_total", "Replies emitted by request/reply protocols.", c.Replies)
	p.Counter("sendforget_node_duplications_total", "Messages sent with the duplication flag.", c.Duplications)
	p.Counter("sendforget_node_selfloops_total", "Initiated actions that were self-loop transformations.", c.SelfLoops)
	p.Counter("sendforget_node_send_errors_total", "Transport send errors.", c.SendErrors)
	if fc, ok := s.backend.FaultCounters(); ok {
		p.Counter("sendforget_faults_decisions_total", "Fault-layer rulings (one per attempted transmission).", fc.Decisions)
		p.Counter("sendforget_faults_model_drops_total", "Drops by the base loss model.", fc.ModelDrops)
		p.Counter("sendforget_faults_link_drops_total", "Drops by per-link override models.", fc.LinkDrops)
		p.Counter("sendforget_faults_partition_drops_total", "Drops across an active partition.", fc.PartitionDrops)
		p.Counter("sendforget_faults_delayed_total", "Messages assigned a nonzero delivery delay.", fc.Delayed)
		p.Counter("sendforget_faults_partitions_total", "Partition events.", fc.Partitions)
		p.Counter("sendforget_faults_heals_total", "Heal events.", fc.Heals)
	}
	p.Counter("sendforget_rounds_total", "Gossip rounds driven (local) or actions initiated (udp).", int(s.backend.Rounds()))
	p.Gauge("sendforget_pending_messages", "Messages parked in the delay queue.", float64(s.backend.Pending()))
	p.Gauge("sendforget_up", "1 while the management server is serving.", 1)
	if err := p.Err(); err != nil {
		s.log.Error("mgmt: metrics write", "err", err)
	}
}

// deref returns *p or alt when p is nil (log formatting helper).
func deref(p *string, alt string) string {
	if p == nil {
		return alt
	}
	return *p
}

// derefAny returns *p or alt when p is nil.
func derefAny[T any](p *T, alt any) any {
	if p == nil {
		return alt
	}
	return *p
}
