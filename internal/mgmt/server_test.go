package mgmt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/protocol/sendforget"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// newTestLocal boots a managed in-process cluster and its server, returning
// the backend, the substrate, and the server's base URL.
func newTestLocal(t *testing.T, n int, lossRate float64, onPeriod func(time.Duration)) (*Local, runtime.Substrate, *Server, string) {
	t.Helper()
	sub, err := runtime.New(runtime.Config{
		Engine: runtime.EngineCluster,
		N:      n,
		NewCore: func() (protocol.StepCore, error) {
			return sendforget.NewCore(8, 2)
		},
		Loss: lossRate,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sub.Close)
	backend, err := NewLocal(LocalOptions{
		Sub: sub, Protocol: "sf", Engine: "cluster", N: n, S: 8, DL: 2,
		Seed: 42, Period: 250 * time.Millisecond, Loss: lossRate, OnPeriod: onPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Addr: "127.0.0.1:0", Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return backend, sub, srv, "http://" + srv.Addr()
}

// getJSON decodes a GET response body into out, requiring the given status.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// postJSON posts a JSON body, requiring the given status, decoding into out.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s %s = %d, want %d (body %s)", url, buf, resp.StatusCode, wantStatus, b)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// scrapeProm fetches /metrics and parses "name value" sample lines.
func scrapeProm(t *testing.T, base string) map[string]string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		out[name] = value
	}
	return out
}

func TestHealthAndView(t *testing.T) {
	backend, _, _, base := newTestLocal(t, 8, 0, nil)
	var h healthResponse
	getJSON(t, base+"/health", http.StatusOK, &h)
	if h.Status != "ok" || h.Mode != "local" || h.Protocol != "sf" || h.N != 8 {
		t.Errorf("health = %+v", h)
	}
	backend.Tick()
	getJSON(t, base+"/health", http.StatusOK, &h)
	if h.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", h.Rounds)
	}

	var v viewResponse
	getJSON(t, base+"/view", http.StatusOK, &v)
	if v.N != 8 || v.Live != 8 || len(v.Views) != 8 {
		t.Errorf("view = n=%d live=%d len=%d", v.N, v.Live, len(v.Views))
	}
	for i, nv := range v.Views {
		if nv.ID != i {
			t.Errorf("views not ordered by id: %d at %d", nv.ID, i)
		}
		if len(nv.View) == 0 {
			t.Errorf("node %d has empty view", nv.ID)
		}
	}
	getJSON(t, base+"/view?id=3", http.StatusOK, &v)
	if len(v.Views) != 1 || v.Views[0].ID != 3 {
		t.Errorf("filtered view = %+v", v.Views)
	}
	getJSON(t, base+"/view?id=zzz", http.StatusBadRequest, nil)
	getJSON(t, base+"/view?id=99", http.StatusNotFound, nil)
}

func TestJoinLeaveValidation(t *testing.T) {
	_, _, _, base := newTestLocal(t, 8, 0, nil)
	id := func(v int) *int { return &v }
	postJSON(t, base+"/join", JoinRequest{}, http.StatusBadRequest, nil)
	postJSON(t, base+"/join", JoinRequest{ID: id(3)}, http.StatusBadRequest, nil)
	// Self-seeding is the bug class parseSeeds now rejects; the API
	// rejects it too.
	postJSON(t, base+"/join", JoinRequest{ID: id(3), Seeds: []int{3, 4}}, http.StatusBadRequest, nil)
	// Joining an active slot conflicts.
	postJSON(t, base+"/join", JoinRequest{ID: id(3), Seeds: []int{1, 2}}, http.StatusBadRequest, nil)

	postJSON(t, base+"/leave", LeaveRequest{ID: id(99)}, http.StatusBadRequest, nil)
	postJSON(t, base+"/leave", LeaveRequest{ID: id(3)}, http.StatusOK, nil)
	postJSON(t, base+"/leave", LeaveRequest{ID: id(3)}, http.StatusBadRequest, nil) // already gone
	var v viewResponse
	getJSON(t, base+"/view", http.StatusOK, &v)
	if v.Live != 7 {
		t.Errorf("live after leave = %d, want 7", v.Live)
	}
	postJSON(t, base+"/join", JoinRequest{ID: id(3), Seeds: []int{1, 2}}, http.StatusOK, nil)
	getJSON(t, base+"/view", http.StatusOK, &v)
	if v.Live != 8 {
		t.Errorf("live after rejoin = %d, want 8", v.Live)
	}
	// Method matrix: mutating endpoints reject GET.
	getJSON(t, base+"/join", http.StatusMethodNotAllowed, nil)
	getJSON(t, base+"/leave", http.StatusMethodNotAllowed, nil)
}

func TestConfigReload(t *testing.T) {
	var reloaded atomic.Int64
	backend, sub, _, base := newTestLocal(t, 8, 0, func(d time.Duration) {
		reloaded.Store(int64(d))
	})
	var cfg Config
	getJSON(t, base+"/config", http.StatusOK, &cfg)
	if cfg.Period != "250ms" || cfg.Loss != 0 || cfg.S != 8 || cfg.DL != 2 {
		t.Errorf("config = %+v", cfg)
	}
	period := "5ms"
	lossRate := 1.0
	postJSON(t, base+"/config", ConfigUpdate{Period: &period, Loss: &lossRate}, http.StatusOK, &cfg)
	if cfg.Period != "5ms" || cfg.Loss != 1 {
		t.Errorf("config after reload = %+v", cfg)
	}
	if got := time.Duration(reloaded.Load()); got != 5*time.Millisecond {
		t.Errorf("OnPeriod got %v, want 5ms", got)
	}
	if got := sub.Conditions().Rate(); got != 1 {
		t.Errorf("conditions rate = %v, want 1 (live loss reload)", got)
	}
	// Certain loss now provably drops: tick until something is sent (early
	// S&F actions can all be self-loop transformations) and check the
	// ledger.
	for i := 0; i < 100 && backend.Traffic().Sends == 0; i++ {
		backend.Tick()
	}
	tr := backend.Traffic()
	if tr.Sends == 0 || tr.Losses != tr.Sends {
		t.Errorf("traffic under loss=1: %+v, want all sends lost", tr)
	}

	bad := "-5ms"
	postJSON(t, base+"/config", ConfigUpdate{Period: &bad}, http.StatusBadRequest, nil)
	badLoss := 1.5
	postJSON(t, base+"/config", ConfigUpdate{Loss: &badLoss}, http.StatusBadRequest, nil)
	// Unknown fields fail loudly rather than silently applying nothing.
	resp, err := http.Post(base+"/config", "application/json", strings.NewReader(`{"perid":"5ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsMatchTrafficExactly(t *testing.T) {
	backend, sub, _, base := newTestLocal(t, 16, 0.3, nil)
	for i := 0; i < 20; i++ {
		backend.Tick()
	}
	if err := backend.Drain(); err != nil {
		t.Fatal(err)
	}
	got := scrapeProm(t, base)
	tr := sub.Traffic()
	if !tr.Conserved() {
		t.Fatalf("traffic not conserved after drain: %+v", tr)
	}
	want := map[string]int{
		"sendforget_traffic_sends_total":           tr.Sends,
		"sendforget_traffic_losses_total":          tr.Losses,
		"sendforget_traffic_deliveries_total":      tr.Deliveries,
		"sendforget_traffic_dead_letters_total":    tr.DeadLetters,
		"sendforget_traffic_link_losses_total":     tr.LinkLosses,
		"sendforget_traffic_partition_drops_total": tr.PartitionDrops,
		"sendforget_traffic_delayed_total":         tr.Delayed,
	}
	fc, ok := backend.FaultCounters()
	if !ok {
		t.Fatal("local backend reports no fault counters")
	}
	want["sendforget_faults_decisions_total"] = fc.Decisions
	want["sendforget_faults_model_drops_total"] = fc.ModelDrops
	c := backend.Counters()
	want["sendforget_node_ticks_total"] = c.Ticks
	want["sendforget_node_sends_total"] = c.Sends
	want["sendforget_node_receives_total"] = c.Receives
	want["sendforget_node_selfloops_total"] = c.SelfLoops
	for name, v := range want {
		if got[name] != fmt.Sprintf("%d", v) {
			t.Errorf("%s = %q, want %d", name, got[name], v)
		}
	}
	if tr.Sends == 0 || tr.Losses == 0 {
		t.Errorf("want nonzero sends and losses at rate 0.3, got %+v", tr)
	}
	if got["sendforget_up"] != "1" {
		t.Errorf("sendforget_up = %q", got["sendforget_up"])
	}
}

func TestBareLeaveDrainsAndRequestsShutdown(t *testing.T) {
	_, sub, srv, base := newTestLocal(t, 8, 0.5, nil)
	backendTickSome(srv, 5)
	postJSON(t, base+"/leave", LeaveRequest{}, http.StatusOK, nil)
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(5 * time.Second):
		t.Fatal("bare /leave did not request shutdown")
	}
	if tr := sub.Traffic(); !tr.Conserved() {
		t.Errorf("traffic not conserved after bare-leave drain: %+v", tr)
	}
	// Idempotent: a second request is fine.
	srv.RequestShutdown()
}

// backendTickSome ticks the server's backend when it is a *Local.
func backendTickSome(srv *Server, n int) {
	if l, ok := srv.backend.(*Local); ok {
		for i := 0; i < n; i++ {
			l.Tick()
		}
	}
}

func TestUDPNodeBackend(t *testing.T) {
	var node atomic.Pointer[runtime.Node]
	ep, err := transport.NewEndpoint("127.0.0.1:0", func(m protocol.Message) {
		if n := node.Load(); n != nil {
			n.HandleMessage(m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	core, err := sendforget.NewCore(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runtime.NewNode(runtime.NodeConfig{
		ID: 0, Core: core, Period: time.Hour, Seed: 7,
	}, []peer.ID{1, 2}, ep)
	if err != nil {
		t.Fatal(err)
	}
	node.Store(n)
	n.Start()
	defer n.Stop()

	backend, err := NewUDPNode(UDPNodeOptions{
		Node: n, Endpoint: ep, Protocol: "sf", S: 8, DL: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Addr: "127.0.0.1:0", Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	base := "http://" + srv.Addr()

	var h healthResponse
	getJSON(t, base+"/health", http.StatusOK, &h)
	if h.Mode != "udp" || h.N != 1 {
		t.Errorf("health = %+v", h)
	}
	var v viewResponse
	getJSON(t, base+"/view", http.StatusOK, &v)
	if len(v.Views) != 1 || v.Views[0].ID != 0 || len(v.Views[0].View) != 2 {
		t.Errorf("view = %+v", v.Views)
	}

	id := func(v int) *int { return &v }
	// Join = directory introduction.
	postJSON(t, base+"/join", JoinRequest{ID: id(5), Addr: "127.0.0.1:19996"}, http.StatusOK, nil)
	if got := ep.KnownPeers(); got != 1 {
		t.Errorf("known peers after join = %d, want 1", got)
	}
	postJSON(t, base+"/join", JoinRequest{ID: id(0), Addr: "127.0.0.1:19996"}, http.StatusBadRequest, nil) // self
	postJSON(t, base+"/join", JoinRequest{ID: id(6)}, http.StatusBadRequest, nil)                          // no addr
	// A UDP node cannot remove peers; bare leave drains + shuts down.
	postJSON(t, base+"/leave", LeaveRequest{ID: id(5)}, http.StatusBadRequest, nil)

	// Live period reload through the API.
	period := "1ms"
	var cfg Config
	postJSON(t, base+"/config", ConfigUpdate{Period: &period}, http.StatusOK, &cfg)
	if cfg.Period != "1ms" {
		t.Errorf("period after reload = %q", cfg.Period)
	}
	deadline := time.After(5 * time.Second)
	for n.Counters().Ticks == 0 {
		select {
		case <-deadline:
			t.Fatal("no tick after period reload")
		case <-time.After(2 * time.Millisecond):
		}
	}
	lossRate := 0.5
	postJSON(t, base+"/config", ConfigUpdate{Loss: &lossRate}, http.StatusBadRequest, nil)

	// Metrics expose the endpoint ledger. The node is live-ticking, so
	// bracket the scrape with two snapshots instead of expecting an exact
	// standstill value (exactness is asserted in quiescent local mode).
	before := ep.Counters()
	got := scrapeProm(t, base)
	after := ep.Counters()
	var sends int
	if _, err := fmt.Sscanf(got["sendforget_traffic_sends_total"], "%d", &sends); err != nil {
		t.Fatalf("sends sample %q: %v", got["sendforget_traffic_sends_total"], err)
	}
	if sends < before.Sent || sends > after.Sent {
		t.Errorf("sends = %d, want within [%d, %d]", sends, before.Sent, after.Sent)
	}
	if _, hasFaults := got["sendforget_faults_decisions_total"]; hasFaults {
		t.Error("udp backend exposes fault counters")
	}

	postJSON(t, base+"/leave", LeaveRequest{}, http.StatusOK, nil)
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(5 * time.Second):
		t.Fatal("bare /leave did not request shutdown")
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := New(Options{Addr: "127.0.0.1:0"}); err == nil {
		t.Error("accepted nil backend")
	}
	if _, err := NewLocal(LocalOptions{}); err == nil {
		t.Error("accepted nil substrate")
	}
	if _, err := NewUDPNode(UDPNodeOptions{}); err == nil {
		t.Error("accepted nil node")
	}
	b := &Local{}
	if _, err := New(Options{Backend: b}); err == nil {
		t.Error("accepted empty address")
	}
	// Shutdown before Start is a no-op.
	srv, err := New(Options{Addr: "127.0.0.1:0", Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Error(err)
	}
}
