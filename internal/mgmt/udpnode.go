package mgmt

import (
	"fmt"

	"sendforget/internal/faults"
	"sendforget/internal/metrics"
	"sendforget/internal/peer"
	"sendforget/internal/runtime"
	"sendforget/internal/transport"
)

// UDPNodeOptions parameterizes a UDPNode backend over one real node.
type UDPNodeOptions struct {
	// Node is the running gossip node; Endpoint its UDP transport.
	Node     *runtime.Node
	Endpoint *transport.Endpoint
	// Protocol, S, DL, Seed describe the running config.
	Protocol string
	S, DL    int
	Seed     int64
}

// UDPNode adapts a single real node to the management Backend. Node and
// Endpoint are internally synchronized, so the adapter needs no lock of its
// own.
type UDPNode struct {
	opts UDPNodeOptions
}

var _ Backend = (*UDPNode)(nil)

// NewUDPNode builds the backend.
func NewUDPNode(opts UDPNodeOptions) (*UDPNode, error) {
	if opts.Node == nil || opts.Endpoint == nil {
		return nil, fmt.Errorf("mgmt: nil node or endpoint")
	}
	return &UDPNode{opts: opts}, nil
}

// Info identifies the running configuration.
func (u *UDPNode) Info() Info {
	return Info{Mode: "udp", Protocol: u.opts.Protocol, N: 1}
}

// Rounds returns the node's initiated-action count — its logical clock.
func (u *UDPNode) Rounds() int64 {
	return int64(u.opts.Node.Counters().Ticks)
}

// Views returns the node's single view.
func (u *UDPNode) Views() []NodeView {
	ids := u.opts.Node.ViewSnapshot().IDs()
	entries := make([]int, len(ids))
	for i, e := range ids {
		entries[i] = int(e)
	}
	return []NodeView{{ID: int(u.opts.Node.ID()), View: entries}}
}

// Counters returns the node-level protocol ledger.
func (u *UDPNode) Counters() runtime.NodeCounters {
	return u.opts.Node.Counters()
}

// Traffic maps the endpoint counters into the substrate-neutral shape. A
// real network reports no Losses: a datagram the network dropped is simply
// one this node never hears about, so from one endpoint's vantage the
// ledger covers sends, local deliveries, and unroutable destinations.
func (u *UDPNode) Traffic() metrics.Traffic {
	c := u.opts.Endpoint.Counters()
	return metrics.Traffic{
		Sends:       c.Sent,
		Losses:      c.Lost,
		Deliveries:  c.Delivered,
		DeadLetters: c.NoRoute,
	}
}

// FaultCounters reports no fault layer: the real network injects its own
// loss.
func (u *UDPNode) FaultCounters() (faults.Counters, bool) {
	return faults.Counters{}, false
}

// Pending is always zero: UDP has no delay queue on the sender.
func (u *UDPNode) Pending() int { return 0 }

// Join adds a peer to the transport directory — the bootstrap introduction;
// address learning spreads the rest.
func (u *UDPNode) Join(req JoinRequest) error {
	if req.ID == nil || req.Addr == "" {
		return fmt.Errorf("mgmt: udp join needs an id and an addr (id=host:port directory entry)")
	}
	if *req.ID == int(u.opts.Node.ID()) {
		return fmt.Errorf("mgmt: node %d cannot add itself as a peer", *req.ID)
	}
	return u.opts.Endpoint.AddPeer(peer.ID(*req.ID), req.Addr)
}

// Leave rejects member removal: a UDP node has no authority over its peers
// — a leaver just stops participating. Draining this node is POST /leave
// with no id.
func (u *UDPNode) Leave(id int) error {
	return fmt.Errorf("mgmt: a udp node cannot remove peer %d: leavers just stop participating (drain this node with a bare /leave)", id)
}

// Drain checks the node's view invariant; there is no local delay queue to
// empty.
func (u *UDPNode) Drain() error {
	return u.opts.Node.CheckInvariants()
}

// Config returns the current configuration.
func (u *UDPNode) Config() Config {
	return Config{
		Info: u.Info(),
		S:    u.opts.S, DL: u.opts.DL, Seed: u.opts.Seed,
		Period: u.opts.Node.Period().String(),
	}
}

// Reconfigure retunes the gossip period live. Loss is rejected: the real
// network's loss rate is measured, not configured.
func (u *UDPNode) Reconfigure(upd ConfigUpdate) error {
	if upd.Loss != nil {
		return fmt.Errorf("mgmt: loss model applies to -local mode only (a real network's loss is not configurable)")
	}
	if upd.Period == nil {
		return nil
	}
	d, err := parsePeriod(*upd.Period)
	if err != nil {
		return err
	}
	return u.opts.Node.SetPeriod(d)
}
