// Package peer defines node identifiers shared by every subsystem.
//
// The paper models ids abstractly ("for example, IP addresses and ports").
// In the simulator and the analysis code an id is a dense small integer so
// that views, graphs, and histograms can be indexed directly; the UDP
// transport (internal/transport) maps ids to real addresses.
package peer

import (
	"fmt"
	"sort"
)

// ID identifies a node. IDs handed to the simulator are dense integers in
// [0, n). The zero value is a valid id; the sentinel Nil marks an empty view
// entry (the paper's bottom symbol).
type ID int32

// Nil is the empty view entry marker.
const Nil ID = -1

// IsNil reports whether the id is the empty-entry sentinel.
func (id ID) IsNil() bool { return id == Nil }

// String renders the id; Nil renders as the bottom symbol used in the paper.
func (id ID) String() string {
	if id == Nil {
		return "⊥"
	}
	return fmt.Sprintf("n%d", int32(id))
}

// Range returns the ids 0..n-1. It is a convenience for experiment setup.
func Range(n int) []ID {
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(i)
	}
	return ids
}

// Sort sorts ids ascending in place.
func Sort(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Set is a set of node ids.
type Set map[ID]struct{}

// NewSet builds a set from ids.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set.
func (s Set) Add(id ID) { s[id] = struct{}{} }

// Remove deletes id from the set.
func (s Set) Remove(id ID) { delete(s, id) }

// Has reports membership.
func (s Set) Has(id ID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Slice returns the members in ascending order.
func (s Set) Slice() []ID {
	out := make([]ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	Sort(out)
	return out
}
