package peer

import "testing"

func TestIDString(t *testing.T) {
	tests := []struct {
		name string
		id   ID
		want string
	}{
		{name: "nil renders bottom", id: Nil, want: "⊥"},
		{name: "zero", id: 0, want: "n0"},
		{name: "positive", id: 42, want: "n42"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.String(); got != tt.want {
				t.Errorf("ID(%d).String() = %q, want %q", int32(tt.id), got, tt.want)
			}
		})
	}
}

func TestIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false, want true")
	}
	if ID(0).IsNil() {
		t.Error("ID(0).IsNil() = true, want false")
	}
	if ID(7).IsNil() {
		t.Error("ID(7).IsNil() = true, want false")
	}
}

func TestRange(t *testing.T) {
	ids := Range(4)
	if len(ids) != 4 {
		t.Fatalf("len(Range(4)) = %d, want 4", len(ids))
	}
	for i, id := range ids {
		if id != ID(i) {
			t.Errorf("Range(4)[%d] = %v, want %v", i, id, ID(i))
		}
	}
	if got := Range(0); len(got) != 0 {
		t.Errorf("Range(0) = %v, want empty", got)
	}
}

func TestSort(t *testing.T) {
	ids := []ID{5, 1, 3, 1, 0}
	Sort(ids)
	want := []ID{0, 1, 1, 3, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Sort = %v, want %v", ids, want)
		}
	}
}

func TestSet(t *testing.T) {
	s := NewSet(3, 1, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
	if !s.Has(1) || !s.Has(3) {
		t.Error("set missing inserted members")
	}
	if s.Has(2) {
		t.Error("Has(2) = true for absent member")
	}
	s.Add(2)
	if !s.Has(2) {
		t.Error("Add(2) did not insert")
	}
	s.Remove(3)
	if s.Has(3) {
		t.Error("Remove(3) did not delete")
	}
	got := s.Slice()
	want := []ID{1, 2}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v (sorted)", got, want)
		}
	}
}
