package protocol

import (
	"sendforget/internal/peer"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// This file defines the allocation-free message path used by batched drivers
// (the sharded cluster of internal/runtime). The classic StepCore methods
// return freshly allocated []Outgoing and []peer.ID values — fine at the
// n=500 scale the concurrent runtime was built for, but at 10^5..10^6 nodes
// per tick the allocator dominates the round. The batch path replaces the
// per-message allocations with two flat, reusable buffers per shard: message
// headers (FlatMsg) and an id arena they index into.

// FlatMsg is a compact message header. Messages of the dominant two-id shape
// (every Figure 5.1 gossip message) carry their ids inline in IDs, so the
// hot path never touches the arena; longer payloads live in the owning
// Outbox's arena at [IDOff, IDOff+IDLen). Headers stay valid across arena
// growth because they hold offsets, not slices.
type FlatMsg struct {
	To, From     peer.ID
	IDs          [2]peer.ID // inline storage when IDLen <= 2
	IDOff, IDLen int32
	Kind         Kind
	Dup          bool
}

// Outbox accumulates outgoing messages with no per-message allocation in the
// steady state: both backing slices retain their capacity across Reset, so
// once a driver has warmed up, Append never touches the allocator. An Outbox
// belongs to one shard (or one driver) at a time; it is not safe for
// concurrent use.
type Outbox struct {
	Msgs []FlatMsg
	IDs  []peer.ID // the id arena Msgs index into
}

// Reset forgets the buffered messages, keeping the capacity.
func (o *Outbox) Reset() {
	o.Msgs = o.Msgs[:0]
	o.IDs = o.IDs[:0]
}

// Len returns the number of buffered messages.
func (o *Outbox) Len() int { return len(o.Msgs) }

// Append buffers one message. Up to two ids are stored inline in the
// header; longer payloads are copied into the arena, so callers may pass
// views into their own (or another outbox's) storage either way.
//
//vet:hotpath
func (o *Outbox) Append(to, from peer.ID, kind Kind, dup bool, ids ...peer.ID) {
	m := FlatMsg{To: to, From: from, IDLen: int32(len(ids)), Kind: kind, Dup: dup}
	if len(ids) <= 2 {
		copy(m.IDs[:], ids)
	} else {
		m.IDOff = int32(len(o.IDs))
		o.IDs = append(o.IDs, ids...)
	}
	o.Msgs = append(o.Msgs, m)
}

// Append2 buffers one two-id message — the shape every gossip message of
// the Figure 5.1 protocol family has. It is Append specialized to fixed
// arity: one header store, no variadic slice, no arena traffic.
//
//vet:hotpath
func (o *Outbox) Append2(to, from peer.ID, kind Kind, dup bool, id0, id1 peer.ID) {
	o.Msgs = append(o.Msgs, FlatMsg{
		To: to, From: from,
		IDs:   [2]peer.ID{id0, id1},
		IDLen: 2,
		Kind:  kind, Dup: dup,
	})
}

// Append1 buffers one single-id message — the request/reply shape of the
// flipper baseline and of degenerate shuffle offers. Like Append2 it is
// Append specialized to fixed arity: one header store, no variadic slice,
// no arena traffic.
//
//vet:hotpath
func (o *Outbox) Append1(to, from peer.ID, kind Kind, dup bool, id0 peer.ID) {
	o.Msgs = append(o.Msgs, FlatMsg{
		To: to, From: from,
		IDs:   [2]peer.ID{id0, 0},
		IDLen: 1,
		Kind:  kind, Dup: dup,
	})
}

// MsgIDs returns message m's ids. The slice aliases the header (inline ids)
// or the arena: it is valid until the next Reset and must not be retained
// past it. m must point into o.Msgs.
//
//vet:hotpath
func (o *Outbox) MsgIDs(m *FlatMsg) []peer.ID {
	if m.IDLen <= 2 {
		return m.IDs[:m.IDLen]
	}
	return o.IDs[m.IDOff : m.IDOff+m.IDLen]
}

// Packet is a delivered message as the batch path presents it to a receive
// step. IDs aliases driver-owned buffers: it is valid only for the duration
// of the call and must not be retained or mutated.
type Packet struct {
	Kind Kind
	From peer.ID
	IDs  []peer.ID
	Dup  bool
}

// Message converts the packet to the classic Message shape. The IDs slice is
// shared, not copied: the same aliasing rules apply.
func (p Packet) Message() Message {
	return Message{Kind: p.Kind, From: p.From, IDs: p.IDs, Dup: p.Dup}
}

// BatchStepCore is an optional StepCore extension for batched drivers. A
// core that implements it gives the sharded cluster an allocation-free tick:
// initiate and receive steps write outgoing messages straight into a
// driver-owned Outbox instead of returning freshly allocated slices. The
// methods must be behaviorally identical to Initiate/Receive in protocol
// terms — same view mutations, same message content — though the RNG draw
// mapping may differ (the substrates derive distinct streams anyway), and
// the core's internal diagnostics (counters, dependence latches) are NOT
// maintained: batched drivers account per shard through the returned
// counts, so the hot path never dirties the core's memory.
//
// Drivers fall back to the classic methods for cores that do not implement
// the interface, at the cost of per-message allocations.
type BatchStepCore interface {
	StepCore
	// InitiateBatch runs the initiator step, appending any outgoing
	// messages to out. It reports how many messages it appended and how
	// many of those were duplicative sends, so the driver's per-shard
	// accounting needs no second pass over the outbox; ok is false for a
	// self-loop transformation (msgs and dups are then zero).
	InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *Outbox) (msgs, dups int, ok bool)
	// ReceiveBatch runs the receive step for pkt, appending any reply to
	// out. It returns whether a reply was emitted.
	ReceiveBatch(lv *view.View, u peer.ID, pkt Packet, r *rng.RNG, out *Outbox) bool
}
