package protocol

import (
	"sendforget/internal/peer"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Outgoing couples a protocol message with its destination.
type Outgoing struct {
	To  peer.ID
	Msg Message
}

// StepCore is the per-node protocol logic: the nonatomic step functions of
// Section 4.1 expressed over a single local view, with no knowledge of the
// rest of the system. It is the layer Proposition 5.2 is about — the same
// steps behave equivalently whether driven by the serial scheduler of
// internal/engine or by the concurrent fire-and-forget nodes of
// internal/runtime, so both substrates execute exactly this code.
//
// A StepCore instance belongs to one node: implementations may keep
// per-node auxiliary state (e.g. the sfopt graveyard) and counters, and are
// not safe for concurrent use. Drivers serialize calls per instance; the
// concurrent runtime gives every node its own instance.
type StepCore interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// ViewSize returns the number of slots s of the local view the core
	// operates on.
	ViewSize() int
	// SeedView builds the initial local view from the bootstrap seed ids
	// (the paper's join rule: "a joining node has to know at least dL ids
	// of live nodes"). It returns an error when the seeds are insufficient
	// for the protocol's invariants.
	SeedView(seeds []peer.ID) (*view.View, error)
	// Initiate runs the initiator step at node u over its local view lv.
	// It returns the messages to transmit, or ok = false when the action is
	// a self-loop transformation (no message, no view change).
	Initiate(lv *view.View, u peer.ID, r *rng.RNG) (msgs []Outgoing, ok bool)
	// Receive runs the receive step at node u for a delivered message. It
	// returns a reply and ok = true for bidirectional protocols; the reply
	// is again subject to loss. Malformed messages are ignored.
	Receive(lv *view.View, u peer.ID, msg Message, r *rng.RNG) (reply Outgoing, ok bool)
	// CheckView verifies the protocol's per-node view invariant (e.g.
	// Observation 5.1 for S&F: outdegree even and within [dL, s]).
	CheckView(lv *view.View) error
}

// CoreFactory builds a fresh, independent StepCore. The concurrent runtime
// calls it once per node so that per-node state and RNG-free bookkeeping
// never cross goroutines.
type CoreFactory func() (StepCore, error)
