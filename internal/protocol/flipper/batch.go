package flipper

import (
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

var _ protocol.BatchStepCore = (*Core)(nil)

// InitiateBatch is Initiate on the allocation-free batch path: the same
// flip offer with the pair selection through the fused single-draw
// RandomPairFast and the single-id request written straight into the
// driver's outbox. Per the BatchStepCore contract the core's diagnostic
// counters are not maintained here.
//
//vet:hotpath
func (c *Core) InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *protocol.Outbox) (msgs, dups int, ok bool) {
	i, j := lv.RandomPairFast(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() || v == w {
		return 0, 0, false
	}
	lv.Clear(j)
	out.Append1(v, u, protocol.KindRequest, false, w)
	return 1, 0, true
}

// ReceiveBatch is Receive on the batch path. A request is the pointer flip
// fused into one view op — detach a uniform occupied entry z, adopt w in a
// uniform empty slot — with the reply appended to the outbox; a reply just
// stores the returned id.
//
//vet:hotpath
func (c *Core) ReceiveBatch(lv *view.View, u peer.ID, pkt protocol.Packet, r *rng.RNG, out *protocol.Outbox) bool {
	switch pkt.Kind {
	case protocol.KindRequest:
		if len(pkt.IDs) != 1 {
			return false
		}
		z, ok := lv.ReplaceRandomOccupied(r, pkt.IDs[0])
		if !ok {
			// Degenerate: nothing to swap; adopt w if possible (an empty
			// view always has room).
			c.storeBatch(lv, pkt.IDs[0], r)
			return false
		}
		out.Append1(pkt.From, u, protocol.KindReply, false, z)
		return true
	case protocol.KindReply:
		if len(pkt.IDs) != 1 {
			return false
		}
		c.storeBatch(lv, pkt.IDs[0], r)
	}
	return false
}

// storeBatch is store on the batch path: a fused uniform empty-slot pick,
// dropping the id silently when the view is full (the scalar path counts
// the drop; batch diagnostics are per the contract not maintained).
func (c *Core) storeBatch(lv *view.View, id peer.ID, r *rng.RNG) {
	if i, ok := lv.RandomEmptySlot(r); ok {
		lv.Set(i, id)
	}
}
