package flipper

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Core is the per-node 1-flipper step core implementing protocol.StepCore:
// one side of the atomic edge exchange expressed over a single local view.
// The sequential Protocol adapter shares one Core across all nodes; the
// concurrent runtime builds one per node. Not safe for concurrent use.
type Core struct {
	s        int
	counters Counters
}

var _ protocol.StepCore = (*Core)(nil)

// NewCore builds a flipper step core with view size s.
func NewCore(s int) (*Core, error) {
	if s < 2 {
		return nil, fmt.Errorf("flipper: view size must be >= 2, got %d", s)
	}
	return &Core{s: s}, nil
}

// Name returns "flipper".
func (c *Core) Name() string { return "flipper" }

// ViewSize returns s.
func (c *Core) ViewSize() int { return c.s }

// Counters returns a copy of the core's event counters.
func (c *Core) Counters() Counters { return c.counters }

// SeedView fills a fresh view with the seed ids (at least one).
func (c *Core) SeedView(seeds []peer.ID) (*view.View, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("flipper: need at least one seed")
	}
	v := view.New(c.s)
	for i, id := range seeds {
		if i >= c.s {
			break
		}
		v.Set(i, id)
	}
	return v, nil
}

// Initiate starts a flip: u removes its payload edge (u, w) and offers it
// to its out-neighbor v. The edge (u, v) itself stays put — it is the rail
// the exchange travels on.
func (c *Core) Initiate(lv *view.View, u peer.ID, r *rng.RNG) ([]protocol.Outgoing, bool) {
	c.counters.Initiations++
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() || v == w {
		// Parallel-edge selections make degenerate flips; treat them as
		// self-loops like empty selections.
		c.counters.SelfLoops++
		return nil, false
	}
	lv.Clear(j) // the payload edge (u, w) leaves u
	c.counters.Requests++
	return []protocol.Outgoing{{To: v, Msg: protocol.Message{
		Kind: protocol.KindRequest,
		From: u,
		IDs:  []peer.ID{w},
	}}}, true
}

// Receive handles flip requests (store w, detach one own edge z, reply) and
// replies (store z). Other kinds and malformed arities are ignored.
func (c *Core) Receive(lv *view.View, u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Outgoing, bool) {
	switch msg.Kind {
	case protocol.KindRequest:
		if len(msg.IDs) != 1 {
			return protocol.Outgoing{}, false
		}
		// Detach a random own edge z to send back, then adopt w in its
		// place — outdegree unchanged.
		occupied := lv.OccupiedSlots()
		if len(occupied) == 0 {
			// Degenerate: nothing to swap; adopt w if possible.
			c.store(lv, msg.IDs[0], r)
			return protocol.Outgoing{}, false
		}
		slot := occupied[r.Intn(len(occupied))]
		z := lv.Slot(slot)
		lv.Clear(slot)
		c.store(lv, msg.IDs[0], r)
		c.counters.Replies++
		return protocol.Outgoing{To: msg.From, Msg: protocol.Message{
			Kind: protocol.KindReply,
			From: u,
			IDs:  []peer.ID{z},
		}}, true
	case protocol.KindReply:
		if len(msg.IDs) != 1 {
			return protocol.Outgoing{}, false
		}
		c.store(lv, msg.IDs[0], r)
		return protocol.Outgoing{}, false
	default:
		return protocol.Outgoing{}, false
	}
}

// store places id into a uniformly chosen empty slot, dropping it (counted)
// when the view is full.
func (c *Core) store(lv *view.View, id peer.ID, r *rng.RNG) {
	slots, ok := lv.RandomEmptySlots(r, 1)
	if !ok {
		c.counters.Dropped++
		return
	}
	lv.Set(slots[0], id)
}

// CheckView verifies internal view consistency; the flipper keeps no parity
// or floor invariant (under loss its edge population only decays).
func (c *Core) CheckView(lv *view.View) error {
	return lv.CheckInvariants()
}
