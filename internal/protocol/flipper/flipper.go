// Package flipper implements the 1-flipper baseline of Mahlmann and
// Schindelhauer [26], the second delete-on-send family the paper's Section
// 3.1 surveys (alongside shuffle). A flip is an atomic edge exchange: node
// u with edge (u, w) contacts its out-neighbor v holding an edge (v, z) and
// the pair swap endpoints, yielding (u, z) and (v, w). On a lossless
// network flips preserve every node's outdegree exactly — the protocol
// performs random transformations of a regular digraph. Under loss, the
// two-message exchange breaks: a dropped request or reply permanently
// destroys edges, the defect the paper's S&F exists to fix.
//
// The implementation expresses a flip as a request/reply pair in the shared
// protocol.Message vocabulary so the standard engine can drive it and lose
// its messages.
package flipper

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the flipper baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size.
	S int
	// Degree is the uniform outdegree of the initial regular topology
	// (defaults to S/2, at least 2).
	Degree int
}

// Counters tallies flipper events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Requests    int
	Replies     int
	Dropped     int // ids discarded because no empty slot was left
}

// Protocol is the flipper baseline state. It implements protocol.Protocol
// and protocol.Churner.
type Protocol struct {
	cfg      Config
	views    []*view.View
	active   []bool
	counters Counters
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the circulant d-regular topology.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 3 {
		return nil, fmt.Errorf("flipper: need at least 3 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("flipper: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.Degree == 0 {
		cfg.Degree = cfg.S / 2
		if cfg.Degree < 2 {
			cfg.Degree = 2
		}
	}
	if cfg.Degree > cfg.S || cfg.Degree >= cfg.N {
		return nil, fmt.Errorf("flipper: degree %d must fit view %d and n %d", cfg.Degree, cfg.S, cfg.N)
	}
	p := &Protocol{
		cfg:    cfg,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.Degree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "flipper".
func (p *Protocol) Name() string { return "flipper" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate starts a flip: u removes its payload edge (u, w) and offers it
// to its out-neighbor v. The edge (u, v) itself stays put — it is the rail
// the exchange travels on.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	p.counters.Initiations++
	lv := p.views[u]
	if lv == nil {
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() || v == w {
		// Parallel-edge selections make degenerate flips; treat them as
		// self-loops like empty selections.
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	lv.Clear(j) // the payload edge (u, w) leaves u
	p.counters.Requests++
	return v, protocol.Message{
		Kind: protocol.KindRequest,
		From: u,
		IDs:  []peer.ID{w},
	}, true
}

// Deliver handles flip requests (store w, detach one own edge z, reply) and
// replies (store z).
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	switch msg.Kind {
	case protocol.KindRequest:
		if len(msg.IDs) != 1 {
			return protocol.Message{}, 0, false
		}
		// Detach a random own edge z to send back, then adopt w in its
		// place — outdegree unchanged.
		occupied := lv.OccupiedSlots()
		if len(occupied) == 0 {
			// Degenerate: nothing to swap; adopt w if possible.
			p.store(lv, msg.IDs[0], r)
			return protocol.Message{}, 0, false
		}
		slot := occupied[r.Intn(len(occupied))]
		z := lv.Slot(slot)
		lv.Clear(slot)
		p.store(lv, msg.IDs[0], r)
		p.counters.Replies++
		return protocol.Message{
			Kind: protocol.KindReply,
			From: u,
			IDs:  []peer.ID{z},
		}, msg.From, true
	case protocol.KindReply:
		if len(msg.IDs) != 1 {
			return protocol.Message{}, 0, false
		}
		p.store(lv, msg.IDs[0], r)
		return protocol.Message{}, 0, false
	default:
		return protocol.Message{}, 0, false
	}
}

// store places id into a uniformly chosen empty slot, dropping it (counted)
// when the view is full.
func (p *Protocol) store(lv *view.View, id peer.ID, r *rng.RNG) {
	slots, ok := lv.RandomEmptySlots(r, 1)
	if !ok {
		p.counters.Dropped++
		return
	}
	lv.Set(slots[0], id)
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("flipper: node %v is already active", u)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("flipper: join of %v needs seeds", u)
	}
	v := view.New(p.cfg.S)
	for i, id := range seeds {
		if i >= p.cfg.S {
			break
		}
		v.Set(i, id)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
