// Package flipper implements the 1-flipper baseline of Mahlmann and
// Schindelhauer [26], the second delete-on-send family the paper's Section
// 3.1 surveys (alongside shuffle). A flip is an atomic edge exchange: node
// u with edge (u, w) contacts its out-neighbor v holding an edge (v, z) and
// the pair swap endpoints, yielding (u, z) and (v, w). On a lossless
// network flips preserve every node's outdegree exactly — the protocol
// performs random transformations of a regular digraph. Under loss, the
// two-message exchange breaks: a dropped request or reply permanently
// destroys edges, the defect the paper's S&F exists to fix.
//
// The implementation expresses a flip as a request/reply pair in the shared
// protocol.Message vocabulary so the standard engine can drive it and lose
// its messages.
package flipper

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the flipper baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size.
	S int
	// Degree is the uniform outdegree of the initial regular topology
	// (defaults to S/2, at least 2).
	Degree int
}

// Counters tallies flipper events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Requests    int
	Replies     int
	Dropped     int // ids discarded because no empty slot was left
}

// Protocol is the flipper baseline state. It implements protocol.Protocol
// and protocol.Churner by delegating every step to one shared Core — the
// same step core the concurrent runtime drives.
type Protocol struct {
	cfg    Config
	core   *Core
	views  []*view.View
	active []bool
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the circulant d-regular topology.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 3 {
		return nil, fmt.Errorf("flipper: need at least 3 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("flipper: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.Degree == 0 {
		cfg.Degree = cfg.S / 2
		if cfg.Degree < 2 {
			cfg.Degree = 2
		}
	}
	if cfg.Degree > cfg.S || cfg.Degree >= cfg.N {
		return nil, fmt.Errorf("flipper: degree %d must fit view %d and n %d", cfg.Degree, cfg.S, cfg.N)
	}
	core, err := NewCore(cfg.S)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		core:   core,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.Degree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "flipper".
func (p *Protocol) Name() string { return "flipper" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.core.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate starts a flip by delegating to the shared step core: u removes
// its payload edge (u, w) and offers it to its out-neighbor v.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	lv := p.views[u]
	if lv == nil {
		p.core.counters.Initiations++
		p.core.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	msgs, ok := p.core.Initiate(lv, u, r)
	if !ok {
		return 0, protocol.Message{}, false
	}
	return msgs[0].To, msgs[0].Msg, true
}

// Deliver handles flip requests and replies by delegating to the shared
// step core.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	reply, ok := p.core.Receive(lv, u, msg, r)
	if !ok {
		return protocol.Message{}, 0, false
	}
	return reply.Msg, reply.To, true
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("flipper: node %v is already active", u)
	}
	v, err := p.core.SeedView(seeds)
	if err != nil {
		return fmt.Errorf("flipper: join of %v: %w", u, err)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
