package flipper

import (
	"testing"

	"sendforget/internal/engine"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 2, S: 4}); err == nil {
		t.Error("accepted n=2")
	}
	if _, err := New(Config{N: 10, S: 1}); err == nil {
		t.Error("accepted s=1")
	}
	if _, err := New(Config{N: 10, S: 4, Degree: 5}); err == nil {
		t.Error("accepted degree > s")
	}
	if _, err := New(Config{N: 3, S: 8, Degree: 3}); err == nil {
		t.Error("accepted degree >= n")
	}
}

func driveLossless(t *testing.T, p *Protocol, rounds int, seed int64) *engine.Engine {
	t.Helper()
	e, err := engine.New(p, loss.None{}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds)
	return e
}

func TestFlipsPreserveRegularityWithoutLoss(t *testing.T) {
	// The flipper's defining property: on a lossless network every node's
	// outdegree is invariant (flips are degree-preserving edge exchanges).
	p := mustNew(t, Config{N: 40, S: 10, Degree: 4})
	e := driveLossless(t, p, 300, 1)
	g := e.Snapshot()
	for u := 0; u < 40; u++ {
		if d := g.Outdegree(peer.ID(u)); d != 4 {
			t.Errorf("node %d outdegree = %d, want invariant 4", u, d)
		}
	}
	if p.Counters().Replies == 0 {
		t.Fatal("no flips completed")
	}
	if !g.WeaklyConnected() {
		t.Error("lossless flipper disconnected the graph")
	}
}

func TestFlipsMixTheGraph(t *testing.T) {
	// After many flips the circulant structure must be gone: some node
	// holds an id outside its original window.
	p := mustNew(t, Config{N: 40, S: 10, Degree: 4})
	driveLossless(t, p, 300, 2)
	mixed := false
	for u := 0; u < 40 && !mixed; u++ {
		for _, id := range p.View(peer.ID(u)).IDs() {
			diff := (int(id) - u + 40) % 40
			if diff > 4 {
				mixed = true
				break
			}
		}
	}
	if !mixed {
		t.Error("graph still circulant after 300 rounds of flips")
	}
}

func TestEdgesDecayUnderLoss(t *testing.T) {
	// The Section 3.1 claim, same as shuffle: delete-on-send dies under
	// loss. A lost request destroys the payload edge; a lost reply
	// destroys the detached return edge.
	p := mustNew(t, Config{N: 60, S: 10, Degree: 6})
	e, err := engine.New(p, loss.MustUniform(0.2), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Snapshot().NumEdges()
	e.Run(400)
	after := e.Snapshot().NumEdges()
	if after > before/2 {
		t.Errorf("edge population %d -> %d; expected heavy decay under 20%% loss", before, after)
	}
}

func TestDegenerateSelections(t *testing.T) {
	// Views with parallel edges yield v == w selections, which must be
	// self-loops rather than degenerate flips.
	p := mustNew(t, Config{N: 4, S: 4, Degree: 2})
	// Force a parallel edge.
	p.views[0].Set(0, 1)
	p.views[0].Set(1, 1)
	r := rng.New(4)
	for k := 0; k < 50; k++ {
		to, msg, ok := p.Initiate(0, r)
		if !ok {
			continue
		}
		if to == msg.IDs[0] {
			t.Fatalf("degenerate flip emitted: target %v == payload %v", to, msg.IDs[0])
		}
		// Put the edge back for the next iteration.
		p.Deliver(0, protocol.Message{Kind: protocol.KindReply, From: to, IDs: msg.IDs}, r)
	}
}

func TestChurn(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, Degree: 4})
	p.Leave(2)
	if p.Active(2) || p.View(2) != nil {
		t.Fatal("Leave did not deactivate")
	}
	if err := p.Join(2, []peer.ID{0, 1}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := p.Join(2, []peer.ID{0}); err == nil {
		t.Error("double join accepted")
	}
	p.Leave(3)
	if err := p.Join(3, nil); err == nil {
		t.Error("join without seeds accepted")
	}
	r := rng.New(5)
	p.Leave(4)
	if _, _, ok := p.Initiate(4, r); ok {
		t.Error("departed node initiated")
	}
	if _, _, reply := p.Deliver(4, protocol.Message{Kind: protocol.KindRequest, From: 0, IDs: []peer.ID{1}}, r); reply {
		t.Error("departed node replied")
	}
}

func TestMalformedMessagesIgnored(t *testing.T) {
	p := mustNew(t, Config{N: 4, S: 4, Degree: 2})
	r := rng.New(6)
	before := p.View(1).Clone()
	p.Deliver(1, protocol.Message{Kind: protocol.KindRequest, From: 0, IDs: []peer.ID{1, 2}}, r)
	p.Deliver(1, protocol.Message{Kind: protocol.KindReply, From: 0, IDs: nil}, r)
	p.Deliver(1, protocol.Message{Kind: 99, From: 0, IDs: []peer.ID{1}}, r)
	if !p.View(1).Equal(before) {
		t.Error("malformed message mutated the view")
	}
}

func TestIdentityAndSnapshot(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8})
	if p.Name() != "flipper" || p.N() != 10 {
		t.Errorf("identity: %q %d", p.Name(), p.N())
	}
	if !graph.FromViews(p.Views()).WeaklyConnected() {
		t.Error("initial topology disconnected")
	}
}
