// Package protocol defines the interface between gossip membership
// protocols and the drivers that execute them (the sequential engine of
// internal/engine and the concurrent runtime of internal/runtime).
//
// Following Section 4.1 of the paper, a protocol is expressed as *steps*
// that execute atomically at a single node: an initiate step that may emit a
// message, and a receive step per delivered message. Loss happens between
// the two; a protocol never learns whether its message arrived. This is the
// property that makes S&F implementable "in fault-prone networks without
// any bookkeeping".
package protocol

import (
	"sendforget/internal/peer"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Kind distinguishes message types for protocols with more than one (the
// shuffle baseline has a request/reply pair; S&F needs only one).
type Kind uint8

// Message kinds.
const (
	KindGossip  Kind = iota // unidirectional gossip (S&F, push-pull)
	KindRequest             // shuffle request
	KindReply               // shuffle reply
)

// Message is a protocol message. IDs carries the gossiped node ids (for S&F
// the pair [u, w] of Figure 5.1). Dup marks messages sent by an action that
// performed duplication; the dependence tracker uses it and protocols that
// do not track dependence ignore it.
type Message struct {
	Kind Kind
	From peer.ID
	IDs  []peer.ID
	Dup  bool
}

// Protocol is a gossip membership protocol over nodes 0..N()-1 driven by an
// external scheduler. Implementations are single-threaded: the driver
// serializes all calls.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// N returns the number of node slots (including departed nodes).
	N() int
	// View returns node u's local view. It is nil for departed nodes. The
	// caller must treat the view as read-only.
	View(u peer.ID) *view.View
	// Initiate runs the initiator step at node u (Figure 5.1 left). It
	// returns the destination and message, or ok = false when the action is
	// a self-loop transformation (no message, no view change).
	Initiate(u peer.ID, r *rng.RNG) (to peer.ID, msg Message, ok bool)
	// Deliver runs the receive step at node u for a message that survived
	// the network (Figure 5.1 right). It may return a reply message for
	// bidirectional protocols; replies are again subject to loss.
	Deliver(u peer.ID, msg Message, r *rng.RNG) (reply Message, to peer.ID, hasReply bool)
}

// Churner is implemented by protocols that support dynamic membership
// (Section 6.5: joins and leaves/failures).
type Churner interface {
	// Join activates node u with an initial view holding the seed ids ("a
	// joining node has to know at least dL ids of live nodes").
	Join(u peer.ID, seeds []peer.ID) error
	// Leave deactivates node u. Per the paper, leaving nodes "simply stop
	// participating in the protocol"; their id decays out of other views.
	Leave(u peer.ID)
	// Active reports whether u currently participates.
	Active(u peer.ID) bool
}
