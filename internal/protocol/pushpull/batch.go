package pushpull

import (
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

var _ protocol.BatchStepCore = (*Core)(nil)

// InitiateBatch is Initiate on the allocation-free batch path: the same
// keep-on-send push with the pair selection through the fused single-draw
// RandomPairFast and the message written straight into the driver's outbox.
// Per the BatchStepCore contract the core's diagnostic counters are not
// maintained here.
//
//vet:hotpath
func (c *Core) InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *protocol.Outbox) (msgs, dups int, ok bool) {
	i, j := lv.RandomPairFast(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		return 0, 0, false
	}
	out.Append2(v, u, protocol.KindGossip, false, u, w)
	return 1, 0, true
}

// ReceiveBatch is Receive on the batch path: store each pushed id into a
// fused uniformly chosen empty slot, evicting a uniformly random entry when
// the view is full. Push-pull never replies.
//
//vet:hotpath
func (c *Core) ReceiveBatch(lv *view.View, u peer.ID, pkt protocol.Packet, r *rng.RNG, out *protocol.Outbox) bool {
	if pkt.Kind != protocol.KindGossip {
		return false
	}
	for _, id := range pkt.IDs {
		if i, ok := lv.RandomEmptySlot(r); ok {
			lv.Set(i, id)
			continue
		}
		lv.Set(r.Intn(lv.Size()), id)
	}
	return false
}
