package pushpull

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Core is the per-node push-pull step core implementing protocol.StepCore:
// the keep-on-send push expressed over a single local view. The sequential
// Protocol adapter shares one Core across all nodes; the concurrent runtime
// builds one per node. Not safe for concurrent use.
type Core struct {
	s        int
	counters Counters
}

var _ protocol.StepCore = (*Core)(nil)

// NewCore builds a push-pull step core with view size s.
func NewCore(s int) (*Core, error) {
	if s < 2 {
		return nil, fmt.Errorf("pushpull: view size must be >= 2, got %d", s)
	}
	return &Core{s: s}, nil
}

// Name returns "push-pull".
func (c *Core) Name() string { return "push-pull" }

// ViewSize returns s.
func (c *Core) ViewSize() int { return c.s }

// Counters returns a copy of the core's event counters.
func (c *Core) Counters() Counters { return c.counters }

// SeedView fills a fresh view with the seed ids (at least one).
func (c *Core) SeedView(seeds []peer.ID) (*view.View, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("pushpull: need at least one seed")
	}
	v := view.New(c.s)
	for i, id := range seeds {
		if i >= c.s {
			break
		}
		v.Set(i, id)
	}
	return v, nil
}

// Initiate pushes [u, w] to a random neighbor, keeping both entries — the
// defining difference from S&F.
func (c *Core) Initiate(lv *view.View, u peer.ID, r *rng.RNG) ([]protocol.Outgoing, bool) {
	c.counters.Initiations++
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		c.counters.SelfLoops++
		return nil, false
	}
	c.counters.Sends++
	return []protocol.Outgoing{{To: v, Msg: protocol.Message{
		Kind: protocol.KindGossip,
		From: u,
		IDs:  []peer.ID{u, w},
	}}}, true
}

// Receive stores the pushed ids, evicting random entries when the view is
// full. Push-pull never replies; non-gossip kinds are ignored.
func (c *Core) Receive(lv *view.View, u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Outgoing, bool) {
	if msg.Kind != protocol.KindGossip {
		return protocol.Outgoing{}, false
	}
	for _, id := range msg.IDs {
		if slots, ok := lv.RandomEmptySlots(r, 1); ok {
			lv.Set(slots[0], id)
			continue
		}
		// Full view: overwrite a uniformly random entry.
		c.counters.Evictions++
		lv.Set(r.Intn(lv.Size()), id)
	}
	return protocol.Outgoing{}, false
}

// CheckView verifies internal view consistency; push-pull keeps no parity
// or floor invariant (views only ever gain or recycle ids).
func (c *Core) CheckView(lv *view.View) error {
	return lv.CheckInvariants()
}
