// Package pushpull implements a keep-on-send gossip baseline in the spirit
// of Lpbcast [13] and the protocol of Allavena, Demers, and Hopcroft [2],
// per the taxonomy of Section 3.1 of the paper.
//
// An initiator pushes its own id (reinforcement) and a random entry from its
// view (mixing) to a random neighbor, *keeping* the sent ids. The receiver
// stores the ids, evicting random entries when its view is full. Because
// nothing is deleted on send, the protocol is immune to message loss — but
// every exchange leaves both parties holding the same ids, inducing exactly
// the spatial dependencies the paper's Section 1 describes ("an id that is
// gossiped to a neighbor typically remains in the sender's view"). The base1
// experiment contrasts its dependence level with S&F's.
package pushpull

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the push-pull baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size (at least 2).
	S int
	// InitDegree is the initial outdegree (defaults to S).
	InitDegree int
}

// Counters tallies baseline events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Sends       int
	Evictions   int // entries overwritten because the view was full
}

// Protocol is the push-pull baseline state. It implements protocol.Protocol
// and protocol.Churner by delegating every step to one shared Core — the
// same step core the concurrent runtime drives.
type Protocol struct {
	cfg    Config
	core   *Core
	views  []*view.View
	active []bool
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the circulant initial topology.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("pushpull: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("pushpull: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.InitDegree == 0 {
		cfg.InitDegree = cfg.S
	}
	if cfg.InitDegree > cfg.S || cfg.InitDegree >= cfg.N {
		return nil, fmt.Errorf("pushpull: initial degree %d must fit view %d and n %d", cfg.InitDegree, cfg.S, cfg.N)
	}
	core, err := NewCore(cfg.S)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		core:   core,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "push-pull".
func (p *Protocol) Name() string { return "push-pull" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.core.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate pushes [u, w] to a random neighbor, keeping both entries, by
// delegating to the shared step core.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	lv := p.views[u]
	if lv == nil {
		p.core.counters.Initiations++
		p.core.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	msgs, ok := p.core.Initiate(lv, u, r)
	if !ok {
		return 0, protocol.Message{}, false
	}
	return msgs[0].To, msgs[0].Msg, true
}

// Deliver stores the pushed ids by delegating to the shared step core.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	p.core.Receive(lv, u, msg, r)
	return protocol.Message{}, 0, false
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("pushpull: node %v is already active", u)
	}
	v, err := p.core.SeedView(seeds)
	if err != nil {
		return fmt.Errorf("pushpull: join of %v: %w", u, err)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
