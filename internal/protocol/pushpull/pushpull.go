// Package pushpull implements a keep-on-send gossip baseline in the spirit
// of Lpbcast [13] and the protocol of Allavena, Demers, and Hopcroft [2],
// per the taxonomy of Section 3.1 of the paper.
//
// An initiator pushes its own id (reinforcement) and a random entry from its
// view (mixing) to a random neighbor, *keeping* the sent ids. The receiver
// stores the ids, evicting random entries when its view is full. Because
// nothing is deleted on send, the protocol is immune to message loss — but
// every exchange leaves both parties holding the same ids, inducing exactly
// the spatial dependencies the paper's Section 1 describes ("an id that is
// gossiped to a neighbor typically remains in the sender's view"). The base1
// experiment contrasts its dependence level with S&F's.
package pushpull

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the push-pull baseline.
type Config struct {
	// N is the number of nodes.
	N int
	// S is the view size (at least 2).
	S int
	// InitDegree is the initial outdegree (defaults to S).
	InitDegree int
}

// Counters tallies baseline events.
type Counters struct {
	Initiations int
	SelfLoops   int
	Sends       int
	Evictions   int // entries overwritten because the view was full
}

// Protocol is the push-pull baseline state. It implements protocol.Protocol
// and protocol.Churner.
type Protocol struct {
	cfg      Config
	views    []*view.View
	active   []bool
	counters Counters
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the baseline over the circulant initial topology.
func New(cfg Config) (*Protocol, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("pushpull: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.S < 2 {
		return nil, fmt.Errorf("pushpull: view size must be >= 2, got %d", cfg.S)
	}
	if cfg.InitDegree == 0 {
		cfg.InitDegree = cfg.S
	}
	if cfg.InitDegree > cfg.S || cfg.InitDegree >= cfg.N {
		return nil, fmt.Errorf("pushpull: initial degree %d must fit view %d and n %d", cfg.InitDegree, cfg.S, cfg.N)
	}
	p := &Protocol{
		cfg:    cfg,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	return p, nil
}

// Name returns "push-pull".
func (p *Protocol) Name() string { return "push-pull" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Counters returns a copy of the counters.
func (p *Protocol) Counters() Counters { return p.counters }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Initiate pushes [u, w] to a random neighbor, keeping both entries.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	p.counters.Initiations++
	lv := p.views[u]
	if lv == nil {
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		p.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	p.counters.Sends++
	// Entries are kept: this is the defining difference from S&F.
	return v, protocol.Message{
		Kind: protocol.KindGossip,
		From: u,
		IDs:  []peer.ID{u, w},
	}, true
}

// Deliver stores the pushed ids, evicting random entries when full.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		return protocol.Message{}, 0, false
	}
	for _, id := range msg.IDs {
		if slots, ok := lv.RandomEmptySlots(r, 1); ok {
			lv.Set(slots[0], id)
			continue
		}
		// Full view: overwrite a uniformly random entry.
		p.counters.Evictions++
		lv.Set(r.Intn(lv.Size()), id)
	}
	return protocol.Message{}, 0, false
}

// Join implements protocol.Churner.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("pushpull: node %v is already active", u)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("pushpull: join of %v needs seeds", u)
	}
	v := view.New(p.cfg.S)
	for i, id := range seeds {
		if i >= p.cfg.S {
			break
		}
		v.Set(i, id)
	}
	p.views[u] = v
	p.active[u] = true
	return nil
}

// Leave implements protocol.Churner.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }
