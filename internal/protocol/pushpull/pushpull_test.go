package pushpull

import (
	"testing"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 1, S: 4}); err == nil {
		t.Error("accepted n=1")
	}
	if _, err := New(Config{N: 10, S: 1}); err == nil {
		t.Error("accepted s=1")
	}
	if _, err := New(Config{N: 10, S: 4, InitDegree: 6}); err == nil {
		t.Error("accepted init degree > s")
	}
	if _, err := New(Config{N: 4, S: 8, InitDegree: 4}); err == nil {
		t.Error("accepted init degree >= n")
	}
}

func drive(p *Protocol, actions int, pLoss float64, seed int64) {
	r := rng.New(seed)
	n := p.N()
	for k := 0; k < actions; k++ {
		u := peer.ID(r.Intn(n))
		if !p.Active(u) {
			continue
		}
		to, msg, ok := p.Initiate(u, r)
		if !ok || r.Bernoulli(pLoss) {
			continue
		}
		if p.Active(to) {
			p.Deliver(to, msg, r)
		}
	}
}

func TestSenderKeepsEntries(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, InitDegree: 4})
	r := rng.New(1)
	before := p.View(2).Clone()
	for k := 0; k < 1000; k++ {
		_, _, ok := p.Initiate(2, r)
		if ok {
			break
		}
	}
	if !p.View(2).Equal(before) {
		t.Error("push-pull mutated the sender view on send")
	}
}

func TestPopulationSurvivesHeavyLoss(t *testing.T) {
	// The defining contrast with shuffle: keep-on-send is immune to loss.
	p := mustNew(t, Config{N: 50, S: 10, InitDegree: 6})
	before := graph.FromViews(p.Views()).NumEdges()
	drive(p, 100000, 0.2, 2)
	after := graph.FromViews(p.Views()).NumEdges()
	if after < before {
		t.Errorf("edge population shrank %d -> %d; keep-on-send must not lose ids", before, after)
	}
}

func TestEvictionWhenFull(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 4, InitDegree: 4})
	r := rng.New(3)
	p.Deliver(1, protocol.Message{From: 0, IDs: []peer.ID{0, 7}}, r)
	if got := p.View(1).Outdegree(); got != 4 {
		t.Errorf("outdegree after eviction delivery = %d, want 4", got)
	}
	if c := p.Counters(); c.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", c.Evictions)
	}
	if !p.View(1).Contains(7) {
		t.Error("delivered id not stored after eviction")
	}
}

func TestFillsEmptySlotsFirst(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, InitDegree: 2})
	r := rng.New(4)
	p.Deliver(1, protocol.Message{From: 0, IDs: []peer.ID{0, 7}}, r)
	if got := p.View(1).Outdegree(); got != 4 {
		t.Errorf("outdegree = %d, want 4 (no eviction needed)", got)
	}
	if c := p.Counters(); c.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0", c.Evictions)
	}
}

func TestDependenceGrowsUnderGossip(t *testing.T) {
	// Keep-on-send leaves sender and receiver holding the same ids; after a
	// long run the graph should show substantially more same-view
	// duplicates plus parallel structure than the id population requires.
	p := mustNew(t, Config{N: 30, S: 10, InitDegree: 10})
	drive(p, 30000, 0, 5)
	g := graph.FromViews(p.Views())
	if g.DuplicateEntries() == 0 && g.SelfEdges() == 0 {
		t.Error("expected some duplicate or self entries in keep-on-send steady state")
	}
}

func TestChurn(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, InitDegree: 4})
	p.Leave(2)
	if p.Active(2) || p.View(2) != nil {
		t.Fatal("Leave did not deactivate")
	}
	if err := p.Join(2, []peer.ID{0, 1, 3}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if p.View(2).Outdegree() != 3 {
		t.Errorf("joiner outdegree = %d, want 3", p.View(2).Outdegree())
	}
	if err := p.Join(2, []peer.ID{0}); err == nil {
		t.Error("double join accepted")
	}
	p.Leave(3)
	if err := p.Join(3, nil); err == nil {
		t.Error("join without seeds accepted")
	}
	r := rng.New(6)
	p.Leave(4)
	if _, _, ok := p.Initiate(4, r); ok {
		t.Error("departed node initiated")
	}
	p.Deliver(4, protocol.Message{From: 0, IDs: []peer.ID{0}}, r)
	if p.Active(4) {
		t.Error("delivery revived departed node")
	}
}

func TestIdentity(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8})
	if p.Name() != "push-pull" || p.N() != 10 {
		t.Errorf("identity: name=%q n=%d", p.Name(), p.N())
	}
	if p.View(0).Outdegree() != 8 {
		t.Errorf("default init degree = %d, want s", p.View(0).Outdegree())
	}
}
