package sendforget

import (
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Batch-path implementation of the S&F step core (protocol.BatchStepCore):
// the same Figure 5.1 steps as Initiate/Receive, but writing into a
// driver-owned outbox and choosing empty slots through the view's
// allocation-free pair selector, so a sharded tick over this core performs
// zero steady-state allocations. View mutations match the classic methods
// exactly; only the RNG draw mapping of the receive step's empty-slot
// selection differs (documented on view.RandomEmptyPair). Per the
// BatchStepCore contract, the core's own diagnostic state — the counters
// and the dependence-tracking latches — is NOT updated on this path: the
// driver accounts per shard, and touching the core per delivered message
// would drag a second cache line into the random-destination receive.

var _ protocol.BatchStepCore = (*Core)(nil)

// InitiateBatch implements S&F-InitiateAction, appending the [u, w] message
// to out instead of allocating an Outgoing slice. The body is InitiateStep
// fused in place — same slot reads, same duplication rule, same fused clear —
// with the pair selection drawn through the view's single-draw selector, so
// one initiate costs one RNG word and no intermediate Send value.
//
//vet:hotpath
func (c *Core) InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *protocol.Outbox) (msgs, dups int, ok bool) {
	i, j := lv.RandomPairFast(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		// Self-loop transformation: an empty selection sends nothing.
		return 0, 0, false
	}
	dup := lv.Outdegree() <= c.dl
	if !dup {
		lv.ClearOccupiedPair(i, j)
	}
	out.Append2(v, u, protocol.KindGossip, dup, u, w)
	if dup {
		dups = 1
	}
	return 1, dups, true
}

// ReceiveBatch implements S&F-Receive. S&F never replies, so out is never
// written; malformed packets are ignored exactly as in Receive. The view-full
// check uses the view's own occupancy (outdegree can never exceed the slot
// count, so full ⟺ d(u) = s), keeping the whole receive inside the view
// header's cache line.
//
//vet:hotpath
func (c *Core) ReceiveBatch(lv *view.View, u peer.ID, pkt protocol.Packet, r *rng.RNG, out *protocol.Outbox) bool {
	if pkt.Kind != protocol.KindGossip || len(pkt.IDs) != 2 {
		return false
	}
	if lv.Full() {
		// d(u) = s: the received ids are deleted.
		return false
	}
	a, b, ok := lv.RandomEmptyPair(r)
	if !ok {
		// Outdegree below s with even parity guarantees two empty slots;
		// reaching here means the view invariant was violated externally.
		return false
	}
	lv.FillEmptyPair(a, b, pkt.IDs[0], pkt.IDs[1])
	return false
}
