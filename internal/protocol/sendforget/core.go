package sendforget

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Core is the per-node S&F step core: the Figure 5.1 step functions plus
// event counters, implementing protocol.StepCore. The sequential Protocol
// adapter shares one Core across all nodes (drivers serialize calls); the
// concurrent runtime builds one per node. Not safe for concurrent use.
type Core struct {
	s, dl    int
	counters Counters

	// Effects of the most recent step, read by the same-package Protocol
	// adapter for dependence tracking. Valid only immediately after a call.
	lastSlots  [2]int
	lastDup    bool
	lastStored bool
}

var _ protocol.StepCore = (*Core)(nil)

// NewCore builds an S&F step core with view size s and duplication
// threshold dl, validating the paper's parameter constraints.
func NewCore(s, dl int) (*Core, error) {
	if s < 6 || s%2 != 0 {
		return nil, fmt.Errorf("sendforget: view size s must be even and >= 6, got %d", s)
	}
	if dl < 0 || dl > s-6 || dl%2 != 0 {
		return nil, fmt.Errorf("sendforget: threshold dL must be even in [0, s-6], got dL=%d s=%d", dl, s)
	}
	return &Core{s: s, dl: dl}, nil
}

// Name returns "send&forget".
func (c *Core) Name() string { return "send&forget" }

// ViewSize returns s.
func (c *Core) ViewSize() int { return c.s }

// Counters returns a copy of the core's event counters.
func (c *Core) Counters() Counters { return c.counters }

// SeedView fills a fresh view with the seed ids. Seeds beyond s are
// dropped; an odd count is truncated to keep the outdegree even; fewer than
// max(2, dL) usable seeds is an error (the paper's join rule).
func (c *Core) SeedView(seeds []peer.ID) (*view.View, error) {
	k := len(seeds)
	if k > c.s {
		k = c.s
	}
	if k%2 != 0 {
		k--
	}
	if k < c.dl || k < 2 {
		return nil, fmt.Errorf("sendforget: need at least max(2, dL=%d) seeds, got %d usable", c.dl, k)
	}
	lv := view.New(c.s)
	for i := 0; i < k; i++ {
		lv.Set(i, seeds[i])
	}
	return lv, nil
}

// Initiate implements S&F-InitiateAction of Figure 5.1 via InitiateStep.
func (c *Core) Initiate(lv *view.View, u peer.ID, r *rng.RNG) ([]protocol.Outgoing, bool) {
	c.counters.Initiations++
	send, slots, ok := InitiateStep(lv, u, c.dl, r)
	if !ok {
		// Self-loop transformation: the view is unchanged.
		c.counters.SelfLoops++
		return nil, false
	}
	if send.Dup {
		c.counters.Duplications++
	}
	c.counters.Sends++
	c.lastSlots, c.lastDup = slots, send.Dup
	return []protocol.Outgoing{{To: send.To, Msg: protocol.Message{
		Kind: protocol.KindGossip,
		From: u,
		IDs:  []peer.ID{send.IDs[0], send.IDs[1]},
		Dup:  send.Dup,
	}}}, true
}

// Receive implements S&F-Receive of Figure 5.1 via ReceiveStep. S&F never
// replies; messages of other kinds or wrong arity are ignored (the UDP
// substrate can deliver garbage).
func (c *Core) Receive(lv *view.View, u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Outgoing, bool) {
	if msg.Kind != protocol.KindGossip || len(msg.IDs) != 2 {
		return protocol.Outgoing{}, false
	}
	c.counters.Receives++
	slots, stored := ReceiveStep(lv, c.s, [2]peer.ID{msg.IDs[0], msg.IDs[1]}, r)
	c.lastStored = stored
	if !stored {
		// d(u) = s: the received ids are deleted.
		c.counters.Deletions++
		return protocol.Outgoing{}, false
	}
	c.lastSlots = slots
	return protocol.Outgoing{}, false
}

// CheckView verifies Observation 5.1: outdegree even and within [dL, s].
func (c *Core) CheckView(lv *view.View) error {
	if err := lv.CheckInvariants(); err != nil {
		return err
	}
	d := lv.Outdegree()
	if d%2 != 0 || d < c.dl || d > c.s {
		return fmt.Errorf("sendforget: outdegree %d violates Observation 5.1 (dL=%d, s=%d)", d, c.dl, c.s)
	}
	return nil
}
