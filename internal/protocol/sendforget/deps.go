package sendforget

import (
	"sendforget/internal/peer"
	"sendforget/internal/view"
)

// depTracker tags every view slot with a dependence bit, realizing the
// dependence Markov chain of Figure 7.1 empirically:
//
//   - independent -> dependent: the entry was kept by a duplicating send, or
//     was created by receiving a message from a duplicating send;
//   - dependent -> independent: the entry moved to a new view via a
//     non-duplicating send.
//
// On top of the tag, the paper's Section 2 labeling also counts all
// self-edges as dependent and, for ids with multiplicity m > 1 in the same
// view, m-1 of the copies as dependent. DependentFraction applies all three
// rules; 1 minus it is the empirical alpha that Lemma 7.9 bounds from below
// by 1 - 2(l+delta).
type depTracker struct {
	dep [][]bool // dep[u][slot]
}

func newDepTracker(n, s int) *depTracker {
	d := &depTracker{dep: make([][]bool, n)}
	for u := range d.dep {
		d.dep[u] = make([]bool, s)
	}
	return d
}

func (d *depTracker) mark(u peer.ID, slot int, dependent bool) {
	d.dep[u][slot] = dependent
}

// DependenceStats summarizes the dependence measurement over all views.
type DependenceStats struct {
	Entries    int // nonempty view entries
	Tagged     int // entries tagged dependent by the duplication rule
	SelfEdges  int // entries u.lv[i] = u
	Duplicates int // same-view multiplicity overflow (m-1 per id with m > 1)
	Dependent  int // entries dependent under the union of the three rules
}

// Alpha returns the fraction of independent entries (1 when no entries).
func (s DependenceStats) Alpha() float64 {
	if s.Entries == 0 {
		return 1
	}
	return 1 - float64(s.Dependent)/float64(s.Entries)
}

// DependenceStats measures the current views. It returns the zero value if
// the protocol was built without TrackDependence.
func (p *Protocol) DependenceStats() DependenceStats {
	var st DependenceStats
	if p.deps == nil {
		return st
	}
	seen := make(map[peer.ID]int)
	for u, lv := range p.views {
		if lv == nil {
			continue
		}
		clear(seen)
		for i := 0; i < lv.Size(); i++ {
			id := lv.Slot(i)
			if id.IsNil() {
				continue
			}
			st.Entries++
			dependent := false
			if p.deps.dep[u][i] {
				st.Tagged++
				dependent = true
			}
			if int(id) == u {
				st.SelfEdges++
				dependent = true
			}
			seen[id]++
			if seen[id] > 1 {
				st.Duplicates++
				dependent = true
			}
			if dependent {
				st.Dependent++
			}
		}
	}
	return st
}

// dependentSlots returns the dependence tags for u's view; exposed for
// white-box tests.
func (p *Protocol) dependentSlots(u peer.ID) []bool {
	if p.deps == nil {
		return nil
	}
	return p.deps.dep[u]
}

// viewForTest returns the raw view for white-box tests in this package.
func (p *Protocol) viewForTest(u peer.ID) *view.View { return p.views[u] }
