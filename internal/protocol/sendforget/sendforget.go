// Package sendforget implements the Send & Forget (S&F) protocol of
// Section 5 of the paper (Figure 5.1).
//
// Each node u maintains a view of s slots (s even, s >= 6). An action
// selects two distinct slots uniformly at random; if either is empty the
// action is a self-loop. Otherwise, with v and w the selected ids, u sends
// the message [u, w] to v and — unless its outdegree is at the duplication
// threshold dL — clears both entries. The receiver stores both ids into
// uniformly chosen empty slots unless its view is full, in which case the
// ids are deleted. Duplications compensate for message loss (Section 5);
// deletions shed the resulting surplus.
//
// Invariant (Observation 5.1): every node's outdegree stays even and within
// [dL, s] at all times, given an initial topology that satisfies it.
package sendforget

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Config parameterizes the protocol.
type Config struct {
	// N is the number of nodes in the initial (static) system.
	N int
	// S is the view size s: even, at least 6 (the paper requires s >= 6 for
	// the reachability proof of Lemma A.3).
	S int
	// DL is the duplication threshold dL: even, 0 <= DL <= S-6. Outdegrees
	// never fall below DL; an initiating node at outdegree DL keeps ([]
	// duplicates) the entries it sends.
	DL int
	// InitDegree is the initial outdegree of every node, even and within
	// [max(DL,2), S]. Zero selects a default midway between DL and S.
	InitDegree int
	// TrackDependence enables the per-entry dependence tags used to measure
	// Property M4 (see deps.go). It costs one bool per view slot.
	TrackDependence bool
}

// validate checks the Config against the paper's parameter constraints.
func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("sendforget: need at least 2 nodes, got %d", c.N)
	}
	if c.S < 6 || c.S%2 != 0 {
		return fmt.Errorf("sendforget: view size s must be even and >= 6, got %d", c.S)
	}
	if c.DL < 0 || c.DL > c.S-6 || c.DL%2 != 0 {
		return fmt.Errorf("sendforget: threshold dL must be even in [0, s-6], got dL=%d s=%d", c.DL, c.S)
	}
	if c.InitDegree != 0 {
		if c.InitDegree%2 != 0 || c.InitDegree < c.DL || c.InitDegree > c.S {
			return fmt.Errorf("sendforget: initial degree must be even in [dL, s], got %d", c.InitDegree)
		}
		if c.InitDegree < 2 {
			return fmt.Errorf("sendforget: initial degree must be at least 2, got %d", c.InitDegree)
		}
		if c.InitDegree >= c.N {
			return fmt.Errorf("sendforget: initial degree %d must be below n=%d", c.InitDegree, c.N)
		}
	}
	return nil
}

// defaultInitDegree picks an even initial outdegree comfortably inside
// [dL, s] so that neither duplications nor deletions fire immediately.
func (c Config) defaultInitDegree() int {
	d := (c.DL + c.S) / 2
	if d%2 != 0 {
		d--
	}
	if d < 2 {
		d = 2
	}
	if d >= c.N {
		d = c.N - 1
		if d%2 != 0 {
			d--
		}
	}
	return d
}

// Counters tallies protocol events. The ratios between them realize the
// quantities of Lemmas 6.6-6.7: Duplications/Sends is the empirical
// duplication probability, Deletions/Sends the deletion probability.
type Counters struct {
	Initiations  int // Initiate calls
	SelfLoops    int // actions that selected an empty entry (no-ops)
	Sends        int // messages emitted (non-self-loop actions)
	Duplications int // sends that kept (duplicated) the entries
	Receives     int // messages delivered to us
	Deletions    int // deliveries discarded because the view was full
}

// Protocol is the S&F protocol state for all nodes. It implements
// protocol.Protocol and protocol.Churner by delegating every step to one
// shared Core (the same step core the concurrent runtime drives, so the
// substrates cannot drift apart). Not safe for concurrent use; the drivers
// serialize access.
type Protocol struct {
	cfg    Config
	core   *Core
	views  []*view.View
	active []bool
	deps   *depTracker // nil unless cfg.TrackDependence
}

var (
	_ protocol.Protocol = (*Protocol)(nil)
	_ protocol.Churner  = (*Protocol)(nil)
)

// New builds the protocol with the initial topology of initViews applied.
// The initial membership graph is the circulant graph in which node u points
// at u+1, ..., u+d (mod n): it is weakly connected, d-regular in and out, and
// has sum degree exactly 3d at every node — the initialization Section 6.1
// assumes. The gossip process then randomizes it (Lemma 7.5: with no loss
// the stationary distribution is uniform over all reachable graphs).
func New(cfg Config) (*Protocol, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.InitDegree == 0 {
		cfg.InitDegree = cfg.defaultInitDegree()
	}
	if cfg.InitDegree >= cfg.N {
		return nil, fmt.Errorf("sendforget: n=%d too small for initial degree %d", cfg.N, cfg.InitDegree)
	}
	core, err := NewCore(cfg.S, cfg.DL)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:    cfg,
		core:   core,
		views:  make([]*view.View, cfg.N),
		active: make([]bool, cfg.N),
	}
	for u := 0; u < cfg.N; u++ {
		v := view.New(cfg.S)
		for k := 1; k <= cfg.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%cfg.N))
		}
		p.views[u] = v
		p.active[u] = true
	}
	if cfg.TrackDependence {
		p.deps = newDepTracker(cfg.N, cfg.S)
	}
	return p, nil
}

// Name returns "send&forget".
func (p *Protocol) Name() string { return "send&forget" }

// N returns the number of node slots.
func (p *Protocol) N() int { return p.cfg.N }

// Config returns the protocol parameters.
func (p *Protocol) Config() Config { return p.cfg }

// View returns u's view (nil after Leave).
func (p *Protocol) View(u peer.ID) *view.View {
	if !p.active[u] {
		return nil
	}
	return p.views[u]
}

// Views returns the full view slice (nil entries for departed nodes), for
// graph snapshots. Callers must not mutate the views.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.cfg.N)
	for u := range out {
		if p.active[u] {
			out[u] = p.views[u]
		}
	}
	return out
}

// Counters returns a copy of the event counters.
func (p *Protocol) Counters() Counters { return p.core.counters }

// Core returns the shared step core the adapter drives.
func (p *Protocol) Core() *Core { return p.core }

// Initiate implements S&F-InitiateAction of Figure 5.1 by delegating to the
// shared step core.
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	lv := p.views[u]
	if lv == nil {
		// Departed nodes do not act; drivers normally never schedule them.
		p.core.counters.Initiations++
		p.core.counters.SelfLoops++
		return 0, protocol.Message{}, false
	}
	msgs, ok := p.core.Initiate(lv, u, r)
	if !ok {
		// Self-loop transformation: views remain unchanged.
		return 0, protocol.Message{}, false
	}
	if p.deps != nil {
		// On duplication the kept copies now share their information with
		// the copies the message creates: mark them dependent. Otherwise
		// the slots were cleared; reset their tags.
		p.deps.mark(u, p.core.lastSlots[0], p.core.lastDup)
		p.deps.mark(u, p.core.lastSlots[1], p.core.lastDup)
	}
	return msgs[0].To, msgs[0].Msg, true
}

// Deliver implements S&F-Receive of Figure 5.1 by delegating to the shared
// step core. S&F never replies.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	lv := p.views[u]
	if lv == nil {
		// Message addressed to a node that left; the driver normally drops
		// these, but be robust.
		p.core.counters.Receives++
		return protocol.Message{}, 0, false
	}
	p.core.Receive(lv, u, msg, r)
	if p.deps != nil && p.core.lastStored {
		// Entries created by a duplicating action are dependent (Figure
		// 7.1: "received previously duplicated"); entries moved by a
		// non-duplicating action become independent ("sent without
		// duplication").
		p.deps.mark(u, p.core.lastSlots[0], msg.Dup)
		p.deps.mark(u, p.core.lastSlots[1], msg.Dup)
	}
	return protocol.Message{}, 0, false
}

// Join implements protocol.Churner. The seeds become the new node's initial
// view; the paper requires at least dL live ids (obtained in practice by
// copying another node's view). The seed count is truncated to an even
// number of at most s entries.
func (p *Protocol) Join(u peer.ID, seeds []peer.ID) error {
	if p.active[u] {
		return fmt.Errorf("sendforget: node %v is already active", u)
	}
	v, err := p.core.SeedView(seeds)
	if err != nil {
		return fmt.Errorf("sendforget: join of %v: %w", u, err)
	}
	p.views[u] = v
	p.active[u] = true
	if p.deps != nil {
		// A joiner's view is a copy of existing entries: all dependent.
		k := v.Outdegree()
		for i := 0; i < k; i++ {
			p.deps.mark(u, i, true)
		}
		for i := k; i < p.cfg.S; i++ {
			p.deps.mark(u, i, false)
		}
	}
	return nil
}

// Leave implements protocol.Churner: u stops participating. Its id remains
// in other views and decays per Lemma 6.10.
func (p *Protocol) Leave(u peer.ID) {
	p.active[u] = false
	p.views[u] = nil
}

// Active implements protocol.Churner.
func (p *Protocol) Active(u peer.ID) bool { return p.active[u] }

// CheckInvariants verifies Observation 5.1 for every active node: outdegree
// even and within [dL, s]. Tests call it after long runs.
func (p *Protocol) CheckInvariants() error {
	for u, lv := range p.views {
		if lv == nil {
			continue
		}
		if err := p.core.CheckView(lv); err != nil {
			return fmt.Errorf("node %d: %w", u, err)
		}
	}
	return nil
}
