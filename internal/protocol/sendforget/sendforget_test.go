package sendforget

import (
	"strings"
	"testing"
	"testing/quick"

	"sendforget/internal/graph"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Protocol {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"valid", Config{N: 10, S: 8, DL: 2}, ""},
		{"valid paper params", Config{N: 100, S: 40, DL: 18}, ""},
		{"too few nodes", Config{N: 1, S: 8, DL: 0}, "at least 2 nodes"},
		{"odd s", Config{N: 10, S: 7, DL: 0}, "even and >= 6"},
		{"s too small", Config{N: 10, S: 4, DL: 0}, "even and >= 6"},
		{"odd dL", Config{N: 10, S: 12, DL: 3}, "even in [0, s-6]"},
		{"dL too large", Config{N: 10, S: 8, DL: 4}, "even in [0, s-6]"},
		{"negative dL", Config{N: 10, S: 8, DL: -2}, "even in [0, s-6]"},
		{"odd init degree", Config{N: 10, S: 8, DL: 0, InitDegree: 3}, "even in [dL, s]"},
		{"init degree above s", Config{N: 100, S: 8, DL: 0, InitDegree: 10}, "even in [dL, s]"},
		{"init degree >= n", Config{N: 5, S: 8, DL: 0, InitDegree: 6}, "below n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestInitialTopology(t *testing.T) {
	p := mustNew(t, Config{N: 12, S: 8, DL: 2, InitDegree: 4})
	g := graph.FromViews(p.Views())
	if !g.WeaklyConnected() {
		t.Fatal("initial circulant topology not weakly connected")
	}
	for u := 0; u < 12; u++ {
		if got := g.Outdegree(peer.ID(u)); got != 4 {
			t.Errorf("node %d initial outdegree = %d, want 4", u, got)
		}
		if got := g.Indegree(peer.ID(u)); got != 4 {
			t.Errorf("node %d initial indegree = %d, want 4", u, got)
		}
		if got := g.SumDegree(peer.ID(u)); got != 12 {
			t.Errorf("node %d initial sum degree = %d, want 12", u, got)
		}
	}
	if g.SelfEdges() != 0 {
		t.Errorf("initial topology has %d self edges", g.SelfEdges())
	}
}

func TestDefaultInitDegree(t *testing.T) {
	p := mustNew(t, Config{N: 100, S: 40, DL: 18})
	d := p.viewForTest(0).Outdegree()
	if d%2 != 0 || d < 18 || d > 40 {
		t.Errorf("default init degree %d outside even [18,40]", d)
	}
	// Tiny system: default degree must stay below n.
	p2 := mustNew(t, Config{N: 4, S: 8, DL: 0})
	d2 := p2.viewForTest(0).Outdegree()
	if d2 >= 4 || d2 < 2 || d2%2 != 0 {
		t.Errorf("small-n default init degree = %d", d2)
	}
}

// initiateUntilSend retries Initiate until a non-self-loop action fires
// (selections may hit empty slots; self-loops leave views unchanged).
func initiateUntilSend(t *testing.T, p *Protocol, u peer.ID, r *rng.RNG) (peer.ID, protocol.Message) {
	t.Helper()
	for k := 0; k < 1000; k++ {
		to, msg, ok := p.Initiate(u, r)
		if ok {
			return to, msg
		}
	}
	t.Fatalf("node %v produced no send in 1000 attempts", u)
	return 0, protocol.Message{}
}

func TestInitiateSendsSelfAndPayload(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 0, InitDegree: 4})
	r := rng.New(1)
	to, msg := initiateUntilSend(t, p, 3, r)
	if msg.From != 3 {
		t.Errorf("msg.From = %v, want n3", msg.From)
	}
	if len(msg.IDs) != 2 {
		t.Fatalf("msg.IDs = %v, want 2 ids", msg.IDs)
	}
	if msg.IDs[0] != 3 {
		t.Errorf("first id = %v, want sender id n3 (reinforcement)", msg.IDs[0])
	}
	if to == 3 {
		t.Errorf("message sent to self from non-self-containing view")
	}
	// Without duplication, outdegree drops by 2.
	if got := p.viewForTest(3).Outdegree(); got != 2 {
		t.Errorf("outdegree after send = %d, want 2", got)
	}
	if msg.Dup {
		t.Error("msg.Dup set for non-duplicating send")
	}
	c := p.Counters()
	if c.Sends != 1 || c.Duplications != 0 {
		t.Errorf("counters = %+v", c)
	}
	if c.Initiations != c.Sends+c.SelfLoops {
		t.Errorf("Initiations %d != Sends %d + SelfLoops %d", c.Initiations, c.Sends, c.SelfLoops)
	}
}

func TestInitiateDuplicatesAtThreshold(t *testing.T) {
	// InitDegree == DL: every send duplicates and outdegree never drops.
	p := mustNew(t, Config{N: 10, S: 12, DL: 4, InitDegree: 4})
	r := rng.New(2)
	_, msg := initiateUntilSend(t, p, 0, r)
	if !msg.Dup {
		t.Error("msg.Dup not set at threshold outdegree")
	}
	if got := p.viewForTest(0).Outdegree(); got != 4 {
		t.Errorf("outdegree after duplicating send = %d, want 4 (kept)", got)
	}
	if c := p.Counters(); c.Duplications != 1 {
		t.Errorf("Duplications = %d, want 1", c.Duplications)
	}
}

func TestInitiateSelfLoopOnEmptySelection(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 0, InitDegree: 2})
	r := rng.New(3)
	selfLoops, sends := 0, 0
	for k := 0; k < 200; k++ {
		// With outdegree 2 of 8 slots, most selections hit an empty slot.
		_, _, ok := p.Initiate(9, r)
		if ok {
			sends++
			// Put the ids back so the view never empties: deliver to self is
			// not allowed, so just stop after first send.
			break
		}
		selfLoops++
	}
	if sends == 0 && selfLoops == 0 {
		t.Fatal("no actions recorded")
	}
	c := p.Counters()
	if c.SelfLoops != selfLoops {
		t.Errorf("SelfLoops counter = %d, want %d", c.SelfLoops, selfLoops)
	}
}

func TestDeliverFillsEmptySlots(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 0, InitDegree: 2})
	msg := protocol.Message{Kind: protocol.KindGossip, From: 5, IDs: []peer.ID{5, 7}}
	r := rng.New(4)
	_, _, hasReply := p.Deliver(1, msg, r)
	if hasReply {
		t.Error("S&F produced a reply")
	}
	lv := p.viewForTest(1)
	if lv.Outdegree() != 4 {
		t.Errorf("outdegree after delivery = %d, want 4", lv.Outdegree())
	}
	if !lv.Contains(5) || !lv.Contains(7) {
		t.Errorf("view %v missing delivered ids", lv)
	}
}

func TestDeliverDeletesWhenFull(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 6, DL: 0, InitDegree: 6})
	msg := protocol.Message{From: 5, IDs: []peer.ID{5, 7}}
	r := rng.New(5)
	p.Deliver(1, msg, r)
	if got := p.viewForTest(1).Outdegree(); got != 6 {
		t.Errorf("outdegree after full delivery = %d, want 6 (unchanged)", got)
	}
	if c := p.Counters(); c.Deletions != 1 {
		t.Errorf("Deletions = %d, want 1", c.Deletions)
	}
}

// runLossless drives actions manually, delivering every message.
func runLossless(t *testing.T, p *Protocol, actions int, seed int64) {
	t.Helper()
	r := rng.New(seed)
	n := p.N()
	for k := 0; k < actions; k++ {
		u := peer.ID(r.Intn(n))
		if !p.Active(u) {
			continue
		}
		to, msg, ok := p.Initiate(u, r)
		if !ok {
			continue
		}
		if p.Active(to) {
			p.Deliver(to, msg, r)
		}
	}
}

func TestInvariantOutdegreeBoundsLossless(t *testing.T) {
	p := mustNew(t, Config{N: 50, S: 12, DL: 4, InitDegree: 6})
	runLossless(t, p, 20000, 6)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSumDegreeInvariantNoLossNoDupNoDel(t *testing.T) {
	// Lemma 6.2: with no loss, dL = 0, and sum degrees <= s initially, sum
	// degrees are invariant. InitDegree d gives ds = 3d <= s.
	p := mustNew(t, Config{N: 30, S: 12, DL: 0, InitDegree: 4})
	runLossless(t, p, 20000, 7)
	g := graph.FromViews(p.Views())
	for u := 0; u < 30; u++ {
		if got := g.SumDegree(peer.ID(u)); got != 12 {
			t.Errorf("node %d sum degree = %d, want invariant 12", u, got)
		}
	}
	c := p.Counters()
	if c.Deletions != 0 {
		t.Errorf("deletions happened under the Lemma 6.2 conditions: %d", c.Deletions)
	}
	if c.Duplications != 0 {
		t.Errorf("duplications happened with dL=0 and positive degrees: %d", c.Duplications)
	}
}

func TestEdgeCountPreservedWithoutLoss(t *testing.T) {
	p := mustNew(t, Config{N: 40, S: 12, DL: 4, InitDegree: 4})
	before := graph.FromViews(p.Views()).NumEdges()
	runLossless(t, p, 30000, 8)
	after := graph.FromViews(p.Views()).NumEdges()
	// Without loss, edges change only via duplication (+2 per event) and
	// deletion (-2 per event); verify exact bookkeeping.
	c := p.Counters()
	want := before + 2*c.Duplications - 2*c.Deletions
	if after != want {
		t.Errorf("edges = %d, want %d (before %d, dup %d, del %d)", after, want, before, c.Duplications, c.Deletions)
	}
}

func TestWeakConnectivityMaintainedLossless(t *testing.T) {
	p := mustNew(t, Config{N: 60, S: 16, DL: 6, InitDegree: 8})
	runLossless(t, p, 50000, 9)
	g := graph.FromViews(p.Views())
	if !g.WeaklyConnected() {
		t.Errorf("graph disconnected after lossless run: %d components", g.ComponentCount())
	}
}

func TestJoinLeave(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 2, InitDegree: 4})
	p.Leave(5)
	if p.Active(5) {
		t.Fatal("node 5 active after Leave")
	}
	if p.View(5) != nil {
		t.Fatal("view visible after Leave")
	}
	if err := p.Join(5, []peer.ID{0, 1, 2, 3}); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !p.Active(5) {
		t.Fatal("node 5 inactive after Join")
	}
	if got := p.View(5).Outdegree(); got != 4 {
		t.Errorf("joiner outdegree = %d, want 4", got)
	}
	if err := p.Join(5, []peer.ID{0, 1}); err == nil {
		t.Error("Join of active node accepted")
	}
}

func TestJoinValidatesSeeds(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 2, InitDegree: 4})
	p.Leave(7)
	if err := p.Join(7, nil); err == nil {
		t.Error("Join with no seeds accepted")
	}
	p2 := mustNew(t, Config{N: 10, S: 10, DL: 4, InitDegree: 4})
	p2.Leave(7)
	if err := p2.Join(7, []peer.ID{0, 1}); err == nil {
		t.Error("Join with fewer than dL seeds accepted")
	}
	// Odd seed count is truncated to even.
	p.Leave(8)
	if err := p.Join(8, []peer.ID{0, 1, 2}); err != nil {
		t.Fatalf("Join with 3 seeds: %v", err)
	}
	if got := p.View(8).Outdegree(); got != 2 {
		t.Errorf("joiner outdegree after odd seeds = %d, want 2", got)
	}
	// Seed overflow is truncated to s.
	p.Leave(9)
	seeds := make([]peer.ID, 11)
	for i := range seeds {
		seeds[i] = peer.ID(i % 7)
	}
	if err := p.Join(9, seeds); err != nil {
		t.Fatalf("Join with overflow seeds: %v", err)
	}
	if got := p.View(9).Outdegree(); got != 8 {
		t.Errorf("joiner outdegree after overflow seeds = %d, want 8", got)
	}
}

func TestDepartedNodeIgnored(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 2, InitDegree: 4})
	p.Leave(3)
	r := rng.New(10)
	if _, _, ok := p.Initiate(3, r); ok {
		t.Error("departed node initiated an action")
	}
	// Delivering to a departed node must not panic and must not revive it.
	p.Deliver(3, protocol.Message{From: 0, IDs: []peer.ID{0, 1}}, r)
	if p.Active(3) {
		t.Error("delivery revived departed node")
	}
}

func TestDependenceTrackingLossless(t *testing.T) {
	p := mustNew(t, Config{N: 50, S: 12, DL: 0, InitDegree: 4, TrackDependence: true})
	runLossless(t, p, 30000, 11)
	st := p.DependenceStats()
	if st.Entries == 0 {
		t.Fatal("no entries measured")
	}
	if st.Tagged != 0 {
		t.Errorf("lossless dL=0 run tagged %d entries dependent", st.Tagged)
	}
	// Self-edges and duplicates can still occur by the protocol's own
	// mixing; alpha should nevertheless be high.
	if a := st.Alpha(); a < 0.9 {
		t.Errorf("lossless alpha = %v, want >= 0.9 (stats %+v)", a, st)
	}
}

func TestDependenceStatsWithoutTracking(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 2, InitDegree: 4})
	st := p.DependenceStats()
	if st != (DependenceStats{}) {
		t.Errorf("DependenceStats without tracking = %+v, want zero", st)
	}
	if st.Alpha() != 1 {
		t.Errorf("zero-value Alpha = %v, want 1", st.Alpha())
	}
	if p.dependentSlots(0) != nil {
		t.Error("dependentSlots non-nil without tracking")
	}
}

func TestDuplicationMarksDependence(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 12, DL: 4, InitDegree: 4, TrackDependence: true})
	r := rng.New(12)
	to, msg := initiateUntilSend(t, p, 0, r)
	if !msg.Dup {
		t.Fatal("expected duplicating send")
	}
	p.Deliver(to, msg, r)
	st := p.DependenceStats()
	// Two kept entries at the sender + two created at the receiver.
	if st.Tagged < 4 {
		t.Errorf("Tagged = %d, want >= 4 after one duplication", st.Tagged)
	}
}

func TestName(t *testing.T) {
	p := mustNew(t, Config{N: 10, S: 8, DL: 2})
	if p.Name() != "send&forget" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.N() != 10 {
		t.Errorf("N = %d", p.N())
	}
	if p.Config().S != 8 {
		t.Errorf("Config().S = %d", p.Config().S)
	}
}

func TestQuickInvariantsUnderRandomDriving(t *testing.T) {
	// Property: under arbitrary loss patterns and scheduling, outdegrees
	// stay even and within [dL, s].
	f := func(seed int64, lossPct uint8) bool {
		p, err := New(Config{N: 20, S: 10, DL: 2, InitDegree: 4})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		pLoss := float64(lossPct%100) / 100
		for k := 0; k < 2000; k++ {
			u := peer.ID(r.Intn(20))
			to, msg, ok := p.Initiate(u, r)
			if !ok {
				continue
			}
			if !r.Bernoulli(pLoss) {
				p.Deliver(to, msg, r)
			}
		}
		return p.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
