package sendforget

import (
	"sendforget/internal/peer"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// The functions in this file are the raw protocol steps of Figure 5.1,
// operating on a single node's view. Both the centralized Protocol (driven
// by the sequential engine) and the concurrent runtime (one goroutine per
// node, internal/runtime) execute exactly this code, so the simulated and
// the distributed protocol cannot drift apart.

// Send is the message produced by an initiate step: [u, w] addressed to v.
type Send struct {
	To  peer.ID    // v, the first selected entry
	IDs [2]peer.ID // [u, w]: the sender's own id and the second entry
	Dup bool       // whether the action duplicated (kept) the entries
}

// InitiateStep runs S&F-InitiateAction for node u over view lv with
// duplication threshold dl. It returns ok = false for a self-loop
// transformation (an empty entry was selected; the view is unchanged).
// slots reports the two selected slot indices for dependence tracking.
func InitiateStep(lv *view.View, u peer.ID, dl int, r *rng.RNG) (send Send, slots [2]int, ok bool) {
	i, j := lv.RandomPair(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		return Send{}, [2]int{}, false
	}
	dup := lv.Outdegree() <= dl
	if !dup {
		// Both slots were just read non-Nil, so the fused clear applies.
		lv.ClearOccupiedPair(i, j)
	}
	return Send{To: v, IDs: [2]peer.ID{u, w}, Dup: dup}, [2]int{i, j}, true
}

// ReceiveStep runs S&F-Receive over view lv with view size bound s. It
// returns stored = false when the view was full and the ids were deleted.
// slots reports where the ids were stored, for dependence tracking.
func ReceiveStep(lv *view.View, s int, ids [2]peer.ID, r *rng.RNG) (slots [2]int, stored bool) {
	if lv.Outdegree() >= s {
		return [2]int{}, false
	}
	empties, ok := lv.RandomEmptySlots(r, 2)
	if !ok {
		// Outdegree below s with even parity guarantees two empty slots;
		// reaching here means the view invariant was violated externally.
		return [2]int{}, false
	}
	lv.Set(empties[0], ids[0])
	lv.Set(empties[1], ids[1])
	return [2]int{empties[0], empties[1]}, true
}
