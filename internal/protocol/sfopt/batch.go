package sfopt

import (
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

var _ protocol.BatchStepCore = (*Core)(nil)

// chooseDistinct fills dst with distinct uniformly chosen values in [0, n)
// by rejection sampling — the allocation-free counterpart of r.Choose(n, k),
// with the same law (uniform over ordered distinct k-tuples) under a
// different draw mapping. k <= n is guaranteed by the BatchK <= S option
// bound, so the loop terminates.
func chooseDistinct(r *rng.RNG, n int, dst []int) {
	for i := range dst {
	redraw:
		v := r.Intn(n)
		for _, prev := range dst[:i] {
			if prev == v {
				goto redraw
			}
		}
		dst[i] = v
	}
}

// InitiateBatch is Initiate on the allocation-free batch path: the same
// BatchK-slot selection and floor handling with the slot draw through
// rejection sampling into preallocated scratch and the payload written
// straight into the driver's outbox. The graveyard — protocol state, not a
// diagnostic — is maintained exactly as on the scalar path; the core's
// event counters are per the BatchStepCore contract not.
//
//vet:hotpath
func (c *Core) InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *protocol.Outbox) (msgs, dups int, ok bool) {
	k := c.opts.BatchK
	slots := c.slotsScratch[:k]
	chooseDistinct(r, lv.Size(), slots)
	for i, slot := range slots {
		id := lv.Slot(slot)
		if id.IsNil() {
			return 0, 0, false
		}
		c.payload[i] = id
	}
	target := c.payload[0]
	atFloor := lv.Outdegree() <= c.opts.DL
	switch {
	case !atFloor:
		for _, slot := range slots {
			c.bury(lv.Slot(slot))
			lv.Clear(slot)
		}
	case c.opts.Undelete && c.gLen >= k:
		for _, slot := range slots {
			lv.Clear(slot)
		}
		for i := 0; i < k; i++ {
			id := c.exhume()
			if empty, ok := lv.RandomEmptySlot(r); ok {
				lv.Set(empty, id)
			}
		}
	default:
		// Baseline duplication: keep the entries.
	}
	// The message is [u, ids[1:]...]: overwrite the target slot of the
	// payload scratch with the sender id.
	c.payload[0] = u
	d := 0
	if atFloor {
		d = 1
	}
	if k == 2 {
		out.Append2(target, u, protocol.KindGossip, atFloor, u, c.payload[1])
	} else {
		out.Append(target, u, protocol.KindGossip, atFloor, c.payload[:k]...)
	}
	return 1, d, true
}

// ReceiveBatch is Receive on the batch path: store each id into a fused
// uniformly chosen empty slot, replacing (with burial) or deleting on
// overflow per the options.
//
//vet:hotpath
func (c *Core) ReceiveBatch(lv *view.View, u peer.ID, pkt protocol.Packet, r *rng.RNG, out *protocol.Outbox) bool {
	if pkt.Kind != protocol.KindGossip {
		return false
	}
	for _, id := range pkt.IDs {
		if empty, ok := lv.RandomEmptySlot(r); ok {
			lv.Set(empty, id)
			continue
		}
		if c.opts.ReplaceWhenFull {
			slot := r.Intn(lv.Size())
			c.bury(lv.Slot(slot))
			lv.Set(slot, id)
		}
	}
	return false
}
