package sfopt

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Core is the per-node step core of the optimized S&F variants,
// implementing protocol.StepCore. Unlike the stateless baselines it carries
// per-node auxiliary state (the undeletion graveyard), so every node —
// sequential adapter slot or concurrent runtime node — gets its own
// instance. Not safe for concurrent use.
type Core struct {
	opts     Options
	counters Counters
	// The graveyard is a bounded FIFO ring over a preallocated buffer:
	// bury evicts the oldest entry on overflow, exhume pops the most
	// recent. A ring rather than a slice so the batch path stays
	// allocation-free; it is protocol state (not a diagnostic), so both
	// the scalar and the batch step maintain it.
	grave        []peer.ID
	gHead, gLen  int
	slotsScratch []int     // batch-path slot selection, len BatchK
	payload      []peer.ID // batch-path message payload, len BatchK
}

var _ protocol.StepCore = (*Core)(nil)

// NewCore builds a variant step core. Only the per-node fields of Options
// (S, DL, BatchK, ReplaceWhenFull, Undelete, GraveyardSize) matter here;
// system-level fields (N, InitDegree) are ignored.
func NewCore(opts Options) (*Core, error) {
	if err := opts.validateCore(); err != nil {
		return nil, err
	}
	if opts.BatchK == 0 {
		opts.BatchK = 2
	}
	if opts.GraveyardSize == 0 {
		opts.GraveyardSize = opts.S
	}
	c := &Core{
		opts:         opts,
		slotsScratch: make([]int, opts.BatchK),
		payload:      make([]peer.ID, opts.BatchK),
	}
	if opts.Undelete {
		c.grave = make([]peer.ID, opts.GraveyardSize)
	}
	return c, nil
}

// Name identifies the active variant combination.
func (c *Core) Name() string { return c.opts.variantName() }

// ViewSize returns s.
func (c *Core) ViewSize() int { return c.opts.S }

// Counters returns a copy of the core's event counters.
func (c *Core) Counters() Counters { return c.counters }

// SeedView fills a fresh view with the seed ids, truncated to an even count
// of at most s entries (the variants keep S&F's parity discipline).
func (c *Core) SeedView(seeds []peer.ID) (*view.View, error) {
	k := len(seeds)
	if k > c.opts.S {
		k = c.opts.S
	}
	if k%2 != 0 {
		k--
	}
	if k < 2 {
		return nil, fmt.Errorf("sfopt: need at least 2 usable seeds, got %d", k)
	}
	v := view.New(c.opts.S)
	for i := 0; i < k; i++ {
		v.Set(i, seeds[i])
	}
	return v, nil
}

// Initiate selects BatchK distinct slots; the first non-empty rule of the
// baseline generalizes to all selected slots being non-empty (a single
// empty selection is a self-loop, keeping the analysis clean).
func (c *Core) Initiate(lv *view.View, u peer.ID, r *rng.RNG) ([]protocol.Outgoing, bool) {
	c.counters.Initiations++
	k := c.opts.BatchK
	slots := r.Choose(lv.Size(), k)
	ids := make([]peer.ID, 0, k)
	for _, slot := range slots {
		id := lv.Slot(slot)
		if id.IsNil() {
			c.counters.SelfLoops++
			return nil, false
		}
		ids = append(ids, id)
	}
	target := ids[0]
	atFloor := lv.Outdegree() <= c.opts.DL
	switch {
	case !atFloor:
		for _, slot := range slots {
			c.bury(lv.Slot(slot))
			lv.Clear(slot)
		}
	case c.opts.Undelete && c.gLen >= k:
		// Optimization 1: clear the sent entries but refill from the
		// graveyard — fresh-ish ids instead of correlated copies.
		for _, slot := range slots {
			lv.Clear(slot)
		}
		for i := 0; i < k; i++ {
			id := c.exhume()
			if empties, ok := lv.RandomEmptySlots(r, 1); ok {
				lv.Set(empties[0], id)
			}
		}
		c.counters.Undeletions++
	default:
		// Baseline duplication: keep the entries.
		c.counters.Duplications++
	}
	c.counters.Sends++
	payload := make([]peer.ID, k)
	payload[0] = u
	copy(payload[1:], ids[1:])
	return []protocol.Outgoing{{To: target, Msg: protocol.Message{
		Kind: protocol.KindGossip,
		From: u,
		IDs:  payload,
		Dup:  atFloor,
	}}}, true
}

// Receive stores the batch, replacing or deleting on overflow per the
// options. Parity of the outdegree is preserved: the number of empty slots
// is even, so the count stored into empties is even whenever the batch is.
// Non-gossip kinds are ignored.
func (c *Core) Receive(lv *view.View, u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Outgoing, bool) {
	if msg.Kind != protocol.KindGossip {
		return protocol.Outgoing{}, false
	}
	c.counters.Receives++
	for _, id := range msg.IDs {
		if empties, ok := lv.RandomEmptySlots(r, 1); ok {
			lv.Set(empties[0], id)
			c.counters.Stored++
			continue
		}
		if c.opts.ReplaceWhenFull {
			slot := r.Intn(lv.Size())
			c.bury(lv.Slot(slot))
			lv.Set(slot, id)
			c.counters.Replaced++
			continue
		}
		c.counters.Deleted++
	}
	return protocol.Outgoing{}, false
}

// bury pushes id onto the graveyard ring (bounded FIFO: the oldest entry is
// evicted on overflow).
func (c *Core) bury(id peer.ID) {
	if !c.opts.Undelete || id.IsNil() {
		return
	}
	size := len(c.grave)
	if c.gLen == size {
		c.gHead = (c.gHead + 1) % size
		c.gLen--
	}
	c.grave[(c.gHead+c.gLen)%size] = id
	c.gLen++
}

// exhume pops the most recently buried id.
func (c *Core) exhume() peer.ID {
	c.gLen--
	return c.grave[(c.gHead+c.gLen)%len(c.grave)]
}

// CheckView verifies even outdegree within [0, s]. The variant relaxes the
// hard dL floor only in that undeletion may briefly leave fewer live
// entries if the graveyard ran dry mid-refill; parity must still hold.
func (c *Core) CheckView(lv *view.View) error {
	if err := lv.CheckInvariants(); err != nil {
		return err
	}
	if lv.Outdegree()%2 != 0 {
		return fmt.Errorf("sfopt: odd outdegree %d", lv.Outdegree())
	}
	if lv.Outdegree() > c.opts.S {
		return fmt.Errorf("sfopt: outdegree %d exceeds s", lv.Outdegree())
	}
	return nil
}
