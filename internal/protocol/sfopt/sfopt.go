// Package sfopt implements the three optimizations Section 5 of the paper
// lists but leaves to future work, as switchable variants of S&F:
//
//  1. Undeletion — "instead of removing sent ids from the view, the
//     protocol could only mark them for deletion and then use undeletion
//     instead of duplication": cleared ids go to a per-node graveyard, and
//     a node at the duplication floor restores graveyard ids instead of
//     keeping (duplicating) the live entries, avoiding the sender/receiver
//     correlation that duplication creates.
//  2. ReplaceWhenFull — "instead of discarding received ids when the view
//     is full, the protocol could replace some existing view entries".
//  3. BatchK — "more than two ids could be sent in a message": each action
//     moves K ids (K even), reducing per-id message overhead.
//
// The abl3 experiment measures what each buys and costs relative to the
// analyzed baseline.
package sfopt

import (
	"fmt"

	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

// Options parameterizes the variant protocol. The zero values of the
// optimization fields yield exactly the baseline S&F semantics.
type Options struct {
	// N, S, DL, InitDegree as in the baseline protocol.
	N, S, DL, InitDegree int
	// BatchK is the number of ids moved per action (even, >= 2; the first
	// is the sender's own id). Default 2 (the baseline [u, w]).
	BatchK int
	// ReplaceWhenFull overwrites random occupied entries instead of
	// deleting ids that do not fit.
	ReplaceWhenFull bool
	// Undelete compensates at the dL floor by restoring recently cleared
	// ids from a graveyard instead of duplicating live entries.
	Undelete bool
	// GraveyardSize bounds the per-node graveyard (default S).
	GraveyardSize int
}

// validateCore checks the per-node protocol parameters (the subset a step
// core needs).
func (o Options) validateCore() error {
	if o.S < 6 || o.S%2 != 0 {
		return fmt.Errorf("sfopt: view size must be even >= 6, got %d", o.S)
	}
	if o.DL < 0 || o.DL > o.S-6 || o.DL%2 != 0 {
		return fmt.Errorf("sfopt: dL must be even in [0, s-6], got %d", o.DL)
	}
	if o.BatchK != 0 && (o.BatchK < 2 || o.BatchK%2 != 0 || o.BatchK > o.S) {
		return fmt.Errorf("sfopt: batch size must be even in [2, s], got %d", o.BatchK)
	}
	return nil
}

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("sfopt: need at least 2 nodes, got %d", o.N)
	}
	if err := o.validateCore(); err != nil {
		return err
	}
	if o.InitDegree != 0 && (o.InitDegree%2 != 0 || o.InitDegree < 2 || o.InitDegree > o.S || o.InitDegree >= o.N) {
		return fmt.Errorf("sfopt: invalid initial degree %d", o.InitDegree)
	}
	return nil
}

// variantName identifies the active variant combination.
func (o Options) variantName() string {
	name := "s&f-opt"
	if o.BatchK != 0 && o.BatchK != 2 {
		name += fmt.Sprintf("+batch%d", o.BatchK)
	}
	if o.ReplaceWhenFull {
		name += "+replace"
	}
	if o.Undelete {
		name += "+undelete"
	}
	return name
}

// Counters tallies variant events.
type Counters struct {
	Initiations  int
	SelfLoops    int
	Sends        int
	Duplications int // floor compensations by keeping entries
	Undeletions  int // floor compensations from the graveyard
	Receives     int
	Stored       int // ids stored into empty slots
	Replaced     int // ids stored by overwriting occupied slots
	Deleted      int // ids dropped for lack of space
}

// Protocol is the optimized-variant S&F. It implements protocol.Protocol
// by delegating to one step Core per node (the graveyard is per-node
// state, so cores cannot be shared).
type Protocol struct {
	opts  Options
	views []*view.View
	cores []*Core
}

var _ protocol.Protocol = (*Protocol)(nil)

// New builds the variant over the circulant bootstrap topology.
func New(opts Options) (*Protocol, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.BatchK == 0 {
		opts.BatchK = 2
	}
	if opts.GraveyardSize == 0 {
		opts.GraveyardSize = opts.S
	}
	if opts.InitDegree == 0 {
		d := (opts.DL + opts.S) / 2
		if d%2 != 0 {
			d--
		}
		if d < 2 {
			d = 2
		}
		if d >= opts.N {
			d = opts.N - 1
			if d%2 != 0 {
				d--
			}
		}
		opts.InitDegree = d
	}
	if opts.InitDegree >= opts.N || opts.InitDegree < 2 {
		return nil, fmt.Errorf("sfopt: n=%d too small for initial degree %d", opts.N, opts.InitDegree)
	}
	p := &Protocol{
		opts:  opts,
		views: make([]*view.View, opts.N),
		cores: make([]*Core, opts.N),
	}
	for u := 0; u < opts.N; u++ {
		core, err := NewCore(opts)
		if err != nil {
			return nil, err
		}
		p.cores[u] = core
		v := view.New(opts.S)
		for k := 1; k <= opts.InitDegree; k++ {
			v.Set(k-1, peer.ID((u+k)%opts.N))
		}
		p.views[u] = v
	}
	return p, nil
}

// Name identifies the active variant combination.
func (p *Protocol) Name() string { return p.opts.variantName() }

// N returns the node count.
func (p *Protocol) N() int { return p.opts.N }

// Counters returns the counters summed over all per-node cores.
func (p *Protocol) Counters() Counters {
	var sum Counters
	for _, c := range p.cores {
		cc := c.counters
		sum.Initiations += cc.Initiations
		sum.SelfLoops += cc.SelfLoops
		sum.Sends += cc.Sends
		sum.Duplications += cc.Duplications
		sum.Undeletions += cc.Undeletions
		sum.Receives += cc.Receives
		sum.Stored += cc.Stored
		sum.Replaced += cc.Replaced
		sum.Deleted += cc.Deleted
	}
	return sum
}

// View returns u's view.
func (p *Protocol) View(u peer.ID) *view.View { return p.views[u] }

// Views returns all views for snapshotting.
func (p *Protocol) Views() []*view.View {
	out := make([]*view.View, p.opts.N)
	copy(out, p.views)
	return out
}

// Initiate selects BatchK distinct slots by delegating to u's step core; the
// first non-empty rule of the baseline generalizes to all selected slots
// being non-empty (a single empty selection is a self-loop, keeping the
// analysis clean).
func (p *Protocol) Initiate(u peer.ID, r *rng.RNG) (peer.ID, protocol.Message, bool) {
	msgs, ok := p.cores[u].Initiate(p.views[u], u, r)
	if !ok {
		return 0, protocol.Message{}, false
	}
	return msgs[0].To, msgs[0].Msg, true
}

// Deliver stores the batch by delegating to u's step core, which replaces or
// deletes on overflow per the options.
func (p *Protocol) Deliver(u peer.ID, msg protocol.Message, r *rng.RNG) (protocol.Message, peer.ID, bool) {
	p.cores[u].Receive(p.views[u], u, msg, r)
	return protocol.Message{}, 0, false
}

// CheckInvariants verifies even outdegrees within [dL-ish, s]. The variant
// relaxes the hard dL floor only in that undeletion may briefly leave fewer
// live entries if the graveyard ran dry mid-refill; parity must still hold.
func (p *Protocol) CheckInvariants() error {
	for u, lv := range p.views {
		if err := p.cores[u].CheckView(lv); err != nil {
			return fmt.Errorf("node %d: %w", u, err)
		}
	}
	return nil
}
