package sfopt

import (
	"strings"
	"testing"

	"sendforget/internal/engine"
	"sendforget/internal/graph"
	"sendforget/internal/loss"
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
)

func mustNew(t *testing.T, o Options) *Protocol {
	t.Helper()
	p, err := New(o)
	if err != nil {
		t.Fatalf("New(%+v): %v", o, err)
	}
	return p
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"baseline valid", Options{N: 20, S: 12, DL: 4}, ""},
		{"batch valid", Options{N: 20, S: 12, DL: 4, BatchK: 4}, ""},
		{"odd batch", Options{N: 20, S: 12, DL: 4, BatchK: 3}, "batch size"},
		{"batch above s", Options{N: 20, S: 12, DL: 4, BatchK: 14}, "batch size"},
		{"odd s", Options{N: 20, S: 11, DL: 4}, "even >= 6"},
		{"bad dL", Options{N: 20, S: 12, DL: 8}, "dL must be even"},
		{"tiny n", Options{N: 1, S: 12, DL: 4}, "at least 2 nodes"},
		{"odd init degree", Options{N: 20, S: 12, DL: 4, InitDegree: 5}, "initial degree"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.opts)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestName(t *testing.T) {
	if got := mustNew(t, Options{N: 20, S: 12, DL: 4}).Name(); got != "s&f-opt" {
		t.Errorf("baseline name = %q", got)
	}
	got := mustNew(t, Options{N: 20, S: 12, DL: 4, BatchK: 4, ReplaceWhenFull: true, Undelete: true}).Name()
	for _, want := range []string{"batch4", "replace", "undelete"} {
		if !strings.Contains(got, want) {
			t.Errorf("name %q missing %q", got, want)
		}
	}
}

func drive(t *testing.T, p *Protocol, lossRate float64, rounds int, seed int64) *engine.Engine {
	t.Helper()
	e, err := engine.New(p, loss.MustUniform(lossRate), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	e.Run(rounds)
	return e
}

func TestBaselineVariantMatchesSFSemantics(t *testing.T) {
	// With all optimizations off, the variant must behave like S&F: stable
	// edge population, even degrees, connectivity.
	p := mustNew(t, Options{N: 100, S: 16, DL: 6})
	e := drive(t, p, 0.05, 300, 1)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	g := e.Snapshot()
	if !g.WeaklyConnected() {
		t.Error("variant baseline disconnected")
	}
	edges := float64(g.NumEdges()) / 100
	if edges < 6 || edges > 16 {
		t.Errorf("edges per node = %v, want stable mid-range", edges)
	}
	c := p.Counters()
	if c.Duplications == 0 {
		t.Error("no duplications under loss at baseline settings")
	}
	if c.Undeletions != 0 {
		t.Error("undeletions recorded with Undelete disabled")
	}
}

func TestBatchMovesMoreIDs(t *testing.T) {
	base := mustNew(t, Options{N: 100, S: 16, DL: 6})
	batch := mustNew(t, Options{N: 100, S: 16, DL: 6, BatchK: 4})
	drive(t, base, 0, 200, 2)
	drive(t, batch, 0, 200, 2)
	cb, ck := base.Counters(), batch.Counters()
	if cb.Sends == 0 || ck.Sends == 0 {
		t.Fatal("no sends recorded")
	}
	perSendBase := float64(cb.Stored) / float64(cb.Sends)
	perSendBatch := float64(ck.Stored) / float64(ck.Sends)
	if perSendBatch <= perSendBase {
		t.Errorf("batch4 moved %v ids/send vs baseline %v; want more", perSendBatch, perSendBase)
	}
	if err := batch.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceWhenFullNeverDeletes(t *testing.T) {
	p := mustNew(t, Options{N: 50, S: 8, DL: 2, InitDegree: 6, ReplaceWhenFull: true})
	drive(t, p, 0, 300, 3)
	c := p.Counters()
	if c.Deleted != 0 {
		t.Errorf("Deleted = %d with ReplaceWhenFull", c.Deleted)
	}
	if c.Replaced == 0 {
		t.Error("no replacements happened despite small views")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUndeleteReducesDuplications(t *testing.T) {
	base := mustNew(t, Options{N: 150, S: 12, DL: 6, InitDegree: 6})
	und := mustNew(t, Options{N: 150, S: 12, DL: 6, InitDegree: 6, Undelete: true})
	drive(t, base, 0.1, 300, 4)
	drive(t, und, 0.1, 300, 4)
	cb, cu := base.Counters(), und.Counters()
	if cb.Duplications == 0 {
		t.Fatal("baseline never duplicated; test configuration too easy")
	}
	if cu.Undeletions == 0 {
		t.Error("undelete variant never undeleted")
	}
	if cu.Duplications >= cb.Duplications {
		t.Errorf("undelete did not reduce duplications: %d vs baseline %d", cu.Duplications, cb.Duplications)
	}
	if err := und.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUndeleteSurvivesLoss(t *testing.T) {
	p := mustNew(t, Options{N: 150, S: 12, DL: 6, InitDegree: 6, Undelete: true})
	e := drive(t, p, 0.1, 400, 5)
	g := e.Snapshot()
	edges := float64(g.NumEdges()) / 150
	if edges < 4 {
		t.Errorf("undelete variant decayed to %v edges/node under loss", edges)
	}
	if g.ComponentCount() > 2 {
		t.Errorf("undelete variant fragmented: %d components", g.ComponentCount())
	}
}

func TestDeliverDeletesWithoutReplace(t *testing.T) {
	p := mustNew(t, Options{N: 10, S: 6, DL: 0, InitDegree: 6})
	r := rng.New(6)
	p.Deliver(1, protocol.Message{From: 0, IDs: []peer.ID{0, 3}}, r)
	if c := p.Counters(); c.Deleted != 2 {
		t.Errorf("Deleted = %d, want 2 at full view", c.Deleted)
	}
}

func TestSelfLoopOnEmptySelection(t *testing.T) {
	p := mustNew(t, Options{N: 10, S: 12, DL: 0, InitDegree: 2})
	r := rng.New(7)
	loops := 0
	for i := 0; i < 100; i++ {
		if _, _, ok := p.Initiate(0, r); !ok {
			loops++
		}
	}
	if loops == 0 {
		t.Error("no self-loops despite mostly-empty view")
	}
	if c := p.Counters(); c.SelfLoops != loops {
		t.Errorf("SelfLoops = %d, want %d", c.SelfLoops, loops)
	}
}

func TestSnapshotViaGraph(t *testing.T) {
	p := mustNew(t, Options{N: 30, S: 12, DL: 4})
	g := graph.FromViews(p.Views())
	if !g.WeaklyConnected() {
		t.Error("initial variant topology disconnected")
	}
	if p.N() != 30 {
		t.Errorf("N = %d", p.N())
	}
}
