package shuffle

import (
	"sendforget/internal/peer"
	"sendforget/internal/protocol"
	"sendforget/internal/rng"
	"sendforget/internal/view"
)

var _ protocol.BatchStepCore = (*Core)(nil)

// InitiateBatch is Initiate on the allocation-free batch path: the same
// delete-on-send offer with the pair selection through the fused single-draw
// RandomPairFast, the two clears fused into ClearOccupiedPair, and the
// request written straight into the driver's outbox. Per the BatchStepCore
// contract the core's diagnostic counters are not maintained here.
//
//vet:hotpath
func (c *Core) InitiateBatch(lv *view.View, u peer.ID, r *rng.RNG, out *protocol.Outbox) (msgs, dups int, ok bool) {
	i, j := lv.RandomPairFast(r)
	v, w := lv.Slot(i), lv.Slot(j)
	if v.IsNil() || w.IsNil() {
		return 0, 0, false
	}
	lv.ClearOccupiedPair(i, j)
	out.Append2(v, u, protocol.KindRequest, false, u, w)
	return 1, 0, true
}

// ReceiveBatch is Receive on the batch path. A request stores the offered
// ids first, then removes up to two own entries — the swap-segment selection
// through the fused RandomOccupiedPair/RandomOccupiedSlot — and appends them
// as the reply; a reply just stores the returned ids.
//
//vet:hotpath
func (c *Core) ReceiveBatch(lv *view.View, u peer.ID, pkt protocol.Packet, r *rng.RNG, out *protocol.Outbox) bool {
	switch pkt.Kind {
	case protocol.KindRequest:
		c.storeBatch(lv, pkt.IDs, r)
		switch d := lv.Outdegree(); {
		case d >= 2:
			i, j, _ := lv.RandomOccupiedPair(r)
			a, b := lv.Slot(i), lv.Slot(j)
			lv.ClearOccupiedPair(i, j)
			out.Append2(pkt.From, u, protocol.KindReply, false, a, b)
			return true
		case d == 1:
			i, _ := lv.RandomOccupiedSlot(r)
			a := lv.Slot(i)
			lv.Clear(i)
			out.Append1(pkt.From, u, protocol.KindReply, false, a)
			return true
		default:
			return false
		}
	case protocol.KindReply:
		c.storeBatch(lv, pkt.IDs, r)
	}
	return false
}

// storeBatch is store on the batch path: fused uniform empty-slot picks,
// dropping ids that do not fit silently (the scalar path counts the drops;
// batch diagnostics are per the contract not maintained).
func (c *Core) storeBatch(lv *view.View, ids []peer.ID, r *rng.RNG) {
	for _, id := range ids {
		if i, ok := lv.RandomEmptySlot(r); ok {
			lv.Set(i, id)
		}
	}
}
